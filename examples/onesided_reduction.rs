//! The paper's §V-B future work: non-collective, one-sided global
//! operations — "a process can perform a reduction without any
//! participation for the other processes, by fetching the data remotely."
//!
//! Part 1 runs the reduction on the discrete-event simulator and shows the
//! one-sidedness in the traffic accounting (only get request/reply pairs,
//! no sends from the owners). Part 2 runs the same operation on the real
//! threaded SHMEM backend (§III-B) and checks the sum.
//!
//! Run with: `cargo run --example onesided_reduction`

use coherent_dsm::prelude::*;
use simulator::workloads::reduction;

fn main() {
    // ---- Part 1: on the simulator -------------------------------------
    let n = 8;
    let w = reduction::onesided(n);
    let cfg =
        SimConfig::debugging(n).with_detector_config(DetectorConfig::new(DetectorKind::Vanilla, n));
    let result = Engine::new(cfg, w.programs.clone()).run();
    assert!(result.stuck.is_empty());

    println!("one-sided reduction over {n} processes (simulator):");
    println!(
        "  get requests : {}",
        result.stats.msgs(OpClass::GetRequest)
    );
    println!("  get replies  : {}", result.stats.msgs(OpClass::GetReply));
    println!("  put messages : {}", result.stats.msgs(OpClass::PutData));
    assert_eq!(
        result.stats.msgs(OpClass::GetRequest),
        (n - 1) as u64,
        "root fetches each remote contribution exactly once"
    );
    assert_eq!(result.stats.msgs(OpClass::PutData), 0, "owners never send");

    // Root's private scratch holds every fetched contribution.
    let mut sum = 1u64; // root's own contribution
    for r in 1..n {
        sum += result.read_u64(GlobalAddr::private(0, 8 * r).range(8));
    }
    println!("  reduced sum  : {sum}");
    assert_eq!(sum, (1..=n as u64).sum());

    // With detection enabled the same program stays silent (barrier orders
    // the gets after the contributions).
    let detected = Engine::new(SimConfig::debugging(n), w.programs).run();
    assert!(detected.deduped.is_empty(), "{:?}", detected.deduped);
    println!(
        "  race reports : {} (barrier-ordered)",
        detected.deduped.len()
    );

    // ---- Part 2: on real threads (shmem backend) -----------------------
    let report = shmem::run(shmem::ShmemConfig::new(n), |pe| {
        let me = pe.my_pe();
        let slot = shmem::GlobalAddr::public(me, 0).range(8);
        pe.put_u64(slot, (me + 1) as u64);
        pe.barrier();
        if me == 0 {
            let parts: Vec<_> = (0..pe.n_pes())
                .map(|r| shmem::GlobalAddr::public(r, 0).range(8))
                .collect();
            let (sum, _) = pe.reduce_sum_u64(&parts);
            println!("one-sided reduction over {n} threads (shmem): sum = {sum}");
            assert_eq!(sum, (1..=n as u64).sum());
        }
    });
    assert!(report.reports.is_empty(), "{:?}", report.reports);
    println!("  race reports : 0 (threads, barrier-ordered)");
}

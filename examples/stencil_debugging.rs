//! Debugging a PGAS halo exchange with the detector: the workflow the
//! paper's §V-A envisions ("race condition detection is typically a
//! debugging technique … parallel programmes are typically debugged on
//! small data sets and a few processes").
//!
//! A 1-D stencil pushes boundary cells to its neighbours with one-sided
//! puts. With the separating barrier the program is race-free; with the
//! barrier *missing* the race only manifests in some interleavings — so a
//! single run can miss it. The interleaving explorer runs many seeds in
//! parallel and shows the detection rate, plus the §IV-D comparison between
//! the dual-clock detector and the single-clock baseline.
//!
//! Run with: `cargo run --example stencil_debugging`

use coherent_dsm::prelude::*;
use simulator::workloads::stencil;

fn main() {
    let n = 6;
    let seeds: Vec<u64> = (1..=16).collect();

    for (label, w) in [
        ("correct (with barrier)", stencil::with_barrier(n, 8, 3)),
        ("buggy (missing barrier)", stencil::missing_barrier(n, 8, 3)),
    ] {
        let cfg = SimConfig::debugging(n)
            .with_detector_config(DetectorConfig::new(DetectorKind::Dual, n));
        let summary = explore(&cfg, &w.programs, &seeds);
        println!("{label}:");
        println!(
            "  schedules with true races  : {:2}/{}",
            summary.seeds_with_truth(),
            seeds.len()
        );
        println!(
            "  schedules with reports     : {:2}/{}",
            summary.seeds_with_reports(),
            seeds.len()
        );
        println!(
            "  mean precision/recall      : {:.2} / {:.2}",
            summary.mean_precision(),
            summary.mean_recall()
        );
        if label.starts_with("correct") {
            assert_eq!(summary.seeds_with_reports(), 0, "no false alarms");
        } else {
            assert!(
                summary.seeds_with_reports() > 0,
                "the bug must surface in some schedule"
            );
        }
        println!();
    }

    // §IV-D comparison on a correct program with *shared reads*: every rank
    // reads rank 0's coefficient table after a barrier (a common stencil
    // idiom). The reads are mutually concurrent, which is fine — but the
    // single-clock baseline flags them, the dual clock stays silent.
    let coeff = GlobalAddr::public(0, 0).range(8);
    let mut programs = vec![ProgramBuilder::new(0)
        .local_write_u64(coeff, 42)
        .barrier()
        .build()];
    for rank in 1..n {
        programs.push(
            ProgramBuilder::new(rank)
                .barrier()
                .get(coeff, GlobalAddr::private(rank, 0).range(8))
                .build(),
        );
    }
    for kind in [DetectorKind::Dual, DetectorKind::Single] {
        let r = Engine::new(
            SimConfig::debugging(n).with_detector_config(DetectorConfig::new(kind, n)),
            programs.clone(),
        )
        .run();
        let rr = r
            .deduped
            .iter()
            .filter(|x| x.class == RaceClass::ReadRead)
            .count();
        println!(
            "shared coefficient reads under {:?}: {} reports ({} read-read)",
            kind,
            r.deduped.len(),
            rr
        );
        match kind {
            DetectorKind::Dual => assert_eq!(r.deduped.len(), 0),
            _ => assert!(rr > 0, "single clock must flag the concurrent reads"),
        }
    }
}

//! Service quickstart: the Fig 5a race detected over the wire.
//!
//! Starts the crash-tolerant detection service in-process, streams an
//! unsynchronised two-writer workload to it from a client, and shows
//! that the summary coming back over TCP is byte-identical to driving
//! the same events through an in-process `Session` — the service adds
//! supervision, not new semantics (see docs/SERVICE.md).
//!
//! Run with: `cargo run --example service_quickstart`

use coherent_dsm::dsm::GlobalAddr;
use coherent_dsm::dsm_service::frame::WireEvent;
use coherent_dsm::dsm_service::server::{ServeConfig, Server};
use coherent_dsm::dsm_service::ServiceClient;
use coherent_dsm::race_core::api::SummarySink;
use coherent_dsm::race_core::{DetectorConfig, DetectorKind, DsmOp, OpKind};

fn main() {
    let n = 3;
    let config = DetectorConfig::new(DetectorKind::Dual, n);

    // The workload: P0 and P2 both put to the first word of P1's public
    // segment with no synchronisation — the paper's Fig 5a.
    let a = GlobalAddr::public(1, 0).range(8);
    let events = vec![
        WireEvent::Op(DsmOp {
            op_id: 1,
            actor: 0,
            kind: OpKind::Put {
                src: GlobalAddr::private(0, 0).range(8),
                dst: a,
            },
        }),
        WireEvent::Op(DsmOp {
            op_id: 2,
            actor: 2,
            kind: OpKind::Put {
                src: GlobalAddr::private(2, 0).range(8),
                dst: a,
            },
        }),
    ];

    // One supervised Session per connection; defaults block slow clients
    // (nothing shed) and reap sessions idle for 30 s.
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    println!("service listening on    : {}", server.local_addr());

    let mut client = ServiceClient::connect(server.local_addr(), &config).expect("connect");
    println!("session id              : {}", client.session_id());
    for ev in &events {
        client.send(ev).expect("send");
    }

    // Mid-stream liveness: a Ping answers with live counters without
    // ending the session.
    let health = client.ping().expect("ping");
    println!(
        "mid-stream health       : degraded={} events={} reports={}",
        health.degraded, health.events, health.reports
    );

    let remote = client.finish().expect("finish");
    println!("shed events             : {}", remote.shed);
    print!("{}", remote.summary);

    // The parity contract: byte-identical to the in-process twin.
    let mut session = config.session_with(Box::new(SummarySink::default()));
    for ev in &events {
        if let WireEvent::Op(op) = ev {
            session.observe(op, &[]);
        }
    }
    let local_json = session.finish().0.to_json();
    assert_eq!(
        remote.raw_json, local_json,
        "wire summary must match in-process"
    );
    println!("\nwire summary is byte-identical to the in-process run");

    // Graceful shutdown drains every live session and returns the ledger.
    let report = server.shutdown();
    for rec in &report.sessions {
        println!(
            "session {}: {} ({} event(s), degraded={})",
            rec.session,
            rec.outcome.label(),
            rec.events,
            rec.degraded
        );
    }
    assert_eq!(report.stats.accepted, 1);
}

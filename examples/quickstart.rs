//! Quickstart: detect the paper's Fig 5a race in a three-process program.
//!
//! Run with: `cargo run --example quickstart`

use coherent_dsm::prelude::*;

fn main() {
    // The global address space: each process maps a public segment; shared
    // variable `a` is the first word of P1's segment (the compiler's
    // placement decision in the paper, made explicit here).
    let a = GlobalAddr::public(1, 0).range(8);

    // P0 and P2 both put to `a` with no synchronisation — the exact
    // scenario of the paper's Fig 5a.
    let programs = vec![
        ProgramBuilder::new(0).put_u64(0xAAAA, a).build(),
        ProgramBuilder::new(1).build(),
        ProgramBuilder::new(2).put_u64(0xCCCC, a).build(),
    ];

    // Debug-scale configuration (§V-A: detection is a debugging feature):
    // jittered InfiniBand-like latencies, dual-clock detection at word
    // granularity. Every detection knob lives on one DetectorConfig
    // builder; its JSON round-trips, so a run is reproducible from the
    // printed line alone.
    let detector = DetectorConfig::new(DetectorKind::Dual, 3).with_granularity(Granularity::WORD);
    println!("detector config         : {}", detector.to_json());
    let cfg = SimConfig::debugging(3).with_detector_config(detector);
    let result = Engine::new(cfg, programs).run();

    println!("virtual completion time : {}", result.virtual_time);
    println!("messages on the wire    : {}", result.stats.total_msgs());
    println!(
        "clock storage           : {} bytes",
        result.clock_memory_bytes
    );
    println!();

    // §IV-D: races are signalled, never fatal.
    for report in &result.deduped {
        println!("{report}");
    }
    assert_eq!(result.deduped.len(), 1, "exactly one write-write race");
    // The session's bounded aggregate (what a long-running service keeps):
    print!("{}", result.summary);

    // The run still completed, and one of the two values won:
    let v = result.read_u64(a);
    println!("\nfinal value of a = {v:#x} (one of the racers won)");
    assert!(v == 0xAAAA || v == 0xCCCC);

    // The offline oracle agrees with the online detector:
    let oracle = Oracle::analyze(&result.trace);
    let score = oracle.score(&result.deduped);
    println!(
        "oracle check: precision {:.2}, recall {:.2}",
        score.precision(),
        score.recall()
    );
    assert_eq!(score.false_positives, 0);
}

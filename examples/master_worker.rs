//! The §IV-D motivating pattern: master–worker with an *intentional* race.
//!
//! "Parallel master-worker computation patterns induce a race condition
//! between workers when the results are sent to the master. Therefore, race
//! conditions must be signaled to the user, but they must not abort the
//! execution of the program."
//!
//! This example runs three variants (all workers → one slot; one slot per
//! worker; shared slot under the NIC lock) under every detector and prints
//! a comparison table: the dual-clock detector flags exactly the racy
//! variant, the single-clock baseline also flags the clean ones (read-read
//! false positives), and the lockset baseline only accepts the locked one.
//!
//! Run with: `cargo run --example master_worker`

use coherent_dsm::prelude::*;
use simulator::workloads::master_worker;

fn main() {
    let variants = [
        master_worker::racy(4, 2),
        master_worker::slotted(4, 2),
        master_worker::locked(4, 2),
    ];

    println!(
        "{:<34} {:>12} {:>12} {:>12} {:>9}",
        "workload", "dual-clock", "single-clock", "lockset", "truth"
    );
    for w in &variants {
        let mut row = format!("{:<34}", w.name);
        let mut truth = 0usize;
        for kind in [
            DetectorKind::Dual,
            DetectorKind::Single,
            DetectorKind::Lockset,
        ] {
            let cfg =
                SimConfig::debugging(w.n).with_detector_config(DetectorConfig::new(kind, w.n));
            let result = Engine::new(cfg, w.programs.clone()).run();
            assert!(result.stuck.is_empty(), "races are never fatal");
            let reports = result.deduped.len();
            row.push_str(&format!(
                " {:>12}",
                if reports == 0 {
                    "silent".to_string()
                } else {
                    format!("{reports} races")
                }
            ));
            if kind == DetectorKind::Dual {
                truth = Oracle::analyze(&result.trace).truth().len();
            }
        }
        row.push_str(&format!(" {:>9}", truth));
        println!("{row}");
    }

    println!(
        "\nThe racy variant completes anyway — §IV-D: signalling must not \
         abort the execution."
    );
}

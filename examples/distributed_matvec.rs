//! A PGAS application end-to-end: distributed matrix–vector multiply with
//! the data placement done by the symmetric heap (the paper's §III-A
//! "compiler in charge with data locality"), executed under full race
//! detection.
//!
//! The input vector is replicated symmetrically (same offset on every
//! rank, SHMEM-style); matrix rows and output elements are distributed
//! round-robin; the root gathers the result with one-sided gets. Barriers
//! separate the phases, so the detector stays silent — delete a barrier
//! and it will not.
//!
//! Run with: `cargo run --example distributed_matvec`

use coherent_dsm::prelude::*;
use simulator::workloads::matvec;

fn main() {
    let (n, dim) = (4, 8);
    let mv = matvec::build(n, dim);

    let cfg =
        SimConfig::debugging(n).with_detector_config(DetectorConfig::new(DetectorKind::Dual, n));
    let result = Engine::new(cfg, mv.workload.programs.clone()).run();
    assert!(result.stuck.is_empty());

    println!("distributed mat-vec: {n} ranks, {dim}×{dim} matrix");
    println!("  placement      : x replicated symmetrically; y round-robin");
    println!("  wire messages  : {}", result.stats.total_msgs());
    println!("  virtual time   : {}", result.virtual_time);
    println!("  race reports   : {}", result.deduped.len());
    assert!(result.deduped.is_empty());

    println!("\n  y = A·x gathered at the root:");
    for (i, g) in mv.gathered.iter().enumerate() {
        let got = result.read_u64(*g);
        println!("    y[{i}] = {got}  (expected {})", mv.expected[i]);
        assert_eq!(got, mv.expected[i]);
    }

    // The §IV-D comparison on an application workload: the oracle confirms
    // the barrier discipline ordered everything.
    let oracle = Oracle::analyze(&result.trace);
    println!(
        "\n  oracle: {} true races across {} recorded accesses",
        oracle.truth().len(),
        result.trace.events.len()
    );
    assert!(oracle.truth().is_empty());

    // Now break the program: drop every barrier and re-run.
    let broken: Vec<Program> = mv
        .workload
        .programs
        .iter()
        .map(|p| {
            let mut b = ProgramBuilder::new(0);
            for instr in p.iter() {
                if !matches!(instr, Instr::Barrier) {
                    b = b.push(instr.clone());
                }
            }
            b.build()
        })
        .collect();
    let broken_run = Engine::new(SimConfig::debugging(n), broken).run();
    println!(
        "\n  same program without barriers: {} race reports (first: {})",
        broken_run.deduped.len(),
        broken_run
            .deduped
            .first()
            .map(|r| r.signal_line())
            .unwrap_or_default()
    );
    assert!(
        !broken_run.deduped.is_empty(),
        "removing the barriers must surface races"
    );
}

//! The §III-B SHMEM extension on real OS threads: the same dual-clock
//! algorithm guarding a threads-and-memcpy PGAS.
//!
//! Demonstrates a classic lost-update bug: PEs increment a shared counter
//! with unsynchronised get/put pairs (detected, and the total is wrong),
//! then with the NIC area lock (silent, and the total is exact).
//!
//! Run with: `cargo run --example shmem_threads`

use race_core::{DetectorConfig, DetectorKind};
use shmem::{GlobalAddr, ShmemConfig};

fn main() {
    let n = 4;
    let iters = 50;
    let counter = GlobalAddr::public(0, 0).range(8);

    // The same DetectorConfig builder drives both backends; here the
    // threaded SHMEM runtime builds its detection session from it.
    let detector = DetectorConfig::new(DetectorKind::Dual, n);
    let cfg = || ShmemConfig::new(n).with_detector_config(detector.clone());

    // ---- buggy: unsynchronised read-modify-write ------------------------
    let buggy = shmem::run(cfg(), |pe| {
        for _ in 0..iters {
            let (v, _) = pe.get_u64(counter);
            pe.put_u64(counter, v + 1);
        }
    });
    let total = buggy.read_u64(counter);
    println!("unsynchronised counter:");
    println!("  final value : {total} (expected {})", n * iters);
    println!("  race reports: {}", buggy.reports.len());
    for r in buggy.reports.iter().take(3) {
        println!("    {r}");
    }
    if buggy.reports.len() > 3 {
        println!("    … and {} more", buggy.reports.len() - 3);
    }
    // The session's bounded aggregate over the raw report stream:
    print!("{}", buggy.summary);
    assert!(
        !buggy.true_races().is_empty(),
        "the lost-update race must be signalled"
    );

    // ---- fixed: NIC area lock around the update -------------------------
    let fixed = shmem::run(cfg(), |pe| {
        for _ in 0..iters {
            let guard = pe.lock(counter);
            let (v, _) = pe.get_u64(counter);
            pe.put_u64(counter, v + 1);
            drop(guard);
        }
    });
    let total = fixed.read_u64(counter);
    println!("\nlock-protected counter:");
    println!("  final value : {total} (expected {})", n * iters);
    println!("  race reports: {}", fixed.reports.len());
    assert_eq!(total, (n * iters) as u64);
    assert!(fixed.reports.is_empty(), "{:?}", fixed.reports);

    println!(
        "\nclock storage: buggy {} bytes vs fixed {} bytes (same areas, \
         same dual clocks — §IV-D)",
        buggy.clock_memory_bytes, fixed.clock_memory_bytes
    );
}

//! # coherent-dsm
//!
//! A reproduction of *"A Model for Coherent Distributed Memory for Race
//! Condition Detection"* (Franck Butelle & Camille Coti, IPPS 2011,
//! arXiv:1101.4193): a low-level model of distributed shared memory built
//! on one-sided RDMA `put`/`get`, and a race-condition detector that keeps
//! **two vector clocks per shared memory area** — a general-purpose clock
//! `V` and a write clock `W` — and signals a race whenever a conflicting
//! access's clock is concurrent with the area's (Corollary 1 of the paper).
//!
//! The workspace is layered bottom-up:
//!
//! | crate | role |
//! |---|---|
//! | [`vclock`] | Lamport / vector / matrix clocks, the paper's Algorithms 3–4, the `epoch` fast-path module, shard-safe snapshots |
//! | [`netsim`] | deterministic discrete-event interconnect + RDMA NIC model |
//! | [`dsm`] | global address space, symmetric heap, NIC area locks, Fig 3 put-deferral |
//! | [`race_core`] | the paper's detector (Algorithms 1–2, dual clock) + the sharded parallel pipeline + baselines + oracle, fronted by the `race_core::api` façade (`DetectorConfig` → `Session` → `ReportSink`) |
//! | [`simulator`] | process/program model, DES engine (per-op or batched/sharded drain), workloads, interleaving explorer |
//! | [`shmem`] | the same algorithms on real OS threads (§III-B's SHMEM extension) |
//!
//! ## The detection hot path
//!
//! `race_core::HbDetector` runs the paper's per-access check-and-update in
//! O(1) in the common case instead of the naive O(n):
//!
//! * **epoch fast path** (`vclock::AreaClock`): while an area's accesses
//!   are totally ordered, its `V`/`W` joins are FastTrack-style epochs
//!   `(rank, count)` — the Algorithm-3 compare is one integer test, the
//!   Algorithm-5 update two word writes. Genuine concurrency demotes the
//!   clock to the exact dense join (O(n) again); a later dominating access
//!   re-promotes it.
//! * **flat sharded store** (`race_core::ClockStore`): per-rank dense
//!   slabs indexed by block number — no hashing on the access path.
//! * **allocation-free observe**: one shared `Arc` clock snapshot per
//!   operation, a reused absorb scratch clock, reports streamed by value
//!   into the caller's `race_core::ReportSink`.
//!
//! Report parity with the unoptimised implementation
//! (`race_core::ReferenceHbDetector`) is enforced by differential property
//! tests across all detector modes and granularities; the measured speedup
//! is tracked in `BENCH_0001.json` (`repro --bench`).
//!
//! ## The sharded pipeline
//!
//! The paper's two-clocks-per-area design makes areas natural shard keys:
//! `race_core::ShardedDetector` partitions the per-area check-and-update
//! across worker threads (hash of block → shard, each shard owning its own
//! `ClockStore` slab set) behind a batch API,
//! `observe_batch(&[MemOp]) -> usize`. A sequential router keeps the
//! per-process matrix clocks and replays the read-absorb against
//! lightweight per-area join replicas; a deterministic key-sorted merge
//! makes the report stream **byte-identical** to the sequential detector's
//! (also proptest-enforced). The engine drives it via
//! `SimConfig::with_shards(k)` (the batched drain mode), and
//! `BENCH_0002.json` (`repro --bench-sharded`) tracks throughput at
//! 1/2/4/8 shards against the sequential epoch detector — see
//! `docs/BENCHMARKS.md` for the host-core caveat on those rows, and
//! `docs/ARCHITECTURE.md` for the router/worker split.
//!
//! ## Quickstart
//!
//! ```
//! use coherent_dsm::prelude::*;
//!
//! // Two processes put to the same word of P1's public memory with no
//! // synchronisation: the Fig 5a write-write race.
//! let dst = GlobalAddr::public(1, 0).range(8);
//! let programs = vec![
//!     ProgramBuilder::new(0).put_u64(1, dst).build(),
//!     ProgramBuilder::new(1).build(),
//!     ProgramBuilder::new(2).put_u64(2, dst).build(),
//! ];
//! let result = Engine::new(SimConfig::debugging(3), programs).run();
//! assert_eq!(result.deduped.len(), 1); // exactly one signalled race
//! assert!(result.stuck.is_empty());    // and the program still completed
//! ```

pub use dsm;
pub use dsm_service;
pub use netsim;
pub use race_core;
pub use shmem;
pub use simulator;
pub use vclock;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use dsm::{GlobalAddr, MemRange, Placement, Segment, SymmetricHeap};
    pub use netsim::{OpClass, SimTime, Topology};
    pub use race_core::{
        CountingSink, DetectorConfig, DetectorKind, Granularity, MemOp, Oracle, PipelineMode,
        RaceClass, RaceReport, RaceSummary, ReportSink, Score, Session, ShardedDetector,
        SummarySink, VecSink,
    };
    pub use simulator::{
        explore, Engine, Instr, LatencySpec, Program, ProgramBuilder, RunResult, SimConfig,
    };
    pub use vclock::{ClockRelation, MatrixClock, VectorClock};
}

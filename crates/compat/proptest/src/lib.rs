//! Offline stand-in for `proptest`: the subset the workspace's property
//! tests use — the `proptest!` macro, `Strategy` with `prop_map`, range and
//! tuple strategies, `collection::vec`, and `prop_assert*`.
//!
//! Differences from real proptest: case generation is a fixed deterministic
//! PRNG stream seeded from the test name (stable across runs and machines),
//! and there is **no shrinking** — a failing case prints its seed/index via
//! the assert message instead. Default case count is 64.

/// Deterministic per-test random source (SplitMix64).
pub struct TestRng {
    x: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a hash), so every test gets a stable,
    /// distinct stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { x: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u128 + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + unit * (end - start)
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification: an exact `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The common imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

/// Assert within a property (plain assert here — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Declare property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]`-style function running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; ) => {};
    (cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident( $($parm:pat in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $( let $parm = $crate::Strategy::generate(&($strategy), &mut __rng); )+
                { $body }
            }
        }
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(a in 0u64..10, b in 5usize..=9, f in 0.0f64..=1.0) {
            prop_assert!(a < 10);
            prop_assert!((5..=9).contains(&b));
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn vec_and_map_compose(v in collection::vec(0u64..100, 3usize).prop_map(|v| v.len())) {
            prop_assert_eq!(v, 3);
        }

        #[test]
        fn tuples_and_mut_patterns(mut pair in (0usize..4, 0usize..4)) {
            pair.0 += 1;
            prop_assert!(pair.0 <= 4 && pair.1 < 4);
        }
    }

    #[test]
    fn config_cases_respected() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(3))]
            fn three_cases(_x in 0u64..10) {}
        }
        three_cases();
    }

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

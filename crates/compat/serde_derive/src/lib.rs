//! No-op `Serialize` / `Deserialize` derives.
//!
//! The workspace only uses serde derives as documentation of intent — no
//! code path actually serialises through serde (tables and JSON summaries
//! are hand-formatted). These derives accept the `#[serde(...)]` helper
//! attribute and expand to nothing, so annotated types compile unchanged
//! without the real serde crate.

use proc_macro::TokenStream;

/// Expands to nothing; accepts `#[serde(...)]` field/variant attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts `#[serde(...)]` field/variant attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline stand-in for `criterion`: the macro/API subset the workspace's
//! benches use, with a simple adaptive timing loop. Each benchmark is
//! calibrated to a target measurement time, then reported as
//! `bench-id ... <median> ns/iter (n samples)` on stdout.
//!
//! Not statistically rigorous like real criterion — but deterministic in
//! shape, dependency-free, and good enough to compare detector variants on
//! the same machine.

use std::time::{Duration, Instant};

/// Re-export mirror of `criterion::black_box`.
pub use std::hint::black_box;

/// Target cumulative measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(300);
/// Samples collected per benchmark.
const SAMPLES: usize = 11;

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// The timing driver handed to bench closures.
pub struct Bencher {
    /// (median ns/iter, iters per sample) — filled by `iter`.
    result: Option<(f64, u64)>,
}

impl Bencher {
    /// Measure `f`, adaptively choosing the iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit one sample's time slice?
        let slice = TARGET / SAMPLES as u32;
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= slice / 2 || iters >= 1 << 30 {
                break;
            }
            // Grow towards the slice, at least doubling.
            let grow = if elapsed.is_zero() {
                iters * 16
            } else {
                ((slice.as_nanos() as u64 * iters) / elapsed.as_nanos().max(1) as u64)
                    .max(iters * 2)
            };
            iters = grow.min(1 << 30);
        }
        let mut samples: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result = Some((samples[SAMPLES / 2], iters));
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { result: None };
    f(&mut b);
    match b.result {
        Some((ns, iters)) => println!("{label:<50} {ns:>14.1} ns/iter  ({iters} iters/sample)"),
        None => println!("{label:<50} (no measurement)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in has a fixed sample plan.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, |b| f(b, input));
        self
    }

    /// Benchmark a plain closure.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, f);
        self
    }

    /// End the group (no-op; printed eagerly).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _c: self,
        }
    }

    /// Benchmark a plain closure.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&name.to_string(), f);
        self
    }
}

/// Mirror of `criterion_group!`: a function running each bench fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirror of `criterion_main!`: the binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

//! Offline stand-in for serde: re-exports the no-op derive macros so that
//! `use serde::{Deserialize, Serialize};` + `#[derive(...)]` compile without
//! registry access. See `crates/compat/README.md`.

pub use serde_derive::{Deserialize, Serialize};

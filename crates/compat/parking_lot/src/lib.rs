//! Offline stand-in for `parking_lot`: a non-poisoning `Mutex` with the two
//! guard shapes the workspace uses — borrowed (`lock`) and Arc-owned
//! (`lock_arc`). Built on a condvar-based binary semaphore so an owned
//! guard does not need a self-referential std `MutexGuard`.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::sync::{Arc, Condvar, Mutex as StdMutex};

/// Marker type mirroring `parking_lot::RawMutex` in guard signatures.
pub struct RawMutex(());

/// Binary semaphore: the actual exclusion primitive.
#[derive(Default)]
struct Sem {
    locked: StdMutex<bool>,
    cv: Condvar,
}

impl Sem {
    fn acquire(&self) {
        let mut locked = self.locked.lock().unwrap_or_else(|e| e.into_inner());
        while *locked {
            locked = self.cv.wait(locked).unwrap_or_else(|e| e.into_inner());
        }
        *locked = true;
    }

    fn release(&self) {
        let mut locked = self.locked.lock().unwrap_or_else(|e| e.into_inner());
        *locked = false;
        self.cv.notify_one();
    }
}

/// A mutual-exclusion primitive. Never poisons.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    sem: Sem,
    data: UnsafeCell<T>,
}

// Safety: access to `data` is serialised by `sem`, exactly as in std.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            sem: Sem::default(),
            data: UnsafeCell::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    /// Block until the lock is held; the guard releases on drop.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.sem.acquire();
        MutexGuard { mutex: self }
    }

    /// Like [`Mutex::lock`], but the guard owns an `Arc` handle to the
    /// mutex instead of borrowing it.
    pub fn lock_arc(self: Arc<Self>) -> ArcMutexGuard<RawMutex, T> {
        self.sem.acquire();
        ArcMutexGuard {
            mutex: self,
            _raw: PhantomData,
        }
    }
}

/// Borrowed lock guard.
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: the semaphore is held for the guard's lifetime.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: the semaphore is held exclusively.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.sem.release();
    }
}

/// Arc-owned lock guard (`parking_lot::ArcMutexGuard` shape).
pub struct ArcMutexGuard<R, T: ?Sized> {
    mutex: Arc<Mutex<T>>,
    _raw: PhantomData<R>,
}

impl<R, T: ?Sized> std::ops::Deref for ArcMutexGuard<R, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: the semaphore is held for the guard's lifetime.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<R, T: ?Sized> Drop for ArcMutexGuard<R, T> {
    fn drop(&mut self) {
        self.mutex.sem.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn exclusion_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn arc_guard_holds_the_lock() {
        let m = Arc::new(Mutex::new(()));
        let g = Arc::clone(&m).lock_arc();
        assert!(*m.sem.locked.lock().unwrap());
        drop(g);
        assert!(!*m.sem.locked.lock().unwrap());
    }

    #[test]
    fn into_inner() {
        assert_eq!(Mutex::new(7).into_inner(), 7);
    }
}

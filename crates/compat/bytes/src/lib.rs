//! Offline stand-in for the `bytes` crate: the subset the workspace uses —
//! an immutable, cheaply clonable byte buffer.

use std::sync::Arc;

/// A reference-counted immutable byte buffer. Cloning is O(1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from([]),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_cheap_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&*c, &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }
}

//! Offline stand-in for `rand` 0.8: `StdRng` (xoshiro256++ seeded through
//! SplitMix64), `SeedableRng::seed_from_u64`, and the `Rng` methods the
//! workspace uses (`gen_range`, `gen_bool`). Deterministic per seed, which
//! is all the simulator's jitter/workload generation requires.

/// Core random source: 64 random bits per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u128 + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + unit * (end - start)
    }
}

/// The high-level sampling methods.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named RNGs.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64 (the standard recommendation).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0u64..=5);
            assert!(w <= 5);
            let f = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(7);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}

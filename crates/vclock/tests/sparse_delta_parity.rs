//! Parity safety net for `vclock::sparse` and `vclock::delta` against the
//! dense `VectorClock` reference, at random widths 1..=128.
//!
//! Neither module is wired into the detectors yet; the planned clock
//! compaction work will adopt them, and these properties pin the exact
//! contract it will rely on: every sparse/delta operation must agree with
//! the dense lattice it compresses.

use proptest::prelude::*;
use vclock::{ClockDelta, DeltaDecoder, DeltaEncoder, SparseClock, VectorClock};

/// A random width in 1..=128 plus a dense clock of exactly that width,
/// sparse-friendly: roughly half the components are zero so the sparse
/// representation actually exercises its "absent = 0" path.
fn arb_wide_clock() -> impl Strategy<Value = VectorClock> {
    (1usize..=128, proptest::collection::vec(0u64..64, 128)).prop_map(|(w, raw)| {
        let components: Vec<u64> = raw[..w]
            .iter()
            .map(|&v| if v < 32 { 0 } else { v })
            .collect();
        VectorClock::from_components(components)
    })
}

/// Two clocks of one shared random width (binary-operation parity needs
/// equal widths, as the dense API does).
fn arb_clock_pair() -> impl Strategy<Value = (VectorClock, VectorClock)> {
    (
        1usize..=128,
        proptest::collection::vec(0u64..64, 128),
        proptest::collection::vec(0u64..64, 128),
    )
        .prop_map(|(w, ra, rb)| {
            let mk = |raw: &[u64]| {
                VectorClock::from_components(
                    raw[..w]
                        .iter()
                        .map(|&v| if v < 32 { 0 } else { v })
                        .collect(),
                )
            };
            (mk(&ra), mk(&rb))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sparse_round_trips_through_dense(a in arb_wide_clock()) {
        let s = SparseClock::from_dense(&a);
        prop_assert_eq!(s.to_dense(a.len()), a.clone());
        prop_assert_eq!(s.nnz(), a.components().iter().filter(|&&v| v != 0).count());
        for rank in 0..a.len() {
            prop_assert_eq!(s.get(rank), a.get(rank));
        }
    }

    #[test]
    fn sparse_merge_matches_dense_merge((a, b) in arb_clock_pair()) {
        let mut sa = SparseClock::from_dense(&a);
        sa.merge(&SparseClock::from_dense(&b));
        prop_assert_eq!(sa.to_dense(a.len()), a.merged(&b));
    }

    #[test]
    fn sparse_leq_matches_dense_leq((a, b) in arb_clock_pair()) {
        let (sa, sb) = (SparseClock::from_dense(&a), SparseClock::from_dense(&b));
        prop_assert_eq!(sa.leq(&sb), a.leq(&b));
        prop_assert_eq!(sb.leq(&sa), b.leq(&a));
    }

    #[test]
    fn sparse_relation_matches_dense_relation((a, b) in arb_clock_pair()) {
        let (sa, sb) = (SparseClock::from_dense(&a), SparseClock::from_dense(&b));
        prop_assert_eq!(sa.relation(&sb), a.relation(&b));
    }

    #[test]
    fn sparse_tick_matches_dense_tick(mut a in arb_wide_clock(), r in 0usize..128) {
        let rank = r % a.len();
        let mut s = SparseClock::from_dense(&a);
        let sparse_val = s.tick(rank);
        a.tick(rank);
        prop_assert_eq!(sparse_val, a.get(rank));
        prop_assert_eq!(s.to_dense(a.len()), a);
    }

    #[test]
    fn delta_between_then_apply_is_merge((a, b) in arb_clock_pair()) {
        // between(base, next) captures exactly the components where next
        // exceeds base; applying it to base lands on the lattice join.
        let d = ClockDelta::between(&a, &b);
        let mut applied = a.clone();
        d.apply(&mut applied);
        prop_assert_eq!(applied, a.merged(&b));
        prop_assert!(d.len() <= a.len());
    }

    #[test]
    fn delta_between_identical_clocks_is_empty(a in arb_wide_clock()) {
        prop_assert!(ClockDelta::between(&a, &a).is_empty());
        prop_assert_eq!(ClockDelta::between(&a, &a).wire_size(), 0);
    }

    #[test]
    fn encoder_decoder_round_trips_a_monotone_stream(
        seedc in arb_wide_clock(),
        steps in proptest::collection::vec((0usize..128, 1u64..5), 1..20),
    ) {
        // A monotone clock stream (each next dominates the last, as a
        // process's clock does): encode each state as a delta, decode on
        // the other side, and require exact dense parity at every step.
        let n = seedc.len();
        let mut enc = DeltaEncoder::new(n);
        let mut dec = DeltaDecoder::new(n);
        let mut current = VectorClock::zero(n);
        let mut stream = vec![seedc.clone()];
        for &(rank, amount) in &steps {
            let mut next = stream.last().unwrap().clone();
            for _ in 0..amount {
                next.tick(rank % n);
            }
            stream.push(next);
        }
        for state in &stream {
            current.merge(state);
            let delta = enc.encode(&current);
            prop_assert_eq!(delta.wire_size(), delta.len() * 12);
            prop_assert_eq!(dec.decode(&delta), &current);
        }
    }
}

//! Property-based tests for the clock lattice and for Mattern's theorem
//! (the paper's Lemma 1) on randomly generated message executions.

use proptest::prelude::*;
use vclock::{compare_clocks, max_clock, ClockRelation, MatrixClock, SparseClock, VectorClock};

const N: usize = 5;

fn arb_clock() -> impl Strategy<Value = VectorClock> {
    proptest::collection::vec(0u64..50, N).prop_map(VectorClock::from_components)
}

proptest! {
    #[test]
    fn merge_commutative(a in arb_clock(), b in arb_clock()) {
        prop_assert_eq!(a.merged(&b), b.merged(&a));
    }

    #[test]
    fn merge_associative(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
        prop_assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
    }

    #[test]
    fn merge_idempotent(a in arb_clock()) {
        prop_assert_eq!(a.merged(&a), a);
    }

    #[test]
    fn merge_is_upper_bound(a in arb_clock(), b in arb_clock()) {
        let m = a.merged(&b);
        prop_assert!(a.leq(&m));
        prop_assert!(b.leq(&m));
    }

    #[test]
    fn merge_is_least_upper_bound(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
        // Any common upper bound dominates the merge.
        let m = a.merged(&b);
        if a.leq(&c) && b.leq(&c) {
            prop_assert!(m.leq(&c));
        }
    }

    #[test]
    fn relation_antisymmetric(a in arb_clock(), b in arb_clock()) {
        match a.relation(&b) {
            ClockRelation::Before => prop_assert_eq!(b.relation(&a), ClockRelation::After),
            ClockRelation::After => prop_assert_eq!(b.relation(&a), ClockRelation::Before),
            ClockRelation::Equal => prop_assert_eq!(b.relation(&a), ClockRelation::Equal),
            ClockRelation::Concurrent => {
                prop_assert_eq!(b.relation(&a), ClockRelation::Concurrent)
            }
        }
    }

    #[test]
    fn tick_strictly_advances(mut a in arb_clock(), owner in 0usize..N) {
        let before = a.clone();
        a.tick(owner);
        prop_assert_eq!(before.relation(&a), ClockRelation::Before);
    }

    #[test]
    fn compare_clocks_consistent_with_relation(a in arb_clock(), b in arb_clock()) {
        let race = !compare_clocks(&a, &b) && !compare_clocks(&b, &a);
        prop_assert_eq!(race, a.concurrent_with(&b));
    }

    #[test]
    fn max_clock_dominates(a in arb_clock(), b in arb_clock()) {
        let m = max_clock(&a, &b);
        prop_assert!(compare_clocks(&a, &m) && compare_clocks(&b, &m));
    }

    #[test]
    fn sparse_dense_equivalence(a in arb_clock(), b in arb_clock()) {
        let sa = SparseClock::from_dense(&a);
        let sb = SparseClock::from_dense(&b);
        prop_assert_eq!(sa.relation(&sb), a.relation(&b));
        let mut sm = sa.clone();
        sm.merge(&sb);
        prop_assert_eq!(sm.to_dense(N), a.merged(&b));
    }
}

/// Scalar reference semantics for the chunked kernels, straight from the
/// definitions — the chunked/masked rewrites in `vclock::kernels` must be
/// observationally identical at every width.
mod scalar {
    pub fn leq(a: &[u64], b: &[u64]) -> bool {
        a.iter().zip(b).all(|(x, y)| x <= y)
    }

    pub fn merge(a: &[u64], b: &[u64]) -> Vec<u64> {
        a.iter().zip(b).map(|(x, y)| *x.max(y)).collect()
    }
}

const MAX_WIDTH: usize = 128;

proptest! {
    /// Chunked kernels vs scalar reference at arbitrary widths 1..=128.
    /// Component values are drawn from a tiny range so equal components —
    /// the inputs that expose masking slips — are common, and widths sweep
    /// across every chunk-remainder length.
    #[test]
    fn chunked_kernels_match_scalar(
        (width, raw_a, raw_b) in (
            1usize..=MAX_WIDTH,
            proptest::collection::vec(0u64..6, MAX_WIDTH),
            proptest::collection::vec(0u64..6, MAX_WIDTH),
        )
    ) {
        let a = VectorClock::from_components(raw_a[..width].to_vec());
        let b = VectorClock::from_components(raw_b[..width].to_vec());
        let le = scalar::leq(a.components(), b.components());
        let ge = scalar::leq(b.components(), a.components());
        prop_assert_eq!(a.leq(&b), le);
        prop_assert_eq!(b.leq(&a), ge);
        prop_assert_eq!(a.concurrent_with(&b), !le && !ge);
        let expected_relation = match (le, ge) {
            (true, true) => ClockRelation::Equal,
            (true, false) => ClockRelation::Before,
            (false, true) => ClockRelation::After,
            (false, false) => ClockRelation::Concurrent,
        };
        prop_assert_eq!(a.relation(&b), expected_relation);
        let merged = scalar::merge(a.components(), b.components());
        let mut m = a.clone();
        prop_assert_eq!(m.merge_dominated(&b), le);
        prop_assert_eq!(m.components(), &merged[..]);
        let mut m2 = a.clone();
        m2.merge(&b);
        prop_assert_eq!(m2.components(), &merged[..]);
    }

    /// All-equal and single-divergence inputs at every width: the one
    /// differing component must flip the verdict regardless of which chunk
    /// lane it lands in.
    #[test]
    fn single_divergence_flips_the_verdict(
        (width, pos_raw, base) in (1usize..=MAX_WIDTH, 0usize..MAX_WIDTH, 1u64..50)
    ) {
        let pos = pos_raw % width;
        let a = VectorClock::from_components(vec![base; width]);
        prop_assert_eq!(a.relation(&a), ClockRelation::Equal);
        prop_assert!(a.leq(&a) && !a.concurrent_with(&a));
        let mut raised = vec![base; width];
        raised[pos] += 1;
        let b = VectorClock::from_components(raised);
        prop_assert_eq!(a.relation(&b), ClockRelation::Before);
        prop_assert_eq!(b.relation(&a), ClockRelation::After);
        prop_assert!(a.leq(&b) && !b.leq(&a));
        let mut m = a.clone();
        prop_assert!(m.merge_dominated(&b), "raising one component dominates");
        prop_assert_eq!(m, b);
    }
}

/// A tiny execution generator: a list of (sender, receiver) message events.
/// Every process ticks before sending; receives merge then tick. We then
/// verify Mattern's theorem: clock comparability == happens-before
/// reachability in the event DAG.
#[derive(Debug, Clone)]
struct Execution {
    msgs: Vec<(usize, usize)>,
}

fn arb_execution() -> impl Strategy<Value = Execution> {
    proptest::collection::vec((0usize..N, 0usize..N), 1..30).prop_map(|raw| Execution {
        msgs: raw
            .into_iter()
            .map(|(s, r)| (s, if r == s { (r + 1) % N } else { r }))
            .collect(),
    })
}

proptest! {
    /// Lemma 1 (Mattern, Theorem 10): e < e' iff C(e) < C(e'), and
    /// e ∥ e' iff the clocks are concurrent. We replay the execution with
    /// matrix clocks and independently compute happens-before reachability.
    #[test]
    fn mattern_theorem_on_random_executions(exec in arb_execution()) {
        let mut clocks: Vec<MatrixClock> =
            (0..N).map(|i| MatrixClock::zero(i, N)).collect();

        // Event list: (process, clock snapshot, event index).
        // Send events and receive events both get snapshots.
        let mut events: Vec<(usize, VectorClock)> = Vec::new();
        // HB edges: program order per process + message edges (send→recv).
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut last_event_of: Vec<Option<usize>> = vec![None; N];

        for &(s, r) in &exec.msgs {
            // Send event at s.
            let send_clock = clocks[s].tick();
            let send_id = events.len();
            events.push((s, send_clock.clone()));
            if let Some(prev) = last_event_of[s] {
                edges.push((prev, send_id));
            }
            last_event_of[s] = Some(send_id);

            // Receive event at r.
            clocks[r].observe(s, &send_clock);
            let recv_clock = clocks[r].tick();
            let recv_id = events.len();
            events.push((r, recv_clock));
            if let Some(prev) = last_event_of[r] {
                edges.push((prev, recv_id));
            }
            last_event_of[r] = Some(recv_id);
            edges.push((send_id, recv_id));
        }

        // Transitive closure (small graphs).
        let m = events.len();
        let mut reach = vec![vec![false; m]; m];
        for &(a, b) in &edges {
            reach[a][b] = true;
        }
        for k in 0..m {
            for i in 0..m {
                if reach[i][k] {
                    let row_k = reach[k].clone();
                    for (j, r) in row_k.iter().enumerate() {
                        if *r {
                            reach[i][j] = true;
                        }
                    }
                }
            }
        }

        for i in 0..m {
            for j in 0..m {
                if i == j {
                    continue;
                }
                let hb = reach[i][j];
                let clock_before =
                    events[i].1.relation(&events[j].1) == ClockRelation::Before;
                prop_assert_eq!(
                    hb, clock_before,
                    "event {} vs {}: hb={} clock_before={} ({} vs {})",
                    i, j, hb, clock_before, events[i].1, events[j].1
                );
            }
        }
    }
}

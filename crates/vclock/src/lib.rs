//! Logical time for the coherent-dsm reproduction.
//!
//! This crate implements the clock machinery that the race-detection
//! algorithm of Butelle & Coti (IPPS 2011) is built on:
//!
//! * [`LamportClock`] — the scalar logical clock of Lamport 1978 (paper
//!   reference `[12]`), used for totally-ordered event stamping.
//! * [`VectorClock`] — the vector clock of Mattern 1988 (paper reference
//!   `[15]`), capturing the *partial* causal order of events. The paper's
//!   race criterion (Corollary 1) is "two clocks that cannot be ordered ⇒
//!   race", which is exactly [`VectorClock::relation`] returning
//!   [`ClockRelation::Concurrent`].
//! * [`MatrixClock`] — the per-process clock matrix `V_{P_i}` of §IV-B: each
//!   process keeps a local view of every other process's vector clock; the
//!   process's own row is the vector clock it ships with its messages.
//! * [`SparseClock`] — a map-based representation used by the §IV-C
//!   storage-overhead experiments (Charron-Bost shows the *worst case* needs
//!   `n` entries; sparse clocks help when few processes touch an area).
//!
//! [`delta`] adds delta-encoded clock updates (a §IV-C traffic
//! optimisation measured by the EXT-delta accounting).
//!
//! [`epoch`] provides the FastTrack-style fast path: an [`Epoch`] names one
//! event as a `(rank, count)` pair, and an [`AreaClock`] adaptively stores a
//! join of event clocks as `Bottom` → `Epoch` → `Vector`, collapsing the
//! happens-before test to one integer compare (and updates to two word
//! writes) while an area's accesses stay totally ordered — O(1) in the
//! common case versus the paper's O(n) compare, with demotion to the exact
//! dense join on genuine concurrency and re-promotion when an access
//! dominates again.
//!
//! The comparison and merge procedures printed in the paper (Algorithms 3
//! and 4) are provided verbatim in [`compare`], including the paper's
//! *literal* strict comparison (which differs from the standard vector-clock
//! partial order — see `compare::literal_less` for the discussion).
//!
//! [`kernels`] holds the chunked, branch-free inner loops (`leq`, `merge`,
//! fused `merge_dominated`, one-pass `dominance`) that every
//! [`VectorClock`] comparison and merge bottoms out in — shared by the
//! sequential detectors and the sharded pipeline's workers alike.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod delta;
pub mod epoch;
pub mod kernels;
pub mod lamport;
pub mod matrix;
pub mod sparse;
pub mod vector;

pub use compare::{compare_clocks, literal_less, max_clock};
pub use delta::{ClockDelta, DeltaDecoder, DeltaEncoder};
pub use epoch::{AreaClock, Epoch};
pub use lamport::LamportClock;
pub use matrix::MatrixClock;
pub use sparse::SparseClock;
pub use vector::{ClockRelation, VectorClock};

/// A process identifier (rank) in a system of `n` processes.
///
/// Ranks are dense indices `0..n`, matching the paper's `P0, P1, …`.
pub type Rank = usize;

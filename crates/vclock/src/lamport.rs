//! Scalar Lamport clocks (Lamport 1978, paper reference `[12]`).
//!
//! The paper uses Lamport's *happens-before* relation `→` as the definition
//! of causal order, and races are pairs of events with neither `e1 → e2` nor
//! `e2 → e1`. A scalar clock is consistent with `→` but cannot *characterise*
//! it (that needs vector clocks); we provide it for event stamping,
//! deterministic tie-breaking and the property tests that contrast the two.

use serde::{Deserialize, Serialize};

/// A scalar logical clock.
///
/// Maintains the two Lamport rules:
/// 1. before every local event, `tick()`;
/// 2. on message receipt carrying timestamp `t`, `observe(t)` then `tick()`
///    (combined in [`LamportClock::receive`]).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LamportClock(u64);

impl LamportClock {
    /// A clock at logical time zero (no events observed yet).
    pub const fn new() -> Self {
        LamportClock(0)
    }

    /// Current logical time.
    pub const fn time(&self) -> u64 {
        self.0
    }

    /// Advance for a local event; returns the new timestamp.
    pub fn tick(&mut self) -> u64 {
        self.0 += 1;
        self.0
    }

    /// Fold in a remote timestamp without advancing.
    pub fn observe(&mut self, remote: u64) {
        self.0 = self.0.max(remote);
    }

    /// Message-receive rule: `max(local, remote) + 1`; returns the new time.
    pub fn receive(&mut self, remote: u64) -> u64 {
        self.observe(remote);
        self.tick()
    }
}

impl std::fmt::Display for LamportClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(LamportClock::new().time(), 0);
    }

    #[test]
    fn tick_increments() {
        let mut c = LamportClock::new();
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
        assert_eq!(c.time(), 2);
    }

    #[test]
    fn receive_takes_max_plus_one() {
        let mut c = LamportClock::new();
        c.tick(); // 1
        assert_eq!(c.receive(10), 11);
        // A receive of an older timestamp still advances.
        assert_eq!(c.receive(3), 12);
    }

    #[test]
    fn observe_never_decreases() {
        let mut c = LamportClock::new();
        c.receive(5);
        let before = c.time();
        c.observe(2);
        assert_eq!(c.time(), before);
    }

    #[test]
    fn ordering_is_total() {
        let mut a = LamportClock::new();
        let mut b = LamportClock::new();
        a.tick();
        b.receive(a.time());
        assert!(a < b);
    }

    #[test]
    fn display_format() {
        let mut c = LamportClock::new();
        c.tick();
        assert_eq!(c.to_string(), "L1");
    }
}

//! Sparse vector clocks for the §IV-C storage-overhead study.
//!
//! §IV-C (citing Charron-Bost `[3]`): the size of vector clocks must be at
//! least `n` *in the worst case* — "the size of the clocks cannot be
//! reduced". That is a worst-case statement; when only a few processes ever
//! touch a given shared area, a map-based clock stores only the non-zero
//! components. [`SparseClock`] quantifies the gap between the dense lower
//! bound and what typical executions need (experiment SEC4C compares
//! dense vs sparse bytes as `n` grows).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::vector::{ClockRelation, VectorClock};
use crate::Rank;

/// A vector clock storing only non-zero components.
///
/// Semantically identical to a [`VectorClock`] of width `n` whose absent
/// components are zero.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SparseClock {
    entries: BTreeMap<Rank, u64>,
}

impl SparseClock {
    /// The empty (all-zero) clock.
    pub fn new() -> Self {
        SparseClock::default()
    }

    /// Build from a dense clock, dropping zero components.
    pub fn from_dense(dense: &VectorClock) -> Self {
        let entries = dense
            .components()
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0)
            .map(|(i, &v)| (i, v))
            .collect();
        SparseClock { entries }
    }

    /// Expand to a dense clock of width `n`.
    ///
    /// # Panics
    /// Panics if any stored rank is `>= n`.
    pub fn to_dense(&self, n: usize) -> VectorClock {
        let mut out = VectorClock::zero(n);
        for (&rank, &v) in &self.entries {
            assert!(rank < n, "rank {rank} out of width {n}");
            out.set(rank, v);
        }
        out
    }

    /// Component for `rank` (zero when absent).
    pub fn get(&self, rank: Rank) -> u64 {
        self.entries.get(&rank).copied().unwrap_or(0)
    }

    /// Increment `rank`'s component.
    pub fn tick(&mut self, rank: Rank) -> u64 {
        let e = self.entries.entry(rank).or_insert(0);
        *e += 1;
        *e
    }

    /// Component-wise max merge.
    pub fn merge(&mut self, other: &SparseClock) {
        for (&rank, &v) in &other.entries {
            let e = self.entries.entry(rank).or_insert(0);
            *e = (*e).max(v);
        }
    }

    /// `self ≤ other` under the causal order.
    pub fn leq(&self, other: &SparseClock) -> bool {
        self.entries.iter().all(|(&r, &v)| v <= other.get(r))
    }

    /// Causal relation (same semantics as [`VectorClock::relation`]).
    pub fn relation(&self, other: &SparseClock) -> ClockRelation {
        match (self.leq(other), other.leq(self)) {
            (true, true) => ClockRelation::Equal,
            (true, false) => ClockRelation::Before,
            (false, true) => ClockRelation::After,
            (false, false) => ClockRelation::Concurrent,
        }
    }

    /// Number of non-zero components.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Wire size with a (rank: u32, count: u64) pair encoding.
    pub fn sparse_wire_size(&self) -> usize {
        self.entries.len() * (std::mem::size_of::<u32>() + std::mem::size_of::<u64>())
    }
}

impl std::fmt::Display for SparseClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, (r, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "P{r}:{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_dense_sparse() {
        let dense = VectorClock::from_components(vec![0, 3, 0, 7]);
        let sparse = SparseClock::from_dense(&dense);
        assert_eq!(sparse.nnz(), 2);
        assert_eq!(sparse.to_dense(4), dense);
    }

    #[test]
    fn relations_agree_with_dense() {
        let a = VectorClock::from_components(vec![1, 0, 2]);
        let b = VectorClock::from_components(vec![0, 1, 2]);
        let sa = SparseClock::from_dense(&a);
        let sb = SparseClock::from_dense(&b);
        assert_eq!(sa.relation(&sb), a.relation(&b));
    }

    #[test]
    fn merge_matches_dense_merge() {
        let a = VectorClock::from_components(vec![1, 0, 5]);
        let b = VectorClock::from_components(vec![0, 2, 3]);
        let mut sa = SparseClock::from_dense(&a);
        sa.merge(&SparseClock::from_dense(&b));
        assert_eq!(sa.to_dense(3), a.merged(&b));
    }

    #[test]
    fn sparse_wins_when_few_writers() {
        // 64-process system, 2 active writers: the §IV-C comparison.
        let mut dense = VectorClock::zero(64);
        dense.set(3, 9);
        dense.set(17, 2);
        let sparse = SparseClock::from_dense(&dense);
        assert!(sparse.sparse_wire_size() < dense.dense_wire_size());
        assert_eq!(sparse.sparse_wire_size(), 2 * 12);
        assert_eq!(dense.dense_wire_size(), 64 * 8);
    }

    #[test]
    fn tick_and_get() {
        let mut s = SparseClock::new();
        assert_eq!(s.get(5), 0);
        assert_eq!(s.tick(5), 1);
        assert_eq!(s.tick(5), 2);
        assert_eq!(s.get(5), 2);
    }

    #[test]
    fn empty_clock_precedes_everything() {
        let empty = SparseClock::new();
        let mut s = SparseClock::new();
        s.tick(0);
        assert_eq!(empty.relation(&s), ClockRelation::Before);
        assert_eq!(empty.relation(&SparseClock::new()), ClockRelation::Equal);
    }
}

//! Chunked, branch-free comparison and merge kernels over raw `u64`
//! component slices — the inner loops every clock operation bottoms out in.
//!
//! The naive per-component loops (`all(a <= b)`, early-exit concurrency
//! scans) are branchy: for the small-to-medium widths the detectors run at
//! (`n` = 4…128 processes) the branch mispredictions and the per-element
//! bounds checks cost more than the comparisons themselves, and the
//! early-exit structure blocks autovectorisation outright. These kernels
//! restructure every operation the same way:
//!
//! * the slice is walked in fixed-width chunks of [`LANES`] components via
//!   `chunks_exact`, which gives the compiler a known trip count (no bounds
//!   checks, unrollable, autovectorisable);
//! * *within* a chunk there are **no data-dependent branches**: comparison
//!   outcomes accumulate into an integer mask (`acc |= (a > b) as u64`),
//!   which lowers to SIMD compare-and-or on any vector ISA;
//! * *between* chunks a single accumulated test may exit early, so
//!   asymptotics for wide clocks are preserved without poisoning the inner
//!   loop.
//!
//! [`crate::VectorClock`] delegates `leq` / `merge` / `merge_dominated` /
//! `relation` / `concurrent_with` here, so the sequential detector, the
//! full-vector-clock reference, and the sharded pipeline's workers all share
//! one set of hot loops. The scalar-vs-chunked parity property tests in
//! `tests/proptests.rs` pin the semantics across widths 1..128, including
//! the all-equal and single-divergence inputs where masking bugs would hide.

/// Components processed per branch-free inner block. Eight `u64`s fill one
/// 64-byte cache line and map onto two AVX2 (or four NEON) vector compares.
pub const LANES: usize = 8;

/// True iff `a[i] <= b[i]` for every `i` (the standard vector-clock `≤`).
///
/// # Panics
/// Debug-asserts equal lengths; release builds truncate to the shorter
/// slice like `zip` (callers always pass equal widths).
#[inline]
pub fn leq(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut az = a.chunks_exact(LANES);
    let mut bz = b.chunks_exact(LANES);
    for (ca, cb) in az.by_ref().zip(bz.by_ref()) {
        let mut exceeds = 0u64;
        for i in 0..LANES {
            exceeds |= (ca[i] > cb[i]) as u64;
        }
        if exceeds != 0 {
            return false;
        }
    }
    let mut exceeds = 0u64;
    for (x, y) in az.remainder().iter().zip(bz.remainder()) {
        exceeds |= (x > y) as u64;
    }
    exceeds == 0
}

/// Component-wise maximum, in place: `a[i] = max(a[i], b[i])` (Algorithm 4).
#[inline]
pub fn merge(a: &mut [u64], b: &[u64]) {
    debug_assert_eq!(a.len(), b.len());
    let mut az = a.chunks_exact_mut(LANES);
    let mut bz = b.chunks_exact(LANES);
    for (ca, cb) in az.by_ref().zip(bz.by_ref()) {
        for i in 0..LANES {
            ca[i] = if cb[i] > ca[i] { cb[i] } else { ca[i] };
        }
    }
    for (x, y) in az.into_remainder().iter_mut().zip(bz.remainder()) {
        *x = (*x).max(*y);
    }
}

/// Fused merge + domination test: merges `b` into `a` and returns whether
/// `a <= b` held *before* the merge (i.e. the merged result equals `b`).
/// One pass — the area-clock re-promotion test costs nothing beyond the
/// merge itself.
#[inline]
pub fn merge_dominated(a: &mut [u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut exceeded = 0u64;
    let mut az = a.chunks_exact_mut(LANES);
    let mut bz = b.chunks_exact(LANES);
    for (ca, cb) in az.by_ref().zip(bz.by_ref()) {
        for i in 0..LANES {
            exceeded |= (ca[i] > cb[i]) as u64;
            ca[i] = if cb[i] > ca[i] { cb[i] } else { ca[i] };
        }
    }
    for (x, y) in az.into_remainder().iter_mut().zip(bz.remainder()) {
        exceeded |= (*x > *y) as u64;
        *x = (*x).max(*y);
    }
    exceeded == 0
}

/// Both dominance directions in one pass: `(a_exceeds, b_exceeds)` where
/// `a_exceeds` is true iff some `a[i] > b[i]` and `b_exceeds` iff some
/// `b[i] > a[i]`.
///
/// The four `(bool, bool)` outcomes are exactly the four causal relations:
/// `(false, false)` equal, `(false, true)` before, `(true, false)` after,
/// `(true, true)` concurrent. Exits early once both directions are
/// witnessed (the concurrent verdict cannot change after that).
#[inline]
pub fn dominance(a: &[u64], b: &[u64]) -> (bool, bool) {
    debug_assert_eq!(a.len(), b.len());
    let mut a_gt = 0u64;
    let mut b_gt = 0u64;
    let mut az = a.chunks_exact(LANES);
    let mut bz = b.chunks_exact(LANES);
    for (ca, cb) in az.by_ref().zip(bz.by_ref()) {
        for i in 0..LANES {
            a_gt |= (ca[i] > cb[i]) as u64;
            b_gt |= (cb[i] > ca[i]) as u64;
        }
        if a_gt & b_gt != 0 {
            return (true, true);
        }
    }
    for (x, y) in az.remainder().iter().zip(bz.remainder()) {
        a_gt |= (x > y) as u64;
        b_gt |= (y > x) as u64;
    }
    (a_gt != 0, b_gt != 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar reference semantics, straight from the definitions.
    fn scalar_leq(a: &[u64], b: &[u64]) -> bool {
        a.iter().zip(b).all(|(x, y)| x <= y)
    }

    fn scalar_merge(a: &[u64], b: &[u64]) -> Vec<u64> {
        a.iter().zip(b).map(|(x, y)| *x.max(y)).collect()
    }

    #[test]
    fn kernels_match_scalar_on_crafted_widths() {
        // Exercise every remainder length 0..LANES and multi-chunk widths.
        for n in (0..=2 * LANES + 3).chain([31, 64, 127, 128]) {
            let a: Vec<u64> = (0..n as u64).map(|i| i * 7 % 13).collect();
            let mut b: Vec<u64> = (0..n as u64).map(|i| i * 5 % 11).collect();
            assert_eq!(leq(&a, &b), scalar_leq(&a, &b), "leq at n={n}");
            assert_eq!(
                dominance(&a, &b),
                (!scalar_leq(&a, &b), !scalar_leq(&b, &a)),
                "dominance at n={n}"
            );
            let expect = scalar_merge(&a, &b);
            let dominated = scalar_leq(&b, &a);
            let was_dominated = merge_dominated(&mut b, &a);
            assert_eq!(b, expect, "merge at n={n}");
            assert_eq!(was_dominated, dominated, "merge_dominated at n={n}");
        }
    }

    #[test]
    fn single_divergence_in_every_lane_position() {
        // A masking slip that drops one lane shows up only when the single
        // differing component lands exactly in that lane.
        for n in [1usize, LANES - 1, LANES, LANES + 1, 3 * LANES] {
            for pos in 0..n {
                let a = vec![4u64; n];
                let mut b = vec![4u64; n];
                b[pos] = 5;
                assert!(leq(&a, &b), "n={n} pos={pos}");
                assert!(!leq(&b, &a), "n={n} pos={pos}");
                assert_eq!(dominance(&a, &b), (false, true), "n={n} pos={pos}");
                assert_eq!(dominance(&b, &a), (true, false), "n={n} pos={pos}");
                let mut m = a.clone();
                assert!(merge_dominated(&mut m, &b), "n={n} pos={pos}");
                assert_eq!(m, b);
            }
        }
    }

    #[test]
    fn all_equal_is_mutually_leq() {
        for n in [0usize, 1, LANES, 2 * LANES + 5] {
            let a = vec![9u64; n];
            assert!(leq(&a, &a));
            assert_eq!(dominance(&a, &a), (false, false));
            let mut m = a.clone();
            assert!(merge_dominated(&mut m, &a));
            assert_eq!(m, a);
        }
    }

    #[test]
    fn merge_in_place_matches_out_of_place() {
        let a: Vec<u64> = (0..37).map(|i| (i * 31) % 17).collect();
        let b: Vec<u64> = (0..37).map(|i| (i * 29) % 19).collect();
        let mut m = a.clone();
        merge(&mut m, &b);
        assert_eq!(m, scalar_merge(&a, &b));
    }
}

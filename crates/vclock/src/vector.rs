//! Vector clocks (Mattern 1988, paper reference `[15]`).
//!
//! A [`VectorClock`] over `n` processes characterises the happens-before
//! relation exactly (the paper's Lemma 1, citing Mattern's Theorem 10):
//! `e < e'` iff `C(e) < C(e')`, and `e ∥ e'` iff the clocks are incomparable.
//! The race criterion (Corollary 1) is therefore "the two clocks are
//! [`ClockRelation::Concurrent`]".

use serde::{Deserialize, Serialize};

use crate::kernels;
use crate::Rank;

/// Outcome of comparing two vector clocks under the causal partial order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClockRelation {
    /// Identical component-wise.
    Equal,
    /// `self` happens-before `other` (`self ≤ other`, not equal).
    Before,
    /// `other` happens-before `self`.
    After,
    /// Neither precedes the other — the paper's `e1 × e2` race situation
    /// when the events conflict.
    Concurrent,
}

impl ClockRelation {
    /// True when the relation establishes a causal order (either direction)
    /// or equality — i.e. *not* a race even if the accesses conflict.
    pub fn is_ordered(self) -> bool {
        !matches!(self, ClockRelation::Concurrent)
    }
}

/// A fixed-width vector clock over `n` processes.
///
/// Components are `u64` event counts; component `i` is the number of events
/// of process `i` known to have causally preceded the clock's owner state.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VectorClock {
    components: Vec<u64>,
}

impl VectorClock {
    /// The zero clock for a system of `n` processes (paper: "initially set
    /// to zero").
    pub fn zero(n: usize) -> Self {
        VectorClock {
            components: vec![0; n],
        }
    }

    /// Build from explicit components (used by tests mirroring the paper's
    /// figures, e.g. `110` in Fig 5a).
    pub fn from_components(components: Vec<u64>) -> Self {
        VectorClock { components }
    }

    /// Number of processes this clock spans.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True for a zero-width clock (degenerate, but kept total).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Component for process `rank`.
    ///
    /// # Panics
    /// Panics when `rank >= self.len()`; clocks in one run always share `n`.
    #[inline]
    pub fn get(&self, rank: Rank) -> u64 {
        self.components[rank]
    }

    /// Set a single component (used by the matrix clock and by tests).
    pub fn set(&mut self, rank: Rank, value: u64) {
        self.components[rank] = value;
    }

    /// The paper's `update_local_clock`: increment the owner's component
    /// before it performs an event. Returns the new component value.
    pub fn tick(&mut self, owner: Rank) -> u64 {
        self.components[owner] += 1;
        self.components[owner]
    }

    /// Reset every component to zero in place (scratch-clock reuse on the
    /// detector hot path — avoids reallocating a zero clock per operation).
    pub fn clear(&mut self) {
        self.components.fill(0);
    }

    /// True when every component is zero.
    pub fn is_zero(&self) -> bool {
        self.components.iter().all(|&c| c == 0)
    }

    /// Algorithm 4 (`max_clock`): component-wise maximum, in place.
    ///
    /// # Panics
    /// Panics if the clocks have different widths.
    pub fn merge(&mut self, other: &VectorClock) {
        assert_eq!(
            self.len(),
            other.len(),
            "merging clocks of different widths ({} vs {})",
            self.len(),
            other.len()
        );
        kernels::merge(&mut self.components, &other.components);
    }

    /// Algorithm 4 returning a fresh clock (`V' = max(V_i, V_j)`).
    pub fn merged(&self, other: &VectorClock) -> VectorClock {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// Merge `other` in (Algorithm 4) and report whether `self ≤ other`
    /// held *before* the merge — i.e. whether `other` dominated and the
    /// result equals `other`. One pass, for the area-clock re-promotion
    /// test fused with the update.
    ///
    /// # Panics
    /// Panics if the clocks have different widths.
    #[inline]
    pub fn merge_dominated(&mut self, other: &VectorClock) -> bool {
        assert_eq!(
            self.len(),
            other.len(),
            "merging clocks of different widths ({} vs {})",
            self.len(),
            other.len()
        );
        kernels::merge_dominated(&mut self.components, &other.components)
    }

    /// Standard vector-clock comparison: `self ≤ other` iff every component
    /// is `≤`.
    #[inline]
    pub fn leq(&self, other: &VectorClock) -> bool {
        kernels::leq(&self.components, &other.components)
    }

    /// Causal relation between two clocks. One chunked pass computing both
    /// dominance directions (see [`kernels::dominance`]), not two `leq`
    /// sweeps.
    pub fn relation(&self, other: &VectorClock) -> ClockRelation {
        match kernels::dominance(&self.components, &other.components) {
            (false, false) => ClockRelation::Equal,
            (false, true) => ClockRelation::Before,
            (true, false) => ClockRelation::After,
            (true, true) => ClockRelation::Concurrent,
        }
    }

    /// Corollary 1 of the paper: no ordering can be determined between the
    /// two clocks. A pair of *conflicting* accesses with concurrent clocks
    /// is a race condition (`e1 × e2`).
    ///
    /// Single chunked pass accumulating both dominance directions as
    /// branch-free masks, exiting between chunks once both have been seen
    /// (detector antichain scans call this per recorded access).
    #[inline]
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        kernels::dominance(&self.components, &other.components) == (true, true)
    }

    /// Raw component view.
    pub fn components(&self) -> &[u64] {
        &self.components
    }

    /// Sum of all components — a cheap progress measure used by monotonicity
    /// assertions in tests.
    pub fn total(&self) -> u64 {
        self.components.iter().sum()
    }

    /// Number of bytes this clock occupies when shipped on the wire with the
    /// fixed dense encoding (`n` × 8 bytes). §IV-C: this cannot shrink below
    /// `n` components in the worst case (Charron-Bost).
    pub fn dense_wire_size(&self) -> usize {
        self.components.len() * std::mem::size_of::<u64>()
    }
}

impl PartialOrd for VectorClock {
    /// The causal partial order. `None` means concurrent.
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        match self.relation(other) {
            ClockRelation::Equal => Some(std::cmp::Ordering::Equal),
            ClockRelation::Before => Some(std::cmp::Ordering::Less),
            ClockRelation::After => Some(std::cmp::Ordering::Greater),
            ClockRelation::Concurrent => None,
        }
    }
}

impl std::fmt::Display for VectorClock {
    /// Paper-style compact rendering: `110` for `[1,1,0]` when every
    /// component is a single digit, otherwise `[1,12,0]`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.components.iter().all(|&c| c < 10) {
            for c in &self.components {
                write!(f, "{c}")?;
            }
            Ok(())
        } else {
            write!(f, "[")?;
            for (i, c) in self.components.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{c}")?;
            }
            write!(f, "]")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(v: &[u64]) -> VectorClock {
        VectorClock::from_components(v.to_vec())
    }

    #[test]
    fn zero_is_equal_to_zero() {
        assert_eq!(
            VectorClock::zero(3).relation(&VectorClock::zero(3)),
            ClockRelation::Equal
        );
    }

    #[test]
    fn tick_only_touches_owner() {
        let mut c = VectorClock::zero(3);
        c.tick(1);
        assert_eq!(c.components(), &[0, 1, 0]);
    }

    #[test]
    fn merge_is_componentwise_max() {
        let mut a = vc(&[1, 5, 0]);
        a.merge(&vc(&[3, 2, 0]));
        assert_eq!(a.components(), &[3, 5, 0]);
    }

    #[test]
    fn fig5a_clocks_are_concurrent() {
        // Paper Fig 5a: P1 receives m1 with clock 100 → local 110, then m2
        // with clock 001; 110 × 001 is the detected race.
        let after_m1 = vc(&[1, 1, 0]);
        let m2 = vc(&[0, 0, 1]);
        assert!(after_m1.concurrent_with(&m2));
        assert_eq!(after_m1.relation(&m2), ClockRelation::Concurrent);
    }

    #[test]
    fn fig5b_chain_is_ordered() {
        // Fig 5b: the get(010) … m3(132) chain is causally ordered.
        let get1 = vc(&[0, 1, 0]);
        let m3 = vc(&[1, 3, 2]);
        assert_eq!(get1.relation(&m3), ClockRelation::Before);
        assert!(!get1.concurrent_with(&m3));
    }

    #[test]
    fn fig5c_m1_and_m3_concurrent() {
        // Fig 5c: m1 carries 1000 (from P0), m3 carries 2020; P0's component
        // of m3's clock is 2 > 1 … wait: in the figure m1(1000) and m3(2020)
        // are concurrent because m3's chain never saw P0's event.
        let m1 = vc(&[1, 0, 0, 0]);
        let m3 = vc(&[2, 0, 2, 0]);
        // m1 ≤ m3 would need 1 ≤ 2 (yes) on P0 … these are NOT concurrent
        // as raw clocks; concurrency in the figure is between the *events*
        // as seen at P3: the write of m1's data (clock 1000 where component
        // 0 counts P0 events unknown to the m3 chain). The figure's X mark
        // compares 1100-era state with 2021: we model the exact scenario in
        // the simulator tests; here we just sanity-check an incomparable pair
        // from that execution.
        let p1_after_m1 = vc(&[1, 1, 0, 0]);
        let p3_after_m3 = vc(&[2, 0, 2, 1]);
        assert!(p1_after_m1.concurrent_with(&p3_after_m3));
        let _ = (m1, m3);
    }

    #[test]
    fn relation_cases() {
        assert_eq!(vc(&[1, 0]).relation(&vc(&[1, 1])), ClockRelation::Before);
        assert_eq!(vc(&[1, 1]).relation(&vc(&[1, 0])), ClockRelation::After);
        assert_eq!(
            vc(&[1, 0]).relation(&vc(&[0, 1])),
            ClockRelation::Concurrent
        );
        assert_eq!(vc(&[2, 2]).relation(&vc(&[2, 2])), ClockRelation::Equal);
    }

    #[test]
    fn partial_ord_agrees_with_relation() {
        use std::cmp::Ordering;
        assert_eq!(vc(&[1, 0]).partial_cmp(&vc(&[1, 1])), Some(Ordering::Less));
        assert_eq!(vc(&[0, 1]).partial_cmp(&vc(&[1, 0])), None);
    }

    #[test]
    fn display_compact_and_wide() {
        assert_eq!(vc(&[1, 1, 0]).to_string(), "110");
        assert_eq!(vc(&[1, 12, 0]).to_string(), "[1,12,0]");
    }

    #[test]
    fn dense_wire_size_is_linear_in_n() {
        for n in [1usize, 2, 8, 64] {
            assert_eq!(VectorClock::zero(n).dense_wire_size(), n * 8);
        }
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn merge_width_mismatch_panics() {
        let mut a = VectorClock::zero(2);
        a.merge(&VectorClock::zero(3));
    }

    #[test]
    fn components_roundtrip() {
        let c = vc(&[3, 1, 4]);
        let back = VectorClock::from_components(c.components().to_vec());
        assert_eq!(c, back);
    }
}

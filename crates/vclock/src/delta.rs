//! Delta encoding of clock updates — a §IV-C communication optimisation.
//!
//! §IV-C concludes the clock *width* cannot shrink below `n`, but the
//! *update traffic* can: successive clock writes to the same area differ in
//! few components (typically only the writer's own). A [`ClockDelta`]
//! carries just the changed `(rank, value)` pairs relative to a base the
//! receiver already holds; applying a delta is a component-wise max, so
//! deltas tolerate loss-free reordering exactly like full clocks. The
//! EXT-delta accounting compares full vs delta bytes on the protocol's
//! update stream.

use serde::{Deserialize, Serialize};

use crate::vector::VectorClock;
use crate::Rank;

/// The changed components between two clocks.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ClockDelta {
    changes: Vec<(Rank, u64)>,
}

impl ClockDelta {
    /// Components of `next` that exceed `base` (merge semantics: only
    /// increases matter).
    ///
    /// # Panics
    /// Panics if the clocks have different widths.
    pub fn between(base: &VectorClock, next: &VectorClock) -> Self {
        assert_eq!(base.len(), next.len(), "width mismatch");
        let changes = next
            .components()
            .iter()
            .enumerate()
            .filter(|&(i, &v)| v > base.get(i))
            .map(|(i, &v)| (i, v))
            .collect();
        ClockDelta { changes }
    }

    /// Apply to a clock (component-wise max with the carried values).
    pub fn apply(&self, clock: &mut VectorClock) {
        for &(rank, v) in &self.changes {
            if clock.get(rank) < v {
                clock.set(rank, v);
            }
        }
    }

    /// Number of changed components.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Wire size with a `(u32 rank, u64 value)` pair encoding.
    pub fn wire_size(&self) -> usize {
        self.changes.len() * 12
    }
}

/// Stateful per-channel delta encoder: remembers the last clock shipped to
/// a peer and emits only the difference.
#[derive(Debug, Clone)]
pub struct DeltaEncoder {
    last_sent: VectorClock,
}

impl DeltaEncoder {
    /// A fresh encoder for a system of `n` processes (base = zero clock,
    /// which every receiver starts from).
    pub fn new(n: usize) -> Self {
        DeltaEncoder {
            last_sent: VectorClock::zero(n),
        }
    }

    /// Encode `clock` against the last transmission and advance the base.
    pub fn encode(&mut self, clock: &VectorClock) -> ClockDelta {
        let delta = ClockDelta::between(&self.last_sent, clock);
        self.last_sent.merge(clock);
        delta
    }

    /// Bytes a full dense transmission would have cost.
    pub fn dense_cost(&self) -> usize {
        self.last_sent.dense_wire_size()
    }
}

/// Stateful decoder: reconstructs the sender's clock stream.
#[derive(Debug, Clone)]
pub struct DeltaDecoder {
    current: VectorClock,
}

impl DeltaDecoder {
    /// A decoder starting from the zero clock.
    pub fn new(n: usize) -> Self {
        DeltaDecoder {
            current: VectorClock::zero(n),
        }
    }

    /// Apply a delta; returns the reconstructed clock.
    pub fn decode(&mut self, delta: &ClockDelta) -> &VectorClock {
        delta.apply(&mut self.current);
        &self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(v: &[u64]) -> VectorClock {
        VectorClock::from_components(v.to_vec())
    }

    #[test]
    fn delta_captures_only_increases() {
        let d = ClockDelta::between(&vc(&[1, 2, 3]), &vc(&[1, 5, 3]));
        assert_eq!(d.len(), 1);
        let mut c = vc(&[1, 2, 3]);
        d.apply(&mut c);
        assert_eq!(c, vc(&[1, 5, 3]));
    }

    #[test]
    fn empty_delta_for_equal_clocks() {
        let d = ClockDelta::between(&vc(&[4, 4]), &vc(&[4, 4]));
        assert!(d.is_empty());
        assert_eq!(d.wire_size(), 0);
    }

    #[test]
    fn decreases_are_ignored_merge_semantics() {
        // A "next" clock lower in some component (stale message) produces
        // no change for it, and applying never decreases.
        let d = ClockDelta::between(&vc(&[5, 0]), &vc(&[3, 1]));
        assert_eq!(d.len(), 1);
        let mut c = vc(&[5, 0]);
        d.apply(&mut c);
        assert_eq!(c, vc(&[5, 1]));
    }

    #[test]
    fn encoder_decoder_roundtrip_stream() {
        let n = 8;
        let mut enc = DeltaEncoder::new(n);
        let mut dec = DeltaDecoder::new(n);
        let mut truth = VectorClock::zero(n);
        let mut delta_bytes = 0usize;
        let mut dense_bytes = 0usize;
        for step in 1..=20u64 {
            // The "sender" ticks its own component and sometimes learns of
            // others.
            truth.tick(0);
            if step % 3 == 0 {
                truth.set(usize::try_from(step % 8).unwrap(), step);
            }
            let d = enc.encode(&truth);
            delta_bytes += d.wire_size();
            dense_bytes += truth.dense_wire_size();
            let got = dec.decode(&d);
            assert!(
                truth.leq(got) && got.leq(&truth),
                "stream reconstructs exactly"
            );
        }
        assert!(
            delta_bytes < dense_bytes / 2,
            "deltas beat dense on a typical stream ({delta_bytes} vs {dense_bytes})"
        );
    }

    #[test]
    fn reordering_tolerance() {
        // Deltas are merges: applying out of order converges to the same
        // clock (the FIFO channels make this moot in the protocol, but the
        // property is what makes deltas safe at all).
        let base = vc(&[0, 0, 0]);
        let d1 = ClockDelta::between(&base, &vc(&[1, 0, 0]));
        let d2 = ClockDelta::between(&vc(&[1, 0, 0]), &vc(&[2, 1, 0]));
        let mut in_order = base.clone();
        d1.apply(&mut in_order);
        d2.apply(&mut in_order);
        let mut reordered = base;
        d2.apply(&mut reordered);
        d1.apply(&mut reordered);
        assert_eq!(in_order, reordered);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        ClockDelta::between(&vc(&[0]), &vc(&[0, 0]));
    }
}

//! Epochs and adaptive area clocks — the FastTrack-style fast path.
//!
//! The paper's detector compares full `O(n)` vector clocks on every access.
//! In the overwhelmingly common case, however, the accesses recorded on an
//! area are *totally ordered*: the join of their clocks equals the clock of
//! the **single most recent access**, an event `e = (rank, count)`. For an
//! event clock the happens-before test collapses to one integer compare
//! (Mattern's characterisation, the paper's Lemma 1):
//!
//! ```text
//!   C(e) ≤ C'  ⟺  C'[rank] ≥ count
//! ```
//!
//! [`AreaClock`] exploits this adaptively, exactly as FastTrack (Flanagan &
//! Freund, PLDI 2009) does for its write clocks:
//!
//! | state | represents | `leq` cost | `record` cost |
//! |---|---|---|---|
//! | `Bottom` | the zero clock (untouched) | O(1) | O(1) |
//! | `Epoch`  | join == one event's clock  | O(1) | O(1) while dominated |
//! | `Vector` | join of concurrent events  | O(n) | O(n) |
//!
//! A `record` whose clock dominates the current join **promotes** (back) to
//! `Epoch`; one that is concurrent with it **demotes** to `Vector`. The
//! represented value is always exactly the join of every recorded clock, so
//! substituting `AreaClock` for a plain [`VectorClock`] join is
//! report-invisible — only faster.

use crate::vector::VectorClock;
use crate::Rank;

/// One event: process `rank`'s `count`-th tick.
///
/// For the clock `C(e)` of such an event and any clock `C'` in the same
/// execution, `C(e) ≤ C'` iff `C'[rank] ≥ count` — the O(1) compare this
/// whole module exists for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Epoch {
    /// The event's process.
    pub rank: Rank,
    /// The process's clock component at the event (`C(e)[rank]`).
    pub count: u64,
}

impl Epoch {
    /// The epoch of the event whose clock snapshot is `clock`, performed by
    /// `rank`.
    pub fn of(rank: Rank, clock: &VectorClock) -> Epoch {
        Epoch {
            rank,
            count: clock.get(rank),
        }
    }

    /// `C(e) ≤ c` in one integer compare.
    #[inline]
    pub fn leq(&self, c: &VectorClock) -> bool {
        self.count <= c.get(self.rank)
    }
}

impl std::fmt::Display for Epoch {
    /// FastTrack's `c@t` rendering.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.count, self.rank)
    }
}

/// The join of a set of event clocks, represented adaptively (see the
/// module docs for the state machine).
///
/// The `Epoch` state stores only the 16-byte `(rank, count)` pair — not the
/// event's full clock. The *owner* of an `AreaClock` (the detector's area
/// history, which already retains every live access's clock snapshot in its
/// antichains) supplies the full clock through a resolver closure on the
/// rare paths that need it (demotion, merging). This keeps the hot-path
/// update completely free of reference-count traffic.
#[derive(Debug, Clone, Default)]
pub enum AreaClock {
    /// No events recorded: the zero clock, which precedes everything.
    #[default]
    Bottom,
    /// The join equals this one event's clock.
    Epoch(Epoch),
    /// Concurrent events have been recorded: the general component-wise
    /// join, updated in place.
    Vector(VectorClock),
}

impl AreaClock {
    /// The empty join.
    pub fn bottom() -> Self {
        AreaClock::Bottom
    }

    /// True while the fast path applies.
    pub fn is_epoch(&self) -> bool {
        matches!(self, AreaClock::Bottom | AreaClock::Epoch(_))
    }

    /// `join ≤ c` — O(1) in `Bottom`/`Epoch` states, O(n) in `Vector`.
    ///
    /// Since every recorded clock is ≤ the join, `leq` returning true
    /// proves *all* recorded events happen-before `c`: the caller may skip
    /// any per-event race scan.
    #[inline]
    pub fn leq(&self, c: &VectorClock) -> bool {
        match self {
            AreaClock::Bottom => true,
            AreaClock::Epoch(epoch) => epoch.leq(c),
            AreaClock::Vector(v) => v.leq(c),
        }
    }

    /// Record the event `(rank, clock)` into the join.
    ///
    /// O(1) when the join is dominated by the new clock (promotion to
    /// `Epoch`, the common totally-ordered case) — no clones, no
    /// refcounts, two words written. O(n) when the new clock is concurrent
    /// with the join: the state demotes to `Vector`, and `resolve` is
    /// called (exactly once, with the demoted epoch) to obtain that
    /// event's full clock for the join.
    #[inline]
    pub fn record(
        &mut self,
        rank: Rank,
        clock: &VectorClock,
        resolve: impl FnOnce(Epoch) -> VectorClock,
    ) {
        match self {
            // The new event dominates everything recorded so far: the join
            // IS its clock.
            AreaClock::Bottom => *self = AreaClock::Epoch(Epoch::of(rank, clock)),
            AreaClock::Epoch(e) if e.leq(clock) => {
                *self = AreaClock::Epoch(Epoch::of(rank, clock));
            }
            // Concurrent with the epoch event: demote to the full join.
            AreaClock::Epoch(e) => {
                let mut v = resolve(*e);
                v.merge(clock);
                *self = AreaClock::Vector(v);
            }
            // Dense state: one fused pass merges and tests domination, so
            // staying demoted costs exactly one O(n) sweep (the same as the
            // naive merge) and re-promotion is detected for free.
            AreaClock::Vector(v) => {
                if v.merge_dominated(clock) {
                    *self = AreaClock::Epoch(Epoch::of(rank, clock));
                }
            }
        }
    }

    /// Merge the join into `dst` (Algorithm 4 applied to the represented
    /// value). `Bottom` merges nothing; the `Epoch` state borrows its full
    /// clock from `resolve`.
    pub fn merge_into<'a>(
        &'a self,
        dst: &mut VectorClock,
        resolve: impl FnOnce(Epoch) -> &'a VectorClock,
    ) {
        match self {
            AreaClock::Bottom => {}
            AreaClock::Epoch(e) => dst.merge(resolve(*e)),
            AreaClock::Vector(v) => dst.merge(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy event log standing in for the detector's antichains: maps an
    /// epoch back to the full clock of the event it names.
    #[derive(Default)]
    struct Log(Vec<(Rank, VectorClock)>);

    impl Log {
        fn record(&mut self, area: &mut AreaClock, rank: Rank, v: &[u64]) {
            let clock = VectorClock::from_components(v.to_vec());
            area.record(rank, &clock, |e| self.resolve(e).clone());
            self.0.push((rank, clock));
        }

        fn resolve(&self, e: Epoch) -> &VectorClock {
            self.0
                .iter()
                .rev()
                .find(|(r, c)| *r == e.rank && c.get(e.rank) == e.count)
                .map(|(_, c)| c)
                .expect("epoch event must be in the log")
        }

        fn to_vector(&self, area: &AreaClock, n: usize) -> VectorClock {
            let mut out = VectorClock::zero(n);
            area.merge_into(&mut out, |e| self.resolve(e));
            out
        }
    }

    #[test]
    fn bottom_precedes_everything() {
        let b = AreaClock::bottom();
        assert!(b.leq(&VectorClock::zero(3)));
        assert!(b.leq(&VectorClock::from_components(vec![5, 0, 0])));
        assert!(b.is_epoch());
        assert_eq!(Log::default().to_vector(&b, 3), VectorClock::zero(3));
    }

    #[test]
    fn epoch_leq_is_the_event_clock_property() {
        // Event: P1's 2nd tick, clock [0,2,1].
        let mut a = AreaClock::bottom();
        let mut log = Log::default();
        log.record(&mut a, 1, &[0, 2, 1]);
        assert!(a.is_epoch());
        // A clock that knows P1's 2nd event.
        assert!(a.leq(&VectorClock::from_components(vec![9, 2, 0])));
        // A clock that does not.
        assert!(!a.leq(&VectorClock::from_components(vec![9, 1, 9])));
    }

    #[test]
    fn dominating_records_stay_epoch() {
        let mut a = AreaClock::bottom();
        let mut log = Log::default();
        log.record(&mut a, 0, &[1, 0]);
        log.record(&mut a, 0, &[2, 0]);
        log.record(&mut a, 1, &[2, 1]); // saw P0's 2nd event: dominates
        assert!(a.is_epoch());
        assert_eq!(log.to_vector(&a, 2).components(), &[2, 1]);
    }

    #[test]
    fn concurrent_record_demotes_to_exact_join() {
        let mut a = AreaClock::bottom();
        let mut log = Log::default();
        log.record(&mut a, 0, &[1, 0]);
        log.record(&mut a, 1, &[0, 1]); // concurrent with 1@0
        assert!(!a.is_epoch());
        assert_eq!(log.to_vector(&a, 2).components(), &[1, 1]);
    }

    #[test]
    fn dominating_record_repromotes_from_vector() {
        let mut a = AreaClock::bottom();
        let mut log = Log::default();
        log.record(&mut a, 0, &[1, 0]);
        log.record(&mut a, 1, &[0, 1]);
        assert!(!a.is_epoch());
        // An event that saw both: the join collapses back to one epoch.
        log.record(&mut a, 0, &[2, 1]);
        assert!(a.is_epoch());
        assert_eq!(log.to_vector(&a, 2).components(), &[2, 1]);
    }

    #[test]
    fn join_matches_reference_merge_under_random_records() {
        // Differential check against a plain VectorClock join.
        let mut fast = AreaClock::bottom();
        let mut log = Log::default();
        let mut slow = VectorClock::zero(4);
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut procs = vec![VectorClock::zero(4); 4];
        for step in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = (x >> 33) as usize % 4;
            procs[r].tick(r);
            if step % 3 == 0 {
                let other = (r + 1) % 4;
                let snapshot = procs[other].clone();
                procs[r].merge(&snapshot);
            }
            let c = procs[r].clone();
            log.record(&mut fast, r, c.components());
            slow.merge(&c);
            assert_eq!(log.to_vector(&fast, 4), slow, "diverged at step {step}");
            // leq must agree with the reference join on arbitrary probes.
            for p in &procs {
                assert_eq!(fast.leq(p), slow.leq(p));
            }
        }
    }

    #[test]
    fn merge_into_accumulates() {
        let mut a = AreaClock::bottom();
        let mut log = Log::default();
        log.record(&mut a, 0, &[3, 0]);
        let mut dst = VectorClock::from_components(vec![1, 7]);
        a.merge_into(&mut dst, |e| log.resolve(e));
        assert_eq!(dst.components(), &[3, 7]);
    }

    #[test]
    fn epoch_display() {
        assert_eq!(Epoch { rank: 2, count: 7 }.to_string(), "7@2");
    }
}

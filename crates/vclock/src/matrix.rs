//! Matrix clocks — the paper's per-process `V_{P_i}` (§IV-B).
//!
//! §IV-B: "The clock matrix `V_{P_i}` is maintained by each process `P_i`.
//! This matrix is a local view of the global time. It is initially set to
//! zero. Before `P_i` performs an event, it increments its local logical
//! clock `V_{P_i}[i,i]`."
//!
//! Row `i` of the matrix is process `i`'s own vector clock — the value
//! shipped with its messages. Rows `j ≠ i` record the most recent knowledge
//! `P_i` has of `P_j`'s vector clock (gossiped on clock-update messages,
//! Algorithm 5). The matrix lets a process answer "what did `P_j` know about
//! `P_k` last time I heard from it", which the discussion sections use for
//! the storage-cost accounting (`n²` entries per process).

use serde::{Deserialize, Serialize};

use crate::vector::VectorClock;
use crate::Rank;

/// An `n × n` matrix clock owned by one process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatrixClock {
    owner: Rank,
    rows: Vec<VectorClock>,
}

impl MatrixClock {
    /// Zero matrix for `n` processes, owned by `owner`.
    ///
    /// # Panics
    /// Panics if `owner >= n`.
    pub fn zero(owner: Rank, n: usize) -> Self {
        assert!(owner < n, "owner rank {owner} out of range for n={n}");
        MatrixClock {
            owner,
            rows: vec![VectorClock::zero(n); n],
        }
    }

    /// Rebuild a matrix from its rows — the inverse of reading each row
    /// back with [`MatrixClock::row`]. Used by snapshot codecs that persist
    /// and restore detector state.
    ///
    /// # Panics
    /// Panics if `rows` is empty, `owner >= rows.len()`, or the rows are
    /// not all `rows.len()` wide (the matrix must be square).
    pub fn from_rows(owner: Rank, rows: Vec<VectorClock>) -> Self {
        let n = rows.len();
        assert!(owner < n, "owner rank {owner} out of range for n={n}");
        assert!(
            rows.iter().all(|r| r.len() == n),
            "matrix rows must be {n} wide"
        );
        MatrixClock { owner, rows }
    }

    /// The owning process's rank.
    pub fn owner(&self) -> Rank {
        self.owner
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.rows.len()
    }

    /// The paper's `update_local_clock`: increment `V[i,i]` before an event.
    /// Returns a snapshot of the owner's row (the clock attached to the
    /// event / message).
    pub fn tick(&mut self) -> VectorClock {
        let owner = self.owner;
        self.rows[owner].tick(owner);
        self.rows[owner].clone()
    }

    /// Tick without snapshotting: increment `V[i,i]` and return the new
    /// diagonal value only. The sharded router's epoch-delta transport uses
    /// this — a `(rank, count)` pair is all the wire format needs while the
    /// actor's clock has only ticked since the last full send, so the
    /// per-op row clone and `Arc` allocation of [`MatrixClock::tick_shared`]
    /// are skipped entirely on that path.
    #[inline]
    pub fn tick_count(&mut self) -> u64 {
        let owner = self.owner;
        self.rows[owner].tick(owner)
    }

    /// [`MatrixClock::tick`] returning the snapshot behind an
    /// [`std::sync::Arc`] — the *shard-safe* form of the event clock.
    ///
    /// The detectors attach one snapshot per operation to every access the
    /// operation induces; the sharded pipeline additionally ships those
    /// snapshots to worker threads. `Arc<VectorClock>` is `Send + Sync`
    /// (the clock is immutable once snapshotted), so the same allocation is
    /// shared across accesses, shards and reports without copying.
    pub fn tick_shared(&mut self) -> std::sync::Arc<VectorClock> {
        std::sync::Arc::new(self.tick())
    }

    /// The owner's current vector clock (row `owner`), without ticking.
    pub fn own_row(&self) -> &VectorClock {
        &self.rows[self.owner]
    }

    /// Read any row (local knowledge of process `rank`'s clock).
    pub fn row(&self, rank: Rank) -> &VectorClock {
        &self.rows[rank]
    }

    /// Merge a received vector clock attributed to process `from` into both
    /// that process's row and the owner's row (Algorithm 4 applied to each).
    pub fn observe(&mut self, from: Rank, clock: &VectorClock) {
        self.rows[from].merge(clock);
        let owner = self.owner;
        self.rows[owner].merge(clock);
    }

    /// Merge knowledge attributed to the owner itself into the owner's row
    /// only — `observe(owner, clock)` without the redundant second merge of
    /// the same row. Used by the detector hot path when a read absorbs an
    /// area's write clock.
    pub fn absorb(&mut self, clock: &VectorClock) {
        self.rows[self.owner].merge(clock);
    }

    /// Merge an entire remote matrix (gossip-style exchange): component-wise
    /// maximum of every row. Used by the clock-update traffic accounting.
    pub fn merge_matrix(&mut self, other: &MatrixClock) {
        assert_eq!(self.n(), other.n(), "matrix width mismatch");
        for (mine, theirs) in self.rows.iter_mut().zip(&other.rows) {
            mine.merge(theirs);
        }
    }

    /// Storage footprint in bytes of the dense matrix (`n²` components) —
    /// §IV-C / §V-A accounting.
    pub fn dense_size_bytes(&self) -> usize {
        self.n() * self.n() * std::mem::size_of::<u64>()
    }
}

impl std::fmt::Display for MatrixClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "MatrixClock(P{}):", self.owner)?;
        for (i, row) in self.rows.iter().enumerate() {
            writeln!(f, "  P{i}: {row}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_matrix() {
        let m = MatrixClock::zero(1, 3);
        assert_eq!(m.owner(), 1);
        assert_eq!(m.n(), 3);
        assert_eq!(m.own_row().total(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn owner_out_of_range_panics() {
        MatrixClock::zero(3, 3);
    }

    #[test]
    fn tick_increments_diagonal() {
        let mut m = MatrixClock::zero(0, 2);
        let snap = m.tick();
        assert_eq!(snap.components(), &[1, 0]);
        assert_eq!(m.row(0).components(), &[1, 0]);
        assert_eq!(m.row(1).components(), &[0, 0]);
    }

    #[test]
    fn tick_shared_snapshots_are_send_sync() {
        fn assert_shard_safe<T: Send + Sync>(_: &T) {}
        let mut m = MatrixClock::zero(0, 2);
        let snap = m.tick_shared();
        assert_shard_safe(&snap);
        assert_eq!(snap.components(), &[1, 0]);
        // Sharing does not copy: a clone is the same allocation.
        let other = std::sync::Arc::clone(&snap);
        assert!(std::sync::Arc::ptr_eq(&snap, &other));
    }

    #[test]
    fn observe_merges_sender_row_and_own_row() {
        let mut m = MatrixClock::zero(1, 3);
        let remote = VectorClock::from_components(vec![2, 0, 0]);
        m.observe(0, &remote);
        assert_eq!(m.row(0).components(), &[2, 0, 0]);
        assert_eq!(m.own_row().components(), &[2, 0, 0]);
        // Own events then stamp on top of the merged knowledge.
        let snap = m.tick();
        assert_eq!(snap.components(), &[2, 1, 0]);
    }

    #[test]
    fn fig5a_event_sequence() {
        // Reproduce the clock values printed in Fig 5a at P1.
        let mut p0 = MatrixClock::zero(0, 3);
        let mut p1 = MatrixClock::zero(1, 3);
        let mut p2 = MatrixClock::zero(2, 3);

        let m1 = p0.tick(); // P0 sends m1 with clock 100
        assert_eq!(m1.to_string(), "100");

        p1.observe(0, &m1);
        let p1_after = p1.tick(); // P1's state 110
        assert_eq!(p1_after.to_string(), "110");

        let m2 = p2.tick(); // P2 sends m2 with clock 001
        assert_eq!(m2.to_string(), "001");

        // Race: 110 × 001.
        assert!(p1_after.concurrent_with(&m2));
    }

    #[test]
    fn merge_matrix_takes_max_everywhere() {
        let mut a = MatrixClock::zero(0, 2);
        let mut b = MatrixClock::zero(1, 2);
        a.tick();
        b.tick();
        b.tick();
        a.merge_matrix(&b);
        assert_eq!(a.row(0).components(), &[1, 0]);
        assert_eq!(a.row(1).components(), &[0, 2]);
    }

    #[test]
    fn dense_size_is_quadratic() {
        assert_eq!(MatrixClock::zero(0, 4).dense_size_bytes(), 4 * 4 * 8);
    }
}

//! The paper's printed clock procedures: Algorithm 3 (`compare_clocks`) and
//! Algorithm 4 (`max_clock`), plus the *literal* strict comparison the paper
//! prints and a discussion of how it differs from the standard partial order.
//!
//! Algorithm 3 as printed reads:
//!
//! ```text
//! return ∀n ∈ {0,…,N−1} : V_Pi < V_Pj ⇔ V_Pi[n] < V_Pj[n]
//! ```
//!
//! i.e. *strictly* less on **every** component. The standard vector-clock
//! order (Mattern) is `V ≤ V'` component-wise with at least one strict
//! component. The strict-all-components version misclassifies pairs such as
//! `[1,0] vs [2,0]` (causally ordered, but not strictly less on component 1)
//! as unordered, which would produce spurious race reports. We expose both:
//! [`compare_clocks`] implements the corrected `≤` test used by the
//! `race-core` default detector; [`literal_less`] implements the printed
//! text, used by the `literal` ablation detector (experiment ABL-lit).

use crate::vector::VectorClock;

/// Corrected Algorithm 3: true iff `a ≤ b` component-wise, i.e. `a`
/// causally precedes or equals `b`.
///
/// The race check of Algorithms 1–2 is then
/// `¬compare_clocks(a, b) ∧ ¬compare_clocks(b, a)` ⇒ concurrent ⇒ race.
pub fn compare_clocks(a: &VectorClock, b: &VectorClock) -> bool {
    a.leq(b)
}

/// Algorithm 3 exactly as printed: every component strictly less.
///
/// Note `literal_less(a, a) == false` and `literal_less([1,0],[2,0]) ==
/// false`, so the literal detector flags some causally-ordered pairs.
pub fn literal_less(a: &VectorClock, b: &VectorClock) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.components()
        .iter()
        .zip(b.components())
        .all(|(x, y)| x < y)
}

/// Algorithm 4 (`max_clock`): `∀l, V'[l] = max(V_Pi[l], V_Pj[l])`.
pub fn max_clock(a: &VectorClock, b: &VectorClock) -> VectorClock {
    a.merged(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(v: &[u64]) -> VectorClock {
        VectorClock::from_components(v.to_vec())
    }

    #[test]
    fn compare_clocks_is_leq() {
        assert!(compare_clocks(&vc(&[1, 0]), &vc(&[2, 0])));
        assert!(compare_clocks(&vc(&[1, 1]), &vc(&[1, 1])));
        assert!(!compare_clocks(&vc(&[1, 1]), &vc(&[0, 2])));
    }

    #[test]
    fn race_check_matches_concurrency() {
        let a = vc(&[1, 1, 0]);
        let b = vc(&[0, 0, 1]);
        // The Algorithms 1–2 condition.
        let detected = !compare_clocks(&a, &b) && !compare_clocks(&b, &a);
        assert!(detected);
        assert!(a.concurrent_with(&b));
    }

    #[test]
    fn literal_less_requires_all_strict() {
        assert!(literal_less(&vc(&[0, 0]), &vc(&[1, 1])));
        // Causally ordered but not all-strict: the literal test says "no".
        assert!(!literal_less(&vc(&[1, 0]), &vc(&[2, 0])));
        assert!(!literal_less(&vc(&[1, 1]), &vc(&[1, 2])));
        // Irreflexive.
        assert!(!literal_less(&vc(&[3, 3]), &vc(&[3, 3])));
    }

    #[test]
    fn literal_flags_ordered_pair_as_race() {
        // Demonstrates the false positive of the printed algorithm: the pair
        // is causally ordered yet the literal condition reports a race.
        let a = vc(&[1, 0]);
        let b = vc(&[2, 0]);
        assert!(compare_clocks(&a, &b), "really ordered");
        let literal_race = !literal_less(&a, &b) && !literal_less(&b, &a);
        assert!(literal_race, "literal algorithm would signal a race");
    }

    #[test]
    fn max_clock_matches_merge() {
        let a = vc(&[1, 5, 0]);
        let b = vc(&[3, 2, 9]);
        assert_eq!(max_clock(&a, &b).components(), &[3, 5, 9]);
    }
}

//! Distributed shared memory substrate (paper §III).
//!
//! Implements the paper's memory and communication model:
//!
//! * every process maps a **private** and a **public** segment
//!   ([`memory::ProcessMemory`], Fig 1);
//! * the **global address space** is the union of public segments, addressed
//!   by `(processor_name, local_address)` pairs ([`addr::GlobalAddr`]);
//! * data placement — the compiler's job in UPC/Titanium/CAF — is performed
//!   by an explicit [`heap::SymmetricHeap`] with placement policies;
//! * NICs provide **locks on memory areas** ([`lockmgr::LockTable`]):
//!   exclusive, FIFO-fair, queued at the owner;
//! * one-sided **put/get** with the atomicity rule of Fig 3 (a put
//!   overlapping an in-progress get is delayed until the get ends) enforced
//!   by [`rdma::RdmaEngine`];
//! * the wire protocol ([`proto::DsmPayload`]) used on the `netsim`
//!   interconnect, including the clock traffic added by the detection
//!   algorithms (classified separately so overhead is measurable).
//!
//! This crate is *passive*: it owns state machines and memory, while the
//! `simulator` crate drives them from its event loop and the `race-core`
//! crate decides when accesses race.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod error;
pub mod heap;
pub mod lockmgr;
pub mod memory;
pub mod proto;
pub mod rdma;
pub mod typed;

pub use addr::{GlobalAddr, MemRange, Segment};
pub use error::DsmError;
pub use heap::{Placement, SymmetricHeap};
pub use lockmgr::{LockOutcome, LockTable, LockToken};
pub use memory::ProcessMemory;
pub use proto::DsmPayload;
pub use rdma::RdmaEngine;
pub use typed::{Pod, SharedArray, SharedVar};

/// A process identifier (dense rank).
pub type Rank = usize;

//! Typed views over the byte-oriented global address space.
//!
//! The parallel languages the paper cites (UPC, Titanium, Co-Array Fortran)
//! give programmers *typed* shared variables; the compiler lowers them to
//! byte-level remote accesses. [`SharedVar`] and [`SharedArray`] are that
//! lowering, minus the compiler.

use crate::addr::{GlobalAddr, MemRange};

/// Plain-old-data values that can live in shared memory.
///
/// Implemented for the fixed-width integers and `f64`; all little-endian on
/// the simulated wire.
pub trait Pod: Copy + std::fmt::Debug {
    /// Encoded size in bytes.
    const SIZE: usize;
    /// Encode to little-endian bytes.
    fn to_bytes(self) -> Vec<u8>;
    /// Decode from little-endian bytes.
    ///
    /// # Panics
    /// Panics if `bytes.len() != SIZE`.
    fn from_bytes(bytes: &[u8]) -> Self;
}

macro_rules! impl_pod {
    ($($t:ty),*) => {$(
        impl Pod for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            fn to_bytes(self) -> Vec<u8> {
                self.to_le_bytes().to_vec()
            }
            fn from_bytes(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().expect("exact width"))
            }
        }
    )*};
}

impl_pod!(u8, u16, u32, u64, i8, i16, i32, i64, f64);

/// A typed shared scalar at a fixed global address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedVar<T: Pod> {
    addr: GlobalAddr,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Pod> SharedVar<T> {
    /// View `addr` as a `T`.
    pub fn at(addr: GlobalAddr) -> Self {
        SharedVar {
            addr,
            _marker: std::marker::PhantomData,
        }
    }

    /// The variable's address.
    pub fn addr(&self) -> GlobalAddr {
        self.addr
    }

    /// The byte range the variable occupies.
    pub fn range(&self) -> MemRange {
        self.addr.range(T::SIZE)
    }

    /// Encode a value for a put.
    pub fn encode(&self, value: T) -> Vec<u8> {
        value.to_bytes()
    }

    /// Decode a value from a get reply.
    pub fn decode(&self, bytes: &[u8]) -> T {
        T::from_bytes(bytes)
    }
}

/// A typed shared array with one element per range (possibly distributed
/// across ranks by the allocator's placement policy).
///
/// ```
/// use dsm::{GlobalAddr, SharedArray};
///
/// // One u64 element on each of two ranks (a cyclic placement).
/// let arr: SharedArray<u64> = SharedArray::from_ranges(vec![
///     GlobalAddr::public(0, 0).range(8),
///     GlobalAddr::public(1, 0).range(8),
/// ]);
/// assert_eq!(arr.len(), 2);
/// assert_eq!(arr.var(1).addr().rank, 1);
/// // Elements encode/decode through their typed views.
/// let bytes = arr.var(0).encode(42u64);
/// assert_eq!(arr.var(0).decode(&bytes), 42);
/// ```
#[derive(Debug, Clone)]
pub struct SharedArray<T: Pod> {
    elems: Vec<MemRange>,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Pod> SharedArray<T> {
    /// Build from per-element ranges (as returned by
    /// `SymmetricHeap::alloc_array` with `elem_size = T::SIZE`).
    ///
    /// # Panics
    /// Panics if any range's length differs from `T::SIZE`.
    pub fn from_ranges(elems: Vec<MemRange>) -> Self {
        for e in &elems {
            assert_eq!(e.len, T::SIZE, "element range width must equal T::SIZE");
        }
        SharedArray {
            elems,
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// True when the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// The element's typed view.
    pub fn var(&self, index: usize) -> SharedVar<T> {
        SharedVar::at(self.elems[index].addr)
    }

    /// The element's byte range.
    pub fn range(&self, index: usize) -> MemRange {
        self.elems[index]
    }

    /// Iterate over element ranges.
    pub fn iter(&self) -> impl Iterator<Item = &MemRange> {
        self.elems.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pod_roundtrip() {
        assert_eq!(u64::from_bytes(&0xABCDu64.to_bytes()), 0xABCD);
        assert_eq!(i32::from_bytes(&(-7i32).to_bytes()), -7);
        assert_eq!(f64::from_bytes(&3.5f64.to_bytes()), 3.5);
        assert_eq!(u8::from_bytes(&0x7Fu8.to_bytes()), 0x7F);
    }

    #[test]
    fn var_range_width() {
        let v: SharedVar<u64> = SharedVar::at(GlobalAddr::public(1, 16));
        assert_eq!(v.range().len, 8);
        assert_eq!(v.range().addr.offset, 16);
    }

    #[test]
    fn var_encode_decode() {
        let v: SharedVar<u32> = SharedVar::at(GlobalAddr::public(0, 0));
        let bytes = v.encode(42);
        assert_eq!(bytes.len(), 4);
        assert_eq!(v.decode(&bytes), 42);
    }

    #[test]
    fn array_views() {
        let ranges = vec![
            GlobalAddr::public(0, 0).range(8),
            GlobalAddr::public(1, 0).range(8),
        ];
        let arr: SharedArray<u64> = SharedArray::from_ranges(ranges);
        assert_eq!(arr.len(), 2);
        assert_eq!(arr.var(1).addr().rank, 1);
    }

    #[test]
    #[should_panic(expected = "element range width")]
    fn array_width_mismatch_panics() {
        let _: SharedArray<u64> = SharedArray::from_ranges(vec![GlobalAddr::public(0, 0).range(4)]);
    }
}

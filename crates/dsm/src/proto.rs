//! The DSM wire protocol carried over the `netsim` interconnect.
//!
//! Message inventory follows §III-B exactly: a **put is one message**
//! (source → destination, carrying the data); a **get is two messages**
//! (request, then the data reply). Locks add request/grant/release traffic,
//! and the detection algorithms (Algorithms 1, 2, 5) add clock reads and
//! writes — classified separately so the §V-A overhead split is measurable.

use bytes::Bytes;
use netsim::{Classify, OpClass};
use serde::{Deserialize, Serialize};

use crate::addr::MemRange;

/// An operation token correlating requests with replies/completions.
pub type OpToken = u64;

/// Atomic read-modify-write operations a NIC can execute on a u64 word
/// (the standard RDMA verbs; §V-B's "new operations can be imagined").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AtomicOp {
    /// `old = *p; *p = old + v; return old`.
    FetchAdd(u64),
    /// `old = *p; if old == expected { *p = new }; return old`.
    CompareSwap {
        /// Value the word must currently hold.
        expected: u64,
        /// Replacement on success.
        new: u64,
    },
    /// `old = *p; *p = v; return old`.
    Swap(u64),
}

impl AtomicOp {
    /// Apply to a current value; returns `(new_value, old_value)`.
    pub fn apply(self, current: u64) -> (u64, u64) {
        match self {
            AtomicOp::FetchAdd(v) => (current.wrapping_add(v), current),
            AtomicOp::CompareSwap { expected, new } => {
                if current == expected {
                    (new, current)
                } else {
                    (current, current)
                }
            }
            AtomicOp::Swap(v) => (v, current),
        }
    }
}

/// Protocol payloads.
#[derive(Debug, Clone)]
pub enum DsmPayload {
    /// The single message of a put: write `data` at `dst` (Fig 2 left).
    PutData {
        /// Destination range in the target's public memory.
        dst: MemRange,
        /// Data to write (`data.len() == dst.len`).
        data: Bytes,
        /// Completion token echoed to the initiator.
        token: OpToken,
    },
    /// First message of a get: ask the owner's NIC for `src` (Fig 2 right).
    GetRequest {
        /// Range to read.
        src: MemRange,
        /// Completion token.
        token: OpToken,
    },
    /// Second message of a get: the data comes back.
    GetReply {
        /// Token of the original request.
        token: OpToken,
        /// The bytes read.
        data: Bytes,
    },
    /// Acknowledgement that a put was applied (RDMA completion).
    PutAck {
        /// Token of the original put.
        token: OpToken,
    },
    /// Ask the owner's NIC to lock `range`.
    LockRequest {
        /// Area to lock.
        range: MemRange,
        /// Correlation token.
        token: OpToken,
    },
    /// The lock is now held by the requester.
    LockGrant {
        /// Token of the granted request.
        token: OpToken,
        /// The NIC-side lock token needed to release.
        lock_token: u64,
    },
    /// Release a held lock (fire-and-forget).
    LockRelease {
        /// NIC-side lock token.
        lock_token: u64,
    },
    /// Detection traffic: read the `(V, W)` clocks of the area containing
    /// `range` (Algorithms 1–2: `get_clock` / `get_clock_W`).
    ClockReadRequest {
        /// Area whose clocks are read.
        range: MemRange,
        /// Correlation token.
        token: OpToken,
    },
    /// Detection traffic: the clocks come back (`n` components each).
    ClockReadReply {
        /// Token of the request.
        token: OpToken,
        /// The area's general-purpose clock `V`.
        v: Vec<u64>,
        /// The area's write clock `W`.
        w: Vec<u64>,
    },
    /// Detection traffic: merge `v`/`w` into the area's clocks
    /// (Algorithm 5 `put_clock`, and `update_clock_W`).
    ClockWrite {
        /// Area whose clocks are updated.
        range: MemRange,
        /// Components to merge into `V` (empty = skip).
        v: Vec<u64>,
        /// Components to merge into `W` (empty = skip).
        w: Vec<u64>,
        /// Completion token (clock writes are acknowledged so the algorithm
        /// steps stay ordered under the lock).
        token: OpToken,
    },
    /// Acknowledgement of a `ClockWrite`.
    ClockWriteAck {
        /// Token of the clock write.
        token: OpToken,
    },
    /// NIC-executed atomic read-modify-write request (§V-B extension).
    AtomicRequest {
        /// Target u64 word (must be 8 bytes).
        range: MemRange,
        /// The operation to apply.
        op: AtomicOp,
        /// Correlation token.
        token: OpToken,
    },
    /// The atomic's reply, carrying the previous value.
    AtomicReply {
        /// Token of the request.
        token: OpToken,
        /// Value of the word before the operation.
        old: u64,
    },
    /// Barrier arrival notification (to the coordinator, rank 0).
    BarrierArrive {
        /// Barrier epoch.
        epoch: u64,
    },
    /// Barrier release broadcast (from the coordinator).
    BarrierRelease {
        /// Barrier epoch.
        epoch: u64,
    },
}

impl Classify for DsmPayload {
    fn class(&self) -> OpClass {
        match self {
            // A put is ONE data message (Fig 2). The optional PutAck is a
            // completion notification outside the paper's model; it is
            // classified `Other` so it never perturbs the Fig 2 counts.
            DsmPayload::PutData { .. } => OpClass::PutData,
            DsmPayload::PutAck { .. } => OpClass::Other,
            DsmPayload::GetRequest { .. } => OpClass::GetRequest,
            DsmPayload::GetReply { .. } => OpClass::GetReply,
            DsmPayload::LockRequest { .. }
            | DsmPayload::LockGrant { .. }
            | DsmPayload::LockRelease { .. } => OpClass::Lock,
            DsmPayload::ClockReadRequest { .. }
            | DsmPayload::ClockReadReply { .. }
            | DsmPayload::ClockWrite { .. }
            | DsmPayload::ClockWriteAck { .. } => OpClass::Clock,
            DsmPayload::AtomicRequest { .. } | DsmPayload::AtomicReply { .. } => OpClass::Atomic,
            DsmPayload::BarrierArrive { .. } | DsmPayload::BarrierRelease { .. } => OpClass::Sync,
        }
    }

    fn wire_bytes(&self) -> usize {
        const RANGE: usize = 24; // rank + segment + offset + len
        const TOKEN: usize = 8;
        match self {
            DsmPayload::PutData { data, .. } => RANGE + TOKEN + data.len(),
            DsmPayload::GetRequest { .. } => RANGE + TOKEN,
            DsmPayload::GetReply { data, .. } => TOKEN + data.len(),
            DsmPayload::PutAck { .. } => TOKEN,
            DsmPayload::LockRequest { .. } => RANGE + TOKEN,
            DsmPayload::LockGrant { .. } => 2 * TOKEN,
            DsmPayload::LockRelease { .. } => TOKEN,
            DsmPayload::ClockReadRequest { .. } => RANGE + TOKEN,
            DsmPayload::ClockReadReply { v, w, .. } => TOKEN + 8 * (v.len() + w.len()),
            DsmPayload::ClockWrite { v, w, .. } => RANGE + TOKEN + 8 * (v.len() + w.len()),
            DsmPayload::ClockWriteAck { .. } => TOKEN,
            DsmPayload::AtomicRequest { .. } => RANGE + TOKEN + 24,
            DsmPayload::AtomicReply { .. } => 2 * TOKEN,
            DsmPayload::BarrierArrive { .. } | DsmPayload::BarrierRelease { .. } => 8,
        }
    }
}

/// Serializable summary of a payload (for traces; omits bulk data).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PayloadSummary {
    /// Payload discriminant name.
    pub kind: String,
    /// Stats class label.
    pub class: String,
    /// Wire size in bytes.
    pub bytes: usize,
}

impl From<&DsmPayload> for PayloadSummary {
    fn from(p: &DsmPayload) -> Self {
        let kind = match p {
            DsmPayload::PutData { .. } => "PutData",
            DsmPayload::GetRequest { .. } => "GetRequest",
            DsmPayload::GetReply { .. } => "GetReply",
            DsmPayload::PutAck { .. } => "PutAck",
            DsmPayload::LockRequest { .. } => "LockRequest",
            DsmPayload::LockGrant { .. } => "LockGrant",
            DsmPayload::LockRelease { .. } => "LockRelease",
            DsmPayload::ClockReadRequest { .. } => "ClockReadRequest",
            DsmPayload::ClockReadReply { .. } => "ClockReadReply",
            DsmPayload::ClockWrite { .. } => "ClockWrite",
            DsmPayload::ClockWriteAck { .. } => "ClockWriteAck",
            DsmPayload::AtomicRequest { .. } => "AtomicRequest",
            DsmPayload::AtomicReply { .. } => "AtomicReply",
            DsmPayload::BarrierArrive { .. } => "BarrierArrive",
            DsmPayload::BarrierRelease { .. } => "BarrierRelease",
        };
        PayloadSummary {
            kind: kind.to_string(),
            class: p.class().label().to_string(),
            bytes: p.wire_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::GlobalAddr;

    fn range() -> MemRange {
        GlobalAddr::public(1, 0).range(8)
    }

    #[test]
    fn put_is_put_class_and_sized_by_data() {
        let p = DsmPayload::PutData {
            dst: range(),
            data: Bytes::from(vec![0u8; 100]),
            token: 1,
        };
        assert_eq!(p.class(), OpClass::PutData);
        assert_eq!(p.wire_bytes(), 24 + 8 + 100);
    }

    #[test]
    fn get_halves_have_distinct_classes() {
        let req = DsmPayload::GetRequest {
            src: range(),
            token: 1,
        };
        let rep = DsmPayload::GetReply {
            token: 1,
            data: Bytes::from(vec![0u8; 8]),
        };
        assert_eq!(req.class(), OpClass::GetRequest);
        assert_eq!(rep.class(), OpClass::GetReply);
    }

    #[test]
    fn clock_traffic_is_detection_overhead() {
        let msgs = [
            DsmPayload::ClockReadRequest {
                range: range(),
                token: 0,
            },
            DsmPayload::ClockReadReply {
                token: 0,
                v: vec![0; 4],
                w: vec![0; 4],
            },
            DsmPayload::ClockWrite {
                range: range(),
                v: vec![0; 4],
                w: vec![],
                token: 0,
            },
        ];
        for m in &msgs {
            assert!(m.class().is_detection_overhead());
        }
        // Clock reply carries 2 × n × 8 bytes of clocks.
        assert_eq!(msgs[1].wire_bytes(), 8 + 8 * 8);
    }

    #[test]
    fn atomic_ops_apply() {
        assert_eq!(AtomicOp::FetchAdd(5).apply(10), (15, 10));
        assert_eq!(
            AtomicOp::CompareSwap {
                expected: 10,
                new: 99
            }
            .apply(10),
            (99, 10)
        );
        assert_eq!(
            AtomicOp::CompareSwap {
                expected: 11,
                new: 99
            }
            .apply(10),
            (10, 10)
        );
        assert_eq!(AtomicOp::Swap(7).apply(3), (7, 3));
        // Wrapping semantics at the boundary.
        assert_eq!(AtomicOp::FetchAdd(1).apply(u64::MAX), (0, u64::MAX));
    }

    #[test]
    fn atomic_messages_classified() {
        let req = DsmPayload::AtomicRequest {
            range: range(),
            op: AtomicOp::FetchAdd(1),
            token: 0,
        };
        let rep = DsmPayload::AtomicReply { token: 0, old: 0 };
        assert_eq!(req.class(), OpClass::Atomic);
        assert_eq!(rep.class(), OpClass::Atomic);
        assert!(req.wire_bytes() > rep.wire_bytes());
    }

    #[test]
    fn summary_captures_kind() {
        let p = DsmPayload::BarrierArrive { epoch: 3 };
        let s = PayloadSummary::from(&p);
        assert_eq!(s.kind, "BarrierArrive");
        assert_eq!(s.class, "sync");
    }
}

//! Error taxonomy for the DSM substrate.
//!
//! Note that a *race condition is not an error* in this system: §IV-D of the
//! paper requires races to be signalled but never to abort the execution
//! ("some algorithms contain race conditions on purpose"). Races therefore
//! flow through the `race-core` reporting channel, while this type covers
//! genuine misuse of the substrate.

use crate::addr::{GlobalAddr, MemRange};
use crate::Rank;

/// Errors raised by the DSM substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DsmError {
    /// Access past the end of a segment.
    OutOfBounds {
        /// The offending range.
        range: MemRange,
        /// Size of the segment it targeted.
        segment_len: usize,
    },
    /// A process touched another process's *private* memory — forbidden by
    /// the model (§III-A).
    PrivateViolation {
        /// Who attempted the access.
        accessor: Rank,
        /// The private address they targeted.
        addr: GlobalAddr,
    },
    /// Rank outside `0..n`.
    BadRank {
        /// The offending rank.
        rank: Rank,
        /// System size.
        n: usize,
    },
    /// Releasing a lock token that is not currently held.
    LockNotHeld {
        /// The stale or foreign token.
        token: u64,
    },
    /// The symmetric heap ran out of space.
    HeapExhausted {
        /// Bytes requested.
        requested: usize,
        /// Bytes remaining.
        available: usize,
    },
    /// An RDMA completion referenced an unknown operation token.
    UnknownOp {
        /// The unmatched token.
        token: u64,
    },
}

impl std::fmt::Display for DsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DsmError::OutOfBounds { range, segment_len } => {
                write!(
                    f,
                    "access {range} out of bounds (segment is {segment_len} bytes)"
                )
            }
            DsmError::PrivateViolation { accessor, addr } => {
                write!(f, "process P{accessor} accessed private memory {addr}")
            }
            DsmError::BadRank { rank, n } => write!(f, "rank {rank} out of range (n={n})"),
            DsmError::LockNotHeld { token } => write!(f, "lock token {token} not held"),
            DsmError::HeapExhausted {
                requested,
                available,
            } => write!(
                f,
                "symmetric heap exhausted: need {requested}, have {available}"
            ),
            DsmError::UnknownOp { token } => write!(f, "unknown RDMA operation token {token}"),
        }
    }
}

impl std::error::Error for DsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DsmError::OutOfBounds {
            range: GlobalAddr::public(1, 100).range(64),
            segment_len: 128,
        };
        let text = e.to_string();
        assert!(text.contains("out of bounds"));
        assert!(text.contains("128"));

        let e = DsmError::PrivateViolation {
            accessor: 2,
            addr: GlobalAddr::private(0, 8),
        };
        assert!(e.to_string().contains("P2"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&DsmError::BadRank { rank: 9, n: 4 });
    }
}

//! Global addressing: `(processor_name, local_address)` pairs.
//!
//! §III-A: "Instead of accessing it using its address in the local memory,
//! processors use the processor's name and its address in the memory of this
//! processor. This couple (processor_name, local_address) is the addressing
//! system used in the global address space."

use serde::{Deserialize, Serialize};

use crate::Rank;

/// Which segment of a process's memory an address refers to.
///
/// §III-A: the private area is accessible only by its owner; the public area
/// is accessible by everyone, with *no distinction* between local and remote
/// accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Segment {
    /// Accessible only by the owning process.
    Private,
    /// Part of the global address space; remotely accessible via RDMA.
    Public,
}

/// An address in the global address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GlobalAddr {
    /// Owning process.
    pub rank: Rank,
    /// Segment within that process.
    pub segment: Segment,
    /// Byte offset within the segment.
    pub offset: usize,
}

impl GlobalAddr {
    /// An address in `rank`'s public segment.
    pub const fn public(rank: Rank, offset: usize) -> Self {
        GlobalAddr {
            rank,
            segment: Segment::Public,
            offset,
        }
    }

    /// An address in `rank`'s private segment.
    pub const fn private(rank: Rank, offset: usize) -> Self {
        GlobalAddr {
            rank,
            segment: Segment::Private,
            offset,
        }
    }

    /// The range `[self, self + len)`.
    pub const fn range(self, len: usize) -> MemRange {
        MemRange { addr: self, len }
    }

    /// Address advanced by `bytes`.
    pub const fn offset_by(self, bytes: usize) -> GlobalAddr {
        GlobalAddr {
            rank: self.rank,
            segment: self.segment,
            offset: self.offset + bytes,
        }
    }

    /// True when this address may be accessed by `accessor`: public
    /// addresses by anyone, private addresses by the owner only.
    pub fn accessible_by(self, accessor: Rank) -> bool {
        match self.segment {
            Segment::Public => true,
            Segment::Private => accessor == self.rank,
        }
    }
}

impl std::fmt::Display for GlobalAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let seg = match self.segment {
            Segment::Private => "priv",
            Segment::Public => "pub",
        };
        write!(f, "P{}:{}+{:#x}", self.rank, seg, self.offset)
    }
}

/// A contiguous byte range in one process's memory — the unit locks and
/// race checks operate on ("areas of memory" in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRange {
    /// First byte.
    pub addr: GlobalAddr,
    /// Length in bytes.
    pub len: usize,
}

impl MemRange {
    /// Construct from rank/segment/offset/len.
    pub const fn new(addr: GlobalAddr, len: usize) -> Self {
        MemRange { addr, len }
    }

    /// One-past-the-end offset.
    pub const fn end(&self) -> usize {
        self.addr.offset + self.len
    }

    /// True when the two ranges share at least one byte (same rank and
    /// segment required).
    pub fn overlaps(&self, other: &MemRange) -> bool {
        self.addr.rank == other.addr.rank
            && self.addr.segment == other.addr.segment
            && self.len > 0
            && other.len > 0
            && self.addr.offset < other.end()
            && other.addr.offset < self.end()
    }

    /// True when `other` lies entirely within `self`.
    pub fn contains(&self, other: &MemRange) -> bool {
        self.addr.rank == other.addr.rank
            && self.addr.segment == other.addr.segment
            && self.addr.offset <= other.addr.offset
            && other.end() <= self.end()
    }

    /// Canonical ordering key used to acquire multiple locks without
    /// deadlock: sort by (rank, segment, offset). The detection algorithms
    /// lock both `src` and `dst`; taking them in canonical order makes the
    /// wait-for graph acyclic.
    pub fn canonical_key(&self) -> (Rank, Segment, usize) {
        (self.addr.rank, self.addr.segment, self.addr.offset)
    }
}

impl std::fmt::Display for MemRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{:#x}", self.addr, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessibility_rules() {
        assert!(GlobalAddr::public(1, 0).accessible_by(0));
        assert!(GlobalAddr::public(1, 0).accessible_by(1));
        assert!(!GlobalAddr::private(1, 0).accessible_by(0));
        assert!(GlobalAddr::private(1, 0).accessible_by(1));
    }

    #[test]
    fn overlap_same_rank_segment() {
        let a = GlobalAddr::public(0, 100).range(50);
        let b = GlobalAddr::public(0, 140).range(50);
        let c = GlobalAddr::public(0, 150).range(50);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c), "touching ranges do not overlap");
    }

    #[test]
    fn no_overlap_across_ranks_or_segments() {
        let a = GlobalAddr::public(0, 0).range(100);
        let b = GlobalAddr::public(1, 0).range(100);
        let c = GlobalAddr::private(0, 0).range(100);
        assert!(!a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn zero_length_never_overlaps() {
        let a = GlobalAddr::public(0, 10).range(0);
        let b = GlobalAddr::public(0, 0).range(100);
        assert!(!a.overlaps(&b));
        assert!(!b.overlaps(&a));
    }

    #[test]
    fn containment() {
        let outer = GlobalAddr::public(0, 0).range(100);
        let inner = GlobalAddr::public(0, 10).range(20);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.contains(&outer));
    }

    #[test]
    fn canonical_key_orders_rank_first() {
        let a = GlobalAddr::public(0, 500).range(8);
        let b = GlobalAddr::public(1, 0).range(8);
        assert!(a.canonical_key() < b.canonical_key());
    }

    #[test]
    fn display_formats() {
        let a = GlobalAddr::public(2, 16).range(8);
        assert_eq!(a.to_string(), "P2:pub+0x10..0x18");
    }

    #[test]
    fn offset_by_advances() {
        let a = GlobalAddr::public(0, 8);
        assert_eq!(a.offset_by(8).offset, 16);
        assert_eq!(a.offset_by(8).rank, 0);
    }
}

//! Symmetric-heap allocation and data placement.
//!
//! §III-A: "The compiler is in charge with data locality, i.e., putting
//! shared data in the public memory of processors. … The compiler also makes
//! the address resolution when the programmer asks a processor to access
//! this shared data." We have no compiler, so this allocator plays that
//! role explicitly: it hands out public-segment addresses under a placement
//! policy and records an allocation id per area (which the race detector
//! uses as its default clock granularity).

use serde::{Deserialize, Serialize};

use crate::addr::{GlobalAddr, MemRange};
use crate::error::DsmError;
use crate::Rank;

/// Data placement policies — the "compiler decides to put it into the
/// memory of a processor P" step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Place everything on a fixed rank.
    Owner(Rank),
    /// Spread consecutive allocations across ranks round-robin.
    RoundRobin,
    /// Distribute an array in contiguous blocks of `block` elements per
    /// rank, cycling (UPC-style block-cyclic layout).
    BlockCyclic {
        /// Elements per block.
        block: usize,
    },
}

/// One named allocation in the global address space.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    /// Dense allocation id (the detector's default area id).
    pub id: usize,
    /// The bytes this allocation owns.
    pub range: MemRange,
    /// Optional debug label.
    pub label: String,
}

/// A bump allocator over every rank's public segment.
///
/// "Symmetric" in the SHMEM sense: [`SymmetricHeap::alloc_symmetric`]
/// reserves the *same offset on every rank*, which is how SHMEM programs
/// name remote objects.
#[derive(Debug, Clone)]
pub struct SymmetricHeap {
    n: usize,
    capacity: usize,
    next_free: Vec<usize>,
    rr_cursor: usize,
    allocations: Vec<Allocation>,
}

impl SymmetricHeap {
    /// A heap over `n` ranks, each with `capacity` bytes of public memory.
    pub fn new(n: usize, capacity: usize) -> Self {
        SymmetricHeap {
            n,
            capacity,
            next_free: vec![0; n],
            rr_cursor: 0,
            allocations: Vec::new(),
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bytes still free on `rank`.
    pub fn free_on(&self, rank: Rank) -> usize {
        self.capacity - self.next_free[rank]
    }

    fn bump(&mut self, rank: Rank, len: usize, align: usize) -> Result<usize, DsmError> {
        debug_assert!(align.is_power_of_two());
        let base = (self.next_free[rank] + align - 1) & !(align - 1);
        if base + len > self.capacity {
            return Err(DsmError::HeapExhausted {
                requested: len,
                available: self.capacity.saturating_sub(base),
            });
        }
        self.next_free[rank] = base + len;
        Ok(base)
    }

    /// Allocate `len` bytes on a specific rank, 8-byte aligned.
    pub fn alloc_on(&mut self, rank: Rank, len: usize, label: &str) -> Result<MemRange, DsmError> {
        if rank >= self.n {
            return Err(DsmError::BadRank { rank, n: self.n });
        }
        let offset = self.bump(rank, len, 8)?;
        let range = GlobalAddr::public(rank, offset).range(len);
        self.allocations.push(Allocation {
            id: self.allocations.len(),
            range,
            label: label.to_string(),
        });
        Ok(range)
    }

    /// Allocate under a placement policy; returns the chosen range.
    pub fn alloc(
        &mut self,
        len: usize,
        placement: Placement,
        label: &str,
    ) -> Result<MemRange, DsmError> {
        let rank = match placement {
            Placement::Owner(r) => r,
            Placement::RoundRobin | Placement::BlockCyclic { .. } => {
                let r = self.rr_cursor % self.n;
                self.rr_cursor += 1;
                r
            }
        };
        self.alloc_on(rank, len, label)
    }

    /// Reserve `len` bytes at the *same offset* on every rank (SHMEM-style
    /// symmetric object). Returns the per-rank ranges, index = rank.
    pub fn alloc_symmetric(&mut self, len: usize, label: &str) -> Result<Vec<MemRange>, DsmError> {
        // All ranks must agree on the offset: take the max frontier.
        let base = self.next_free.iter().copied().max().unwrap_or(0);
        let aligned = (base + 7) & !7;
        if aligned + len > self.capacity {
            return Err(DsmError::HeapExhausted {
                requested: len,
                available: self.capacity.saturating_sub(aligned),
            });
        }
        let mut out = Vec::with_capacity(self.n);
        for rank in 0..self.n {
            self.next_free[rank] = aligned + len;
            let range = GlobalAddr::public(rank, aligned).range(len);
            self.allocations.push(Allocation {
                id: self.allocations.len(),
                range,
                label: format!("{label}@P{rank}"),
            });
            out.push(range);
        }
        Ok(out)
    }

    /// Distribute an array of `elems` elements of `elem_size` bytes under a
    /// block-cyclic layout; returns one range per element, index = element.
    pub fn alloc_array(
        &mut self,
        elems: usize,
        elem_size: usize,
        placement: Placement,
        label: &str,
    ) -> Result<Vec<MemRange>, DsmError> {
        let mut out = Vec::with_capacity(elems);
        match placement {
            Placement::Owner(rank) => {
                let whole = self.alloc_on(rank, elems * elem_size, label)?;
                for i in 0..elems {
                    out.push(whole.addr.offset_by(i * elem_size).range(elem_size));
                }
            }
            Placement::RoundRobin => {
                for i in 0..elems {
                    let rank = i % self.n;
                    out.push(self.alloc_on(rank, elem_size, &format!("{label}[{i}]"))?);
                }
            }
            Placement::BlockCyclic { block } => {
                assert!(block > 0, "block size must be positive");
                for i in 0..elems {
                    let rank = (i / block) % self.n;
                    out.push(self.alloc_on(rank, elem_size, &format!("{label}[{i}]"))?);
                }
            }
        }
        Ok(out)
    }

    /// All allocations made so far.
    pub fn allocations(&self) -> &[Allocation] {
        &self.allocations
    }

    /// Find the allocation containing `range`, if any — the address
    /// resolution the paper assigns to the compiler.
    pub fn resolve(&self, range: &MemRange) -> Option<&Allocation> {
        self.allocations.iter().find(|a| a.range.contains(range))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_on_bumps_and_aligns() {
        let mut h = SymmetricHeap::new(2, 1024);
        let a = h.alloc_on(0, 5, "a").unwrap();
        let b = h.alloc_on(0, 8, "b").unwrap();
        assert_eq!(a.addr.offset, 0);
        assert_eq!(b.addr.offset, 8, "8-byte alignment after 5-byte alloc");
        assert_eq!(h.free_on(0), 1024 - 16);
    }

    #[test]
    fn round_robin_spreads() {
        let mut h = SymmetricHeap::new(3, 1024);
        let ranks: Vec<_> = (0..6)
            .map(|i| {
                h.alloc(8, Placement::RoundRobin, &format!("x{i}"))
                    .unwrap()
                    .addr
                    .rank
            })
            .collect();
        assert_eq!(ranks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn symmetric_same_offset_everywhere() {
        let mut h = SymmetricHeap::new(3, 1024);
        h.alloc_on(1, 24, "skew").unwrap(); // make frontiers unequal
        let sym = h.alloc_symmetric(16, "sym").unwrap();
        assert_eq!(sym.len(), 3);
        let off = sym[0].addr.offset;
        assert!(sym.iter().all(|r| r.addr.offset == off));
        assert!(off >= 24);
    }

    #[test]
    fn block_cyclic_layout() {
        let mut h = SymmetricHeap::new(2, 4096);
        let elems = h
            .alloc_array(8, 8, Placement::BlockCyclic { block: 2 }, "arr")
            .unwrap();
        let ranks: Vec<_> = elems.iter().map(|r| r.addr.rank).collect();
        assert_eq!(ranks, vec![0, 0, 1, 1, 0, 0, 1, 1]);
    }

    #[test]
    fn owner_array_is_contiguous() {
        let mut h = SymmetricHeap::new(2, 4096);
        let elems = h.alloc_array(4, 8, Placement::Owner(1), "arr").unwrap();
        assert!(elems.iter().all(|r| r.addr.rank == 1));
        for w in elems.windows(2) {
            assert_eq!(w[0].end(), w[1].addr.offset);
        }
    }

    #[test]
    fn exhaustion_reported() {
        let mut h = SymmetricHeap::new(1, 16);
        assert!(h.alloc_on(0, 16, "all").is_ok());
        assert!(matches!(
            h.alloc_on(0, 1, "more"),
            Err(DsmError::HeapExhausted { .. })
        ));
    }

    #[test]
    fn resolve_finds_enclosing_allocation() {
        let mut h = SymmetricHeap::new(1, 1024);
        let a = h.alloc_on(0, 64, "buf").unwrap();
        let sub = a.addr.offset_by(8).range(8);
        let found = h.resolve(&sub).unwrap();
        assert_eq!(found.label, "buf");
        let elsewhere = GlobalAddr::public(0, 512).range(8);
        assert!(h.resolve(&elsewhere).is_none());
    }

    #[test]
    fn bad_rank_rejected() {
        let mut h = SymmetricHeap::new(2, 64);
        assert!(matches!(
            h.alloc_on(5, 8, "x"),
            Err(DsmError::BadRank { rank: 5, n: 2 })
        ));
    }
}

//! NIC-hosted locks on memory areas.
//!
//! §III-A: "since NICs are in charge with memory management in the public
//! memory space, they can provide locks on memory areas. These locks
//! guarantee exclusive access on a memory area: when a lock is taken by a
//! process, other processes must wait for the release of this lock before
//! they can access the data."
//!
//! Each rank's NIC hosts one [`LockTable`] covering the areas it maps.
//! Requests are queued FIFO; a waiter is granted as soon as no held lock
//! and no *earlier* waiter overlaps its range (FIFO-fair, no starvation,
//! but disjoint ranges don't block each other).
//!
//! §IV-A of the paper also notes: "The lock primitive takes care of mutual
//! exclusion if the addressed value is in public space or not. If the
//! address is in private space, there is no need of a real lock" — callers
//! skip the table for private ranges.

use std::collections::VecDeque;

use crate::addr::MemRange;
use crate::error::DsmError;
use crate::Rank;

/// Opaque handle for a held or queued lock.
pub type LockToken = u64;

/// Result of a lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock is held; proceed.
    Granted(LockToken),
    /// The request is queued behind a conflicting holder/waiter.
    Queued(LockToken),
}

impl LockOutcome {
    /// The token in either case.
    pub fn token(self) -> LockToken {
        match self {
            LockOutcome::Granted(t) | LockOutcome::Queued(t) => t,
        }
    }

    /// True if granted immediately.
    pub fn is_granted(self) -> bool {
        matches!(self, LockOutcome::Granted(_))
    }
}

#[derive(Debug, Clone)]
struct Held {
    token: LockToken,
    range: MemRange,
    holder: Rank,
}

#[derive(Debug, Clone)]
struct Waiting {
    token: LockToken,
    range: MemRange,
    requester: Rank,
}

/// A newly granted lock, reported from [`LockTable::release`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// Token of the request now granted.
    pub token: LockToken,
    /// Who asked for it (so the NIC can send the grant message).
    pub requester: Rank,
}

/// The lock table hosted at one rank's NIC.
#[derive(Debug, Default)]
pub struct LockTable {
    held: Vec<Held>,
    queue: VecDeque<Waiting>,
    next_token: LockToken,
}

impl LockTable {
    /// An empty table.
    pub fn new() -> Self {
        LockTable::default()
    }

    /// Request an exclusive lock on `range` for `requester`.
    pub fn acquire(&mut self, range: MemRange, requester: Rank) -> LockOutcome {
        let token = self.next_token;
        self.next_token += 1;

        let conflicts_held = self.held.iter().any(|h| h.range.overlaps(&range));
        let conflicts_queued = self.queue.iter().any(|w| w.range.overlaps(&range));
        if conflicts_held || conflicts_queued {
            self.queue.push_back(Waiting {
                token,
                range,
                requester,
            });
            LockOutcome::Queued(token)
        } else {
            self.held.push(Held {
                token,
                range,
                holder: requester,
            });
            LockOutcome::Granted(token)
        }
    }

    /// Release a held lock; returns the requests that become grantable, in
    /// FIFO order (the NIC turns each into a grant message).
    pub fn release(&mut self, token: LockToken) -> Result<Vec<Grant>, DsmError> {
        let idx = self
            .held
            .iter()
            .position(|h| h.token == token)
            .ok_or(DsmError::LockNotHeld { token })?;
        self.held.swap_remove(idx);

        // FIFO-fair scan: a waiter is granted if it conflicts with neither a
        // held lock nor an earlier still-waiting request.
        let mut grants = Vec::new();
        let mut still_waiting: VecDeque<Waiting> = VecDeque::new();
        let queue = std::mem::take(&mut self.queue);
        for w in queue {
            let blocked = self.held.iter().any(|h| h.range.overlaps(&w.range))
                || still_waiting.iter().any(|e| e.range.overlaps(&w.range));
            if blocked {
                still_waiting.push_back(w);
            } else {
                grants.push(Grant {
                    token: w.token,
                    requester: w.requester,
                });
                self.held.push(Held {
                    token: w.token,
                    range: w.range,
                    holder: w.requester,
                });
            }
        }
        self.queue = still_waiting;
        Ok(grants)
    }

    /// Number of currently held locks.
    pub fn held_count(&self) -> usize {
        self.held.len()
    }

    /// Number of queued waiters.
    pub fn queued_count(&self) -> usize {
        self.queue.len()
    }

    /// True when `range` is currently locked by anyone.
    pub fn is_locked(&self, range: &MemRange) -> bool {
        self.held.iter().any(|h| h.range.overlaps(range))
    }

    /// The holder of any lock overlapping `range`.
    pub fn holder_of(&self, range: &MemRange) -> Option<Rank> {
        self.held
            .iter()
            .find(|h| h.range.overlaps(range))
            .map(|h| h.holder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::GlobalAddr;

    fn r(offset: usize, len: usize) -> MemRange {
        GlobalAddr::public(0, offset).range(len)
    }

    #[test]
    fn disjoint_locks_granted_immediately() {
        let mut t = LockTable::new();
        assert!(t.acquire(r(0, 8), 1).is_granted());
        assert!(t.acquire(r(8, 8), 2).is_granted());
        assert_eq!(t.held_count(), 2);
    }

    #[test]
    fn overlapping_lock_queues() {
        let mut t = LockTable::new();
        let a = t.acquire(r(0, 16), 1);
        assert!(a.is_granted());
        let b = t.acquire(r(8, 16), 2);
        assert!(!b.is_granted());
        assert_eq!(t.queued_count(), 1);

        let grants = t.release(a.token()).unwrap();
        assert_eq!(
            grants,
            vec![Grant {
                token: b.token(),
                requester: 2
            }]
        );
        assert!(t.is_locked(&r(8, 4)));
    }

    #[test]
    fn fifo_fairness_no_overtaking() {
        let mut t = LockTable::new();
        let a = t.acquire(r(0, 8), 1);
        let b = t.acquire(r(0, 8), 2); // queued
        let c = t.acquire(r(0, 8), 3); // queued behind b
        assert!(!b.is_granted() && !c.is_granted());

        let g1 = t.release(a.token()).unwrap();
        assert_eq!(g1.len(), 1);
        assert_eq!(g1[0].requester, 2, "FIFO: P2 before P3");
        let g2 = t.release(b.token()).unwrap();
        assert_eq!(g2[0].requester, 3);
    }

    #[test]
    fn waiter_blocks_later_overlapping_request() {
        // A queued waiter must also block newcomers that overlap it, or the
        // waiter could starve.
        let mut t = LockTable::new();
        let a = t.acquire(r(0, 8), 1); // held
        let b = t.acquire(r(0, 16), 2); // queued (overlaps a)
        let c = t.acquire(r(8, 8), 3); // disjoint from a but overlaps b → must queue
        assert!(!c.is_granted());

        let grants = t.release(a.token()).unwrap();
        // b is granted; c still conflicts with b.
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].requester, 2);
        let grants = t.release(b.token()).unwrap();
        assert_eq!(grants[0].requester, 3);
    }

    #[test]
    fn disjoint_waiters_granted_together() {
        let mut t = LockTable::new();
        let a = t.acquire(r(0, 32), 1); // held, covers everything
        let b = t.acquire(r(0, 8), 2);
        let c = t.acquire(r(16, 8), 3);
        assert!(!b.is_granted() && !c.is_granted());
        let grants = t.release(a.token()).unwrap();
        assert_eq!(grants.len(), 2, "both disjoint waiters granted");
    }

    #[test]
    fn release_unknown_token_errors() {
        let mut t = LockTable::new();
        assert!(matches!(
            t.release(99),
            Err(DsmError::LockNotHeld { token: 99 })
        ));
    }

    #[test]
    fn holder_of_reports() {
        let mut t = LockTable::new();
        t.acquire(r(0, 8), 7);
        assert_eq!(t.holder_of(&r(4, 2)), Some(7));
        assert_eq!(t.holder_of(&r(16, 2)), None);
    }

    #[test]
    fn same_process_reacquire_also_queues() {
        // The model's locks are not reentrant: a second request for the same
        // area queues even from the same rank (callers never do this).
        let mut t = LockTable::new();
        let a = t.acquire(r(0, 8), 1);
        let b = t.acquire(r(0, 8), 1);
        assert!(a.is_granted());
        assert!(!b.is_granted());
    }
}

//! Per-process private and public memory segments (Fig 1).

use crate::addr::{GlobalAddr, MemRange, Segment};
use crate::error::DsmError;
use crate::Rank;

/// The two memory segments one process maps.
///
/// The *public* segment is part of the global address space and may be read
/// and written by any process (through the NIC); the *private* segment is
/// owner-only. The paper stresses that the owner's own accesses to its
/// public segment go through the same rules as remote ones — callers enforce
/// that by routing every public access through the same check/monitor path.
#[derive(Debug, Clone)]
pub struct ProcessMemory {
    rank: Rank,
    private: Vec<u8>,
    public: Vec<u8>,
}

impl ProcessMemory {
    /// Allocate both segments, zero-initialised.
    pub fn new(rank: Rank, private_len: usize, public_len: usize) -> Self {
        ProcessMemory {
            rank,
            private: vec![0; private_len],
            public: vec![0; public_len],
        }
    }

    /// Owning rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Length of a segment.
    pub fn segment_len(&self, segment: Segment) -> usize {
        match segment {
            Segment::Private => self.private.len(),
            Segment::Public => self.public.len(),
        }
    }

    fn segment(&self, segment: Segment) -> &[u8] {
        match segment {
            Segment::Private => &self.private,
            Segment::Public => &self.public,
        }
    }

    fn segment_mut(&mut self, segment: Segment) -> &mut [u8] {
        match segment {
            Segment::Private => &mut self.private,
            Segment::Public => &mut self.public,
        }
    }

    fn check(&self, range: &MemRange, accessor: Rank) -> Result<(), DsmError> {
        if range.addr.rank != self.rank {
            return Err(DsmError::BadRank {
                rank: range.addr.rank,
                n: self.rank + 1,
            });
        }
        if !range.addr.accessible_by(accessor) {
            return Err(DsmError::PrivateViolation {
                accessor,
                addr: range.addr,
            });
        }
        let seg_len = self.segment_len(range.addr.segment);
        if range.end() > seg_len {
            return Err(DsmError::OutOfBounds {
                range: *range,
                segment_len: seg_len,
            });
        }
        Ok(())
    }

    /// Read `range` on behalf of `accessor`.
    pub fn read(&self, range: &MemRange, accessor: Rank) -> Result<Vec<u8>, DsmError> {
        self.check(range, accessor)?;
        let seg = self.segment(range.addr.segment);
        Ok(seg[range.addr.offset..range.end()].to_vec())
    }

    /// Write `data` at `range.addr` on behalf of `accessor`.
    ///
    /// # Panics
    /// Panics if `data.len() != range.len` (caller constructs both).
    pub fn write(&mut self, range: &MemRange, data: &[u8], accessor: Rank) -> Result<(), DsmError> {
        assert_eq!(data.len(), range.len, "data length must match range");
        self.check(range, accessor)?;
        let off = range.addr.offset;
        let seg = self.segment_mut(range.addr.segment);
        seg[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Convenience: read a little-endian `u64` from `addr`.
    pub fn read_u64(&self, addr: GlobalAddr, accessor: Rank) -> Result<u64, DsmError> {
        let bytes = self.read(&addr.range(8), accessor)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Convenience: write a little-endian `u64` at `addr`.
    pub fn write_u64(
        &mut self,
        addr: GlobalAddr,
        value: u64,
        accessor: Rank,
    ) -> Result<(), DsmError> {
        self.write(&addr.range(8), &value.to_le_bytes(), accessor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> ProcessMemory {
        ProcessMemory::new(1, 64, 128)
    }

    #[test]
    fn zero_initialised() {
        let m = mem();
        let r = GlobalAddr::public(1, 0).range(16);
        assert_eq!(m.read(&r, 0).unwrap(), vec![0; 16]);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut m = mem();
        let r = GlobalAddr::public(1, 8).range(4);
        m.write(&r, &[1, 2, 3, 4], 2).unwrap();
        assert_eq!(m.read(&r, 0).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn remote_private_access_rejected() {
        let mut m = mem();
        let r = GlobalAddr::private(1, 0).range(4);
        assert!(matches!(
            m.read(&r, 0),
            Err(DsmError::PrivateViolation { accessor: 0, .. })
        ));
        assert!(m.write(&r, &[0; 4], 0).is_err());
        // Owner succeeds.
        assert!(m.write(&r, &[9; 4], 1).is_ok());
        assert_eq!(m.read(&r, 1).unwrap(), vec![9; 4]);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let m = mem();
        let r = GlobalAddr::public(1, 120).range(16);
        assert!(matches!(m.read(&r, 0), Err(DsmError::OutOfBounds { .. })));
    }

    #[test]
    fn exact_end_is_in_bounds() {
        let m = mem();
        let r = GlobalAddr::public(1, 112).range(16);
        assert!(m.read(&r, 0).is_ok());
    }

    #[test]
    fn wrong_rank_rejected() {
        let m = mem();
        let r = GlobalAddr::public(0, 0).range(4);
        assert!(matches!(m.read(&r, 0), Err(DsmError::BadRank { .. })));
    }

    #[test]
    fn u64_helpers() {
        let mut m = mem();
        let a = GlobalAddr::public(1, 16);
        m.write_u64(a, 0xDEADBEEF, 1).unwrap();
        assert_eq!(m.read_u64(a, 0).unwrap(), 0xDEADBEEF);
    }

    #[test]
    #[should_panic(expected = "data length must match")]
    fn mismatched_write_panics() {
        let mut m = mem();
        let r = GlobalAddr::public(1, 0).range(4);
        let _ = m.write(&r, &[1, 2], 1);
    }
}

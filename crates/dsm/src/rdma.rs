//! RDMA atomicity at the owner's NIC — the Fig 3 rule.
//!
//! §III-B: "The get operation is atomic (and therefore, blocking). If a
//! thread gets some data and writes it in a given place of its public
//! memory, no other thread can write at this place before the get is
//! finished. The second operation is delayed until the end of the first
//! one (figure 3)."
//!
//! The owner's NIC therefore tracks in-progress gets on its memory; a put
//! that arrives for an overlapping range is parked and applied only when
//! the get completes. Gets of disjoint ranges and concurrent gets of the
//! same range (Fig 4 — reads don't conflict) proceed immediately.

use std::collections::VecDeque;

use bytes::Bytes;

use crate::addr::MemRange;
use crate::error::DsmError;
use crate::proto::OpToken;
use crate::Rank;

/// A put parked behind an in-progress get.
#[derive(Debug, Clone)]
pub struct DeferredPut {
    /// Destination range.
    pub dst: MemRange,
    /// Data to apply.
    pub data: Bytes,
    /// Completion token to ack once applied.
    pub token: OpToken,
    /// Initiating rank (for the ack).
    pub initiator: Rank,
}

#[derive(Debug, Clone)]
struct ActiveGet {
    token: OpToken,
    range: MemRange,
}

/// Per-rank NIC state tracking RDMA atomicity.
#[derive(Debug, Default)]
pub struct RdmaEngine {
    active_gets: Vec<ActiveGet>,
    deferred: VecDeque<DeferredPut>,
}

impl RdmaEngine {
    /// Fresh engine.
    pub fn new() -> Self {
        RdmaEngine::default()
    }

    /// Record that a get on `range` has started (request arrived at the
    /// owner; the range stays protected until [`RdmaEngine::end_get`]).
    pub fn begin_get(&mut self, token: OpToken, range: MemRange) {
        self.active_gets.push(ActiveGet { token, range });
    }

    /// True when a put to `dst` must be deferred (Fig 3).
    pub fn must_defer_put(&self, dst: &MemRange) -> bool {
        self.active_gets.iter().any(|g| g.range.overlaps(dst))
    }

    /// Submit a put: either apply it now (caller writes memory) or park it.
    /// Returns `None` when the caller may apply immediately, or `Some(())`
    /// when the put was deferred.
    pub fn submit_put(&mut self, put: DeferredPut) -> Option<DeferredPut> {
        if self.must_defer_put(&put.dst) {
            self.deferred.push_back(put);
            None
        } else {
            Some(put)
        }
    }

    /// A get completed (its reply was delivered); returns every deferred put
    /// that is now applicable, in arrival order.
    pub fn end_get(&mut self, token: OpToken) -> Result<Vec<DeferredPut>, DsmError> {
        let idx = self
            .active_gets
            .iter()
            .position(|g| g.token == token)
            .ok_or(DsmError::UnknownOp { token })?;
        self.active_gets.swap_remove(idx);

        let mut ready = Vec::new();
        let mut still = VecDeque::new();
        let deferred = std::mem::take(&mut self.deferred);
        for put in deferred {
            if self.must_defer_put(&put.dst) {
                still.push_back(put);
            } else {
                ready.push(put);
            }
        }
        self.deferred = still;
        Ok(ready)
    }

    /// Number of gets currently protecting ranges.
    pub fn active_gets(&self) -> usize {
        self.active_gets.len()
    }

    /// Number of parked puts.
    pub fn deferred_puts(&self) -> usize {
        self.deferred.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::GlobalAddr;

    fn r(offset: usize, len: usize) -> MemRange {
        GlobalAddr::public(0, offset).range(len)
    }

    fn put(offset: usize, len: usize, token: OpToken) -> DeferredPut {
        DeferredPut {
            dst: r(offset, len),
            data: Bytes::from(vec![0xAB; len]),
            token,
            initiator: 2,
        }
    }

    #[test]
    fn put_without_get_applies_immediately() {
        let mut e = RdmaEngine::new();
        assert!(e.submit_put(put(0, 8, 1)).is_some());
        assert_eq!(e.deferred_puts(), 0);
    }

    #[test]
    fn fig3_put_deferred_until_get_ends() {
        let mut e = RdmaEngine::new();
        e.begin_get(10, r(0, 16));
        assert!(e.submit_put(put(8, 8, 1)).is_none(), "overlap → deferred");
        assert_eq!(e.deferred_puts(), 1);
        let ready = e.end_get(10).unwrap();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].token, 1);
        assert_eq!(e.deferred_puts(), 0);
    }

    #[test]
    fn disjoint_put_not_deferred() {
        let mut e = RdmaEngine::new();
        e.begin_get(10, r(0, 8));
        assert!(e.submit_put(put(8, 8, 1)).is_some());
    }

    #[test]
    fn concurrent_gets_do_not_block_each_other() {
        // Fig 4: two gets of the same variable proceed concurrently.
        let mut e = RdmaEngine::new();
        e.begin_get(1, r(0, 8));
        e.begin_get(2, r(0, 8));
        assert_eq!(e.active_gets(), 2);
        // A put is blocked by both; ends only after both complete.
        assert!(e.submit_put(put(0, 8, 9)).is_none());
        assert!(e.end_get(1).unwrap().is_empty(), "still one active get");
        let ready = e.end_get(2).unwrap();
        assert_eq!(ready.len(), 1);
    }

    #[test]
    fn deferred_puts_keep_arrival_order() {
        let mut e = RdmaEngine::new();
        e.begin_get(1, r(0, 16));
        assert!(e.submit_put(put(0, 8, 100)).is_none());
        assert!(e.submit_put(put(8, 8, 101)).is_none());
        let ready = e.end_get(1).unwrap();
        let tokens: Vec<_> = ready.iter().map(|p| p.token).collect();
        assert_eq!(tokens, vec![100, 101]);
    }

    #[test]
    fn put_behind_two_gets_waits_for_both() {
        let mut e = RdmaEngine::new();
        e.begin_get(1, r(0, 8));
        e.begin_get(2, r(4, 8));
        assert!(e.submit_put(put(0, 12, 7)).is_none());
        assert!(e.end_get(2).unwrap().is_empty());
        assert_eq!(e.end_get(1).unwrap().len(), 1);
    }

    #[test]
    fn unknown_get_token_errors() {
        let mut e = RdmaEngine::new();
        assert!(matches!(
            e.end_get(42),
            Err(DsmError::UnknownOp { token: 42 })
        ));
    }
}

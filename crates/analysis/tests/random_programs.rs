//! Property test: the static analyzer's verdicts bound the dynamic
//! oracle's on randomly generated small programs.
//!
//! A gene vector decodes into a 3-rank workload mixing unsynchronised
//! puts, gets, lock-protected puts, computes and (balanced) barriers.
//! For every generated program and ≥16 dynamic schedules:
//!
//! * **soundness of `NeverRaces`** — a site the analyzer grades race-free
//!   never appears in [`Oracle::analyze`]'s ground truth (equivalently:
//!   every dynamic race site is in the static catalogue);
//! * **completeness of `AlwaysRaces`** — a site the analyzer grades
//!   always-racing is reported by the oracle on *every* sampled schedule.
//!
//! `ScheduleDependent` sites are constrained only by the first property:
//! they may race or not, per schedule.

use dsm::GlobalAddr;
use dsm_analysis::{analyze_programs, Verdict};
use proptest::prelude::*;
use race_core::Oracle;
use simulator::program::{Program, ProgramBuilder};
use simulator::{Engine, SimConfig};

const RANKS: usize = 3;
const WORDS: usize = 2;
const SEEDS: u64 = 16;

/// Word `w` of rank 0's public segment — the shared state all ranks hit.
fn word(w: u64) -> dsm::MemRange {
    GlobalAddr::public(0, (w as usize % WORDS) * 8).range(8)
}

/// Decode a gene vector into one balanced multi-phase workload.
fn decode(genes: &[u64]) -> Vec<Program> {
    let mut at = 0usize;
    let mut gene = || {
        let g = genes[at % genes.len()];
        at += 1;
        g
    };
    let phases = 1 + (gene() % 3) as usize;
    let mut builders: Vec<ProgramBuilder> = (0..RANKS).map(ProgramBuilder::new).collect();
    for phase in 0..phases {
        for rank in 0..RANKS {
            let scratch = GlobalAddr::private(rank, 0).range(8);
            let ops = gene() % 4;
            let mut b = builders.remove(rank);
            for _ in 0..ops {
                let w = word(gene());
                b = match gene() % 4 {
                    0 => b.put_u64(gene(), w),
                    1 => b.get(w, scratch),
                    2 => b.lock(w).get(w, scratch).put_u64(gene(), w).unlock(w),
                    _ => b.compute(100 * (gene() % 5)),
                };
            }
            builders.insert(rank, b);
        }
        // Phase boundaries are all-or-nothing barriers, so counts always
        // balance across ranks.
        if phase + 1 < phases {
            builders = builders.into_iter().map(|b| b.barrier()).collect();
        }
    }
    builders.into_iter().map(|b| b.build()).collect()
}

proptest! {
    #[test]
    fn static_verdicts_bound_the_dynamic_oracle(
        genes in collection::vec(0u64..u64::MAX, 48)
    ) {
        let programs = decode(&genes);
        let analysis = match analyze_programs(&programs) {
            Ok(a) => a,
            Err(e) => panic!("generated program rejected: {e}"),
        };
        let catalogue = analysis.racy_sites();
        let always: Vec<(usize, usize)> = catalogue
            .iter()
            .copied()
            .filter(|&s| analysis.site_verdict(s) == Some(Verdict::AlwaysRaces))
            .collect();
        for seed in 0..SEEDS {
            let cfg = SimConfig::debugging(RANKS).with_seed(seed);
            let r = Engine::new(cfg, programs.clone()).run();
            prop_assert!(r.stuck.is_empty(), "seed {seed}: ranks wedged");
            prop_assert!(r.errors.is_empty(), "seed {seed}: substrate errors");
            let oracle = Oracle::analyze(&r.trace);
            let mut dynamic: Vec<(usize, usize)> =
                oracle.truth_sites().into_iter().collect();
            dynamic.sort_unstable();
            for site in &dynamic {
                prop_assert!(
                    catalogue.contains(site),
                    "seed {seed}: dynamic race at {site:?} graded NeverRaces statically \
                     (catalogue {catalogue:?})"
                );
            }
            for site in &always {
                prop_assert!(
                    dynamic.contains(site),
                    "seed {seed}: AlwaysRaces site {site:?} missing from dynamic truth \
                     {dynamic:?}"
                );
            }
        }
    }
}

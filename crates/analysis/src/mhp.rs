//! The static MHP (may-happen-in-parallel) race analyzer.
//!
//! Consumes the per-rank straight-line [`simulator::program::Program`]s of
//! a [`Workload`] and rebuilds, *statically*, the happens-before structure
//! the dynamic oracle replays from a trace:
//!
//! * **program order** — every rank's accesses form a chain (the engine
//!   records accesses in program order: under a detecting kind, a put's
//!   remote apply is fenced by the FIFO clock-push ack before the
//!   initiator proceeds);
//! * **barrier epochs** — the `k`-th barrier is a global rendezvous, so
//!   everything before any rank's barrier `k` must-happens-before
//!   everything after any rank's barrier `k` (**must** edges: present in
//!   every schedule);
//! * **program-lock hand-offs** — a release of lock `L` followed by an
//!   acquire of `L` on another rank orders the two critical sections, but
//!   *which direction* the hand-off runs is schedule-dependent (**may**
//!   edges) — unless both conflicting accesses hold a common lock, in
//!   which case mutual exclusion orders them in every schedule;
//! * **data-flow absorb** — a read that observes a remote write orders the
//!   reader's *subsequent* accesses after that write (never the read
//!   itself — Algorithm 2 checks before it absorbs). Whether the write
//!   lands before the read is schedule-dependent (**may** edges).
//!
//! Two conflicting accesses (different ranks, overlapping ranges, at
//! least one write, not both NIC-serialised atomics — the same conflict
//! rule as [`race_core::Oracle`]) are then graded:
//!
//! * must-path either way, or a common held lock → [`Verdict::NeverRaces`];
//! * otherwise a may-path either way → [`Verdict::ScheduleDependent`];
//! * otherwise → [`Verdict::AlwaysRaces`] (no schedule orders them).

use std::collections::HashMap;

use dsm::MemRange;
use race_core::{site_of, AccessKind, LockId, SiteKey};
use simulator::program::{Instr, Program, Src};
use simulator::workloads::{RaceGrade, Workload};

/// The three-valued verdict on one conflicting access pair (or one site).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Verdict {
    /// Ordered (or mutually excluded) in every schedule.
    NeverRaces,
    /// Orderable by a dynamic edge in some schedules only.
    ScheduleDependent,
    /// No schedule carries any ordering path: races in every run.
    AlwaysRaces,
}

impl Verdict {
    /// Stable label for report lines.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::NeverRaces => "never",
            Verdict::ScheduleDependent => "schedule-dependent",
            Verdict::AlwaysRaces => "always",
        }
    }
}

/// One statically extracted memory access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticAccess {
    /// Executing rank (the *process* of the access — for puts and gets
    /// this is the initiator, matching the engine's trace attribution).
    pub rank: usize,
    /// Program counter of the originating instruction.
    pub pc: usize,
    /// Read or write.
    pub kind: AccessKind,
    /// The range touched.
    pub range: MemRange,
    /// True for NIC-serialised atomics (atomic/atomic pairs never race).
    pub atomic: bool,
    /// Program locks held while the access executes.
    pub held: Vec<LockId>,
}

/// The verdict on one conflicting access pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairVerdict {
    /// Index of the first access in [`Analysis::accesses`].
    pub a: usize,
    /// Index of the second access in [`Analysis::accesses`].
    pub b: usize,
    /// The conflict's site key (same arithmetic as the oracle's scoring).
    pub site: SiteKey,
    /// The classification.
    pub verdict: Verdict,
}

/// The aggregated verdict on one site: `AlwaysRaces` dominates
/// `ScheduleDependent` dominates `NeverRaces` across the site's pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteVerdict {
    /// The site key.
    pub site: SiteKey,
    /// The strongest pair verdict at this site.
    pub verdict: Verdict,
    /// Number of conflicting pairs aggregated.
    pub pairs: usize,
}

/// Why a workload cannot be analyzed (the program would wedge or is
/// malformed; the engine would surface the same defect dynamically).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// Ranks reach different global-barrier counts: the run would wedge at
    /// the first barrier some rank never joins.
    UnbalancedBarriers {
        /// Barrier count per rank.
        counts: Vec<usize>,
    },
    /// An `Unlock` of a range whose lock the rank does not hold.
    UnmatchedUnlock {
        /// Offending rank.
        rank: usize,
        /// Offending program counter.
        pc: usize,
    },
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::UnbalancedBarriers { counts } => {
                write!(f, "unbalanced barrier counts across ranks: {counts:?}")
            }
            AnalysisError::UnmatchedUnlock { rank, pc } => {
                write!(f, "P{rank} pc={pc}: unlock of a lock it does not hold")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

/// The full static analysis of one workload.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Every extracted access, in (rank, program-order) order.
    pub accesses: Vec<StaticAccess>,
    /// Every conflicting pair's verdict.
    pub pairs: Vec<PairVerdict>,
    /// Per-site aggregation, sorted by site key (sites whose every pair is
    /// `NeverRaces` are included with that verdict).
    pub sites: Vec<SiteVerdict>,
}

impl Analysis {
    /// Sites that can race in at least one schedule, sorted — the static
    /// counterpart of [`simulator::workloads::ScenarioTruth::racy_sites`].
    pub fn racy_sites(&self) -> Vec<SiteKey> {
        self.sites
            .iter()
            .filter(|s| s.verdict != Verdict::NeverRaces)
            .map(|s| s.site)
            .collect()
    }

    /// The aggregated verdict at one site, if any conflict exists there.
    pub fn site_verdict(&self, site: SiteKey) -> Option<Verdict> {
        self.sites
            .iter()
            .find(|s| s.site == site)
            .map(|s| s.verdict)
    }

    /// The workload-level grade: `Never` when no site can race, `Always`
    /// when *every* racy site races in every schedule (the contract of
    /// [`simulator::workloads::ScenarioTruth::always`]), `Sometimes`
    /// otherwise.
    pub fn grade(&self) -> RaceGrade {
        let racy: Vec<&SiteVerdict> = self
            .sites
            .iter()
            .filter(|s| s.verdict != Verdict::NeverRaces)
            .collect();
        if racy.is_empty() {
            RaceGrade::Never
        } else if racy.iter().all(|s| s.verdict == Verdict::AlwaysRaces) {
            RaceGrade::Always
        } else {
            RaceGrade::Sometimes
        }
    }
}

/// A node of the static HB graph.
#[derive(Debug, Clone)]
enum NodeKind {
    /// An access (index into the access table).
    Access(usize),
    /// A program-lock acquire.
    Lock(LockId),
    /// A program-lock release.
    Unlock(LockId),
    /// A global-barrier rendezvous point.
    Barrier,
}

struct Graph {
    accesses: Vec<StaticAccess>,
    nodes: Vec<NodeKind>,
    /// Chain successor within the owning rank (`None` at each rank's end).
    chain_next: Vec<Option<usize>>,
    node_rank: Vec<usize>,
    must: Vec<Vec<usize>>,
    may_extra: Vec<Vec<usize>>,
}

fn lock_id(range: &MemRange) -> LockId {
    // The engine keys program locks by (owner rank, offset) — see
    // `Proc::held_lock_ids`.
    (range.addr.rank, range.addr.offset)
}

fn build_graph(programs: &[Program]) -> Result<Graph, AnalysisError> {
    let mut accesses = Vec::new();
    let mut nodes = Vec::new();
    let mut chain_next = Vec::new();
    let mut node_rank = Vec::new();
    let mut barrier_counts = Vec::with_capacity(programs.len());
    // (rank, k) → node id of that rank's k-th barrier.
    let mut barrier_nodes: Vec<Vec<usize>> = Vec::with_capacity(programs.len());

    for (rank, prog) in programs.iter().enumerate() {
        let mut held: Vec<LockId> = Vec::new();
        let mut barriers_here = Vec::new();
        let mut prev: Option<usize> = None;
        let push = |kind: NodeKind,
                    nodes: &mut Vec<NodeKind>,
                    chain_next: &mut Vec<Option<usize>>,
                    node_rank: &mut Vec<usize>,
                    prev: &mut Option<usize>| {
            let id = nodes.len();
            nodes.push(kind);
            chain_next.push(None);
            node_rank.push(rank);
            if let Some(p) = *prev {
                chain_next[p] = Some(id);
            }
            *prev = Some(id);
            id
        };
        let access = |rank: usize,
                      pc: usize,
                      kind: AccessKind,
                      range: MemRange,
                      atomic: bool,
                      held: &[LockId],
                      accesses: &mut Vec<StaticAccess>|
         -> NodeKind {
            accesses.push(StaticAccess {
                rank,
                pc,
                kind,
                range,
                atomic,
                held: held.to_vec(),
            });
            NodeKind::Access(accesses.len() - 1)
        };
        for (pc, instr) in prog.iter().enumerate() {
            match instr {
                Instr::Put { src, dst } => {
                    if let Src::Range(r) = src {
                        let k = access(rank, pc, AccessKind::Read, *r, false, &held, &mut accesses);
                        push(k, &mut nodes, &mut chain_next, &mut node_rank, &mut prev);
                    }
                    let k = access(
                        rank,
                        pc,
                        AccessKind::Write,
                        *dst,
                        false,
                        &held,
                        &mut accesses,
                    );
                    push(k, &mut nodes, &mut chain_next, &mut node_rank, &mut prev);
                }
                Instr::Get { src, dst } => {
                    let k = access(
                        rank,
                        pc,
                        AccessKind::Read,
                        *src,
                        false,
                        &held,
                        &mut accesses,
                    );
                    push(k, &mut nodes, &mut chain_next, &mut node_rank, &mut prev);
                    let k = access(
                        rank,
                        pc,
                        AccessKind::Write,
                        *dst,
                        false,
                        &held,
                        &mut accesses,
                    );
                    push(k, &mut nodes, &mut chain_next, &mut node_rank, &mut prev);
                }
                Instr::LocalRead { range } => {
                    let k = access(
                        rank,
                        pc,
                        AccessKind::Read,
                        *range,
                        false,
                        &held,
                        &mut accesses,
                    );
                    push(k, &mut nodes, &mut chain_next, &mut node_rank, &mut prev);
                }
                Instr::LocalWrite { range, .. } => {
                    let k = access(
                        rank,
                        pc,
                        AccessKind::Write,
                        *range,
                        false,
                        &held,
                        &mut accesses,
                    );
                    push(k, &mut nodes, &mut chain_next, &mut node_rank, &mut prev);
                }
                Instr::Atomic { target, .. } => {
                    // The NIC's RMW records an atomic read then an atomic
                    // write at the target; a `fetch_into` store is not a
                    // traced access.
                    let k = access(
                        rank,
                        pc,
                        AccessKind::Read,
                        *target,
                        true,
                        &held,
                        &mut accesses,
                    );
                    push(k, &mut nodes, &mut chain_next, &mut node_rank, &mut prev);
                    let k = access(
                        rank,
                        pc,
                        AccessKind::Write,
                        *target,
                        true,
                        &held,
                        &mut accesses,
                    );
                    push(k, &mut nodes, &mut chain_next, &mut node_rank, &mut prev);
                }
                Instr::Lock { range } => {
                    let lid = lock_id(range);
                    held.push(lid);
                    push(
                        NodeKind::Lock(lid),
                        &mut nodes,
                        &mut chain_next,
                        &mut node_rank,
                        &mut prev,
                    );
                }
                Instr::Unlock { range } => {
                    let lid = lock_id(range);
                    match held.iter().rposition(|l| *l == lid) {
                        Some(i) => {
                            held.remove(i);
                        }
                        None => return Err(AnalysisError::UnmatchedUnlock { rank, pc }),
                    }
                    push(
                        NodeKind::Unlock(lid),
                        &mut nodes,
                        &mut chain_next,
                        &mut node_rank,
                        &mut prev,
                    );
                }
                Instr::Barrier => {
                    let id = push(
                        NodeKind::Barrier,
                        &mut nodes,
                        &mut chain_next,
                        &mut node_rank,
                        &mut prev,
                    );
                    barriers_here.push(id);
                }
                Instr::Compute { .. } => {}
            }
        }
        barrier_counts.push(barriers_here.len());
        barrier_nodes.push(barriers_here);
    }

    let n_barriers = barrier_counts.first().copied().unwrap_or(0);
    if barrier_counts.iter().any(|&c| c != n_barriers) {
        return Err(AnalysisError::UnbalancedBarriers {
            counts: barrier_counts,
        });
    }

    let program_nodes = nodes.len();
    let mut must = vec![Vec::new(); program_nodes + n_barriers];
    let may_extra = vec![Vec::new(); program_nodes + n_barriers];

    // Program-order chains.
    for (id, next) in chain_next.iter().enumerate() {
        if let Some(nx) = next {
            must[id].push(*nx);
        }
    }
    // Barrier rendezvous: every rank's k-th barrier node meets at a virtual
    // join node, which releases every rank's continuation.
    for k in 0..n_barriers {
        let join = program_nodes + k;
        for per_rank in &barrier_nodes {
            let b = per_rank[k];
            must[b].push(join);
            if let Some(nx) = chain_next[b] {
                must[join].push(nx);
            }
        }
    }
    Ok(Graph {
        accesses,
        nodes,
        chain_next,
        node_rank,
        must,
        may_extra,
    })
}

/// Add the schedule-dependent (may) edges: cross-rank lock hand-offs and
/// data-flow absorb edges.
fn add_may_edges(g: &mut Graph) {
    let n = g.nodes.len();
    for u in 0..n {
        match g.nodes[u].clone() {
            NodeKind::Unlock(lid) => {
                for l in 0..n {
                    if g.node_rank[l] != g.node_rank[u] {
                        if let NodeKind::Lock(other) = g.nodes[l] {
                            if other == lid {
                                g.may_extra[u].push(l);
                            }
                        }
                    }
                }
            }
            NodeKind::Access(wi) if g.accesses[wi].kind == AccessKind::Write => {
                // Absorb: this write, once observed by a cross-rank read,
                // orders the reader's *subsequent* nodes (never the read).
                let (w_rank, w_range) = (g.accesses[wi].rank, g.accesses[wi].range);
                for r in 0..n {
                    if g.node_rank[r] == w_rank {
                        continue;
                    }
                    if let NodeKind::Access(ri) = g.nodes[r] {
                        let rd = &g.accesses[ri];
                        if rd.kind == AccessKind::Read && w_range.overlaps(&rd.range) {
                            if let Some(nx) = g.chain_next[r] {
                                g.may_extra[u].push(nx);
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// BFS reachability over `must` edges, optionally unioned with the may
/// extras. Results are memoized per source by the caller.
fn reach_from(g: &Graph, src: usize, with_may: bool) -> Vec<bool> {
    let n = g.must.len();
    let mut seen = vec![false; n];
    let mut stack = vec![src];
    seen[src] = true;
    while let Some(u) = stack.pop() {
        let follow = |vs: &[usize], seen: &mut Vec<bool>, stack: &mut Vec<usize>| {
            for &v in vs {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        };
        follow(&g.must[u], &mut seen, &mut stack);
        if with_may {
            follow(&g.may_extra[u], &mut seen, &mut stack);
        }
    }
    seen
}

/// Analyze the per-rank programs directly (the [`Workload`]-level entry
/// point is [`analyze`]).
pub fn analyze_programs(programs: &[Program]) -> Result<Analysis, AnalysisError> {
    let mut g = build_graph(programs)?;
    add_may_edges(&mut g);

    // Node id of each access (accesses were pushed in node order).
    let mut access_node = vec![0usize; g.accesses.len()];
    for (id, node) in g.nodes.iter().enumerate() {
        if let NodeKind::Access(i) = node {
            access_node[*i] = id;
        }
    }

    let mut must_reach: HashMap<usize, Vec<bool>> = HashMap::new();
    let mut may_reach: HashMap<usize, Vec<bool>> = HashMap::new();
    let mut pairs = Vec::new();
    for a in 0..g.accesses.len() {
        for b in (a + 1)..g.accesses.len() {
            let (x, y) = (&g.accesses[a], &g.accesses[b]);
            let conflicting = x.rank != y.rank
                && x.range.overlaps(&y.range)
                && (x.kind == AccessKind::Write || y.kind == AccessKind::Write)
                && !(x.atomic && y.atomic);
            if !conflicting {
                continue;
            }
            let (na, nb) = (access_node[a], access_node[b]);
            let must_ab = must_reach
                .entry(na)
                .or_insert_with(|| reach_from(&g, na, false))[nb];
            let must_ba = must_reach
                .entry(nb)
                .or_insert_with(|| reach_from(&g, nb, false))[na];
            let common_lock = x.held.iter().any(|l| y.held.contains(l));
            let verdict = if must_ab || must_ba || common_lock {
                Verdict::NeverRaces
            } else {
                let may_ab = may_reach
                    .entry(na)
                    .or_insert_with(|| reach_from(&g, na, true))[nb];
                let may_ba = may_reach
                    .entry(nb)
                    .or_insert_with(|| reach_from(&g, nb, true))[na];
                if may_ab || may_ba {
                    Verdict::ScheduleDependent
                } else {
                    Verdict::AlwaysRaces
                }
            };
            pairs.push(PairVerdict {
                a,
                b,
                site: site_of(&x.range, &y.range),
                verdict,
            });
        }
    }

    let mut by_site: HashMap<SiteKey, (Verdict, usize)> = HashMap::new();
    for p in &pairs {
        let e = by_site.entry(p.site).or_insert((Verdict::NeverRaces, 0));
        e.0 = e.0.max(p.verdict);
        e.1 += 1;
    }
    let mut sites: Vec<SiteVerdict> = by_site
        .into_iter()
        .map(|(site, (verdict, pairs))| SiteVerdict {
            site,
            verdict,
            pairs,
        })
        .collect();
    sites.sort_by_key(|s| s.site);

    Ok(Analysis {
        accesses: g.accesses,
        pairs,
        sites,
    })
}

/// Statically analyze a workload's programs.
pub fn analyze(w: &Workload) -> Result<Analysis, AnalysisError> {
    analyze_programs(&w.programs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm::GlobalAddr;
    use simulator::program::ProgramBuilder;

    fn word(rank: usize, w: usize) -> MemRange {
        GlobalAddr::public(rank, 8 * w).range(8)
    }

    #[test]
    fn unsynchronised_conflict_always_races() {
        let p0 = ProgramBuilder::new(0).put_u64(1, word(1, 0)).build();
        let p1 = ProgramBuilder::new(1)
            .local_write_u64(word(1, 0), 2)
            .build();
        let a = analyze_programs(&[p0, p1]).unwrap();
        assert_eq!(a.grade(), RaceGrade::Always);
        assert_eq!(a.racy_sites(), vec![(1, 0)]);
    }

    #[test]
    fn barrier_orders_across_ranks() {
        let p0 = ProgramBuilder::new(0)
            .put_u64(1, word(1, 0))
            .barrier()
            .build();
        let p1 = ProgramBuilder::new(1)
            .barrier()
            .local_read(word(1, 0))
            .build();
        let a = analyze_programs(&[p0, p1]).unwrap();
        assert_eq!(a.grade(), RaceGrade::Never);
        assert!(a.racy_sites().is_empty());
    }

    #[test]
    fn common_lock_means_never() {
        let w = word(1, 0);
        let p0 = ProgramBuilder::new(0)
            .lock(w)
            .put_u64(1, w)
            .unlock(w)
            .build();
        let p1 = ProgramBuilder::new(1)
            .lock(w)
            .local_write_u64(w, 2)
            .unlock(w)
            .build();
        let a = analyze_programs(&[p0, p1]).unwrap();
        assert_eq!(a.grade(), RaceGrade::Never);
    }

    #[test]
    fn one_sided_lock_is_schedule_dependent() {
        // Only the writer takes the lock: no mutual exclusion, but the
        // hand-off edge *can* order the reader's access in schedules where
        // the reader acquires after the writer released — wait, the reader
        // takes no lock at all here, so only the absorb path could order
        // anything; a WW pair with a prior read absorbs.
        let w = word(1, 0);
        let p0 = ProgramBuilder::new(0).put_u64(1, w).build();
        let p1 = ProgramBuilder::new(1)
            .local_read(w)
            .local_write_u64(w, 2)
            .build();
        let a = analyze_programs(&[p0, p1]).unwrap();
        // (p0.write, p1.read): nothing can order the read itself → always.
        // (p0.write, p1.write): p1's prior read may absorb p0's write →
        // schedule-dependent. Site aggregates to always.
        assert_eq!(a.grade(), RaceGrade::Always);
        let verdicts: Vec<Verdict> = a.pairs.iter().map(|p| p.verdict).collect();
        assert!(verdicts.contains(&Verdict::AlwaysRaces));
        assert!(verdicts.contains(&Verdict::ScheduleDependent));
    }

    #[test]
    fn atomic_pairs_never_conflict() {
        let w = word(1, 0);
        let p0 = ProgramBuilder::new(0).fetch_add(w, 1, None).build();
        let p1 = ProgramBuilder::new(1).fetch_add(w, 1, None).build();
        let a = analyze_programs(&[p0, p1]).unwrap();
        assert!(a.pairs.is_empty());
        assert_eq!(a.grade(), RaceGrade::Never);
    }

    #[test]
    fn unbalanced_barriers_rejected() {
        let p0 = ProgramBuilder::new(0).barrier().build();
        let p1 = ProgramBuilder::new(1).build();
        let e = analyze_programs(&[p0, p1]).unwrap_err();
        assert!(matches!(e, AnalysisError::UnbalancedBarriers { .. }));
    }

    #[test]
    fn unmatched_unlock_rejected() {
        let w = word(0, 0);
        let p0 = ProgramBuilder::new(0).unlock(w).build();
        let e = analyze_programs(&[p0]).unwrap_err();
        assert_eq!(e, AnalysisError::UnmatchedUnlock { rank: 0, pc: 0 });
    }
}

//! Static analysis for the reproduction: a schedule-free MHP/race
//! analyzer over `simulator` workload programs, and the repo's
//! never-panic lint pass.
//!
//! The paper's detector (and the offline [`race_core::Oracle`]) grade
//! *one observed schedule*. The [`mhp`] module instead grades the
//! program itself: it rebuilds the same happens-before edge kinds the
//! oracle replays dynamically — barrier epochs, program-lock hand-offs,
//! data-flow absorb edges — but splits them into **must** edges (present
//! in every schedule) and **may** edges (present in some schedules), and
//! classifies every conflicting access pair three ways:
//!
//! * [`mhp::Verdict::NeverRaces`] — must-ordered or mutually excluded in
//!   every schedule;
//! * [`mhp::Verdict::AlwaysRaces`] — no schedule carries any ordering
//!   path, so every run races;
//! * [`mhp::Verdict::ScheduleDependent`] — a may-path exists, so the
//!   outcome depends on the interleaving.
//!
//! This is the second, independent oracle behind `repro --analyze`:
//! static verdicts must agree exactly with [`race_core::Oracle::analyze`]
//! over dynamic runs on every scenario-matrix twin, and it is what lets
//! [`simulator::workloads::ScenarioTruth`] carry the three-valued
//! [`simulator::workloads::RaceGrade`] (the `sometimes` twins cannot be
//! certified by any single dynamic run).
//!
//! The [`lint`] module is unrelated machinery under the same
//! static-analysis roof: a std-only Rust token scanner that makes the
//! PR-6 one-off panic audit permanent (`repro --lint`), rejecting
//! `unwrap`/`expect`/`panic!`/`todo!` and decoder indexing in library
//! (non-test) code against a committed, justified allowlist. See
//! `docs/ANALYSIS.md` for both policies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lint;
pub mod mhp;

pub use lint::{run_lint, LintConfig, LintFinding, LintReport};
pub use mhp::{
    analyze, analyze_programs, Analysis, AnalysisError, PairVerdict, SiteVerdict, StaticAccess,
    Verdict,
};

//! The never-panic repo lint (`repro --lint`).
//!
//! PR 6 ran a one-off manual audit replacing library-path panics; this
//! module makes that audit permanent. A lightweight std-only Rust token
//! scanner walks every library source path — `src/` of the facade crate
//! and `crates/*/src` (the wire decoders `frame.rs` / `snapshot.rs`
//! additionally get an indexing rule, since a panicking slice index in a
//! decoder is a remote crash vector) — and rejects, outside `#[cfg(test)]`
//! items:
//!
//! * `.unwrap(` and `.expect(` calls,
//! * `panic!` and `todo!` invocations,
//! * index expressions (`expr[...]`) in the two wire decoders.
//!
//! Comments and string/char literals are stripped first (line numbers
//! preserved), so doc examples never flag. The committed allowlist
//! (`LINT_ALLOWLIST.txt` at the repo root) names the few justified sites;
//! **every entry must carry a justification comment on the line above**,
//! and entries that no longer match any finding fail the lint as stale,
//! so the list can only shrink or be consciously re-justified.
//!
//! `crates/compat/` is deliberately out of scope: the offline shims
//! reproduce external crates' documented panicking APIs (`proptest`'s
//! macro asserts, `criterion`'s harness), and their panics never reach
//! the library's op path. See `docs/ANALYSIS.md` for the policy.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// What the scanner flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Rule name: `unwrap`, `expect`, `panic`, `todo` or `index`.
    pub kind: &'static str,
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed (also the allowlist matching key).
    pub content: String,
}

impl LintFinding {
    /// The allowlist key for this finding.
    fn key(&self) -> (String, String, String) {
        (
            self.kind.to_string(),
            self.path.clone(),
            self.content.clone(),
        )
    }
}

/// Scanner configuration.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Repo root (the directory holding `crates/` and the allowlist).
    pub root: PathBuf,
}

impl LintConfig {
    /// Lint the repo rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        LintConfig { root: root.into() }
    }

    fn allowlist_path(&self) -> PathBuf {
        self.root.join("LINT_ALLOWLIST.txt")
    }
}

/// Outcome of a lint run.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Findings not covered by the allowlist (each fails the run).
    pub violations: Vec<LintFinding>,
    /// Allowlist entries that matched nothing (stale; each fails the run).
    pub stale: Vec<String>,
    /// Allowlist entries missing a justification comment (each fails).
    pub unjustified: Vec<String>,
    /// Findings covered by a justified allowlist entry.
    pub allowed: usize,
    /// Files scanned.
    pub files: usize,
}

impl LintReport {
    /// True when the tree is clean under the committed allowlist.
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.stale.is_empty() && self.unjustified.is_empty()
    }

    /// Human-readable summary lines (one per problem, plus a tail line).
    pub fn lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        for v in &self.violations {
            out.push(format!(
                "FAIL {}:{}: [{}] {}",
                v.path, v.line, v.kind, v.content
            ));
        }
        for s in &self.stale {
            out.push(format!("FAIL stale allowlist entry: {s}"));
        }
        for u in &self.unjustified {
            out.push(format!("FAIL allowlist entry without justification: {u}"));
        }
        let mut tail = String::new();
        let _ = write!(
            tail,
            "lint: {} file(s), {} allowed site(s), {} violation(s)",
            self.files,
            self.allowed,
            self.violations.len()
        );
        out.push(tail);
        out
    }
}

/// One parsed allowlist entry.
struct AllowEntry {
    kind: String,
    path: String,
    content: String,
    justified: bool,
    raw: String,
    hits: usize,
}

fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    let mut entries = Vec::new();
    let mut last_was_comment = false;
    for line in text.lines() {
        let t = line.trim();
        if t.is_empty() {
            last_was_comment = false;
            continue;
        }
        if let Some(rest) = t.strip_prefix('#') {
            // A justification comment must not be blank.
            last_was_comment = !rest.trim().is_empty();
            continue;
        }
        let mut parts = t.splitn(3, " @@ ");
        let kind = parts.next().unwrap_or_default().trim().to_string();
        let path = parts.next().unwrap_or_default().trim().to_string();
        let content = parts.next().unwrap_or_default().trim().to_string();
        entries.push(AllowEntry {
            kind,
            path,
            content,
            justified: last_was_comment,
            raw: t.to_string(),
            hits: 0,
        });
        last_was_comment = false;
    }
    entries
}

/// Strip comments and string/char literals, preserving line structure.
fn strip_source(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied();
        match c {
            '/' if next == Some('/') => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if next == Some('*') => {
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            out.push('\n');
                        }
                        i += 1;
                    }
                }
            }
            'r' | 'b' if is_raw_string_start(&b, i) => {
                i = skip_raw_string(&b, i, &mut out);
            }
            '"' => {
                i += 1;
                while i < b.len() {
                    if b[i] == '\\' {
                        i += 2;
                    } else if b[i] == '"' {
                        i += 1;
                        break;
                    } else {
                        if b[i] == '\n' {
                            out.push('\n');
                        }
                        i += 1;
                    }
                }
                out.push_str("\"\"");
            }
            '\'' => {
                // Distinguish a char literal from a lifetime: a literal is
                // `'x'` or `'\..'`; a lifetime quote is followed by an
                // identifier with no closing quote right after.
                if next == Some('\\') {
                    i += 3; // quote, backslash, escape head (covers '\'')
                    while i < b.len() && b[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                    out.push_str("' '");
                } else if b.get(i + 2) == Some(&'\'') {
                    i += 3;
                    out.push_str("' '");
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

fn is_raw_string_start(b: &[char], i: usize) -> bool {
    // r"..", r#".."#, br".., b"..", rb is not a thing; handle r/b prefixes.
    let mut j = i;
    if b.get(j) == Some(&'b') {
        j += 1;
    }
    if b.get(j) == Some(&'r') {
        j += 1;
    } else if b.get(i) == Some(&'b') {
        // plain byte string b"…": let the '"' arm strip it next iteration.
        return false;
    }
    while b.get(j) == Some(&'#') {
        j += 1;
    }
    b.get(j) == Some(&'"') && (b.get(i) == Some(&'r') || b.get(i) == Some(&'b'))
}

fn skip_raw_string(b: &[char], start: usize, out: &mut String) -> usize {
    let mut j = start;
    if b.get(j) == Some(&'b') {
        j += 1;
    }
    if b.get(j) == Some(&'r') {
        j += 1;
    }
    let mut hashes = 0;
    while b.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&'"') {
        // Not actually a raw string (e.g. the identifier `r#keyword`).
        out.push(b[start]);
        return start + 1;
    }
    j += 1;
    while j < b.len() {
        if b[j] == '\n' {
            out.push('\n');
            j += 1;
            continue;
        }
        if b[j] == '"' {
            let mut k = 0;
            while k < hashes && b.get(j + 1 + k) == Some(&'#') {
                k += 1;
            }
            if k == hashes {
                out.push_str("\"\"");
                return j + 1 + hashes;
            }
        }
        j += 1;
    }
    j
}

/// Blank out every `#[cfg(test)]` item (attribute through the matching
/// closing brace of the item's block), keeping line structure.
fn blank_test_items(stripped: &str) -> String {
    let chars: Vec<char> = stripped.chars().collect();
    let marker: Vec<char> = "#[cfg(test)]".chars().collect();
    let mut keep = vec![true; chars.len()];
    let mut i = 0;
    while i + marker.len() <= chars.len() {
        if chars[i..i + marker.len()] != marker[..] {
            i += 1;
            continue;
        }
        // Blank from the attribute to the end of the item's brace block.
        let mut j = i + marker.len();
        while j < chars.len() && chars[j] != '{' && chars[j] != ';' {
            j += 1;
        }
        if j < chars.len() && chars[j] == '{' {
            let mut depth = 0;
            while j < chars.len() {
                if chars[j] == '{' {
                    depth += 1;
                } else if chars[j] == '}' {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        for (k, flag) in keep.iter_mut().enumerate().take(j).skip(i) {
            if chars[k] != '\n' {
                *flag = false;
            }
        }
        i = j.max(i + 1);
    }
    chars
        .iter()
        .zip(keep.iter())
        .map(|(c, k)| if *k || *c == '\n' { *c } else { ' ' })
        .collect()
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Find rule hits on one stripped, test-blanked line.
fn scan_line(line: &str, decoder: bool, hits: &mut Vec<&'static str>) {
    let chars: Vec<char> = line.chars().collect();
    let find_calls = |name: &str, out: &mut Vec<&'static str>, kind: &'static str| {
        let pat: Vec<char> = name.chars().collect();
        let mut i = 0;
        while i + pat.len() <= chars.len() {
            if chars[i..i + pat.len()] == pat[..]
                && i > 0
                && chars[i - 1] == '.'
                && chars.get(i + pat.len()).map(|c| *c == '(').unwrap_or(false)
            {
                out.push(kind);
            }
            i += 1;
        }
    };
    find_calls("unwrap", hits, "unwrap");
    find_calls("expect", hits, "expect");
    for (name, kind) in [("panic!", "panic"), ("todo!", "todo")] {
        let pat: Vec<char> = name.chars().collect();
        let mut i = 0;
        while i + pat.len() <= chars.len() {
            if chars[i..i + pat.len()] == pat[..] && (i == 0 || !is_ident_char(chars[i - 1])) {
                hits.push(kind);
            }
            i += 1;
        }
    }
    if decoder {
        for i in 1..chars.len() {
            if chars[i] == '[' {
                // Index expression: `expr[`. Attributes (`#[`), types
                // (`: [`), slices (`&[`) have a non-expression char before.
                let prev = chars[i - 1];
                if is_ident_char(prev) || prev == ')' || prev == ']' {
                    hits.push("index");
                }
            }
        }
    }
}

fn scan_file(path: &Path, rel: &str, findings: &mut Vec<LintFinding>) -> io::Result<()> {
    let src = fs::read_to_string(path)?;
    let stripped = blank_test_items(&strip_source(&src));
    let decoder = rel.ends_with("frame.rs") || rel.ends_with("snapshot.rs");
    let raw_lines: Vec<&str> = src.lines().collect();
    for (idx, line) in stripped.lines().enumerate() {
        let mut hits = Vec::new();
        scan_line(line, decoder, &mut hits);
        hits.dedup();
        for kind in hits {
            findings.push(LintFinding {
                kind,
                path: rel.to_string(),
                line: idx + 1,
                content: raw_lines
                    .get(idx)
                    .map(|l| l.trim())
                    .unwrap_or("")
                    .to_string(),
            });
        }
    }
    Ok(())
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let p = entry.path();
        if p.is_dir() {
            walk_rs(&p, out)?;
        } else if p.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(p);
        }
    }
    Ok(())
}

/// The library source files in scope: `src/` of the facade and every
/// `crates/*/src` except the offline compat shims.
fn scope_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let facade = root.join("src");
    if facade.is_dir() {
        walk_rs(&facade, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in fs::read_dir(&crates)? {
            let entry = entry?;
            let p = entry.path();
            if !p.is_dir() || entry.file_name() == "compat" {
                continue;
            }
            let src = p.join("src");
            if src.is_dir() {
                walk_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Run the lint over the configured repo root.
pub fn run_lint(cfg: &LintConfig) -> io::Result<LintReport> {
    let mut findings = Vec::new();
    let files = scope_files(&cfg.root)?;
    let mut report = LintReport {
        files: files.len(),
        ..LintReport::default()
    };
    for f in &files {
        let rel = f
            .strip_prefix(&cfg.root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        scan_file(f, &rel, &mut findings)?;
    }
    let allow_text = match fs::read_to_string(cfg.allowlist_path()) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let mut entries = parse_allowlist(&allow_text);
    for e in &entries {
        if !e.justified {
            report.unjustified.push(e.raw.clone());
        }
    }
    for finding in findings {
        let (kind, path, content) = finding.key();
        let matched = entries
            .iter_mut()
            .find(|e| e.justified && e.kind == kind && e.path == path && e.content == content);
        match matched {
            Some(e) => {
                e.hits += 1;
                report.allowed += 1;
            }
            None => report.violations.push(finding),
        }
    }
    for e in &entries {
        if e.justified && e.hits == 0 {
            report.stale.push(e.raw.clone());
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_do_not_flag() {
        let src = r#"
// .unwrap() in a comment
/// doc: x.unwrap()
fn f() {
    let s = ".unwrap() panic! todo!";
    let c = '"';
    let _ = s.len();
    let _ = c;
}
"#;
        let stripped = blank_test_items(&strip_source(src));
        let mut hits = Vec::new();
        for line in stripped.lines() {
            scan_line(line, false, &mut hits);
        }
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn real_calls_flag_with_exact_identifiers() {
        let mut hits = Vec::new();
        scan_line("let x = y.unwrap();", false, &mut hits);
        scan_line("let x = y.expect(\"\");", false, &mut hits);
        scan_line("panic!(\"boom\");", false, &mut hits);
        scan_line("todo!();", false, &mut hits);
        assert_eq!(hits, vec!["unwrap", "expect", "panic", "todo"]);
        // Near-misses must not flag.
        let mut none = Vec::new();
        scan_line("let x = y.unwrap_or(0);", false, &mut none);
        scan_line("let x = y.expect_err(\"\");", false, &mut none);
        scan_line("let x = y.unwrap_or_else(f);", false, &mut none);
        scan_line("#[panic_handler]", false, &mut none);
        assert!(none.is_empty(), "{none:?}");
    }

    #[test]
    fn decoder_indexing_flags_only_index_expressions() {
        let mut hits = Vec::new();
        scan_line("let b = buf[4];", true, &mut hits);
        scan_line("let b = (f())[0];", true, &mut hits);
        assert_eq!(hits, vec!["index", "index"]);
        let mut none = Vec::new();
        scan_line("#[derive(Debug)]", true, &mut none);
        scan_line("let b: [u8; 4] = x;", true, &mut none);
        scan_line("fn f(b: &[u8]) {}", true, &mut none);
        assert!(none.is_empty(), "{none:?}");
    }

    #[test]
    fn cfg_test_items_are_blanked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let stripped = blank_test_items(&strip_source(src));
        let mut hits = Vec::new();
        for line in stripped.lines() {
            scan_line(line, false, &mut hits);
        }
        assert!(hits.is_empty(), "{hits:?}");
        // Line count is preserved for stable line numbers.
        assert_eq!(stripped.lines().count(), src.lines().count());
    }

    #[test]
    fn allowlist_requires_justification_and_rejects_stale() {
        let text = "\
# mutex poisoning is unreachable: workers catch_unwind
expect @@ crates/x/src/a.rs @@ lock().expect(\"poisoned\")

unwrap @@ crates/x/src/b.rs @@ v.unwrap()
";
        let entries = parse_allowlist(text);
        assert_eq!(entries.len(), 2);
        assert!(entries[0].justified);
        assert!(!entries[1].justified, "no comment above → unjustified");
    }

    #[test]
    fn lint_runs_clean_on_this_repo() {
        // The tier-1 enforcement point: the committed allowlist must cover
        // the tree exactly (no violations, no stale entries).
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = match run_lint(&LintConfig::new(root)) {
            Ok(r) => r,
            Err(e) => panic!("lint io error: {e}"),
        };
        assert!(report.ok(), "{:#?}", report.lines());
        assert!(report.files > 10, "scope unexpectedly small");
    }
}

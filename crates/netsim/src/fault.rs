//! Deterministic fault injection ("chaos") for the simulated interconnect.
//!
//! The paper assumes reliable, FIFO channels (§III); real interconnects
//! only approximate that, and the detection pipeline above this crate is
//! supposed to *signal* trouble rather than fall over when the assumption
//! cracks. A [`FaultPlan`] perturbs [`crate::Network`] delivery in four
//! seeded, per-link ways:
//!
//! | fault | effect on `Network::send` |
//! |---|---|
//! | **drop** | the message is consumed (id assigned, counted) but never scheduled — the receiver simply never sees it |
//! | **duplicate** | a second copy is scheduled behind the original on the same channel |
//! | **extra delay** | a fixed penalty is added to the modelled latency before the FIFO clamp |
//! | **reorder** | the arrival may slide *ahead* of the channel front by up to a window, breaking per-channel FIFO |
//!
//! Everything is driven by one `StdRng` seeded at construction: the same
//! plan over the same send sequence makes identical decisions, so a chaos
//! run is exactly as replayable as a healthy one. Each decision draws a
//! fixed number of samples regardless of outcome, keeping two plans with
//! different probabilities comparable on the same seed.
//!
//! Dropped messages are deliberately *not* retried here: a wedged rank is
//! the simulator's job to report (`RunResult::stuck`), never a panic —
//! the same "signalled, not fatal" stance the detector takes (§IV-D).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Rank;

/// Per-link fault probabilities and magnitudes. All probabilities are in
/// `[0, 1]`; the default is the all-zero (quiet) spec.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultSpec {
    /// Probability a message is silently dropped.
    pub drop: f64,
    /// Probability a message is delivered twice.
    pub duplicate: f64,
    /// Probability a message is delayed by [`FaultSpec::extra_delay_ns`].
    pub delay: f64,
    /// Added latency when a delay fault fires, nanoseconds.
    pub extra_delay_ns: u64,
    /// Probability a message may overtake earlier traffic on its channel.
    pub reorder: f64,
    /// How far ahead of the channel front a reordered message may slide,
    /// nanoseconds.
    pub reorder_window_ns: u64,
}

impl FaultSpec {
    /// True when no fault can ever fire under this spec.
    pub fn is_quiet(&self) -> bool {
        self.drop == 0.0 && self.duplicate == 0.0 && self.delay == 0.0 && self.reorder == 0.0
    }

    fn validate(&self) {
        for (name, p) in [
            ("drop", self.drop),
            ("duplicate", self.duplicate),
            ("delay", self.delay),
            ("reorder", self.reorder),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} probability out of range");
        }
    }
}

/// The outcome of one per-message fault decision (see
/// [`FaultPlan::decide`]). The quiet default is "no fault".
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultDecision {
    /// Consume the message without scheduling it.
    pub drop: bool,
    /// Schedule a second copy behind the original.
    pub duplicate: bool,
    /// Extra latency to add before the FIFO clamp, nanoseconds.
    pub extra_delay_ns: u64,
    /// How far ahead of the channel front this message may arrive,
    /// nanoseconds (0 keeps FIFO).
    pub reorder_ahead_ns: u64,
}

/// A seeded schedule of injected faults: a default [`FaultSpec`] plus
/// per-link overrides, all drawing from one deterministic RNG.
///
/// ```
/// use netsim::{FaultPlan, FaultSpec};
///
/// let spec = FaultSpec { drop: 0.5, ..FaultSpec::default() };
/// let mut a = FaultPlan::uniform(spec, 7);
/// let mut b = FaultPlan::uniform(spec, 7);
/// for _ in 0..32 {
///     assert_eq!(a.decide(0, 1).drop, b.decide(0, 1).drop);
/// }
/// ```
#[derive(Debug)]
pub struct FaultPlan {
    default: FaultSpec,
    /// Per-link overrides, checked before the default. Linear scan: plans
    /// name at most a handful of links.
    links: Vec<((Rank, Rank), FaultSpec)>,
    rng: StdRng,
}

impl FaultPlan {
    /// Apply `spec` to every link, drawing decisions from a `StdRng`
    /// seeded with `seed`.
    ///
    /// # Panics
    /// Panics if a probability is outside `[0, 1]`.
    pub fn uniform(spec: FaultSpec, seed: u64) -> Self {
        spec.validate();
        FaultPlan {
            default: spec,
            links: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A plan that never injects anything (the chaos harness's control
    /// arm — running it must be byte-identical to no plan at all).
    pub fn quiet(seed: u64) -> Self {
        FaultPlan::uniform(FaultSpec::default(), seed)
    }

    /// Override the spec for the directed link `src → dst`.
    ///
    /// # Panics
    /// Panics if a probability is outside `[0, 1]`.
    pub fn with_link(mut self, src: Rank, dst: Rank, spec: FaultSpec) -> Self {
        spec.validate();
        if let Some(entry) = self.links.iter_mut().find(|(l, _)| *l == (src, dst)) {
            entry.1 = spec;
        } else {
            self.links.push(((src, dst), spec));
        }
        self
    }

    /// The spec governing `src → dst`.
    pub fn spec_for(&self, src: Rank, dst: Rank) -> FaultSpec {
        self.links
            .iter()
            .find(|(l, _)| *l == (src, dst))
            .map(|(_, s)| *s)
            .unwrap_or(self.default)
    }

    /// Decide the fate of one message on `src → dst`. Always draws the
    /// same number of RNG samples, so decision streams are comparable
    /// across plans sharing a seed.
    pub fn decide(&mut self, src: Rank, dst: Rank) -> FaultDecision {
        let spec = self.spec_for(src, dst);
        let drop = self.rng.gen_bool(spec.drop);
        let duplicate = self.rng.gen_bool(spec.duplicate);
        let delay = self.rng.gen_bool(spec.delay);
        let reorder = self.rng.gen_bool(spec.reorder);
        FaultDecision {
            drop,
            // A dropped message has no copy to duplicate.
            duplicate: duplicate && !drop,
            extra_delay_ns: if delay && !drop {
                spec.extra_delay_ns
            } else {
                0
            },
            reorder_ahead_ns: if reorder && !drop {
                spec.reorder_window_ns
            } else {
                0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_never_fires() {
        let mut plan = FaultPlan::quiet(3);
        for i in 0..100 {
            let d = plan.decide(i % 3, (i + 1) % 3);
            assert!(!d.drop && !d.duplicate);
            assert_eq!(d.extra_delay_ns, 0);
            assert_eq!(d.reorder_ahead_ns, 0);
        }
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let spec = FaultSpec {
            drop: 0.3,
            duplicate: 0.3,
            delay: 0.3,
            extra_delay_ns: 500,
            reorder: 0.3,
            reorder_window_ns: 200,
        };
        let sample = |seed: u64| -> Vec<(bool, bool, u64, u64)> {
            let mut plan = FaultPlan::uniform(spec, seed);
            (0..64)
                .map(|_| {
                    let d = plan.decide(0, 1);
                    (d.drop, d.duplicate, d.extra_delay_ns, d.reorder_ahead_ns)
                })
                .collect()
        };
        assert_eq!(sample(42), sample(42));
        assert_ne!(sample(42), sample(43));
    }

    #[test]
    fn per_link_override_wins() {
        let quiet = FaultSpec::default();
        let noisy = FaultSpec {
            drop: 1.0,
            ..FaultSpec::default()
        };
        let mut plan = FaultPlan::uniform(quiet, 1).with_link(0, 1, noisy);
        assert!(plan.decide(0, 1).drop, "overridden link always drops");
        assert!(!plan.decide(1, 0).drop, "other links stay quiet");
        // Re-overriding replaces, not appends.
        let plan = FaultPlan::uniform(quiet, 1)
            .with_link(0, 1, noisy)
            .with_link(0, 1, quiet);
        assert!(plan.spec_for(0, 1).is_quiet());
    }

    #[test]
    fn drop_suppresses_the_other_faults() {
        let spec = FaultSpec {
            drop: 1.0,
            duplicate: 1.0,
            delay: 1.0,
            extra_delay_ns: 99,
            reorder: 1.0,
            reorder_window_ns: 99,
        };
        let mut plan = FaultPlan::uniform(spec, 5);
        let d = plan.decide(0, 1);
        assert!(d.drop);
        assert!(!d.duplicate);
        assert_eq!(d.extra_delay_ns, 0);
        assert_eq!(d.reorder_ahead_ns, 0);
    }

    #[test]
    fn quiet_detection() {
        assert!(FaultSpec::default().is_quiet());
        assert!(!FaultSpec {
            reorder: 0.1,
            ..FaultSpec::default()
        }
        .is_quiet());
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn bad_probability_rejected() {
        FaultPlan::uniform(
            FaultSpec {
                drop: 1.5,
                ..FaultSpec::default()
            },
            0,
        );
    }
}

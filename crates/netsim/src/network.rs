//! The network proper: scheduled delivery with per-channel FIFO.
//!
//! Vector-clock protocols (and the paper's Algorithm 5 clock updates) assume
//! reliable channels; we additionally guarantee FIFO per ordered pair
//! `(src, dst)` — matching both InfiniBand reliable-connected queue pairs
//! and the Cray SHMEM ordering the paper cites. Messages between different
//! pairs are *not* ordered relative to each other: that freedom is exactly
//! where the paper's Fig 5 races come from.

use crate::fault::FaultPlan;
use crate::latency::LatencyModel;
use crate::message::{Classify, Message, MsgId};
use crate::stats::NetStats;
use crate::time::{EventQueue, SimTime};
use crate::topology::Topology;
use crate::Rank;

/// A simulated interconnect carrying payloads of type `P`.
pub struct Network<P> {
    n: usize,
    topology: Topology,
    latency: Box<dyn LatencyModel>,
    in_flight: EventQueue<Message<P>>,
    /// Earliest legal delivery time per (src, dst) channel, enforcing FIFO.
    channel_front: Vec<SimTime>,
    next_id: MsgId,
    stats: NetStats,
    /// Optional fault injection (see [`crate::fault`]); `None` is the
    /// reliable network the paper assumes.
    faults: Option<FaultPlan>,
}

impl<P: Classify> Network<P> {
    /// A network of `n` ranks over `topology` using `latency`.
    pub fn new(n: usize, topology: Topology, latency: Box<dyn LatencyModel>) -> Self {
        Network {
            n,
            topology,
            latency,
            in_flight: EventQueue::new(),
            channel_front: vec![SimTime::ZERO; n * n],
            next_id: 0,
            stats: NetStats::new(),
            faults: None,
        }
    }

    /// [`Network::new`] with a fault-injection plan (see [`crate::fault`]).
    pub fn with_faults(
        n: usize,
        topology: Topology,
        latency: Box<dyn LatencyModel>,
        plan: FaultPlan,
    ) -> Self {
        let mut net = Network::new(n, topology, latency);
        net.faults = Some(plan);
        net
    }

    /// Install or clear the fault plan mid-run (chaos harnesses).
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.faults = plan;
    }

    /// Convenience constructor: full mesh with a constant latency.
    pub fn full_mesh(n: usize, ns_per_hop: u64) -> Self {
        Network::new(
            n,
            Topology::FullMesh,
            Box::new(crate::latency::Constant::new(ns_per_hop)),
        )
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Send `payload` from `src` to `dst` at time `now`; returns the
    /// scheduled arrival time and the assigned message id.
    ///
    /// Under a fault plan (see [`Network::with_faults`]) the message may be
    /// dropped (the returned time is then the arrival it *would* have had —
    /// nothing is scheduled), duplicated, delayed, or allowed to overtake
    /// earlier traffic on its channel; every injection is counted in
    /// [`NetStats`].
    ///
    /// # Panics
    /// Panics if a rank is out of range.
    pub fn send(&mut self, now: SimTime, src: Rank, dst: Rank, payload: P) -> (SimTime, MsgId)
    where
        P: Clone,
    {
        assert!(src < self.n && dst < self.n, "rank out of range");
        let id = self.next_id;
        self.next_id += 1;

        let fault = match self.faults.as_mut() {
            Some(plan) => plan.decide(src, dst),
            None => Default::default(),
        };

        let hops = self.topology.hops(src, dst);
        let msg = Message {
            id,
            src,
            dst,
            sent_at: now,
            payload,
        };
        let wire = msg.total_bytes();
        let mut delay = self.latency.delay_ns(src, dst, wire, hops);
        if fault.extra_delay_ns > 0 {
            delay += fault.extra_delay_ns;
            self.stats.record_injected_delay();
        }
        let mut arrive = now + delay;

        if fault.drop {
            // Consumed but never scheduled: the receiver simply never sees
            // it. The projected arrival is still returned so callers that
            // display it stay meaningful; the channel front is untouched.
            self.stats.record_injected_drop();
            return (arrive, id);
        }

        // FIFO per channel: never deliver before (or at the same instant as)
        // an earlier message on the same (src, dst) pair. A reorder fault
        // relaxes the clamp by its window, letting this message overtake
        // earlier traffic — the front itself never moves backwards.
        let ch = src * self.n + dst;
        let front = self.channel_front[ch];
        let relaxed = SimTime::from_ns(front.as_ns().saturating_sub(fault.reorder_ahead_ns));
        if arrive <= relaxed {
            arrive = relaxed + 1;
        }
        if arrive < front {
            self.stats.record_injected_reorder();
        }
        if arrive > front {
            self.channel_front[ch] = arrive;
        }

        if fault.duplicate {
            // The copy queues behind everything on the channel, including
            // the original.
            let dup_arrive = self.channel_front[ch] + 1;
            self.channel_front[ch] = dup_arrive;
            let dup = Message {
                id: self.next_id,
                src,
                dst,
                sent_at: now,
                payload: msg.payload.clone(),
            };
            self.next_id += 1;
            self.in_flight.schedule(dup_arrive, dup);
            self.stats.record_injected_duplicate();
        }

        self.in_flight.schedule(arrive, msg);
        (arrive, id)
    }

    /// Time of the next arrival, if any message is in flight.
    pub fn next_arrival_time(&self) -> Option<SimTime> {
        self.in_flight.peek_time()
    }

    /// Deliver the earliest in-flight message, recording statistics.
    pub fn deliver_next(&mut self) -> Option<(SimTime, Message<P>)> {
        let (at, msg) = self.in_flight.pop()?;
        self.stats.record(
            msg.payload.class(),
            msg.total_bytes(),
            at.since(msg.sent_at),
        );
        Some((at, msg))
    }

    /// Number of messages still in flight.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{Constant, Jittered};
    use crate::message::OpClass;

    #[derive(Debug, Clone, PartialEq)]
    struct P(u64, usize); // (tag, size)
    impl Classify for P {
        fn class(&self) -> OpClass {
            OpClass::PutData
        }
        fn wire_bytes(&self) -> usize {
            self.1
        }
    }

    #[test]
    fn delivery_at_computed_time() {
        let mut net: Network<P> = Network::full_mesh(2, 100);
        let (arrive, _) = net.send(SimTime::ZERO, 0, 1, P(1, 8));
        assert_eq!(arrive, SimTime::from_ns(100));
        let (at, msg) = net.deliver_next().unwrap();
        assert_eq!(at, arrive);
        assert_eq!(msg.payload, P(1, 8));
        assert_eq!(net.in_flight_count(), 0);
    }

    #[test]
    fn fifo_per_channel_under_jitter() {
        // With heavy jitter, later sends could overtake earlier ones; the
        // channel front must prevent that on the same (src,dst) pair.
        let mut net: Network<P> = Network::new(
            2,
            Topology::FullMesh,
            Box::new(Jittered::new(Constant::new(10), 99, 1_000)),
        );
        let mut sent = Vec::new();
        for i in 0..50 {
            let (_, id) = net.send(SimTime::from_ns(i), 0, 1, P(i, 1));
            sent.push(id);
        }
        let mut delivered = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some((at, msg)) = net.deliver_next() {
            assert!(at >= last, "delivery times must be monotone");
            last = at;
            delivered.push(msg.id);
        }
        assert_eq!(sent, delivered, "FIFO order violated");
    }

    #[test]
    fn cross_channel_messages_may_reorder() {
        // 0→1 is slow (3 hops on a ring), 2→1 is fast: the later send can
        // arrive first. This is the freedom races live in.
        let mut net: Network<P> =
            Network::new(4, Topology::Ring { nodes: 4 }, Box::new(Constant::new(100)));
        net.send(SimTime::ZERO, 0, 2, P(0, 1)); // 2 hops → 200ns
        net.send(SimTime::from_ns(50), 1, 2, P(1, 1)); // 1 hop → 150ns
        let first = net.deliver_next().unwrap().1;
        assert_eq!(first.payload.0, 1, "faster channel arrives first");
    }

    #[test]
    fn stats_accumulate() {
        let mut net: Network<P> = Network::full_mesh(2, 10);
        net.send(SimTime::ZERO, 0, 1, P(0, 100));
        net.send(SimTime::ZERO, 1, 0, P(1, 50));
        while net.deliver_next().is_some() {}
        assert_eq!(net.stats().total_msgs(), 2);
        assert_eq!(
            net.stats().total_bytes(),
            (100 + 50 + 2 * crate::message::HEADER_BYTES) as u64
        );
    }

    #[test]
    fn self_send_allowed() {
        let mut net: Network<P> = Network::full_mesh(2, 10);
        let (at, _) = net.send(SimTime::ZERO, 0, 0, P(7, 1));
        assert_eq!(at, SimTime::from_ns(10));
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn bad_rank_panics() {
        let mut net: Network<P> = Network::full_mesh(2, 10);
        net.send(SimTime::ZERO, 0, 5, P(0, 0));
    }

    #[test]
    fn ids_monotone() {
        let mut net: Network<P> = Network::full_mesh(2, 10);
        let (_, a) = net.send(SimTime::ZERO, 0, 1, P(0, 0));
        let (_, b) = net.send(SimTime::ZERO, 0, 1, P(0, 0));
        assert!(b > a);
    }

    use crate::fault::{FaultPlan, FaultSpec};

    fn faulty(n: usize, spec: FaultSpec, seed: u64) -> Network<P> {
        Network::with_faults(
            n,
            Topology::FullMesh,
            Box::new(Constant::new(100)),
            FaultPlan::uniform(spec, seed),
        )
    }

    #[test]
    fn quiet_plan_is_byte_identical_to_no_plan() {
        let mut plain: Network<P> = Network::full_mesh(2, 100);
        let mut chaos = faulty(2, FaultSpec::default(), 7);
        for i in 0..20 {
            let a = plain.send(SimTime::from_ns(i), 0, 1, P(i, 4));
            let b = chaos.send(SimTime::from_ns(i), 0, 1, P(i, 4));
            assert_eq!(a, b);
        }
        while let (Some(a), Some(b)) = (plain.deliver_next(), chaos.deliver_next()) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.payload, b.1.payload);
        }
        assert_eq!(chaos.stats().injected_total(), 0);
    }

    #[test]
    fn dropped_messages_never_arrive_and_are_counted() {
        let mut net = faulty(
            2,
            FaultSpec {
                drop: 1.0,
                ..FaultSpec::default()
            },
            1,
        );
        for i in 0..10 {
            net.send(SimTime::from_ns(i), 0, 1, P(i, 4));
        }
        assert_eq!(net.in_flight_count(), 0, "everything dropped");
        assert_eq!(net.stats().injected_drops(), 10);
        assert_eq!(net.stats().total_msgs(), 0, "drops are not deliveries");
    }

    #[test]
    fn duplicates_deliver_twice_in_order() {
        let mut net = faulty(
            2,
            FaultSpec {
                duplicate: 1.0,
                ..FaultSpec::default()
            },
            1,
        );
        net.send(SimTime::ZERO, 0, 1, P(7, 4));
        assert_eq!(net.in_flight_count(), 2);
        let a = net.deliver_next().unwrap();
        let b = net.deliver_next().unwrap();
        assert_eq!(a.1.payload, P(7, 4));
        assert_eq!(b.1.payload, P(7, 4));
        assert!(b.0 > a.0, "the copy queues behind the original");
        assert_eq!(net.stats().injected_duplicates(), 1);
    }

    #[test]
    fn extra_delay_fires_and_is_counted() {
        let mut net = faulty(
            2,
            FaultSpec {
                delay: 1.0,
                extra_delay_ns: 5_000,
                ..FaultSpec::default()
            },
            1,
        );
        let (at, _) = net.send(SimTime::ZERO, 0, 1, P(0, 4));
        assert_eq!(at, SimTime::from_ns(5_100));
        assert_eq!(net.stats().injected_delays(), 1);
    }

    #[test]
    fn reorder_can_break_channel_fifo() {
        // A huge reorder window and a fast second message: without the
        // fault the FIFO clamp would hold it behind the slow first one.
        let mut net: Network<P> = Network::with_faults(
            2,
            Topology::FullMesh,
            Box::new(Jittered::new(Constant::new(10), 99, 1_000)),
            FaultPlan::uniform(
                FaultSpec {
                    reorder: 1.0,
                    reorder_window_ns: 1_000_000,
                    ..FaultSpec::default()
                },
                3,
            ),
        );
        let mut sent = Vec::new();
        for i in 0..50 {
            let (_, id) = net.send(SimTime::from_ns(i), 0, 1, P(i, 1));
            sent.push(id);
        }
        let mut delivered = Vec::new();
        while let Some((_, msg)) = net.deliver_next() {
            delivered.push(msg.id);
        }
        assert_eq!(delivered.len(), sent.len(), "reorder never loses");
        assert_ne!(sent, delivered, "FIFO must actually break");
        assert!(net.stats().injected_reorders() > 0);
    }
}

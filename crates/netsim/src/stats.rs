//! Traffic accounting.
//!
//! Everything the reproduction's tables need: message and byte counts per
//! [`OpClass`] and a log₂-bucketed latency histogram. Fig 2's "a put is one
//! message, a get is two" is asserted directly against these counters, and
//! §V-A's overhead table is `detection bytes / data bytes`.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::message::OpClass;

/// Per-class message/byte counters plus latency histogram.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NetStats {
    msgs: BTreeMap<String, u64>,
    bytes: BTreeMap<String, u64>,
    /// log2 latency histogram: bucket `i` counts deliveries with latency in
    /// `[2^i, 2^(i+1))` ns; bucket 0 also holds 0-latency deliveries.
    latency_buckets: Vec<u64>,
    total_msgs: u64,
    total_bytes: u64,
    latency_sum_ns: u128,
    injected_drops: u64,
    injected_duplicates: u64,
    injected_delays: u64,
    injected_reorders: u64,
}

impl NetStats {
    /// Fresh, all-zero statistics.
    pub fn new() -> Self {
        NetStats::default()
    }

    /// Record a delivered message.
    pub fn record(&mut self, class: OpClass, bytes: usize, latency_ns: u64) {
        *self.msgs.entry(class.label().to_string()).or_insert(0) += 1;
        *self.bytes.entry(class.label().to_string()).or_insert(0) += bytes as u64;
        self.total_msgs += 1;
        self.total_bytes += bytes as u64;
        self.latency_sum_ns += u128::from(latency_ns);
        let bucket = 64 - latency_ns.leading_zeros() as usize;
        if self.latency_buckets.len() <= bucket {
            self.latency_buckets.resize(bucket + 1, 0);
        }
        self.latency_buckets[bucket] += 1;
    }

    /// Messages delivered for `class`.
    pub fn msgs(&self, class: OpClass) -> u64 {
        self.msgs.get(class.label()).copied().unwrap_or(0)
    }

    /// Bytes delivered for `class`.
    pub fn bytes(&self, class: OpClass) -> u64 {
        self.bytes.get(class.label()).copied().unwrap_or(0)
    }

    /// All messages delivered.
    pub fn total_msgs(&self) -> u64 {
        self.total_msgs
    }

    /// All bytes delivered.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Mean delivery latency in nanoseconds (0 when nothing delivered).
    pub fn mean_latency_ns(&self) -> u64 {
        if self.total_msgs == 0 {
            0
        } else {
            (self.latency_sum_ns / u128::from(self.total_msgs)) as u64
        }
    }

    /// Messages attributable to race detection (clock traffic).
    pub fn detection_msgs(&self) -> u64 {
        OpClass::ALL
            .iter()
            .filter(|c| c.is_detection_overhead())
            .map(|&c| self.msgs(c))
            .sum()
    }

    /// Bytes attributable to race detection.
    pub fn detection_bytes(&self) -> u64 {
        OpClass::ALL
            .iter()
            .filter(|c| c.is_detection_overhead())
            .map(|&c| self.bytes(c))
            .sum()
    }

    /// `(detection bytes) / (total bytes)` as a percentage; the §V-A
    /// communication-overhead figure.
    pub fn detection_overhead_pct(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            100.0 * self.detection_bytes() as f64 / self.total_bytes as f64
        }
    }

    pub(crate) fn record_injected_drop(&mut self) {
        self.injected_drops += 1;
    }

    pub(crate) fn record_injected_duplicate(&mut self) {
        self.injected_duplicates += 1;
    }

    pub(crate) fn record_injected_delay(&mut self) {
        self.injected_delays += 1;
    }

    pub(crate) fn record_injected_reorder(&mut self) {
        self.injected_reorders += 1;
    }

    /// Messages dropped by fault injection (see [`crate::fault`]).
    pub fn injected_drops(&self) -> u64 {
        self.injected_drops
    }

    /// Messages duplicated by fault injection.
    pub fn injected_duplicates(&self) -> u64 {
        self.injected_duplicates
    }

    /// Messages delayed by fault injection.
    pub fn injected_delays(&self) -> u64 {
        self.injected_delays
    }

    /// Messages that overtook earlier same-channel traffic under a
    /// reorder fault.
    pub fn injected_reorders(&self) -> u64 {
        self.injected_reorders
    }

    /// Total injected faults of any kind. Zero means the run was
    /// indistinguishable from a fault-free network — the chaos harness's
    /// byte-parity precondition.
    pub fn injected_total(&self) -> u64 {
        self.injected_drops
            + self.injected_duplicates
            + self.injected_delays
            + self.injected_reorders
    }

    /// Latency histogram as `(bucket_floor_ns, count)` pairs.
    pub fn latency_histogram(&self) -> Vec<(u64, u64)> {
        self.latency_buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, c))
            .collect()
    }

    /// Merge another stats block into this one (used when aggregating
    /// multi-seed exploration runs).
    pub fn merge(&mut self, other: &NetStats) {
        for (k, v) in &other.msgs {
            *self.msgs.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.bytes {
            *self.bytes.entry(k.clone()).or_insert(0) += v;
        }
        if self.latency_buckets.len() < other.latency_buckets.len() {
            self.latency_buckets.resize(other.latency_buckets.len(), 0);
        }
        for (i, v) in other.latency_buckets.iter().enumerate() {
            self.latency_buckets[i] += v;
        }
        self.total_msgs += other.total_msgs;
        self.total_bytes += other.total_bytes;
        self.latency_sum_ns += other.latency_sum_ns;
        self.injected_drops += other.injected_drops;
        self.injected_duplicates += other.injected_duplicates;
        self.injected_delays += other.injected_delays;
        self.injected_reorders += other.injected_reorders;
    }
}

impl std::fmt::Display for NetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{:<10} {:>8} {:>12}", "class", "msgs", "bytes")?;
        for class in OpClass::ALL {
            let m = self.msgs(class);
            if m > 0 {
                writeln!(
                    f,
                    "{:<10} {:>8} {:>12}",
                    class.label(),
                    m,
                    self.bytes(class)
                )?;
            }
        }
        writeln!(
            f,
            "{:<10} {:>8} {:>12}  (detection overhead {:.1}%)",
            "total",
            self.total_msgs,
            self.total_bytes,
            self.detection_overhead_pct()
        )?;
        if self.injected_total() > 0 {
            writeln!(
                f,
                "injected faults: {} drop, {} dup, {} delay, {} reorder",
                self.injected_drops,
                self.injected_duplicates,
                self.injected_delays,
                self.injected_reorders
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut s = NetStats::new();
        s.record(OpClass::PutData, 100, 1_000);
        s.record(OpClass::GetRequest, 32, 1_000);
        s.record(OpClass::GetReply, 132, 1_200);
        assert_eq!(s.msgs(OpClass::PutData), 1);
        assert_eq!(s.total_msgs(), 3);
        assert_eq!(s.total_bytes(), 264);
        assert_eq!(s.msgs(OpClass::Clock), 0);
    }

    #[test]
    fn overhead_percentage() {
        let mut s = NetStats::new();
        s.record(OpClass::PutData, 300, 10);
        s.record(OpClass::Clock, 100, 10);
        assert_eq!(s.detection_bytes(), 100);
        assert!((s.detection_overhead_pct() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn empty_overhead_is_zero() {
        assert_eq!(NetStats::new().detection_overhead_pct(), 0.0);
        assert_eq!(NetStats::new().mean_latency_ns(), 0);
    }

    #[test]
    fn mean_latency() {
        let mut s = NetStats::new();
        s.record(OpClass::PutData, 1, 100);
        s.record(OpClass::PutData, 1, 300);
        assert_eq!(s.mean_latency_ns(), 200);
    }

    #[test]
    fn histogram_buckets() {
        let mut s = NetStats::new();
        s.record(OpClass::PutData, 1, 0); // bucket floor 0
        s.record(OpClass::PutData, 1, 1); // floor 1
        s.record(OpClass::PutData, 1, 5); // floor 4
        s.record(OpClass::PutData, 1, 5); // floor 4 again
        let h = s.latency_histogram();
        assert!(h.contains(&(0, 1)));
        assert!(h.contains(&(1, 1)));
        assert!(h.contains(&(4, 2)));
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = NetStats::new();
        a.record(OpClass::PutData, 10, 100);
        let mut b = NetStats::new();
        b.record(OpClass::Clock, 20, 200);
        b.record(OpClass::PutData, 5, 100);
        a.merge(&b);
        assert_eq!(a.total_msgs(), 3);
        assert_eq!(a.total_bytes(), 35);
        assert_eq!(a.msgs(OpClass::PutData), 2);
        assert_eq!(a.msgs(OpClass::Clock), 1);
    }

    #[test]
    fn display_contains_totals() {
        let mut s = NetStats::new();
        s.record(OpClass::PutData, 10, 100);
        let text = s.to_string();
        assert!(text.contains("put-data"));
        assert!(text.contains("total"));
    }
}

//! Interconnect topologies.
//!
//! The paper abstracts the interconnection network entirely; we provide a
//! few standard topologies so the latency model can be made hop-sensitive
//! (and so the workloads can be run on something resembling a cluster, a
//! NoC mesh — the paper's intro mentions 80-core NoCs — or a star through a
//! switch).

use serde::{Deserialize, Serialize};

use crate::Rank;

/// Static interconnect shapes with closed-form hop counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Every pair is one hop apart (a crossbar / single big switch).
    FullMesh,
    /// Bidirectional ring; hop count is the shorter way round.
    Ring {
        /// Number of nodes on the ring.
        nodes: usize,
    },
    /// Star through a central switch: two hops between distinct leaves,
    /// one hop to/from the hub itself.
    Star {
        /// Rank acting as the hub.
        hub: Rank,
    },
    /// 2-D torus of `width × height` nodes, rank-major layout; hop count is
    /// the wrap-around Manhattan distance (the NoC case).
    Torus2D {
        /// Torus width.
        width: usize,
        /// Torus height.
        height: usize,
    },
    /// Binary hypercube of `2^dims` nodes; hop count is the Hamming
    /// distance between rank labels (the classic HPC interconnect).
    Hypercube {
        /// Number of dimensions (nodes = `2^dims`).
        dims: u32,
    },
}

impl Topology {
    /// Number of hops between two ranks. Zero for a self-message (loopback
    /// never touches the wire).
    pub fn hops(&self, src: Rank, dst: Rank) -> u32 {
        if src == dst {
            return 0;
        }
        match *self {
            Topology::FullMesh => 1,
            Topology::Ring { nodes } => {
                assert!(src < nodes && dst < nodes, "rank out of ring");
                let d = (src as i64 - dst as i64).unsigned_abs() as usize;
                d.min(nodes - d) as u32
            }
            Topology::Star { hub } => {
                if src == hub || dst == hub {
                    1
                } else {
                    2
                }
            }
            Topology::Hypercube { dims } => {
                let n = 1usize << dims;
                assert!(src < n && dst < n, "rank out of hypercube");
                ((src ^ dst) as u64).count_ones()
            }
            Topology::Torus2D { width, height } => {
                let n = width * height;
                assert!(src < n && dst < n, "rank out of torus");
                let (sx, sy) = ((src % width) as i64, (src / width) as i64);
                let (dx, dy) = ((dst % width) as i64, (dst / width) as i64);
                let w = width as i64;
                let h = height as i64;
                let ddx = (sx - dx).abs().min(w - (sx - dx).abs());
                let ddy = (sy - dy).abs().min(h - (sy - dy).abs());
                (ddx + ddy) as u32
            }
        }
    }

    /// Largest hop count over all pairs (network diameter).
    pub fn diameter(&self, n: usize) -> u32 {
        let mut best = 0;
        for s in 0..n {
            for d in 0..n {
                best = best.max(self.hops(s, d));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_message_is_zero_hops() {
        for t in [
            Topology::FullMesh,
            Topology::Ring { nodes: 5 },
            Topology::Star { hub: 0 },
            Topology::Torus2D {
                width: 2,
                height: 2,
            },
        ] {
            assert_eq!(t.hops(1, 1), 0);
        }
    }

    #[test]
    fn full_mesh_is_one_hop() {
        assert_eq!(Topology::FullMesh.hops(0, 7), 1);
    }

    #[test]
    fn ring_takes_shorter_way() {
        let r = Topology::Ring { nodes: 6 };
        assert_eq!(r.hops(0, 1), 1);
        assert_eq!(r.hops(0, 5), 1);
        assert_eq!(r.hops(0, 3), 3);
        assert_eq!(r.diameter(6), 3);
    }

    #[test]
    fn star_hub_vs_leaves() {
        let s = Topology::Star { hub: 2 };
        assert_eq!(s.hops(2, 0), 1);
        assert_eq!(s.hops(0, 2), 1);
        assert_eq!(s.hops(0, 1), 2);
    }

    #[test]
    fn torus_wraps() {
        let t = Topology::Torus2D {
            width: 4,
            height: 4,
        };
        // (0,0) to (3,0): wrap distance 1.
        assert_eq!(t.hops(0, 3), 1);
        // (0,0) to (2,2): 2 + 2.
        assert_eq!(t.hops(0, 10), 4);
        assert_eq!(t.diameter(16), 4);
    }

    #[test]
    #[should_panic(expected = "out of ring")]
    fn ring_bounds_checked() {
        Topology::Ring { nodes: 3 }.hops(0, 3);
    }

    #[test]
    fn hypercube_hamming_distance() {
        let h = Topology::Hypercube { dims: 3 };
        assert_eq!(h.hops(0b000, 0b001), 1);
        assert_eq!(h.hops(0b000, 0b111), 3);
        assert_eq!(h.hops(0b101, 0b010), 3);
        assert_eq!(h.diameter(8), 3);
    }

    #[test]
    #[should_panic(expected = "out of hypercube")]
    fn hypercube_bounds_checked() {
        Topology::Hypercube { dims: 2 }.hops(0, 4);
    }
}

//! Messages and operation classes.
//!
//! The network is payload-generic; the only thing it needs from a payload is
//! an [`OpClass`] for the statistics tables (Fig 2 message counting, §V-A
//! overhead accounting split into data vs detection traffic).

use serde::{Deserialize, Serialize};

use crate::time::SimTime;
use crate::Rank;

/// Unique, monotonically increasing message identifier (assigned by the
/// network at send time; doubles as a deterministic tie-breaker).
pub type MsgId = u64;

/// Coarse classification of traffic for the accounting tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Application data movement: the single message of a `put`.
    PutData,
    /// The request half of a `get` (1st of its 2 messages).
    GetRequest,
    /// The reply half of a `get` (2nd of its 2 messages), carrying data.
    GetReply,
    /// Lock protocol traffic (request / grant / release).
    Lock,
    /// NIC-executed atomic read-modify-write (fetch-add, compare-and-swap)
    /// — the "new operations" extension of §V-B (request + reply).
    Atomic,
    /// Clock reads/writes added by the race-detection algorithms
    /// (Algorithms 1, 2 and 5) — the paper's detection overhead.
    Clock,
    /// Synchronisation (barriers, fences).
    Sync,
    /// Anything else.
    Other,
}

impl OpClass {
    /// All classes, in reporting order.
    pub const ALL: [OpClass; 8] = [
        OpClass::PutData,
        OpClass::GetRequest,
        OpClass::GetReply,
        OpClass::Lock,
        OpClass::Atomic,
        OpClass::Clock,
        OpClass::Sync,
        OpClass::Other,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            OpClass::PutData => "put-data",
            OpClass::GetRequest => "get-req",
            OpClass::GetReply => "get-reply",
            OpClass::Lock => "lock",
            OpClass::Atomic => "atomic",
            OpClass::Clock => "clock",
            OpClass::Sync => "sync",
            OpClass::Other => "other",
        }
    }

    /// True for traffic that exists only because detection is enabled.
    pub fn is_detection_overhead(self) -> bool {
        matches!(self, OpClass::Clock)
    }
}

/// Trait implemented by protocol payloads so the network can classify and
/// size them without knowing their structure.
pub trait Classify {
    /// Operation class for the statistics tables.
    fn class(&self) -> OpClass;
    /// Payload size in bytes as it would appear on the wire (excluding the
    /// fixed header accounted by the network).
    fn wire_bytes(&self) -> usize;
}

/// A message in flight.
#[derive(Debug, Clone)]
pub struct Message<P> {
    /// Network-assigned identifier.
    pub id: MsgId,
    /// Sending rank.
    pub src: Rank,
    /// Destination rank.
    pub dst: Rank,
    /// When the send was issued.
    pub sent_at: SimTime,
    /// Protocol payload.
    pub payload: P,
}

/// Fixed per-message header cost, bytes (addresses, lengths, CRC — a
/// plausible RDMA header; the exact constant only scales the tables).
pub const HEADER_BYTES: usize = 32;

impl<P: Classify> Message<P> {
    /// Total wire footprint of the message.
    pub fn total_bytes(&self) -> usize {
        HEADER_BYTES + self.payload.wire_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake(usize);
    impl Classify for Fake {
        fn class(&self) -> OpClass {
            OpClass::PutData
        }
        fn wire_bytes(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn total_bytes_includes_header() {
        let m = Message {
            id: 0,
            src: 0,
            dst: 1,
            sent_at: SimTime::ZERO,
            payload: Fake(100),
        };
        assert_eq!(m.total_bytes(), 100 + HEADER_BYTES);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = OpClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), OpClass::ALL.len());
    }

    #[test]
    fn only_clock_is_detection_overhead() {
        for c in OpClass::ALL {
            assert_eq!(c.is_detection_overhead(), c == OpClass::Clock);
        }
    }
}

//! Deterministic discrete-event interconnect model.
//!
//! The paper's system model (§III) is "a set of processors and the
//! communication channels that interconnect them", where remote memory is
//! reached through **one-sided** operations executed by RDMA-capable NICs
//! (InfiniBand / Myrinet). We do not have such hardware here, so this crate
//! provides the substitution documented in `DESIGN.md`: a discrete-event
//! network with
//!
//! * reliable, **per-channel FIFO** message delivery (the standard
//!   assumption behind vector-clock protocols),
//! * a configurable [`latency::LatencyModel`] (constant, α+β
//!   latency/bandwidth, seeded jitter) scaled by [`topology::Topology`] hop
//!   counts,
//! * deterministic tie-breaking (same seed ⇒ bit-identical schedules), and
//! * full message/byte accounting per operation class ([`stats::NetStats`]),
//!   which is what lets tests *assert* Fig 2's "put = 1 message, get = 2
//!   messages" property and the §V-A overhead accounting, and
//! * optional seeded fault injection ([`fault::FaultPlan`]: drop /
//!   duplicate / extra delay / FIFO-breaking reorder) for chaos testing the
//!   layers above — every injection is counted in [`stats::NetStats`].
//!
//! The crate is payload-generic: the DSM layer (`dsm` crate) instantiates
//! [`network::Network`] with its own RDMA protocol enum.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod latency;
pub mod message;
pub mod network;
pub mod stats;
pub mod time;
pub mod topology;

pub use fault::{FaultDecision, FaultPlan, FaultSpec};
pub use latency::{AlphaBeta, Constant, Jittered, LatencyModel};
pub use message::{Classify, Message, MsgId, OpClass};
pub use network::Network;
pub use stats::NetStats;
pub use time::{EventQueue, SimTime};
pub use topology::Topology;

/// A process / NIC identifier (dense rank, matching the paper's `P0, P1…`).
pub type Rank = usize;

//! Message latency models.
//!
//! Calibrated by default to plausible 2011-era RDMA figures (InfiniBand QDR:
//! ~1.5 µs small-message latency, ~3 GB/s effective bandwidth), but the
//! experiments only rely on the *shape* of the model: latency grows
//! affinely with size and multiplicatively with hop count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Rank;

/// Computes the one-way wire time, in nanoseconds, for a message of
/// `bytes` bytes travelling `hops` hops from `src` to `dst`.
///
/// Implementations may be stateful (e.g. seeded jitter), hence `&mut self`.
pub trait LatencyModel: Send {
    /// One-way latency in nanoseconds.
    fn delay_ns(&mut self, src: Rank, dst: Rank, bytes: usize, hops: u32) -> u64;
}

/// Fixed latency per hop, ignoring message size. Useful in unit tests where
/// exact arrival times must be predicted by hand.
#[derive(Debug, Clone, Copy)]
pub struct Constant {
    /// Nanoseconds per hop.
    pub ns_per_hop: u64,
}

impl Constant {
    /// A constant model with `ns_per_hop` nanoseconds per hop.
    pub fn new(ns_per_hop: u64) -> Self {
        Constant { ns_per_hop }
    }
}

impl LatencyModel for Constant {
    fn delay_ns(&mut self, _src: Rank, _dst: Rank, _bytes: usize, hops: u32) -> u64 {
        self.ns_per_hop * u64::from(hops.max(1))
    }
}

/// The classic α + n·β model: fixed startup latency plus a per-byte cost,
/// scaled by hop count.
#[derive(Debug, Clone, Copy)]
pub struct AlphaBeta {
    /// Startup latency per hop, nanoseconds.
    pub alpha_ns: u64,
    /// Transfer cost, picoseconds per byte (1000 ps/B = 1 GB/s).
    pub beta_ps_per_byte: u64,
}

impl AlphaBeta {
    /// InfiniBand-QDR-ish defaults: α = 1.5 µs, β ≙ 3 GB/s.
    pub fn infiniband() -> Self {
        AlphaBeta {
            alpha_ns: 1_500,
            beta_ps_per_byte: 333,
        }
    }

    /// Gigabit-Ethernet-ish defaults: α = 30 µs, β ≙ 0.12 GB/s.
    pub fn ethernet() -> Self {
        AlphaBeta {
            alpha_ns: 30_000,
            beta_ps_per_byte: 8_333,
        }
    }
}

impl LatencyModel for AlphaBeta {
    fn delay_ns(&mut self, _src: Rank, _dst: Rank, bytes: usize, hops: u32) -> u64 {
        let hops = u64::from(hops.max(1));
        let transfer_ns = (bytes as u64 * self.beta_ps_per_byte) / 1_000;
        self.alpha_ns * hops + transfer_ns
    }
}

/// Wraps another model and adds seeded, uniformly distributed jitter of up
/// to `max_jitter_ns`. Deterministic for a given seed — two simulations with
/// the same seed see identical delays, two different seeds explore different
/// interleavings (which is how the explorer makes Fig 5-style races appear
/// and disappear).
pub struct Jittered<M> {
    inner: M,
    rng: StdRng,
    max_jitter_ns: u64,
}

impl<M: LatencyModel> Jittered<M> {
    /// Wrap `inner`, adding up to `max_jitter_ns` of uniform jitter drawn
    /// from a `StdRng` seeded with `seed`.
    pub fn new(inner: M, seed: u64, max_jitter_ns: u64) -> Self {
        Jittered {
            inner,
            rng: StdRng::seed_from_u64(seed),
            max_jitter_ns,
        }
    }
}

impl<M: LatencyModel> LatencyModel for Jittered<M> {
    fn delay_ns(&mut self, src: Rank, dst: Rank, bytes: usize, hops: u32) -> u64 {
        let base = self.inner.delay_ns(src, dst, bytes, hops);
        if self.max_jitter_ns == 0 {
            base
        } else {
            base + self.rng.gen_range(0..=self.max_jitter_ns)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_scales_with_hops() {
        let mut m = Constant::new(100);
        assert_eq!(m.delay_ns(0, 1, 9999, 1), 100);
        assert_eq!(m.delay_ns(0, 1, 0, 3), 300);
        // Zero hops still costs one hop's latency (NIC loopback).
        assert_eq!(m.delay_ns(0, 0, 0, 0), 100);
    }

    #[test]
    fn alpha_beta_affine_in_size() {
        let mut m = AlphaBeta {
            alpha_ns: 1_000,
            beta_ps_per_byte: 1_000, // 1 ns per byte
        };
        assert_eq!(m.delay_ns(0, 1, 0, 1), 1_000);
        assert_eq!(m.delay_ns(0, 1, 500, 1), 1_500);
        assert_eq!(m.delay_ns(0, 1, 500, 2), 2_500);
    }

    #[test]
    fn infiniband_faster_than_ethernet() {
        let mut ib = AlphaBeta::infiniband();
        let mut eth = AlphaBeta::ethernet();
        for bytes in [8usize, 1024, 1 << 20] {
            assert!(ib.delay_ns(0, 1, bytes, 1) < eth.delay_ns(0, 1, bytes, 1));
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let sample = |seed: u64| -> Vec<u64> {
            let mut m = Jittered::new(Constant::new(100), seed, 50);
            (0..10).map(|i| m.delay_ns(0, 1, i, 1)).collect()
        };
        assert_eq!(sample(42), sample(42));
        assert_ne!(sample(42), sample(43));
    }

    #[test]
    fn jitter_bounded() {
        let mut m = Jittered::new(Constant::new(100), 7, 50);
        for _ in 0..1000 {
            let d = m.delay_ns(0, 1, 0, 1);
            assert!((100..=150).contains(&d));
        }
    }

    #[test]
    fn zero_jitter_passthrough() {
        let mut m = Jittered::new(Constant::new(100), 7, 0);
        assert_eq!(m.delay_ns(0, 1, 0, 1), 100);
    }
}

//! Simulated time and the deterministic event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, in nanoseconds from simulation start.
///
/// Virtual time is what the latency / overhead experiments report: it is
/// deterministic for a given seed, unlike wall-clock time.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Time as fractional microseconds (for reporting).
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating difference (`self - earlier`), in nanoseconds.
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, ns: u64) -> SimTime {
        SimTime(self.0 + ns)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, ns: u64) {
        self.0 += ns;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A deterministic priority queue of timed events.
///
/// Events scheduled for the same instant pop in insertion order (a strictly
/// increasing sequence number breaks ties), which is what makes whole-system
/// replays bit-identical for a given seed.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `event` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_arithmetic() {
        let t = SimTime::from_us(3);
        assert_eq!(t.as_ns(), 3_000);
        assert_eq!((t + 500).as_ns(), 3_500);
        assert_eq!(t.since(SimTime::from_ns(1_000)), 2_000);
        assert_eq!(SimTime::from_ns(10).since(SimTime::from_ns(20)), 0);
    }

    #[test]
    fn display_scales() {
        assert_eq!(SimTime::from_ns(12).to_string(), "12ns");
        assert_eq!(SimTime::from_ns(1_500).to_string(), "1.500us");
        assert_eq!(SimTime::from_ns(2_000_000).to_string(), "2.000ms");
    }

    #[test]
    fn queue_orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), "c");
        q.schedule(SimTime::from_ns(10), "a");
        q.schedule(SimTime::from_ns(20), "b");
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(10)));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        for label in ["first", "second", "third"] {
            q.schedule(t, label);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, 1);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}

//! Detection-as-a-service: a crash-tolerant TCP server that multiplexes
//! many concurrent client event streams onto bounded
//! [`race_core::api::Session`]s.
//!
//! The paper's runtime embeds detection inside the DSM library; this crate
//! is the operational complement for a deployment where instrumented
//! processes *ship* their operation streams to a long-lived detection
//! service instead. The service inherits the paper's §IV-D stance — races
//! (and now infrastructure failures) are signalled, never fatal — and the
//! PR-6 supervision discipline: any single session may degrade (malformed
//! bytes, mid-stream hangup, a panic in its worker), but the server's
//! accept loop and every other session keep running.
//!
//! Layering:
//!
//! - [`frame`] — the length-prefixed wire codec; the trust boundary.
//!   Decoding untrusted bytes returns typed [`frame::FrameError`]s and has
//!   no panicking path.
//! - [`server`] — accept loop, per-session supervision, bounded queues
//!   with an explicit slow-client policy, idle reaping, and a graceful
//!   shutdown that drains every live session's summary.
//! - [`client`] — a blocking client handle whose final
//!   [`client::RemoteSummary`] carries the summary's exact canonical-JSON
//!   bytes, so callers can assert byte-identical parity with an in-process
//!   run.
//!
//! Sessions are **durable** (PR 9): the server checkpoints each session's
//! detector state and parks — rather than ends — sessions whose connection
//! dies mid-stream. A reconnecting client presents the resume token minted
//! at hello time, receives a `ResumeAck` naming the next expected event
//! sequence, and replays only its unacknowledged tail; the final summary is
//! byte-identical to an uninterrupted run. The client side reconnects
//! automatically with jittered exponential backoff (see
//! `docs/SERVICE.md`).
//!
//! ```no_run
//! use dsm_service::client::ServiceClient;
//! use dsm_service::frame::WireEvent;
//! use dsm_service::server::{ServeConfig, Server};
//! use race_core::{DetectorConfig, DetectorKind};
//!
//! let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
//! let config = DetectorConfig::new(DetectorKind::Dual, 4);
//! let mut client = ServiceClient::connect(server.local_addr(), &config).unwrap();
//! client.send(&WireEvent::Barrier).unwrap();
//! let remote = client.finish().unwrap();
//! println!("races: {}", remote.summary.total);
//! let report = server.shutdown();
//! assert_eq!(report.stats.finished, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod server;

pub use client::{ClientError, ClientTimeouts, HealthLine, RemoteSummary, ServiceClient};
pub use frame::{ClientFrame, FrameError, ServerFrame, WireError, WireEvent, MAX_FRAME};
pub use server::{
    ServeConfig, Server, SessionOutcome, SessionRecord, ShutdownReport, SinkFactory,
    SlowClientPolicy, StatsSnapshot,
};

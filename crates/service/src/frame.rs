//! Length-prefixed wire codec for the detection service.
//!
//! Every frame on the wire is `u32` little-endian payload length followed by
//! the payload; the first payload byte is a tag selecting the message. The
//! decoder is the trust boundary of the service: it must accept bytes from
//! arbitrary (possibly hostile or corrupt) clients and *never panic* —
//! malformed, oversized, truncated or unknown input comes back as a typed
//! [`FrameError`] that the server folds into that session's degraded state.
//!
//! Decoding is strict: trailing bytes after a well-formed message, unknown
//! tags, out-of-range discriminants and non-UTF-8 text are all errors. Strict
//! decoding is what makes the corrupted-bytes property test meaningful — a
//! lax decoder would silently "accept" flipped bits as different-but-valid
//! events.

use std::io::{Read, Write};

use dsm::addr::{GlobalAddr, MemRange, Segment};
use race_core::event::{DsmOp, LockId, OpKind};
use race_core::Rank;

/// Hard cap on one frame's payload, in bytes. Large enough for any event or
/// summary the system produces, small enough that a hostile length prefix
/// cannot make the server allocate unbounded memory.
pub const MAX_FRAME: usize = 64 * 1024;

/// Wire protocol version carried in [`ClientFrame::Hello`] and
/// [`ClientFrame::Resume`]. Bumped on any incompatible codec change.
/// Version 2 added the resume handshake (`Resume`/`ResumeAck`) and the
/// resume token in `HelloAck`.
pub const PROTOCOL_VERSION: u8 = 2;

/// Typed decode failure. Every way untrusted bytes can be wrong maps to one
/// of these variants; the decoder has no panicking path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The peer closed the connection cleanly at a frame boundary.
    ConnectionClosed,
    /// The stream ended (or the buffer ran out) in the middle of a frame or
    /// field. `what` names the field being read when bytes ran out.
    Truncated {
        /// Field or region that was being decoded.
        what: &'static str,
    },
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// The advertised payload length.
        len: usize,
    },
    /// A zero-length payload (every message needs at least a tag byte).
    Empty,
    /// The tag byte does not name any message this side understands.
    UnknownTag {
        /// The offending tag.
        tag: u8,
    },
    /// A discriminant or field value is out of range.
    Malformed {
        /// What was malformed.
        what: &'static str,
    },
    /// A text field was not valid UTF-8.
    BadUtf8 {
        /// Which field.
        what: &'static str,
    },
    /// The peer speaks a different protocol version.
    Version {
        /// The version the peer announced.
        got: u8,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::ConnectionClosed => write!(f, "connection closed"),
            FrameError::Truncated { what } => write!(f, "truncated frame while reading {what}"),
            FrameError::Oversized { len } => {
                write!(f, "oversized frame: {len} bytes exceeds cap of {MAX_FRAME}")
            }
            FrameError::Empty => write!(f, "empty frame (missing tag byte)"),
            FrameError::UnknownTag { tag } => write!(f, "unknown frame tag {tag:#04x}"),
            FrameError::Malformed { what } => write!(f, "malformed frame: {what}"),
            FrameError::BadUtf8 { what } => write!(f, "invalid utf-8 in {what}"),
            FrameError::Version { got } => {
                write!(f, "protocol version {got} (expected {PROTOCOL_VERSION})")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Transport-level failure: either the bytes were wrong ([`FrameError`]) or
/// the socket itself failed.
#[derive(Debug)]
pub enum WireError {
    /// The bytes on the wire were not a valid frame.
    Frame(FrameError),
    /// The underlying stream failed (includes read timeouts, which the
    /// server uses as its idle/shutdown tick).
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Frame(e) => write!(f, "{e}"),
            WireError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<FrameError> for WireError {
    fn from(e: FrameError) -> Self {
        WireError::Frame(e)
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl WireError {
    /// True when the error is a read timeout — the server's liveness tick,
    /// not a protocol violation.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            WireError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

/// One event in a client's stream — the wire mirror of the in-process
/// `Session` driving surface (`observe` / `on_barrier` / `on_acquire` /
/// `on_release`), so a remote stream and an in-process replay of the same
/// events produce byte-identical summaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireEvent {
    /// A DSM operation to observe.
    Op(DsmOp),
    /// A global barrier.
    Barrier,
    /// `rank` acquires `lock`.
    Acquire {
        /// Acquiring rank.
        rank: Rank,
        /// Lock identity.
        lock: LockId,
    },
    /// `rank` releases `lock`.
    Release {
        /// Releasing rank.
        rank: Rank,
        /// Lock identity.
        lock: LockId,
    },
}

/// Frames a client may send.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// First frame on a connection: protocol version + the detector
    /// configuration as canonical JSON (`DetectorConfig::to_json`).
    Hello {
        /// JSON-encoded `DetectorConfig`.
        config_json: String,
    },
    /// One stream event.
    Event(WireEvent),
    /// End of stream: flush and return the summary.
    Finish,
    /// Liveness probe: the server answers with [`ServerFrame::Health`].
    Ping,
    /// First frame on a *reconnecting* connection: resume the parked
    /// session identified by the server-minted `token` (from
    /// [`ServerFrame::HelloAck`]). `last_acked_seq` is the highest event
    /// sequence number the client knows the server applied; the server
    /// answers [`ServerFrame::ResumeAck`] naming the sequence it expects
    /// next, and the client re-sends from there.
    Resume {
        /// Opaque resume token minted by the server at hello time.
        token: u64,
        /// Highest event sequence the client saw acknowledged.
        last_acked_seq: u64,
    },
}

/// Frames the server may send.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerFrame {
    /// Answer to `Hello`: the server-assigned session id plus the resume
    /// token a disconnected client presents in [`ClientFrame::Resume`].
    HelloAck {
        /// Session id, unique per server instance.
        session: u64,
        /// Server-minted resume token (opaque to the client).
        token: u64,
    },
    /// Answer to `Resume`: the parked session was restored.
    ResumeAck {
        /// The original session id, preserved across the reconnect.
        session: u64,
        /// The event sequence the server expects next (= events applied so
        /// far); the client replays its send buffer from here.
        next_seq: u64,
    },
    /// Answer to `Ping`: the session's liveness line.
    Health {
        /// True when the session's pipeline or summary is degraded.
        degraded: bool,
        /// Events applied so far.
        events: u64,
        /// Races reported so far.
        reports: u64,
        /// Events shed by the slow-client policy so far.
        shed: u64,
    },
    /// Final frame of a session: the race summary as canonical JSON
    /// (`RaceSummary::to_json`) plus the shed-event count.
    Summary {
        /// Events shed by the slow-client policy.
        shed: u64,
        /// JSON-encoded `RaceSummary`.
        json: String,
    },
    /// A typed failure the server wants the client to see (bad hello,
    /// malformed frame, supervised panic, idle reap). The session is
    /// degraded but the server stays up.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

// Tag bytes. Client tags are < 0x80, server tags >= 0x80, so a frame can
// never be mistaken for one travelling the other direction.
const TAG_HELLO: u8 = 0x01;
const TAG_EVENT: u8 = 0x02;
const TAG_FINISH: u8 = 0x03;
const TAG_PING: u8 = 0x04;
const TAG_RESUME: u8 = 0x05;
const TAG_HELLO_ACK: u8 = 0x81;
const TAG_HEALTH: u8 = 0x82;
const TAG_SUMMARY: u8 = 0x83;
const TAG_ERROR: u8 = 0x84;
const TAG_RESUME_ACK: u8 = 0x85;

// Event sub-tags.
const EV_OP: u8 = 0;
const EV_BARRIER: u8 = 1;
const EV_ACQUIRE: u8 = 2;
const EV_RELEASE: u8 = 3;

// OpKind sub-tags.
const OP_PUT: u8 = 0;
const OP_GET: u8 = 1;
const OP_LOCAL_READ: u8 = 2;
const OP_LOCAL_WRITE: u8 = 3;
const OP_ATOMIC: u8 = 4;

/// Write one frame (length prefix + payload). Fails with `InvalidInput`
/// rather than sending a frame the peer is guaranteed to reject.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.is_empty() || payload.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("refusing to send invalid frame of {} bytes", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame's payload. Distinguishes a clean close at a frame boundary
/// ([`FrameError::ConnectionClosed`]) from a mid-frame hangup
/// ([`FrameError::Truncated`]); length-prefix violations surface before any
/// payload allocation.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut len_buf = [0u8; 4];
    read_exact_or(r, &mut len_buf, "length prefix", true)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 {
        return Err(FrameError::Empty.into());
    }
    if len > MAX_FRAME {
        return Err(FrameError::Oversized { len }.into());
    }
    let mut payload = vec![0u8; len];
    read_exact_or(r, &mut payload, "payload", false)?;
    Ok(payload)
}

/// `read_exact` that reports a clean EOF before the first byte as
/// `ConnectionClosed` (when `at_boundary`) and any other short read as
/// `Truncated`. Timeouts pass through as `WireError::Io`.
fn read_exact_or(
    r: &mut impl Read,
    buf: &mut [u8],
    what: &'static str,
    at_boundary: bool,
) -> Result<(), WireError> {
    let mut filled = 0;
    while let Some(dst) = buf.get_mut(filled..).filter(|d| !d.is_empty()) {
        match r.read(dst) {
            Ok(0) => {
                return if at_boundary && filled == 0 {
                    Err(FrameError::ConnectionClosed.into())
                } else {
                    Err(FrameError::Truncated { what }.into())
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_range(buf: &mut Vec<u8>, r: &MemRange) {
    put_u32(buf, r.addr.rank as u32);
    buf.push(match r.addr.segment {
        Segment::Private => 0,
        Segment::Public => 1,
    });
    put_u64(buf, r.addr.offset as u64);
    put_u32(buf, r.len as u32);
}

fn put_lock(buf: &mut Vec<u8>, lock: &LockId) {
    put_u32(buf, lock.0 as u32);
    put_u64(buf, lock.1 as u64);
}

fn put_event(buf: &mut Vec<u8>, ev: &WireEvent) {
    match ev {
        WireEvent::Op(op) => {
            buf.push(EV_OP);
            put_u64(buf, op.op_id);
            put_u32(buf, op.actor as u32);
            match &op.kind {
                OpKind::Put { src, dst } => {
                    buf.push(OP_PUT);
                    put_range(buf, src);
                    put_range(buf, dst);
                }
                OpKind::Get { src, dst } => {
                    buf.push(OP_GET);
                    put_range(buf, src);
                    put_range(buf, dst);
                }
                OpKind::LocalRead { range } => {
                    buf.push(OP_LOCAL_READ);
                    put_range(buf, range);
                }
                OpKind::LocalWrite { range } => {
                    buf.push(OP_LOCAL_WRITE);
                    put_range(buf, range);
                }
                OpKind::AtomicRmw { range } => {
                    buf.push(OP_ATOMIC);
                    put_range(buf, range);
                }
            }
        }
        WireEvent::Barrier => buf.push(EV_BARRIER),
        WireEvent::Acquire { rank, lock } => {
            buf.push(EV_ACQUIRE);
            put_u32(buf, *rank as u32);
            put_lock(buf, lock);
        }
        WireEvent::Release { rank, lock } => {
            buf.push(EV_RELEASE);
            put_u32(buf, *rank as u32);
            put_lock(buf, lock);
        }
    }
}

impl ClientFrame {
    /// Serialise to a frame payload (tag byte + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        match self {
            ClientFrame::Hello { config_json } => {
                buf.push(TAG_HELLO);
                buf.push(PROTOCOL_VERSION);
                buf.extend_from_slice(config_json.as_bytes());
            }
            ClientFrame::Event(ev) => {
                buf.push(TAG_EVENT);
                put_event(&mut buf, ev);
            }
            ClientFrame::Finish => buf.push(TAG_FINISH),
            ClientFrame::Ping => buf.push(TAG_PING),
            ClientFrame::Resume {
                token,
                last_acked_seq,
            } => {
                buf.push(TAG_RESUME);
                buf.push(PROTOCOL_VERSION);
                put_u64(&mut buf, *token);
                put_u64(&mut buf, *last_acked_seq);
            }
        }
        buf
    }
}

impl ServerFrame {
    /// Serialise to a frame payload (tag byte + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        match self {
            ServerFrame::HelloAck { session, token } => {
                buf.push(TAG_HELLO_ACK);
                put_u64(&mut buf, *session);
                put_u64(&mut buf, *token);
            }
            ServerFrame::ResumeAck { session, next_seq } => {
                buf.push(TAG_RESUME_ACK);
                put_u64(&mut buf, *session);
                put_u64(&mut buf, *next_seq);
            }
            ServerFrame::Health {
                degraded,
                events,
                reports,
                shed,
            } => {
                buf.push(TAG_HEALTH);
                buf.push(u8::from(*degraded));
                put_u64(&mut buf, *events);
                put_u64(&mut buf, *reports);
                put_u64(&mut buf, *shed);
            }
            ServerFrame::Summary { shed, json } => {
                buf.push(TAG_SUMMARY);
                put_u64(&mut buf, *shed);
                buf.extend_from_slice(json.as_bytes());
            }
            ServerFrame::Error { message } => {
                buf.push(TAG_ERROR);
                buf.extend_from_slice(message.as_bytes());
            }
        }
        buf
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Cursor over untrusted payload bytes. Every `take_*` returns `Truncated`
/// instead of indexing out of bounds.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], FrameError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(FrameError::Truncated { what })?;
        let out = self
            .buf
            .get(self.pos..end)
            .ok_or(FrameError::Truncated { what })?;
        self.pos = end;
        Ok(out)
    }

    fn take_u8(&mut self, what: &'static str) -> Result<u8, FrameError> {
        self.take(1, what)?
            .first()
            .copied()
            .ok_or(FrameError::Truncated { what })
    }

    fn take_u32(&mut self, what: &'static str) -> Result<u32, FrameError> {
        let b: [u8; 4] = self
            .take(4, what)?
            .try_into()
            .map_err(|_| FrameError::Truncated { what })?;
        Ok(u32::from_le_bytes(b))
    }

    fn take_u64(&mut self, what: &'static str) -> Result<u64, FrameError> {
        let b: [u8; 8] = self
            .take(8, what)?
            .try_into()
            .map_err(|_| FrameError::Truncated { what })?;
        Ok(u64::from_le_bytes(b))
    }

    fn rest_utf8(&mut self, what: &'static str) -> Result<String, FrameError> {
        let bytes = self.buf.get(self.pos..).unwrap_or(&[]);
        self.pos = self.buf.len();
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::BadUtf8 { what })
    }

    /// Strict decoders call this last: leftover bytes mean the frame was
    /// not what it claimed to be.
    fn finish(&self) -> Result<(), FrameError> {
        if self.pos != self.buf.len() {
            return Err(FrameError::Malformed {
                what: "trailing bytes after message",
            });
        }
        Ok(())
    }
}

fn take_usize64(c: &mut Cursor<'_>, what: &'static str) -> Result<usize, FrameError> {
    usize::try_from(c.take_u64(what)?).map_err(|_| FrameError::Malformed { what })
}

fn take_range(c: &mut Cursor<'_>) -> Result<MemRange, FrameError> {
    let rank = c.take_u32("range rank")? as usize;
    let segment = match c.take_u8("range segment")? {
        0 => Segment::Private,
        1 => Segment::Public,
        _ => return Err(FrameError::Malformed { what: "segment" }),
    };
    let offset = take_usize64(c, "range offset")?;
    let len = c.take_u32("range len")? as usize;
    Ok(MemRange {
        addr: GlobalAddr {
            rank,
            segment,
            offset,
        },
        len,
    })
}

fn take_lock(c: &mut Cursor<'_>) -> Result<LockId, FrameError> {
    let rank = c.take_u32("lock rank")? as usize;
    let offset = take_usize64(c, "lock offset")?;
    Ok((rank, offset))
}

fn take_event(c: &mut Cursor<'_>) -> Result<WireEvent, FrameError> {
    match c.take_u8("event tag")? {
        EV_OP => {
            let op_id = c.take_u64("op id")?;
            let actor = c.take_u32("op actor")? as usize;
            let kind = match c.take_u8("op kind")? {
                OP_PUT => OpKind::Put {
                    src: take_range(c)?,
                    dst: take_range(c)?,
                },
                OP_GET => OpKind::Get {
                    src: take_range(c)?,
                    dst: take_range(c)?,
                },
                OP_LOCAL_READ => OpKind::LocalRead {
                    range: take_range(c)?,
                },
                OP_LOCAL_WRITE => OpKind::LocalWrite {
                    range: take_range(c)?,
                },
                OP_ATOMIC => OpKind::AtomicRmw {
                    range: take_range(c)?,
                },
                _ => return Err(FrameError::Malformed { what: "op kind" }),
            };
            Ok(WireEvent::Op(DsmOp { op_id, actor, kind }))
        }
        EV_BARRIER => Ok(WireEvent::Barrier),
        EV_ACQUIRE => Ok(WireEvent::Acquire {
            rank: c.take_u32("acquire rank")? as usize,
            lock: take_lock(c)?,
        }),
        EV_RELEASE => Ok(WireEvent::Release {
            rank: c.take_u32("release rank")? as usize,
            lock: take_lock(c)?,
        }),
        _ => Err(FrameError::Malformed { what: "event tag" }),
    }
}

impl ClientFrame {
    /// Decode a payload the server received. Never panics on any input.
    pub fn decode(payload: &[u8]) -> Result<Self, FrameError> {
        let mut c = Cursor::new(payload);
        let frame = match c.take_u8("frame tag") {
            Err(_) => return Err(FrameError::Empty),
            Ok(TAG_HELLO) => {
                let version = c.take_u8("hello version")?;
                if version != PROTOCOL_VERSION {
                    return Err(FrameError::Version { got: version });
                }
                ClientFrame::Hello {
                    config_json: c.rest_utf8("hello config")?,
                }
            }
            Ok(TAG_EVENT) => ClientFrame::Event(take_event(&mut c)?),
            Ok(TAG_FINISH) => ClientFrame::Finish,
            Ok(TAG_PING) => ClientFrame::Ping,
            Ok(TAG_RESUME) => {
                let version = c.take_u8("resume version")?;
                if version != PROTOCOL_VERSION {
                    return Err(FrameError::Version { got: version });
                }
                ClientFrame::Resume {
                    token: c.take_u64("resume token")?,
                    last_acked_seq: c.take_u64("resume acked seq")?,
                }
            }
            Ok(tag) => return Err(FrameError::UnknownTag { tag }),
        };
        c.finish()?;
        Ok(frame)
    }
}

impl ServerFrame {
    /// Decode a payload the client received. Never panics on any input.
    pub fn decode(payload: &[u8]) -> Result<Self, FrameError> {
        let mut c = Cursor::new(payload);
        let frame = match c.take_u8("frame tag") {
            Err(_) => return Err(FrameError::Empty),
            Ok(TAG_HELLO_ACK) => ServerFrame::HelloAck {
                session: c.take_u64("session id")?,
                token: c.take_u64("resume token")?,
            },
            Ok(TAG_RESUME_ACK) => ServerFrame::ResumeAck {
                session: c.take_u64("session id")?,
                next_seq: c.take_u64("next seq")?,
            },
            Ok(TAG_HEALTH) => {
                let degraded = match c.take_u8("health degraded")? {
                    0 => false,
                    1 => true,
                    _ => {
                        return Err(FrameError::Malformed {
                            what: "health degraded flag",
                        })
                    }
                };
                ServerFrame::Health {
                    degraded,
                    events: c.take_u64("health events")?,
                    reports: c.take_u64("health reports")?,
                    shed: c.take_u64("health shed")?,
                }
            }
            Ok(TAG_SUMMARY) => ServerFrame::Summary {
                shed: c.take_u64("summary shed")?,
                json: c.rest_utf8("summary json")?,
            },
            Ok(TAG_ERROR) => ServerFrame::Error {
                message: c.rest_utf8("error message")?,
            },
            Ok(tag) => return Err(FrameError::UnknownTag { tag }),
        };
        c.finish()?;
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<WireEvent> {
        let src = GlobalAddr::private(0, 16).range(8);
        let dst = GlobalAddr::public(1, 32).range(8);
        vec![
            WireEvent::Op(DsmOp {
                op_id: 1,
                actor: 0,
                kind: OpKind::Put { src, dst },
            }),
            WireEvent::Op(DsmOp {
                op_id: 2,
                actor: 1,
                kind: OpKind::Get { src: dst, dst: src },
            }),
            WireEvent::Op(DsmOp {
                op_id: 3,
                actor: 2,
                kind: OpKind::LocalRead {
                    range: dst.addr.range(4),
                },
            }),
            WireEvent::Op(DsmOp {
                op_id: 4,
                actor: 2,
                kind: OpKind::LocalWrite {
                    range: dst.addr.range(4),
                },
            }),
            WireEvent::Op(DsmOp {
                op_id: 5,
                actor: 3,
                kind: OpKind::AtomicRmw {
                    range: dst.addr.range(8),
                },
            }),
            WireEvent::Barrier,
            WireEvent::Acquire {
                rank: 1,
                lock: (1, 64),
            },
            WireEvent::Release {
                rank: 1,
                lock: (1, 64),
            },
        ]
    }

    #[test]
    fn client_frames_round_trip() {
        let mut frames = vec![
            ClientFrame::Hello {
                config_json: "{\"kind\":\"dual\"}".into(),
            },
            ClientFrame::Finish,
            ClientFrame::Ping,
            ClientFrame::Resume {
                token: 0xDEAD_BEEF_F00D,
                last_acked_seq: 977,
            },
        ];
        frames.extend(sample_events().into_iter().map(ClientFrame::Event));
        for frame in frames {
            let decoded = ClientFrame::decode(&frame.encode()).expect("round trip");
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn server_frames_round_trip() {
        let frames = vec![
            ServerFrame::HelloAck {
                session: 42,
                token: 0x5EED,
            },
            ServerFrame::ResumeAck {
                session: 42,
                next_seq: 1234,
            },
            ServerFrame::Health {
                degraded: true,
                events: 10,
                reports: 2,
                shed: 1,
            },
            ServerFrame::Summary {
                shed: 3,
                json: "{\"total\":0}".into(),
            },
            ServerFrame::Error {
                message: "broken".into(),
            },
        ];
        for frame in frames {
            let decoded = ServerFrame::decode(&frame.encode()).expect("round trip");
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn decode_rejects_empty_unknown_and_truncated() {
        assert_eq!(ClientFrame::decode(&[]), Err(FrameError::Empty));
        assert_eq!(
            ClientFrame::decode(&[0x7f]),
            Err(FrameError::UnknownTag { tag: 0x7f })
        );
        // Event frame with a chopped op.
        let mut good = ClientFrame::Event(sample_events()[0]).encode();
        good.truncate(good.len() - 3);
        assert!(matches!(
            ClientFrame::decode(&good),
            Err(FrameError::Truncated { .. })
        ));
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut buf = ClientFrame::Finish.encode();
        buf.push(0);
        assert_eq!(
            ClientFrame::decode(&buf),
            Err(FrameError::Malformed {
                what: "trailing bytes after message"
            })
        );
    }

    #[test]
    fn decode_rejects_bad_discriminants() {
        // Segment byte 9 inside an op.
        let mut buf = ClientFrame::Event(sample_events()[0]).encode();
        // Layout: tag, ev tag, op_id(8), actor(4), op kind, rank(4), segment...
        let seg_at = 1 + 1 + 8 + 4 + 1 + 4;
        buf[seg_at] = 9;
        assert_eq!(
            ClientFrame::decode(&buf),
            Err(FrameError::Malformed { what: "segment" })
        );
    }

    #[test]
    fn decode_rejects_wrong_version() {
        let mut buf = ClientFrame::Hello {
            config_json: "{}".into(),
        }
        .encode();
        buf[1] = PROTOCOL_VERSION + 1;
        assert_eq!(
            ClientFrame::decode(&buf),
            Err(FrameError::Version {
                got: PROTOCOL_VERSION + 1
            })
        );
        // Resume carries the version too: a v1 client cannot resume.
        let mut buf = ClientFrame::Resume {
            token: 7,
            last_acked_seq: 0,
        }
        .encode();
        buf[1] = 1;
        assert_eq!(
            ClientFrame::decode(&buf),
            Err(FrameError::Version { got: 1 })
        );
    }

    #[test]
    fn read_frame_polices_length_prefix() {
        use std::io::Cursor as IoCursor;
        // Clean close at boundary.
        let mut empty = IoCursor::new(Vec::<u8>::new());
        assert!(matches!(
            read_frame(&mut empty),
            Err(WireError::Frame(FrameError::ConnectionClosed))
        ));
        // Oversized prefix never allocates.
        let mut huge = IoCursor::new((u32::MAX).to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut huge),
            Err(WireError::Frame(FrameError::Oversized { .. }))
        ));
        // Zero-length frame.
        let mut zero = IoCursor::new(0u32.to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut zero),
            Err(WireError::Frame(FrameError::Empty))
        ));
        // Mid-frame hangup.
        let mut cut = IoCursor::new(vec![8, 0, 0, 0, 1, 2]);
        assert!(matches!(
            read_frame(&mut cut),
            Err(WireError::Frame(FrameError::Truncated { .. }))
        ));
    }

    #[test]
    fn write_frame_refuses_invalid_sizes() {
        let mut out = Vec::new();
        assert!(write_frame(&mut out, &[]).is_err());
        assert!(write_frame(&mut out, &vec![0; MAX_FRAME + 1]).is_err());
        assert!(out.is_empty(), "nothing written on refusal");
    }
}

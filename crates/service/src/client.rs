//! Blocking client handle for the detection service.
//!
//! [`ServiceClient`] wraps one TCP connection: handshake on connect, one
//! frame per event, and a final `Finish` → `Summary` exchange whose JSON is
//! exactly the canonical `RaceSummary::to_json` bytes — callers compare it
//! directly against an in-process run for parity checks.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use race_core::api::DetectorConfig;
use race_core::summary::RaceSummary;

use crate::frame::{
    read_frame, write_frame, ClientFrame, FrameError, ServerFrame, WireError, WireEvent,
};

/// A client-side failure. Like the server, the client never panics on wire
/// input: everything wrong comes back typed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server's bytes were not a valid frame.
    Frame(FrameError),
    /// The server answered with an `Error` frame (its message preserved).
    Rejected(String),
    /// The server sent a well-formed frame the client did not expect at
    /// this point of the exchange.
    Unexpected(&'static str),
    /// The summary JSON did not parse back into a `RaceSummary`.
    BadSummary(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Frame(e) => write!(f, "frame error: {e}"),
            ClientError::Rejected(msg) => write!(f, "server rejected session: {msg}"),
            ClientError::Unexpected(what) => write!(f, "unexpected server frame: {what}"),
            ClientError::BadSummary(e) => write!(f, "unparseable summary: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(e) => ClientError::Io(e),
            WireError::Frame(e) => ClientError::Frame(e),
        }
    }
}

/// The session's liveness line, as answered to a `Ping`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthLine {
    /// True when the session's pipeline or summary is degraded.
    pub degraded: bool,
    /// Events the session has applied.
    pub events: u64,
    /// Races reported so far.
    pub reports: u64,
    /// Events shed by the slow-client policy.
    pub shed: u64,
}

/// The final result of a remote session.
#[derive(Debug, Clone)]
pub struct RemoteSummary {
    /// The parsed summary.
    pub summary: RaceSummary,
    /// The summary's exact wire bytes (canonical JSON) — compare these for
    /// byte-identical parity with an in-process run.
    pub raw_json: String,
    /// Events the server shed under its slow-client policy.
    pub shed: u64,
    /// The server's error message, when the session ended degraded but a
    /// summary was still produced (reap, poison, supervised panic).
    pub error: Option<String>,
}

/// One live connection to the detection server.
#[derive(Debug)]
pub struct ServiceClient {
    stream: TcpStream,
    session: u64,
}

impl ServiceClient {
    /// Connect and perform the Hello handshake. The read timeout bounds how
    /// long any single server response is awaited.
    pub fn connect(
        addr: impl ToSocketAddrs,
        config: &DetectorConfig,
    ) -> Result<ServiceClient, ClientError> {
        Self::connect_with_timeout(addr, config, Duration::from_secs(10))
    }

    /// [`ServiceClient::connect`] with an explicit per-read timeout.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        config: &DetectorConfig,
        read_timeout: Duration,
    ) -> Result<ServiceClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(read_timeout))?;
        let mut client = ServiceClient { stream, session: 0 };
        client.send_client_frame(&ClientFrame::Hello {
            config_json: config.to_json(),
        })?;
        match client.read_server_frame()? {
            ServerFrame::HelloAck { session } => {
                client.session = session;
                Ok(client)
            }
            ServerFrame::Error { message } => Err(ClientError::Rejected(message)),
            _ => Err(ClientError::Unexpected("wanted hello-ack")),
        }
    }

    /// The server-assigned session id.
    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// Stream one event.
    pub fn send(&mut self, event: &WireEvent) -> Result<(), ClientError> {
        self.send_client_frame(&ClientFrame::Event(*event))
    }

    /// Probe the session's liveness.
    pub fn ping(&mut self) -> Result<HealthLine, ClientError> {
        self.send_client_frame(&ClientFrame::Ping)?;
        match self.read_server_frame()? {
            ServerFrame::Health {
                degraded,
                events,
                reports,
                shed,
            } => Ok(HealthLine {
                degraded,
                events,
                reports,
                shed,
            }),
            ServerFrame::Error { message } => Err(ClientError::Rejected(message)),
            _ => Err(ClientError::Unexpected("wanted health")),
        }
    }

    /// End the stream and collect the summary. Consumes the client; the
    /// connection closes when this returns.
    pub fn finish(mut self) -> Result<RemoteSummary, ClientError> {
        self.send_client_frame(&ClientFrame::Finish)?;
        let mut error = None;
        loop {
            match self.read_server_frame()? {
                // A late Health answer (pipelined ping) is skipped, not an
                // error: frames are ordered but the client may not have
                // drained every response before finishing.
                ServerFrame::Health { .. } => continue,
                ServerFrame::Error { message } => error = Some(message),
                ServerFrame::Summary { shed, json } => {
                    let summary = RaceSummary::from_json(&json).map_err(ClientError::BadSummary)?;
                    return Ok(RemoteSummary {
                        summary,
                        raw_json: json,
                        shed,
                        error,
                    });
                }
                ServerFrame::HelloAck { .. } => {
                    return Err(ClientError::Unexpected("second hello-ack"))
                }
            }
        }
    }

    fn send_client_frame(&mut self, frame: &ClientFrame) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &frame.encode())?;
        Ok(())
    }

    fn read_server_frame(&mut self) -> Result<ServerFrame, ClientError> {
        let payload = read_frame(&mut self.stream)?;
        Ok(ServerFrame::decode(&payload)?)
    }
}

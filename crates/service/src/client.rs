//! Blocking client handle for the detection service.
//!
//! [`ServiceClient`] wraps one *logical* session that may span several TCP
//! connections: handshake on connect, one frame per event, and a final
//! `Finish` → `Summary` exchange whose JSON is exactly the canonical
//! `RaceSummary::to_json` bytes — callers compare it directly against an
//! in-process run for parity checks.
//!
//! # Durability
//!
//! The server minted a resume token at hello time and parks the session
//! (rather than ending it) when the connection dies mid-stream. The client
//! holds up its end: every sent event is kept in a bounded replay buffer,
//! and an I/O failure on [`ServiceClient::send`], [`ServiceClient::ping`]
//! or [`ServiceClient::finish`] triggers an automatic reconnect — dial with
//! a connect timeout, present the token, and replay exactly the events the
//! server's `ResumeAck` says it never applied. Reconnect attempts follow
//! the [`RetryPolicy`]'s *jittered* exponential backoff so a fleet of
//! clients orphaned by the same network blip does not stampede back in
//! lockstep. Failures stay typed: a dead endpoint is
//! [`ClientError::ReconnectFailed`], a refused token is
//! [`ClientError::Rejected`], a replay buffer too small for the gap is
//! [`ClientError::ResumeGap`] — never a panic, never a hang.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use race_core::api::DetectorConfig;
use race_core::error::RetryPolicy;
use race_core::summary::RaceSummary;

use crate::frame::{
    read_frame, write_frame, ClientFrame, FrameError, ServerFrame, WireError, WireEvent,
};

/// Default bound of the client-side replay buffer (events retained for
/// resume). Matches the server's default checkpoint cadence with headroom.
const DEFAULT_REPLAY_CAPACITY: usize = 4096;

/// A client-side failure. Like the server, the client never panics on wire
/// input: everything wrong comes back typed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server's bytes were not a valid frame.
    Frame(FrameError),
    /// The server answered with an `Error` frame (its message preserved).
    Rejected(String),
    /// The server sent a well-formed frame the client did not expect at
    /// this point of the exchange.
    Unexpected(&'static str),
    /// The summary JSON did not parse back into a `RaceSummary`.
    BadSummary(String),
    /// Every reconnect attempt in the backoff schedule failed; the message
    /// is the last attempt's error.
    ReconnectFailed(String),
    /// The server resumed the session but expects events the client's
    /// bounded replay buffer no longer holds.
    ResumeGap {
        /// The sequence the server expects next.
        next_seq: u64,
        /// The oldest sequence still buffered client-side.
        oldest_buffered: u64,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Frame(e) => write!(f, "frame error: {e}"),
            ClientError::Rejected(msg) => write!(f, "server rejected session: {msg}"),
            ClientError::Unexpected(what) => write!(f, "unexpected server frame: {what}"),
            ClientError::BadSummary(e) => write!(f, "unparseable summary: {e}"),
            ClientError::ReconnectFailed(msg) => {
                write!(f, "reconnect attempts exhausted: {msg}")
            }
            ClientError::ResumeGap {
                next_seq,
                oldest_buffered,
            } => write!(
                f,
                "resume gap: server expects seq {next_seq}, oldest buffered is {oldest_buffered}"
            ),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(e) => ClientError::Io(e),
            WireError::Frame(e) => ClientError::Frame(e),
        }
    }
}

impl ClientError {
    /// True for transport-level failures that auto-reconnect may heal (the
    /// connection died; the session may be parked server-side).
    fn is_transport(&self) -> bool {
        matches!(
            self,
            ClientError::Io(_)
                | ClientError::Frame(FrameError::ConnectionClosed)
                | ClientError::Frame(FrameError::Truncated { .. })
        )
    }
}

/// The session's liveness line, as answered to a `Ping`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthLine {
    /// True when the session's pipeline or summary is degraded.
    pub degraded: bool,
    /// Events the session has applied.
    pub events: u64,
    /// Races reported so far.
    pub reports: u64,
    /// Events shed by the slow-client policy.
    pub shed: u64,
}

/// The final result of a remote session.
#[derive(Debug, Clone)]
pub struct RemoteSummary {
    /// The parsed summary.
    pub summary: RaceSummary,
    /// The summary's exact wire bytes (canonical JSON) — compare these for
    /// byte-identical parity with an in-process run.
    pub raw_json: String,
    /// Events the server shed under its slow-client policy.
    pub shed: u64,
    /// The server's error message, when the session ended degraded but a
    /// summary was still produced (reap, poison, supervised panic).
    pub error: Option<String>,
}

/// Connection-robustness knobs for [`ServiceClient`].
#[derive(Debug, Clone, Copy)]
pub struct ClientTimeouts {
    /// Bound on establishing one TCP connection.
    pub connect: Duration,
    /// Bound on awaiting any single server response.
    pub read: Duration,
}

impl Default for ClientTimeouts {
    fn default() -> Self {
        ClientTimeouts {
            connect: Duration::from_secs(10),
            read: Duration::from_secs(10),
        }
    }
}

/// One logical session with the detection server, surviving reconnects.
#[derive(Debug)]
pub struct ServiceClient {
    stream: TcpStream,
    session: u64,
    token: u64,
    peer: SocketAddr,
    timeouts: ClientTimeouts,
    retry: RetryPolicy,
    /// Events sent so far; doubles as the next event's sequence number.
    sent: u64,
    /// Recently sent events, by sequence, for resume replay.
    replay: VecDeque<(u64, WireEvent)>,
    replay_capacity: usize,
    /// Reconnects performed over this client's lifetime.
    reconnects: u64,
}

impl ServiceClient {
    /// Connect and perform the Hello handshake with default timeouts.
    pub fn connect(
        addr: impl ToSocketAddrs,
        config: &DetectorConfig,
    ) -> Result<ServiceClient, ClientError> {
        Self::connect_with_timeouts(addr, config, ClientTimeouts::default())
    }

    /// [`ServiceClient::connect`] with an explicit per-read timeout.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        config: &DetectorConfig,
        read_timeout: Duration,
    ) -> Result<ServiceClient, ClientError> {
        Self::connect_with_timeouts(
            addr,
            config,
            ClientTimeouts {
                read: read_timeout,
                ..ClientTimeouts::default()
            },
        )
    }

    /// [`ServiceClient::connect`] with explicit connect and read timeouts.
    /// A dead or unroutable endpoint fails typed ([`ClientError::Io`])
    /// within the connect timeout instead of hanging.
    pub fn connect_with_timeouts(
        addr: impl ToSocketAddrs,
        config: &DetectorConfig,
        timeouts: ClientTimeouts,
    ) -> Result<ServiceClient, ClientError> {
        let (stream, peer) = dial(addr, timeouts)?;
        let mut client = ServiceClient {
            stream,
            session: 0,
            token: 0,
            peer,
            timeouts,
            retry: RetryPolicy::default(),
            sent: 0,
            replay: VecDeque::new(),
            replay_capacity: DEFAULT_REPLAY_CAPACITY,
            reconnects: 0,
        };
        client.send_client_frame(&ClientFrame::Hello {
            config_json: config.to_json(),
        })?;
        match client.read_server_frame()? {
            ServerFrame::HelloAck { session, token } => {
                client.session = session;
                client.token = token;
                Ok(client)
            }
            ServerFrame::Error { message } => Err(ClientError::Rejected(message)),
            _ => Err(ClientError::Unexpected("wanted hello-ack")),
        }
    }

    /// The server-assigned session id.
    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// The server-minted resume token for this session.
    pub fn resume_token(&self) -> u64 {
        self.token
    }

    /// Reconnects performed so far (0 on an uninterrupted connection).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Replace the reconnect backoff schedule (jitter is applied on top).
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Bound the resume replay buffer. A reconnect needing events older
    /// than the buffer holds fails with [`ClientError::ResumeGap`].
    pub fn set_replay_capacity(&mut self, capacity: usize) {
        self.replay_capacity = capacity.max(1);
        while self.replay.len() > self.replay_capacity {
            self.replay.pop_front();
        }
    }

    /// Chaos hook: kill the underlying TCP connection *now*, as a network
    /// fault would. The next [`ServiceClient::send`], [`ServiceClient::ping`]
    /// or [`ServiceClient::finish`] exercises the full reconnect-and-resume
    /// path. Used by the durability tests and the serve-smoke harness.
    pub fn drop_connection(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    /// Stream one event. A dead connection is healed transparently: the
    /// client reconnects (jittered backoff), resumes its parked session and
    /// replays every unacknowledged event — this one included.
    pub fn send(&mut self, event: &WireEvent) -> Result<(), ClientError> {
        let seq = self.sent;
        self.replay.push_back((seq, *event));
        if self.replay.len() > self.replay_capacity {
            self.replay.pop_front();
        }
        self.sent += 1;
        match self.send_client_frame(&ClientFrame::Event(*event)) {
            Ok(()) => Ok(()),
            Err(e) if e.is_transport() => self.reconnect(), // replay covers this event
            Err(e) => Err(e),
        }
    }

    /// Probe the session's liveness. Acknowledged events are trimmed from
    /// the replay buffer; a dead connection is healed as in
    /// [`ServiceClient::send`].
    pub fn ping(&mut self) -> Result<HealthLine, ClientError> {
        let health = match self.ping_once() {
            Err(e) if e.is_transport() => {
                self.reconnect()?;
                self.ping_once()
            }
            other => other,
        }?;
        // The server's applied-event count is the ack floor: anything below
        // it will never be requested by a resume.
        while matches!(self.replay.front(), Some((seq, _)) if *seq < health.events) {
            self.replay.pop_front();
        }
        Ok(health)
    }

    /// End the stream and collect the summary. Consumes the client; the
    /// connection closes when this returns.
    pub fn finish(mut self) -> Result<RemoteSummary, ClientError> {
        match self.finish_once() {
            Err(e) if e.is_transport() => {
                self.reconnect()?;
                self.finish_once()
            }
            other => other,
        }
    }

    fn ping_once(&mut self) -> Result<HealthLine, ClientError> {
        self.send_client_frame(&ClientFrame::Ping)?;
        match self.read_server_frame()? {
            ServerFrame::Health {
                degraded,
                events,
                reports,
                shed,
            } => Ok(HealthLine {
                degraded,
                events,
                reports,
                shed,
            }),
            ServerFrame::Error { message } => Err(ClientError::Rejected(message)),
            _ => Err(ClientError::Unexpected("wanted health")),
        }
    }

    fn finish_once(&mut self) -> Result<RemoteSummary, ClientError> {
        self.send_client_frame(&ClientFrame::Finish)?;
        let mut error = None;
        loop {
            match self.read_server_frame()? {
                // A late Health answer (pipelined ping) is skipped, not an
                // error: frames are ordered but the client may not have
                // drained every response before finishing.
                ServerFrame::Health { .. } => continue,
                ServerFrame::Error { message } => error = Some(message),
                ServerFrame::Summary { shed, json } => {
                    let summary = RaceSummary::from_json(&json).map_err(ClientError::BadSummary)?;
                    return Ok(RemoteSummary {
                        summary,
                        raw_json: json,
                        shed,
                        error,
                    });
                }
                ServerFrame::HelloAck { .. } => {
                    return Err(ClientError::Unexpected("second hello-ack"))
                }
                ServerFrame::ResumeAck { .. } => {
                    return Err(ClientError::Unexpected("resume-ack outside resume"))
                }
            }
        }
    }

    /// Dial the server again and resume the parked session, replaying the
    /// unacknowledged event tail. Every attempt is preceded by a jittered
    /// backoff delay (the server needs a beat to notice the dead connection
    /// and park the session; the jitter de-correlates a reconnecting fleet).
    fn reconnect(&mut self) -> Result<(), ClientError> {
        // Make sure the server sees the old connection as dead even when the
        // failure was asymmetric (e.g. only our reads broke).
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        let mut last_err = "no reconnect attempts configured".to_string();
        let seed = self.token ^ self.sent.rotate_left(32);
        let delays: Vec<Duration> = self.retry.jittered_delays(seed).collect();
        for delay in delays {
            std::thread::sleep(delay);
            match self.try_resume() {
                Ok(()) => {
                    self.reconnects += 1;
                    return Ok(());
                }
                // Typed rejections are final: retrying a refused token or a
                // replay gap cannot succeed.
                Err(e @ (ClientError::Rejected(_) | ClientError::ResumeGap { .. })) => {
                    return Err(e)
                }
                Err(e) => last_err = e.to_string(),
            }
        }
        Err(ClientError::ReconnectFailed(last_err))
    }

    fn try_resume(&mut self) -> Result<(), ClientError> {
        let (mut stream, _) = dial(self.peer, self.timeouts)?;
        write_frame(
            &mut stream,
            &ClientFrame::Resume {
                token: self.token,
                last_acked_seq: self.server_floor(),
            }
            .encode(),
        )?;
        let payload = read_frame(&mut stream)?;
        match ServerFrame::decode(&payload)? {
            ServerFrame::ResumeAck { session, next_seq } => {
                if let Some((oldest, _)) = self.replay.front() {
                    if next_seq < *oldest {
                        return Err(ClientError::ResumeGap {
                            next_seq,
                            oldest_buffered: *oldest,
                        });
                    }
                } else if next_seq < self.sent {
                    return Err(ClientError::ResumeGap {
                        next_seq,
                        oldest_buffered: self.sent,
                    });
                }
                // Replay exactly the events the server never applied.
                let tail: Vec<Vec<u8>> = self
                    .replay
                    .iter()
                    .filter(|(seq, _)| *seq >= next_seq)
                    .map(|(_, ev)| ClientFrame::Event(*ev).encode())
                    .collect();
                for frame in tail {
                    write_frame(&mut stream, &frame)?;
                }
                self.session = session;
                self.stream = stream;
                Ok(())
            }
            ServerFrame::Error { message } => Err(ClientError::Rejected(message)),
            _ => Err(ClientError::Unexpected("wanted resume-ack")),
        }
    }

    /// The highest sequence the client can prove the server applied — the
    /// trim floor of the replay buffer (everything below it was dropped
    /// because a Health line acknowledged it).
    fn server_floor(&self) -> u64 {
        self.replay
            .front()
            .map(|(seq, _)| *seq)
            .unwrap_or(self.sent)
    }

    fn send_client_frame(&mut self, frame: &ClientFrame) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &frame.encode())?;
        Ok(())
    }

    fn read_server_frame(&mut self) -> Result<ServerFrame, ClientError> {
        let payload = read_frame(&mut self.stream)?;
        Ok(ServerFrame::decode(&payload)?)
    }
}

/// Resolve and dial with a connect timeout; the read timeout is installed
/// on the resulting stream. A dead endpoint fails typed, never hangs.
fn dial(
    addr: impl ToSocketAddrs,
    timeouts: ClientTimeouts,
) -> Result<(TcpStream, SocketAddr), ClientError> {
    let mut last_err: Option<std::io::Error> = None;
    for candidate in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&candidate, timeouts.connect) {
            Ok(stream) => {
                stream.set_nodelay(true).ok();
                stream.set_read_timeout(Some(timeouts.read))?;
                return Ok((stream, candidate));
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(ClientError::Io(last_err.unwrap_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::AddrNotAvailable,
            "address resolved to no candidates",
        )
    })))
}

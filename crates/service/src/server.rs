//! The crash-tolerant, resumable detection server.
//!
//! One long-lived process accepts framed event streams from many concurrent
//! clients; each connection gets its own bounded [`race_core::api::Session`]
//! driven by a supervised worker thread. The robustness contract, in order
//! of importance:
//!
//! 1. **The accept loop never dies.** Whatever one connection does — garbage
//!    bytes, mid-stream hangup, a panic inside its session — only that
//!    session degrades. Supervision is per-session `catch_unwind`, the same
//!    discipline the sharded pipeline applies per shard worker.
//! 2. **Sessions are durable.** The worker checkpoints its session
//!    ([`Session::checkpoint`]) at start and every
//!    [`ServeConfig::checkpoint_every`] events. A worker panic is recovered
//!    *in place*: the session is rebuilt from the last checkpoint plus its
//!    event journal and the stream continues (degraded, but complete). A
//!    client that vanishes mid-stream — clean hangup or a TCP cut in the
//!    middle of a frame — **parks** its session in a registry instead of
//!    ending it: a reconnecting client presents the resume token from its
//!    `HelloAck` and picks up exactly where it left off.
//! 3. **Per-session memory is bounded.** Events flow through a
//!    `sync_channel` of [`ServeConfig::queue_capacity`]; when a client
//!    outruns its session the [`SlowClientPolicy`] decides between
//!    back-pressure ([`SlowClientPolicy::Block`]) and shedding with a
//!    counted `shed` statistic. The completed-session ledger is bounded too
//!    ([`ServeConfig::ledger_capacity`], FIFO eviction with a counter), as
//!    is the journal (truncated at every checkpoint).
//! 4. **Idle and abandoned sessions are reaped.** No frame for
//!    [`ServeConfig::idle_timeout`] ends a live session as
//!    [`SessionOutcome::Reaped`]; a parked session unresumed for
//!    [`ServeConfig::park_ttl`] is finalised as a [`SessionOutcome::Hangup`]
//!    by the reaper thread (or the shutdown sweep).
//! 5. **Shutdown drains.** [`Server::shutdown`] stops accepting, lets every
//!    live session flush, finalises every still-parked session, and returns
//!    the ledger in the [`ShutdownReport`] — no stream is silently
//!    discarded.
//!
//! Clean sessions — including resumed ones — produce summaries
//! byte-identical (via `RaceSummary::to_json`) to an in-process `Session`
//! fed the same events; the serve-smoke chaos harness pins that parity
//! through mid-frame cuts and worker kills.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use race_core::api::{DetectorConfig, ReportSink, Session, SummarySink};
use race_core::error::RetryPolicy;
use race_core::snapshot::JournalEvent;
use race_core::summary::RaceSummary;

use crate::frame::{write_frame, ClientFrame, FrameError, ServerFrame, WireError, WireEvent};

/// How often blocked reads wake up to check for shutdown and idleness, and
/// how often the park reaper scans for expired sessions.
const TICK: Duration = Duration::from_millis(25);

/// What to do when a client produces events faster than its session absorbs
/// them and the bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SlowClientPolicy {
    /// Stop reading from the socket until the queue drains — TCP back-
    /// pressure propagates to the client. Nothing is lost; a slow session
    /// slows only its own client.
    #[default]
    Block,
    /// Retry briefly (the [`ServeConfig::retry`] backoff schedule), then
    /// drop the event and count it. The session's final summary reports the
    /// shed count and is marked degraded when any event was shed.
    Shed,
}

/// Builds the per-session report sink. The summary returned to clients is
/// the `Session`'s own bounded tee, so the sink choice changes what is
/// *retained* server-side, never what the client receives.
pub type SinkFactory = Arc<dyn Fn() -> Box<dyn ReportSink> + Send + Sync>;

/// Server tuning knobs. `Default` is production-shaped: blocking back-
/// pressure, 256-event queues, 30 s idle reaping, 30 s park TTL, a
/// checkpoint every 1024 events and a 4096-record ledger.
#[derive(Clone)]
pub struct ServeConfig {
    /// Bound of the per-session event queue (events buffered between the
    /// socket reader and the session worker).
    pub queue_capacity: usize,
    /// Full-queue behaviour.
    pub slow_policy: SlowClientPolicy,
    /// A session with no complete frame for this long is reaped (degraded).
    pub idle_timeout: Duration,
    /// How long a parked (disconnected mid-stream) session waits for its
    /// client to resume before it is finalised as a hangup.
    pub park_ttl: Duration,
    /// The worker re-checkpoints its session every this many events; the
    /// journal (and therefore panic-recovery replay cost) is bounded by
    /// this. Zero is treated as one.
    pub checkpoint_every: u64,
    /// Bound of the completed-session ledger. The oldest record is evicted
    /// (FIFO, counted in [`ShutdownReport::evicted_records`]) when a new
    /// one would exceed it — mirroring the `DedupSink` bound. Zero is
    /// treated as one.
    pub ledger_capacity: usize,
    /// Backoff schedule used by [`SlowClientPolicy::Shed`] before giving up
    /// on an event — the same bounded-probing policy the sharded pipeline
    /// uses at batch fences.
    pub retry: RetryPolicy,
    /// Fault-injection hook: the session worker panics when it observes
    /// this op id. Exercises the supervision + checkpoint-recovery path
    /// from tests and the chaos harness; `None` in production. The hook is
    /// one-shot per session: recovery disarms it so the replayed event is
    /// applied, exactly once.
    pub panic_on_op_id: Option<u64>,
    /// Per-session report sink. `None` uses a [`SummarySink`] (bounded
    /// memory, the right default for a long-lived service).
    pub sink_factory: Option<SinkFactory>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 256,
            slow_policy: SlowClientPolicy::default(),
            idle_timeout: Duration::from_secs(30),
            park_ttl: Duration::from_secs(30),
            checkpoint_every: 1024,
            ledger_capacity: 4096,
            retry: RetryPolicy::default(),
            panic_on_op_id: None,
            sink_factory: None,
        }
    }
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("queue_capacity", &self.queue_capacity)
            .field("slow_policy", &self.slow_policy)
            .field("idle_timeout", &self.idle_timeout)
            .field("park_ttl", &self.park_ttl)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("ledger_capacity", &self.ledger_capacity)
            .field("retry", &self.retry)
            .field("panic_on_op_id", &self.panic_on_op_id)
            .field("sink_factory", &self.sink_factory.as_ref().map(|_| "..."))
            .finish()
    }
}

/// How a session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionOutcome {
    /// The client sent `Finish` and received its summary.
    Finished,
    /// Server shutdown drained the session; the summary covers every event
    /// received before the drain.
    Drained,
    /// No frame within the idle timeout; session degraded and closed.
    Reaped,
    /// The client vanished mid-stream and never resumed: the session was
    /// parked, expired past [`ServeConfig::park_ttl`] (or was swept at
    /// shutdown), and its checkpointed summary was finalised degraded.
    Hangup,
    /// The client sent bytes the codec rejected; the typed decode error is
    /// in [`SessionRecord::error`].
    Poisoned,
    /// The session worker panicked and could not be rebuilt from its last
    /// checkpoint; the server kept running. (A rebuildable panic recovers
    /// in place and the session continues — counted in
    /// `panics_supervised`, outcome still [`SessionOutcome::Finished`].)
    Panicked,
}

impl SessionOutcome {
    /// Stable lowercase label for logs and tables.
    pub fn label(self) -> &'static str {
        match self {
            SessionOutcome::Finished => "finished",
            SessionOutcome::Drained => "drained",
            SessionOutcome::Reaped => "reaped",
            SessionOutcome::Hangup => "hangup",
            SessionOutcome::Poisoned => "poisoned",
            SessionOutcome::Panicked => "panicked",
        }
    }
}

/// The server's record of one session, pushed to the ledger when the
/// session ends (and readable after [`Server::shutdown`]).
#[derive(Debug, Clone)]
pub struct SessionRecord {
    /// Server-assigned session id (also sent to the client in `HelloAck`;
    /// preserved across resumes).
    pub session: u64,
    /// How the session ended.
    pub outcome: SessionOutcome,
    /// Whether the summary is degraded (folded into the JSON too).
    pub degraded: bool,
    /// Events applied to the session (across every connection it spanned).
    pub events: u64,
    /// Events shed by the slow-client policy.
    pub shed: u64,
    /// The session's `RaceSummary` as canonical JSON — the same bytes the
    /// client received in its `Summary` frame (when one was sent).
    pub summary_json: String,
    /// The failure message for degraded outcomes.
    pub error: Option<String>,
}

/// Monotonic server counters (all relaxed atomics; read via
/// [`Server::stats`]).
#[derive(Debug, Default)]
struct ServerStats {
    accepted: AtomicU64,
    finished: AtomicU64,
    drained: AtomicU64,
    reaped: AtomicU64,
    hangups: AtomicU64,
    poisoned: AtomicU64,
    panics_supervised: AtomicU64,
    frames_rejected: AtomicU64,
    events_shed: AtomicU64,
    parked: AtomicU64,
    resumed: AtomicU64,
}

/// A point-in-time copy of the server counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub accepted: u64,
    /// Sessions that ended with a clean `Finish`.
    pub finished: u64,
    /// Sessions drained by shutdown.
    pub drained: u64,
    /// Sessions reaped for idleness.
    pub reaped: u64,
    /// Parked sessions finalised unresumed (TTL expiry or shutdown sweep).
    pub hangups: u64,
    /// Sessions poisoned by malformed frames (including rejected resume
    /// tokens).
    pub poisoned: u64,
    /// Session-worker panics caught by supervision (whether or not the
    /// session was then recovered in place).
    pub panics_supervised: u64,
    /// Frames rejected by the codec or the resume handshake.
    pub frames_rejected: u64,
    /// Events shed under [`SlowClientPolicy::Shed`].
    pub events_shed: u64,
    /// Sessions parked on a mid-stream disconnect (awaiting resume).
    pub parked: u64,
    /// Parked sessions successfully resumed by a reconnecting client.
    pub resumed: u64,
}

impl StatsSnapshot {
    /// Sessions that ended degraded, by any cause.
    pub fn degraded_sessions(&self) -> u64 {
        self.reaped + self.hangups + self.poisoned + self.panics_supervised
    }
}

/// Everything [`Server::shutdown`] hands back: the session ledger and the
/// final counters.
#[derive(Debug)]
pub struct ShutdownReport {
    /// The retained session records, in completion order (oldest evicted
    /// first when the ledger bound was hit).
    pub sessions: Vec<SessionRecord>,
    /// Records evicted from the bounded ledger before shutdown.
    pub evicted_records: u64,
    /// Final counter values.
    pub stats: StatsSnapshot,
}

impl ShutdownReport {
    /// The records with a given outcome.
    pub fn with_outcome(&self, outcome: SessionOutcome) -> Vec<&SessionRecord> {
        self.sessions
            .iter()
            .filter(|r| r.outcome == outcome)
            .collect()
    }
}

/// FIFO-bounded session ledger, mirroring the `DedupSink` bound: eviction
/// is silent for readers but counted.
struct BoundedLedger {
    records: VecDeque<SessionRecord>,
    capacity: usize,
    evicted: u64,
}

impl BoundedLedger {
    fn new(capacity: usize) -> Self {
        BoundedLedger {
            records: VecDeque::new(),
            capacity: capacity.max(1),
            evicted: 0,
        }
    }

    fn push(&mut self, record: SessionRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.evicted += 1;
        }
        self.records.push_back(record);
    }
}

type Ledger = Arc<Mutex<BoundedLedger>>;

/// A session whose client vanished mid-stream, awaiting resume. The
/// checkpoint is the *entire* session state — detector clocks, summary,
/// sink dedup state, event count — so resume needs nothing else.
struct ParkedSession {
    session_id: u64,
    checkpoint: Vec<u8>,
    events: u64,
    shed: u64,
    parked_at: Instant,
}

/// Parked sessions keyed by resume token.
type Registry = Arc<Mutex<HashMap<u64, ParkedSession>>>;

/// The running server: an accept thread, a park-reaper thread, plus two
/// threads (socket reader, session worker) per live connection.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    reaper: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    stats: Arc<ServerStats>,
    ledger: Ledger,
    registry: Registry,
}

impl Server {
    /// Bind and start accepting. `addr` is usually `"127.0.0.1:0"` (ephemeral
    /// port; read it back with [`Server::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let stats = Arc::new(ServerStats::default());
        let ledger: Ledger = Arc::new(Mutex::new(BoundedLedger::new(config.ledger_capacity)));
        let registry: Registry = Arc::new(Mutex::new(HashMap::new()));
        let next_session = Arc::new(AtomicU64::new(1));
        let config = Arc::new(config);

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            let stats = Arc::clone(&stats);
            let ledger = Arc::clone(&ledger);
            let registry = Arc::clone(&registry);
            let config = Arc::clone(&config);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break; // the wake-up connection (or any late arrival) is dropped
                    }
                    let stream = match stream {
                        Ok(s) => s,
                        Err(_) => continue, // transient accept failure; the loop survives
                    };
                    stats.accepted.fetch_add(1, Ordering::Relaxed);
                    let conn_id = next_session.fetch_add(1, Ordering::Relaxed);
                    let config = Arc::clone(&config);
                    let shutdown = Arc::clone(&shutdown);
                    let stats = Arc::clone(&stats);
                    let ledger = Arc::clone(&ledger);
                    let registry = Arc::clone(&registry);
                    let handle = std::thread::spawn(move || {
                        // Belt and braces: the connection body is already
                        // panic-supervised internally; this outer catch
                        // keeps even a reader-side bug from aborting via a
                        // double panic in thread teardown.
                        let _ = catch_unwind(AssertUnwindSafe(|| {
                            handle_connection(
                                stream, conn_id, &config, &shutdown, &stats, &ledger, &registry,
                            );
                        }));
                    });
                    conns.lock().expect("conn registry poisoned").push(handle);
                }
            })
        };

        // The park reaper: parked sessions whose client never came back are
        // finalised as hangups after the TTL, so abandoned state cannot
        // accumulate.
        let reaper = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            let ledger = Arc::clone(&ledger);
            let registry = Arc::clone(&registry);
            let config = Arc::clone(&config);
            std::thread::spawn(move || {
                while !shutdown.load(Ordering::SeqCst) {
                    std::thread::sleep(TICK);
                    let expired: Vec<ParkedSession> = {
                        let mut reg = registry.lock().expect("park registry poisoned");
                        let tokens: Vec<u64> = reg
                            .iter()
                            .filter(|(_, p)| p.parked_at.elapsed() >= config.park_ttl)
                            .map(|(t, _)| *t)
                            .collect();
                        tokens.into_iter().filter_map(|t| reg.remove(&t)).collect()
                    };
                    for parked in expired {
                        finalize_parked(parked, &stats, &ledger);
                    }
                }
            })
        };

        Ok(Server {
            local_addr,
            shutdown,
            accept: Some(accept),
            reaper: Some(reaper),
            conns,
            stats,
            ledger,
            registry,
        })
    }

    /// The bound address (connect clients here).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current counter values.
    pub fn stats(&self) -> StatsSnapshot {
        let s = &self.stats;
        StatsSnapshot {
            accepted: s.accepted.load(Ordering::Relaxed),
            finished: s.finished.load(Ordering::Relaxed),
            drained: s.drained.load(Ordering::Relaxed),
            reaped: s.reaped.load(Ordering::Relaxed),
            hangups: s.hangups.load(Ordering::Relaxed),
            poisoned: s.poisoned.load(Ordering::Relaxed),
            panics_supervised: s.panics_supervised.load(Ordering::Relaxed),
            frames_rejected: s.frames_rejected.load(Ordering::Relaxed),
            events_shed: s.events_shed.load(Ordering::Relaxed),
            parked: s.parked.load(Ordering::Relaxed),
            resumed: s.resumed.load(Ordering::Relaxed),
        }
    }

    /// Copy of the completed-session ledger so far (live and parked
    /// sessions are not in it until they end).
    pub fn sessions(&self) -> Vec<SessionRecord> {
        self.ledger
            .lock()
            .expect("ledger poisoned")
            .records
            .iter()
            .cloned()
            .collect()
    }

    /// Number of sessions currently parked awaiting resume.
    pub fn parked_sessions(&self) -> usize {
        self.registry.lock().expect("park registry poisoned").len()
    }

    /// Graceful shutdown: stop accepting, drain every live session (each
    /// flushes and records its summary as [`SessionOutcome::Drained`]),
    /// finalise every still-parked session as a hangup, join all threads,
    /// and return the complete ledger.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.conns.lock().expect("conn registry poisoned"));
        for h in handles {
            let _ = h.join();
        }
        if let Some(h) = self.reaper.take() {
            let _ = h.join();
        }
        // Sweep: anything still parked was never resumed — finalise it so
        // no stream vanishes from the ledger.
        let leftover: Vec<ParkedSession> = {
            let mut reg = self.registry.lock().expect("park registry poisoned");
            reg.drain().map(|(_, p)| p).collect()
        };
        for parked in leftover {
            finalize_parked(parked, &self.stats, &self.ledger);
        }
        let (sessions, evicted_records) = {
            let ledger = self.ledger.lock().expect("ledger poisoned");
            (ledger.records.iter().cloned().collect(), ledger.evicted)
        };
        ShutdownReport {
            sessions,
            evicted_records,
            stats: self.stats(),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Best-effort: a dropped (not shut down) server still stops its
        // accept loop so the process can exit; connection threads notice
        // the flag within one tick.
        if self.accept.is_some() {
            self.shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.local_addr);
            if let Some(h) = self.accept.take() {
                let _ = h.join();
            }
            if let Some(h) = self.reaper.take() {
                let _ = h.join();
            }
        }
    }
}

/// Why the reader stopped feeding the worker.
enum EndReason {
    Finish,
    Drain,
    Reap,
    /// The connection died mid-stream (clean hangup or mid-frame cut):
    /// checkpoint and park rather than end.
    Park,
    Poison(String),
}

/// Commands from the socket reader to the session worker.
enum Cmd {
    Event(WireEvent),
    Ping,
    End(EndReason),
}

/// How the worker should obtain its session.
enum SessionStart {
    /// A fresh stream: build from the client's Hello config.
    Fresh(DetectorConfig),
    /// A resumed stream: restore from a parked checkpoint.
    Resume {
        session_id: u64,
        checkpoint: Vec<u8>,
        events: u64,
    },
}

/// What the worker hands back to the reader thread.
enum WorkerExit {
    /// The session ended; record it in the ledger.
    Ended(SessionRecord),
    /// The session parked: re-register it under the connection's token.
    Parked {
        checkpoint: Vec<u8>,
        events: u64,
        shed: u64,
    },
}

/// Incremental frame reader that survives read timeouts: partial bytes of
/// the current frame are retained across `WouldBlock`, so the liveness tick
/// never corrupts the stream. (A plain `read_exact` would drop the partial
/// prefix on timeout and resynchronise mid-frame.)
struct TickedFrameReader {
    stream: TcpStream,
    buf: Vec<u8>,
    need: Option<usize>,
}

impl TickedFrameReader {
    fn new(stream: TcpStream) -> Self {
        TickedFrameReader {
            stream,
            buf: Vec::new(),
            need: None,
        }
    }

    /// Read until one whole frame is buffered. Returns the payload, or a
    /// `WireError` — timeouts come back as `Io` with state preserved.
    fn poll_frame(&mut self) -> Result<Vec<u8>, WireError> {
        loop {
            if self.need.is_none() && self.buf.len() >= 4 {
                let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]])
                    as usize;
                if len == 0 {
                    return Err(FrameError::Empty.into());
                }
                if len > crate::frame::MAX_FRAME {
                    return Err(FrameError::Oversized { len }.into());
                }
                self.need = Some(4 + len);
            }
            if let Some(need) = self.need {
                if self.buf.len() >= need {
                    let payload = self.buf[4..need].to_vec();
                    self.buf.clear();
                    self.need = None;
                    return Ok(payload);
                }
            }
            let target = self.need.unwrap_or(4);
            let mut tmp = [0u8; 4096];
            let want = (target - self.buf.len()).min(tmp.len());
            use std::io::Read;
            match (&self.stream).read(&mut tmp[..want]) {
                Ok(0) => {
                    return Err(if self.buf.is_empty() {
                        FrameError::ConnectionClosed.into()
                    } else {
                        FrameError::Truncated { what: "payload" }.into()
                    });
                }
                Ok(n) => self.buf.extend_from_slice(&tmp[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(WireError::Io(e)),
            }
        }
    }
}

/// The first frame of a connection, validated.
enum Handshake {
    Fresh(DetectorConfig),
    Resume { token: u64, last_acked_seq: u64 },
}

/// One connection, start to finish. Runs on the connection's reader thread;
/// spawns (and joins) the session worker.
fn handle_connection(
    stream: TcpStream,
    conn_id: u64,
    cfg: &Arc<ServeConfig>,
    shutdown: &AtomicBool,
    stats: &Arc<ServerStats>,
    ledger: &Ledger,
    registry: &Registry,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(TICK));

    let write_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return, // connection unusable before it began
    };
    let mut reader = TickedFrameReader::new(stream);

    // --- Handshake: first frame must be a well-formed Hello or Resume. ----
    let handshake = match read_handshake(&mut reader, cfg, shutdown, stats) {
        Ok(h) => h,
        Err((outcome, message)) => {
            // No session ever ran; record the degraded stub so operators
            // see hostile/broken connections in the ledger.
            reject_connection(&write_stream, conn_id, outcome, message, stats, ledger);
            return;
        }
    };

    let (session_id, token, start, shed0) = match handshake {
        Handshake::Fresh(config) => {
            let token = mint_token(conn_id);
            send_frame(
                &write_stream,
                &ServerFrame::HelloAck {
                    session: conn_id,
                    token,
                },
            );
            (conn_id, token, SessionStart::Fresh(config), 0u64)
        }
        Handshake::Resume {
            token,
            last_acked_seq,
        } => {
            let parked = registry
                .lock()
                .expect("park registry poisoned")
                .remove(&token);
            let Some(parked) = parked else {
                stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
                reject_connection(
                    &write_stream,
                    conn_id,
                    SessionOutcome::Poisoned,
                    Some("unknown or expired resume token".into()),
                    stats,
                    ledger,
                );
                return;
            };
            if last_acked_seq > parked.events {
                // The client claims more progress than this session ever
                // made: a forged or mismatched token. Put the state back so
                // the attack cannot destroy the real client's session.
                registry
                    .lock()
                    .expect("park registry poisoned")
                    .insert(token, parked);
                stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
                reject_connection(
                    &write_stream,
                    conn_id,
                    SessionOutcome::Poisoned,
                    Some("resume sequence ahead of session state".into()),
                    stats,
                    ledger,
                );
                return;
            }
            stats.resumed.fetch_add(1, Ordering::Relaxed);
            let start = SessionStart::Resume {
                session_id: parked.session_id,
                checkpoint: parked.checkpoint,
                events: parked.events,
            };
            (parked.session_id, token, start, parked.shed)
        }
    };

    // --- Session worker. --------------------------------------------------
    let (tx, rx) = mpsc::sync_channel::<Cmd>(cfg.queue_capacity.max(1));
    let shed = Arc::new(AtomicU64::new(shed0));
    let worker = {
        let cfg = Arc::clone(cfg);
        let shed = Arc::clone(&shed);
        let stats = Arc::clone(stats);
        let worker_stream = match write_stream.try_clone() {
            Ok(s) => s,
            Err(_) => write_stream, // fall back to sharing; writes are framed
        };
        std::thread::spawn(move || run_session(rx, worker_stream, start, cfg, shed, stats))
    };

    // --- Pump frames until the stream ends one way or another. ------------
    let mut last_frame = Instant::now();
    loop {
        match reader.poll_frame() {
            Ok(payload) => {
                last_frame = Instant::now();
                match ClientFrame::decode(&payload) {
                    Ok(ClientFrame::Event(ev)) => {
                        if !enqueue_event(&tx, ev, cfg, &shed, stats) {
                            // Worker is gone (it died un-recoverably);
                            // record what the supervisor already counted
                            // and stop reading.
                            break;
                        }
                    }
                    Ok(ClientFrame::Ping) => {
                        if tx.send(Cmd::Ping).is_err() {
                            break;
                        }
                    }
                    Ok(ClientFrame::Finish) => {
                        let _ = tx.send(Cmd::End(EndReason::Finish));
                        break;
                    }
                    Ok(ClientFrame::Hello { .. }) => {
                        stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send(Cmd::End(EndReason::Poison(
                            "unexpected second hello".into(),
                        )));
                        break;
                    }
                    Ok(ClientFrame::Resume { .. }) => {
                        stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send(Cmd::End(EndReason::Poison(
                            "resume is only valid as the first frame".into(),
                        )));
                        break;
                    }
                    Err(e) => {
                        stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send(Cmd::End(EndReason::Poison(e.to_string())));
                        break;
                    }
                }
            }
            Err(e) if e.is_timeout() => {
                if shutdown.load(Ordering::SeqCst) {
                    let _ = tx.send(Cmd::End(EndReason::Drain));
                    break;
                }
                if last_frame.elapsed() >= cfg.idle_timeout {
                    let _ = tx.send(Cmd::End(EndReason::Reap));
                    break;
                }
            }
            Err(WireError::Frame(FrameError::ConnectionClosed)) => {
                // Clean hangup at a frame boundary: park, don't end.
                let _ = tx.send(Cmd::End(EndReason::Park));
                break;
            }
            Err(WireError::Frame(FrameError::Truncated { .. })) => {
                // The TCP stream died in the middle of a frame. The partial
                // frame is discarded; every complete frame before it was
                // applied — exactly the state the resume protocol restores.
                let _ = tx.send(Cmd::End(EndReason::Park));
                break;
            }
            Err(WireError::Frame(e)) => {
                stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(Cmd::End(EndReason::Poison(e.to_string())));
                break;
            }
            Err(WireError::Io(_)) => {
                let _ = tx.send(Cmd::End(EndReason::Park));
                break;
            }
        }
    }

    drop(tx);
    match worker.join() {
        Ok(WorkerExit::Ended(mut record)) => {
            record.session = session_id;
            bump_outcome(stats, record.outcome);
            push_record(ledger, record);
        }
        Ok(WorkerExit::Parked {
            checkpoint,
            events,
            shed,
        }) => {
            stats.parked.fetch_add(1, Ordering::Relaxed);
            registry.lock().expect("park registry poisoned").insert(
                token,
                ParkedSession {
                    session_id,
                    checkpoint,
                    events,
                    shed,
                    parked_at: Instant::now(),
                },
            );
        }
        // worker.join() Err is unreachable: run_session catches its panics.
        Err(_) => {}
    }
}

/// Send an error, count the outcome and push a degraded stub record — the
/// path for connections that never got (or lost) a session.
fn reject_connection(
    write_stream: &TcpStream,
    session_id: u64,
    outcome: SessionOutcome,
    message: Option<String>,
    stats: &ServerStats,
    ledger: &Ledger,
) {
    let summary = RaceSummary {
        degraded: true,
        ..RaceSummary::default()
    };
    if let Some(msg) = &message {
        send_frame(
            write_stream,
            &ServerFrame::Error {
                message: msg.clone(),
            },
        );
    }
    bump_outcome(stats, outcome);
    push_record(
        ledger,
        SessionRecord {
            session: session_id,
            outcome,
            degraded: true,
            events: 0,
            shed: 0,
            summary_json: summary.to_json(),
            error: message,
        },
    );
}

/// Reads and validates the first frame (Hello or Resume). On failure, the
/// connection is charged to the returned outcome (with a message to echo to
/// the peer when one makes sense).
fn read_handshake(
    reader: &mut TickedFrameReader,
    cfg: &ServeConfig,
    shutdown: &AtomicBool,
    stats: &ServerStats,
) -> Result<Handshake, (SessionOutcome, Option<String>)> {
    let started = Instant::now();
    loop {
        match reader.poll_frame() {
            Ok(payload) => {
                return match ClientFrame::decode(&payload) {
                    Ok(ClientFrame::Hello { config_json }) => {
                        match DetectorConfig::from_json(&config_json) {
                            Ok(config) => Ok(Handshake::Fresh(config)),
                            Err(e) => {
                                stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
                                Err((
                                    SessionOutcome::Poisoned,
                                    Some(format!("bad detector config: {e}")),
                                ))
                            }
                        }
                    }
                    Ok(ClientFrame::Resume {
                        token,
                        last_acked_seq,
                    }) => Ok(Handshake::Resume {
                        token,
                        last_acked_seq,
                    }),
                    Ok(_) => {
                        stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
                        Err((
                            SessionOutcome::Poisoned,
                            Some("first frame must be hello or resume".into()),
                        ))
                    }
                    Err(e) => {
                        stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
                        Err((SessionOutcome::Poisoned, Some(e.to_string())))
                    }
                };
            }
            Err(e) if e.is_timeout() => {
                if shutdown.load(Ordering::SeqCst) {
                    return Err((SessionOutcome::Drained, None));
                }
                if started.elapsed() >= cfg.idle_timeout {
                    return Err((
                        SessionOutcome::Reaped,
                        Some("idle timeout before hello".into()),
                    ));
                }
            }
            Err(WireError::Frame(FrameError::ConnectionClosed)) => {
                return Err((SessionOutcome::Hangup, None));
            }
            Err(WireError::Frame(e)) => {
                stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
                return Err((SessionOutcome::Poisoned, Some(e.to_string())));
            }
            Err(WireError::Io(_)) => return Err((SessionOutcome::Hangup, None)),
        }
    }
}

/// Queue one event under the configured slow-client policy. Returns false
/// when the worker is gone.
fn enqueue_event(
    tx: &SyncSender<Cmd>,
    ev: WireEvent,
    cfg: &ServeConfig,
    shed: &AtomicU64,
    stats: &ServerStats,
) -> bool {
    match cfg.slow_policy {
        SlowClientPolicy::Block => tx.send(Cmd::Event(ev)).is_ok(),
        SlowClientPolicy::Shed => {
            let mut cmd = Cmd::Event(ev);
            match tx.try_send(cmd) {
                Ok(()) => return true,
                Err(TrySendError::Disconnected(_)) => return false,
                Err(TrySendError::Full(c)) => cmd = c,
            }
            for delay in cfg.retry.delays() {
                std::thread::sleep(delay);
                match tx.try_send(cmd) {
                    Ok(()) => return true,
                    Err(TrySendError::Disconnected(_)) => return false,
                    Err(TrySendError::Full(c)) => cmd = c,
                }
            }
            shed.fetch_add(1, Ordering::Relaxed);
            stats.events_shed.fetch_add(1, Ordering::Relaxed);
            true // shed, but the stream goes on
        }
    }
}

/// Build the configured per-session sink.
fn make_sink(cfg: &ServeConfig) -> Box<dyn ReportSink> {
    match &cfg.sink_factory {
        Some(f) => f(),
        None => Box::new(SummarySink::default()),
    }
}

/// Mint an unguessable resume token. `RandomState` seeds from OS entropy
/// per instance, so tokens are unpredictable without any extra dependency.
fn mint_token(session_id: u64) -> u64 {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    let mut h = RandomState::new().build_hasher();
    h.write_u64(session_id);
    h.finish() | 1 // never zero
}

/// The session worker: owns the `Session`, applies events under per-event
/// `catch_unwind` supervision with checkpoint-based recovery, and always
/// produces a verdict — a panic degrades (or at worst ends) this session,
/// never the server.
fn run_session(
    rx: Receiver<Cmd>,
    stream: TcpStream,
    start: SessionStart,
    cfg: Arc<ServeConfig>,
    shed: Arc<AtomicU64>,
    stats: Arc<ServerStats>,
) -> WorkerExit {
    let (mut session, mut events) = match start {
        SessionStart::Fresh(config) => (config.session_with(make_sink(&cfg)), 0u64),
        SessionStart::Resume {
            session_id,
            checkpoint,
            events,
        } => match Session::restore(&checkpoint, make_sink(&cfg)) {
            Ok(session) => {
                send_frame(
                    &stream,
                    &ServerFrame::ResumeAck {
                        session: session_id,
                        next_seq: events,
                    },
                );
                (session, events)
            }
            Err(e) => {
                let message = format!("resume failed: {e}");
                send_frame(
                    &stream,
                    &ServerFrame::Error {
                        message: message.clone(),
                    },
                );
                return WorkerExit::Ended(SessionRecord {
                    session: 0, // filled in by the reader thread
                    outcome: SessionOutcome::Poisoned,
                    degraded: true,
                    events,
                    shed: shed.load(Ordering::Relaxed),
                    summary_json: RaceSummary {
                        degraded: true,
                        ..RaceSummary::default()
                    }
                    .to_json(),
                    error: Some(message),
                });
            }
        },
    };

    // Durability bootstrap: the initial checkpoint turns on journalling, so
    // every event from here is either in the checkpoint or in the journal.
    let mut ckpt: Option<Vec<u8>> = session.checkpoint().ok();
    let checkpoint_every = cfg.checkpoint_every.max(1);
    let mut armed = cfg.panic_on_op_id;
    let mut recovered: Option<String> = None;

    let end = 'drive: loop {
        match rx.recv() {
            Err(_) => break EndReason::Park, // reader died without a verdict
            Ok(Cmd::Event(ev)) => {
                events += 1;
                let step = catch_unwind(AssertUnwindSafe(|| {
                    if let WireEvent::Op(op) = &ev {
                        if armed == Some(op.op_id) {
                            panic!("injected session panic at op {}", op.op_id);
                        }
                    }
                    apply_event(&mut session, &ev);
                }));
                if let Err(payload) = step {
                    // The worker just died mid-event. Rebuild the session
                    // from the last checkpoint + journal and keep going;
                    // only an unrebuildable session is terminal.
                    let msg = panic_text(payload.as_ref());
                    armed = None; // one-shot: the replay must not re-trip
                    match recover_session(ckpt.as_deref(), &session, &ev, events, &cfg) {
                        Some(rebuilt) => {
                            stats.panics_supervised.fetch_add(1, Ordering::Relaxed);
                            session = rebuilt;
                            recovered = Some(msg);
                        }
                        None => break 'drive EndReason::Poison(format!("__panic__{msg}")),
                    }
                }
                if events % checkpoint_every == 0 {
                    if let Ok(bytes) = session.checkpoint() {
                        ckpt = Some(bytes);
                    }
                }
            }
            Ok(Cmd::Ping) => {
                let summary = session.summary();
                let frame = ServerFrame::Health {
                    degraded: session.health().is_degraded()
                        || summary.degraded
                        || recovered.is_some(),
                    events,
                    reports: summary.total as u64,
                    shed: shed.load(Ordering::Relaxed),
                };
                send_frame(&stream, &frame);
            }
            Ok(Cmd::End(reason)) => break reason,
        }
    };

    let shed_total = shed.load(Ordering::Relaxed);

    // Park: checkpoint the whole session and hand it back for the registry.
    // If the checkpoint fails (it should not — flush precedes encode) the
    // session degrades to a terminal hangup record below.
    let end = if matches!(end, EndReason::Park) {
        match session.checkpoint() {
            Ok(checkpoint) => {
                return WorkerExit::Parked {
                    checkpoint,
                    events,
                    shed: shed_total,
                };
            }
            Err(e) => EndReason::Poison(format!("__park__{e}")),
        }
    } else {
        end
    };

    let (outcome, mut summary, error) = if let EndReason::Poison(msg) = &end {
        if let Some(panic_msg) = msg.strip_prefix("__panic__") {
            // Unrebuildable panic: the session may be mid-mutation; drop it
            // supervised so a panicking Drop cannot re-enter the unwind.
            let _ = catch_unwind(AssertUnwindSafe(move || drop(session)));
            (
                SessionOutcome::Panicked,
                RaceSummary::default(),
                Some(format!("session panicked: {panic_msg}")),
            )
        } else if let Some(park_msg) = msg.strip_prefix("__park__") {
            finish_session(
                session,
                EndReason::Poison(String::new()),
                SessionOutcome::Hangup,
                Some(format!(
                    "client hung up mid-stream and the session could not be parked: {park_msg}"
                )),
            )
        } else {
            finish_session(
                session,
                EndReason::Poison(msg.clone()),
                SessionOutcome::Poisoned,
                Some(msg.clone()),
            )
        }
    } else {
        let (outcome, message) = match &end {
            EndReason::Finish => (SessionOutcome::Finished, None),
            EndReason::Drain => (SessionOutcome::Drained, None),
            EndReason::Reap => (
                SessionOutcome::Reaped,
                Some("session idle past timeout".to_string()),
            ),
            // Park is returned above; reaching here means the checkpoint
            // failed and the Poison arm already handled it.
            EndReason::Park | EndReason::Poison(_) => unreachable!("handled above"),
        };
        finish_session(session, end, outcome, message)
    };

    let degraded = summary.degraded
        || shed_total > 0
        || recovered.is_some()
        || !matches!(outcome, SessionOutcome::Finished | SessionOutcome::Drained);
    summary.degraded = degraded;
    let summary_json = summary.to_json();

    let error = error.or_else(|| {
        recovered
            .as_ref()
            .map(|msg| format!("session worker panicked and was recovered from checkpoint: {msg}"))
    });

    // Tell the client what happened (ignore write failures — for hangups
    // and reaps the peer may already be gone).
    if let Some(msg) = &error {
        send_frame(
            &stream,
            &ServerFrame::Error {
                message: msg.clone(),
            },
        );
    }
    if outcome != SessionOutcome::Hangup {
        send_frame(
            &stream,
            &ServerFrame::Summary {
                shed: shed_total,
                json: summary_json.clone(),
            },
        );
    }

    WorkerExit::Ended(SessionRecord {
        session: 0, // filled in by the reader thread from its id
        outcome,
        degraded,
        events,
        shed: shed_total,
        summary_json,
        error,
    })
}

/// Supervised `Session::finish`: a panic during the final flush demotes the
/// outcome to [`SessionOutcome::Panicked`] instead of killing the worker.
fn finish_session(
    session: Session,
    _end: EndReason,
    outcome: SessionOutcome,
    message: Option<String>,
) -> (SessionOutcome, RaceSummary, Option<String>) {
    match catch_unwind(AssertUnwindSafe(move || session.finish().0)) {
        Ok(summary) => (outcome, summary, message),
        Err(payload) => (
            SessionOutcome::Panicked,
            RaceSummary::default(),
            Some(format!(
                "session flush panicked: {}",
                panic_text(payload.as_ref())
            )),
        ),
    }
}

/// Rebuild a session that panicked mid-event from its last checkpoint plus
/// journal, applying the in-flight event exactly once. Returns `None` when
/// there is no checkpoint or the rebuild itself dies.
fn recover_session(
    ckpt: Option<&[u8]>,
    broken: &Session,
    in_flight: &WireEvent,
    expected_events: u64,
    cfg: &ServeConfig,
) -> Option<Session> {
    let ckpt = ckpt?;
    let journal: Vec<JournalEvent> = broken.journal().to_vec();
    catch_unwind(AssertUnwindSafe(|| -> Option<Session> {
        let mut session = Session::restore(ckpt, make_sink(cfg)).ok()?;
        for event in &journal {
            session.replay(event);
        }
        if session.events() + 1 == expected_events {
            // The panic fired before the event reached the session journal
            // (the injection hook, or a pre-apply failure): apply it now.
            apply_event(&mut session, in_flight);
        }
        // Exactly-once: anything else means the journal and the event
        // counter disagree and the rebuilt state cannot be trusted.
        (session.events() == expected_events).then_some(session)
    }))
    .ok()
    .flatten()
}

/// Finalise a parked session nobody resumed: its checkpointed summary
/// enters the ledger as a degraded hangup.
fn finalize_parked(parked: ParkedSession, stats: &ServerStats, ledger: &Ledger) {
    let fallback = || {
        RaceSummary {
            degraded: true,
            ..RaceSummary::default()
        }
        .to_json()
    };
    let summary_json = match race_core::snapshot::peek_header(&parked.checkpoint) {
        Ok(header) => match RaceSummary::from_json(&header.summary_json) {
            Ok(mut summary) => {
                summary.degraded = true;
                summary.to_json()
            }
            Err(_) => fallback(),
        },
        Err(_) => fallback(),
    };
    stats.hangups.fetch_add(1, Ordering::Relaxed);
    push_record(
        ledger,
        SessionRecord {
            session: parked.session_id,
            outcome: SessionOutcome::Hangup,
            degraded: true,
            events: parked.events,
            shed: parked.shed,
            summary_json,
            error: Some("client hung up mid-stream; parked session expired unresumed".into()),
        },
    );
}

/// Apply one wire event to the session — the exact mirror of the
/// in-process driving surface, so remote and local runs agree byte-for-byte.
fn apply_event(session: &mut Session, ev: &WireEvent) {
    match ev {
        WireEvent::Op(op) => {
            session.observe(op, &[]);
        }
        WireEvent::Barrier => session.on_barrier(),
        WireEvent::Acquire { rank, lock } => session.on_acquire(*rank, *lock),
        WireEvent::Release { rank, lock } => session.on_release(*rank, *lock),
    }
}

fn send_frame(stream: &TcpStream, frame: &ServerFrame) {
    let mut w = stream;
    let _ = write_frame(&mut w, &frame.encode());
}

fn bump_outcome(stats: &ServerStats, outcome: SessionOutcome) {
    let counter = match outcome {
        SessionOutcome::Finished => &stats.finished,
        SessionOutcome::Drained => &stats.drained,
        SessionOutcome::Reaped => &stats.reaped,
        SessionOutcome::Hangup => &stats.hangups,
        SessionOutcome::Poisoned => &stats.poisoned,
        SessionOutcome::Panicked => &stats.panics_supervised,
    };
    counter.fetch_add(1, Ordering::Relaxed);
}

fn push_record(ledger: &Ledger, record: SessionRecord) {
    ledger.lock().expect("ledger poisoned").push(record);
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    // Mirrors the sharded pipeline's payload stringification.
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Outcome histogram of a ledger — convenience for logs and the stress
/// harness's one-line report.
pub fn outcome_histogram(records: &[SessionRecord]) -> BTreeMap<&'static str, usize> {
    let mut hist = BTreeMap::new();
    for r in records {
        *hist.entry(r.outcome.label()).or_insert(0) += 1;
    }
    hist
}

//! The crash-tolerant detection server.
//!
//! One long-lived process accepts framed event streams from many concurrent
//! clients; each connection gets its own bounded [`race_core::api::Session`]
//! driven by a supervised worker thread. The robustness contract, in order
//! of importance:
//!
//! 1. **The accept loop never dies.** Whatever one connection does — garbage
//!    bytes, mid-stream hangup, a panic inside its session — only that
//!    session degrades. Supervision is per-session `catch_unwind`, the same
//!    discipline the sharded pipeline applies per shard worker.
//! 2. **Per-session memory is bounded.** Events flow through a
//!    `sync_channel` of [`ServeConfig::queue_capacity`]; when a client
//!    outruns its session the [`SlowClientPolicy`] decides between
//!    back-pressure ([`SlowClientPolicy::Block`]) and shedding with a
//!    counted `shed` statistic ([`SlowClientPolicy::Shed`], paced by the
//!    PR-6 [`RetryPolicy`] backoff).
//! 3. **Idle sessions are reaped**, so a staller cannot pin a thread and a
//!    detector forever: no frame for [`ServeConfig::idle_timeout`] ends the
//!    session as [`SessionOutcome::Reaped`] (degraded).
//! 4. **Shutdown drains.** [`Server::shutdown`] stops accepting, lets every
//!    live session flush, and returns each session's summary in the
//!    [`ShutdownReport`] — no in-flight stream is silently discarded.
//!
//! Clean sessions produce summaries byte-identical (via
//! `RaceSummary::to_json`) to an in-process `Session` fed the same events —
//! the parity property the bench stress harness pins.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use race_core::api::{DetectorConfig, ReportSink, Session, SummarySink};
use race_core::error::RetryPolicy;
use race_core::summary::RaceSummary;

use crate::frame::{write_frame, ClientFrame, FrameError, ServerFrame, WireError, WireEvent};

/// How often blocked reads wake up to check for shutdown and idleness.
const TICK: Duration = Duration::from_millis(25);

/// What to do when a client produces events faster than its session absorbs
/// them and the bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SlowClientPolicy {
    /// Stop reading from the socket until the queue drains — TCP back-
    /// pressure propagates to the client. Nothing is lost; a slow session
    /// slows only its own client.
    #[default]
    Block,
    /// Retry briefly (the [`ServeConfig::retry`] backoff schedule), then
    /// drop the event and count it. The session's final summary reports the
    /// shed count and is marked degraded when any event was shed.
    Shed,
}

/// Builds the per-session report sink. The summary returned to clients is
/// the `Session`'s own bounded tee, so the sink choice changes what is
/// *retained* server-side, never what the client receives.
pub type SinkFactory = Arc<dyn Fn() -> Box<dyn ReportSink> + Send + Sync>;

/// Server tuning knobs. `Default` is production-shaped: blocking back-
/// pressure, 256-event queues, 30 s idle reaping.
#[derive(Clone)]
pub struct ServeConfig {
    /// Bound of the per-session event queue (events buffered between the
    /// socket reader and the session worker).
    pub queue_capacity: usize,
    /// Full-queue behaviour.
    pub slow_policy: SlowClientPolicy,
    /// A session with no complete frame for this long is reaped (degraded).
    pub idle_timeout: Duration,
    /// Backoff schedule used by [`SlowClientPolicy::Shed`] before giving up
    /// on an event — the same bounded-probing policy the sharded pipeline
    /// uses at batch fences.
    pub retry: RetryPolicy,
    /// Fault-injection hook: the session worker panics when it observes
    /// this op id. Exercises the supervision path from tests and the chaos
    /// harness; `None` in production.
    pub panic_on_op_id: Option<u64>,
    /// Per-session report sink. `None` uses a [`SummarySink`] (bounded
    /// memory, the right default for a long-lived service).
    pub sink_factory: Option<SinkFactory>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 256,
            slow_policy: SlowClientPolicy::default(),
            idle_timeout: Duration::from_secs(30),
            retry: RetryPolicy::default(),
            panic_on_op_id: None,
            sink_factory: None,
        }
    }
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("queue_capacity", &self.queue_capacity)
            .field("slow_policy", &self.slow_policy)
            .field("idle_timeout", &self.idle_timeout)
            .field("retry", &self.retry)
            .field("panic_on_op_id", &self.panic_on_op_id)
            .field("sink_factory", &self.sink_factory.as_ref().map(|_| "..."))
            .finish()
    }
}

/// How a session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionOutcome {
    /// The client sent `Finish` and received its summary.
    Finished,
    /// Server shutdown drained the session; the summary covers every event
    /// received before the drain.
    Drained,
    /// No frame within the idle timeout; session degraded and closed.
    Reaped,
    /// The client vanished mid-stream (EOF or reset before `Finish`).
    Hangup,
    /// The client sent bytes the codec rejected; the typed decode error is
    /// in [`SessionRecord::error`].
    Poisoned,
    /// The session worker panicked and was caught by supervision; the
    /// server kept running.
    Panicked,
}

impl SessionOutcome {
    /// Stable lowercase label for logs and tables.
    pub fn label(self) -> &'static str {
        match self {
            SessionOutcome::Finished => "finished",
            SessionOutcome::Drained => "drained",
            SessionOutcome::Reaped => "reaped",
            SessionOutcome::Hangup => "hangup",
            SessionOutcome::Poisoned => "poisoned",
            SessionOutcome::Panicked => "panicked",
        }
    }
}

/// The server's record of one session, pushed to the ledger when the
/// session ends (and readable after [`Server::shutdown`]).
#[derive(Debug, Clone)]
pub struct SessionRecord {
    /// Server-assigned session id (also sent to the client in `HelloAck`).
    pub session: u64,
    /// How the session ended.
    pub outcome: SessionOutcome,
    /// Whether the summary is degraded (folded into the JSON too).
    pub degraded: bool,
    /// Events applied to the session.
    pub events: u64,
    /// Events shed by the slow-client policy.
    pub shed: u64,
    /// The session's `RaceSummary` as canonical JSON — the same bytes the
    /// client received in its `Summary` frame (when one was sent).
    pub summary_json: String,
    /// The failure message for degraded outcomes.
    pub error: Option<String>,
}

/// Monotonic server counters (all relaxed atomics; read via
/// [`Server::stats`]).
#[derive(Debug, Default)]
struct ServerStats {
    accepted: AtomicU64,
    finished: AtomicU64,
    drained: AtomicU64,
    reaped: AtomicU64,
    hangups: AtomicU64,
    poisoned: AtomicU64,
    panics_supervised: AtomicU64,
    frames_rejected: AtomicU64,
    events_shed: AtomicU64,
}

/// A point-in-time copy of the server counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub accepted: u64,
    /// Sessions that ended with a clean `Finish`.
    pub finished: u64,
    /// Sessions drained by shutdown.
    pub drained: u64,
    /// Sessions reaped for idleness.
    pub reaped: u64,
    /// Sessions whose client hung up mid-stream.
    pub hangups: u64,
    /// Sessions poisoned by malformed frames.
    pub poisoned: u64,
    /// Session-worker panics caught by supervision.
    pub panics_supervised: u64,
    /// Frames rejected by the codec.
    pub frames_rejected: u64,
    /// Events shed under [`SlowClientPolicy::Shed`].
    pub events_shed: u64,
}

impl StatsSnapshot {
    /// Sessions that ended degraded, by any cause.
    pub fn degraded_sessions(&self) -> u64 {
        self.reaped + self.hangups + self.poisoned + self.panics_supervised
    }
}

/// Everything [`Server::shutdown`] hands back: the full session ledger and
/// the final counters.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Every session the server ever completed, in completion order.
    pub sessions: Vec<SessionRecord>,
    /// Final counter values.
    pub stats: StatsSnapshot,
}

impl ShutdownReport {
    /// The records with a given outcome.
    pub fn with_outcome(&self, outcome: SessionOutcome) -> Vec<&SessionRecord> {
        self.sessions
            .iter()
            .filter(|r| r.outcome == outcome)
            .collect()
    }
}

type Ledger = Arc<Mutex<Vec<SessionRecord>>>;

/// The running server: an accept thread plus two threads (socket reader,
/// session worker) per live connection.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    stats: Arc<ServerStats>,
    ledger: Ledger,
}

impl Server {
    /// Bind and start accepting. `addr` is usually `"127.0.0.1:0"` (ephemeral
    /// port; read it back with [`Server::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let stats = Arc::new(ServerStats::default());
        let ledger: Ledger = Arc::new(Mutex::new(Vec::new()));
        let next_session = Arc::new(AtomicU64::new(1));

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            let stats = Arc::clone(&stats);
            let ledger = Arc::clone(&ledger);
            let config = Arc::new(config);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break; // the wake-up connection (or any late arrival) is dropped
                    }
                    let stream = match stream {
                        Ok(s) => s,
                        Err(_) => continue, // transient accept failure; the loop survives
                    };
                    stats.accepted.fetch_add(1, Ordering::Relaxed);
                    let session_id = next_session.fetch_add(1, Ordering::Relaxed);
                    let config = Arc::clone(&config);
                    let shutdown = Arc::clone(&shutdown);
                    let stats = Arc::clone(&stats);
                    let ledger = Arc::clone(&ledger);
                    let handle = std::thread::spawn(move || {
                        // Belt and braces: the connection body is already
                        // panic-supervised internally; this outer catch
                        // keeps even a reader-side bug from aborting via a
                        // double panic in thread teardown.
                        let _ = catch_unwind(AssertUnwindSafe(|| {
                            handle_connection(
                                stream, session_id, &config, &shutdown, &stats, &ledger,
                            );
                        }));
                    });
                    conns.lock().expect("conn registry poisoned").push(handle);
                }
            })
        };

        Ok(Server {
            local_addr,
            shutdown,
            accept: Some(accept),
            conns,
            stats,
            ledger,
        })
    }

    /// The bound address (connect clients here).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current counter values.
    pub fn stats(&self) -> StatsSnapshot {
        let s = &self.stats;
        StatsSnapshot {
            accepted: s.accepted.load(Ordering::Relaxed),
            finished: s.finished.load(Ordering::Relaxed),
            drained: s.drained.load(Ordering::Relaxed),
            reaped: s.reaped.load(Ordering::Relaxed),
            hangups: s.hangups.load(Ordering::Relaxed),
            poisoned: s.poisoned.load(Ordering::Relaxed),
            panics_supervised: s.panics_supervised.load(Ordering::Relaxed),
            frames_rejected: s.frames_rejected.load(Ordering::Relaxed),
            events_shed: s.events_shed.load(Ordering::Relaxed),
        }
    }

    /// Copy of the completed-session ledger so far (live sessions are not
    /// in it until they end).
    pub fn sessions(&self) -> Vec<SessionRecord> {
        self.ledger.lock().expect("ledger poisoned").clone()
    }

    /// Graceful shutdown: stop accepting, drain every live session (each
    /// flushes and records its summary as [`SessionOutcome::Drained`]),
    /// join all threads, and return the complete ledger.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.conns.lock().expect("conn registry poisoned"));
        for h in handles {
            let _ = h.join();
        }
        ShutdownReport {
            sessions: self.ledger.lock().expect("ledger poisoned").clone(),
            stats: self.stats(),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Best-effort: a dropped (not shut down) server still stops its
        // accept loop so the process can exit; connection threads notice
        // the flag within one tick.
        if self.accept.is_some() {
            self.shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.local_addr);
            if let Some(h) = self.accept.take() {
                let _ = h.join();
            }
        }
    }
}

/// Why the reader stopped feeding the worker.
enum EndReason {
    Finish,
    Drain,
    Reap,
    Hangup,
    Poison(String),
}

/// Commands from the socket reader to the session worker.
enum Cmd {
    Event(WireEvent),
    Ping,
    End(EndReason),
}

/// Incremental frame reader that survives read timeouts: partial bytes of
/// the current frame are retained across `WouldBlock`, so the liveness tick
/// never corrupts the stream. (A plain `read_exact` would drop the partial
/// prefix on timeout and resynchronise mid-frame.)
struct TickedFrameReader {
    stream: TcpStream,
    buf: Vec<u8>,
    need: Option<usize>,
}

impl TickedFrameReader {
    fn new(stream: TcpStream) -> Self {
        TickedFrameReader {
            stream,
            buf: Vec::new(),
            need: None,
        }
    }

    /// Read until one whole frame is buffered. Returns the payload, or a
    /// `WireError` — timeouts come back as `Io` with state preserved.
    fn poll_frame(&mut self) -> Result<Vec<u8>, WireError> {
        loop {
            if self.need.is_none() && self.buf.len() >= 4 {
                let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]])
                    as usize;
                if len == 0 {
                    return Err(FrameError::Empty.into());
                }
                if len > crate::frame::MAX_FRAME {
                    return Err(FrameError::Oversized { len }.into());
                }
                self.need = Some(4 + len);
            }
            if let Some(need) = self.need {
                if self.buf.len() >= need {
                    let payload = self.buf[4..need].to_vec();
                    self.buf.clear();
                    self.need = None;
                    return Ok(payload);
                }
            }
            let target = self.need.unwrap_or(4);
            let mut tmp = [0u8; 4096];
            let want = (target - self.buf.len()).min(tmp.len());
            use std::io::Read;
            match (&self.stream).read(&mut tmp[..want]) {
                Ok(0) => {
                    return Err(if self.buf.is_empty() {
                        FrameError::ConnectionClosed.into()
                    } else {
                        FrameError::Truncated { what: "payload" }.into()
                    });
                }
                Ok(n) => self.buf.extend_from_slice(&tmp[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(WireError::Io(e)),
            }
        }
    }
}

/// One connection, start to finish. Runs on the connection's reader thread;
/// spawns (and joins) the session worker.
fn handle_connection(
    stream: TcpStream,
    session_id: u64,
    cfg: &ServeConfig,
    shutdown: &AtomicBool,
    stats: &ServerStats,
    ledger: &Ledger,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(TICK));

    let write_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return, // connection unusable before it began
    };
    let mut reader = TickedFrameReader::new(stream);

    // --- Handshake: first frame must be a well-formed Hello. -------------
    let config = match read_hello(&mut reader, cfg, shutdown, stats) {
        Ok(c) => c,
        Err(handshake) => {
            // No session ever ran; record the degraded stub so operators
            // see hostile/broken connections in the ledger.
            let (outcome, message) = handshake;
            let summary = RaceSummary {
                degraded: true,
                ..RaceSummary::default()
            };
            if let Some(msg) = &message {
                let frame = ServerFrame::Error {
                    message: msg.clone(),
                };
                send_frame(&write_stream, &frame);
            }
            bump_outcome(stats, outcome);
            push_record(
                ledger,
                SessionRecord {
                    session: session_id,
                    outcome,
                    degraded: true,
                    events: 0,
                    shed: 0,
                    summary_json: summary.to_json(),
                    error: message,
                },
            );
            return;
        }
    };

    send_frame(
        &write_stream,
        &ServerFrame::HelloAck {
            session: session_id,
        },
    );

    // --- Session worker. --------------------------------------------------
    let (tx, rx) = mpsc::sync_channel::<Cmd>(cfg.queue_capacity.max(1));
    let shed = Arc::new(AtomicU64::new(0));
    let worker = {
        let cfg = cfg.clone();
        let shed = Arc::clone(&shed);
        let worker_stream = match write_stream.try_clone() {
            Ok(s) => s,
            Err(_) => write_stream, // fall back to sharing; writes are framed
        };
        std::thread::spawn(move || run_session(rx, worker_stream, config, cfg, shed))
    };

    // --- Pump frames until the stream ends one way or another. ------------
    let mut last_frame = Instant::now();
    loop {
        match reader.poll_frame() {
            Ok(payload) => {
                last_frame = Instant::now();
                match ClientFrame::decode(&payload) {
                    Ok(ClientFrame::Event(ev)) => {
                        if !enqueue_event(&tx, ev, cfg, &shed, stats) {
                            // Worker is gone (it panicked); record what the
                            // supervisor already counted and stop reading.
                            break;
                        }
                    }
                    Ok(ClientFrame::Ping) => {
                        if tx.send(Cmd::Ping).is_err() {
                            break;
                        }
                    }
                    Ok(ClientFrame::Finish) => {
                        let _ = tx.send(Cmd::End(EndReason::Finish));
                        break;
                    }
                    Ok(ClientFrame::Hello { .. }) => {
                        stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send(Cmd::End(EndReason::Poison(
                            "unexpected second hello".into(),
                        )));
                        break;
                    }
                    Err(e) => {
                        stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send(Cmd::End(EndReason::Poison(e.to_string())));
                        break;
                    }
                }
            }
            Err(e) if e.is_timeout() => {
                if shutdown.load(Ordering::SeqCst) {
                    let _ = tx.send(Cmd::End(EndReason::Drain));
                    break;
                }
                if last_frame.elapsed() >= cfg.idle_timeout {
                    let _ = tx.send(Cmd::End(EndReason::Reap));
                    break;
                }
            }
            Err(WireError::Frame(FrameError::ConnectionClosed)) => {
                let _ = tx.send(Cmd::End(EndReason::Hangup));
                break;
            }
            Err(WireError::Frame(e)) => {
                stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(Cmd::End(EndReason::Poison(e.to_string())));
                break;
            }
            Err(WireError::Io(_)) => {
                let _ = tx.send(Cmd::End(EndReason::Hangup));
                break;
            }
        }
    }

    drop(tx);
    if let Ok(record) = worker.join() {
        let mut record = record;
        record.session = session_id;
        bump_outcome(stats, record.outcome);
        push_record(ledger, record);
    }
    // worker.join() Err is unreachable: run_session catches its own panics.
}

/// Reads and validates the Hello frame. On failure, the connection is
/// charged to the returned outcome (with a message to echo to the peer when
/// one makes sense).
fn read_hello(
    reader: &mut TickedFrameReader,
    cfg: &ServeConfig,
    shutdown: &AtomicBool,
    stats: &ServerStats,
) -> Result<DetectorConfig, (SessionOutcome, Option<String>)> {
    let started = Instant::now();
    loop {
        match reader.poll_frame() {
            Ok(payload) => {
                return match ClientFrame::decode(&payload) {
                    Ok(ClientFrame::Hello { config_json }) => {
                        match DetectorConfig::from_json(&config_json) {
                            Ok(config) => Ok(config),
                            Err(e) => {
                                stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
                                Err((
                                    SessionOutcome::Poisoned,
                                    Some(format!("bad detector config: {e}")),
                                ))
                            }
                        }
                    }
                    Ok(_) => {
                        stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
                        Err((
                            SessionOutcome::Poisoned,
                            Some("first frame must be hello".into()),
                        ))
                    }
                    Err(e) => {
                        stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
                        Err((SessionOutcome::Poisoned, Some(e.to_string())))
                    }
                };
            }
            Err(e) if e.is_timeout() => {
                if shutdown.load(Ordering::SeqCst) {
                    return Err((SessionOutcome::Drained, None));
                }
                if started.elapsed() >= cfg.idle_timeout {
                    return Err((
                        SessionOutcome::Reaped,
                        Some("idle timeout before hello".into()),
                    ));
                }
            }
            Err(WireError::Frame(FrameError::ConnectionClosed)) => {
                return Err((SessionOutcome::Hangup, None));
            }
            Err(WireError::Frame(e)) => {
                stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
                return Err((SessionOutcome::Poisoned, Some(e.to_string())));
            }
            Err(WireError::Io(_)) => return Err((SessionOutcome::Hangup, None)),
        }
    }
}

/// Queue one event under the configured slow-client policy. Returns false
/// when the worker is gone.
fn enqueue_event(
    tx: &SyncSender<Cmd>,
    ev: WireEvent,
    cfg: &ServeConfig,
    shed: &AtomicU64,
    stats: &ServerStats,
) -> bool {
    match cfg.slow_policy {
        SlowClientPolicy::Block => tx.send(Cmd::Event(ev)).is_ok(),
        SlowClientPolicy::Shed => {
            let mut cmd = Cmd::Event(ev);
            match tx.try_send(cmd) {
                Ok(()) => return true,
                Err(TrySendError::Disconnected(_)) => return false,
                Err(TrySendError::Full(c)) => cmd = c,
            }
            for delay in cfg.retry.delays() {
                std::thread::sleep(delay);
                match tx.try_send(cmd) {
                    Ok(()) => return true,
                    Err(TrySendError::Disconnected(_)) => return false,
                    Err(TrySendError::Full(c)) => cmd = c,
                }
            }
            shed.fetch_add(1, Ordering::Relaxed);
            stats.events_shed.fetch_add(1, Ordering::Relaxed);
            true // shed, but the stream goes on
        }
    }
}

/// The session worker: owns the `Session`, applies events under
/// `catch_unwind` supervision, and always produces a `SessionRecord` — a
/// panic degrades this session, never the server.
fn run_session(
    rx: Receiver<Cmd>,
    stream: TcpStream,
    config: DetectorConfig,
    cfg: ServeConfig,
    shed: Arc<AtomicU64>,
) -> SessionRecord {
    let sink: Box<dyn ReportSink> = match &cfg.sink_factory {
        Some(f) => f(),
        None => Box::new(SummarySink::default()),
    };
    let mut session = config.session_with(sink);
    let mut events: u64 = 0;

    let driven = catch_unwind(AssertUnwindSafe(|| loop {
        match rx.recv() {
            Err(_) => break EndReason::Hangup, // reader died without a verdict
            Ok(Cmd::Event(ev)) => {
                if let WireEvent::Op(op) = &ev {
                    if cfg.panic_on_op_id == Some(op.op_id) {
                        panic!("injected session panic at op {}", op.op_id);
                    }
                }
                events += 1;
                apply_event(&mut session, &ev);
            }
            Ok(Cmd::Ping) => {
                let summary = session.summary();
                let frame = ServerFrame::Health {
                    degraded: session.health().is_degraded() || summary.degraded,
                    events,
                    reports: summary.total as u64,
                    shed: shed.load(Ordering::Relaxed),
                };
                send_frame(&stream, &frame);
            }
            Ok(Cmd::End(reason)) => break reason,
        }
    }));

    let shed_total = shed.load(Ordering::Relaxed);
    let (outcome, mut summary, error) = match driven {
        Ok(end) => {
            // Even the finishing flush runs supervised: a pipeline poisoned
            // mid-stream must not take the worker down un-recorded.
            let finished = catch_unwind(AssertUnwindSafe(move || session.finish().0));
            match finished {
                Ok(summary) => match end {
                    EndReason::Finish => (SessionOutcome::Finished, summary, None),
                    EndReason::Drain => (SessionOutcome::Drained, summary, None),
                    EndReason::Reap => (
                        SessionOutcome::Reaped,
                        summary,
                        Some("session idle past timeout".to_string()),
                    ),
                    EndReason::Hangup => (
                        SessionOutcome::Hangup,
                        summary,
                        Some("client hung up mid-stream".to_string()),
                    ),
                    EndReason::Poison(msg) => (SessionOutcome::Poisoned, summary, Some(msg)),
                },
                Err(payload) => (
                    SessionOutcome::Panicked,
                    RaceSummary::default(),
                    Some(format!(
                        "session flush panicked: {}",
                        panic_text(payload.as_ref())
                    )),
                ),
            }
        }
        Err(payload) => {
            // The session may be mid-mutation; drop it supervised so a
            // panicking Drop cannot re-enter the unwind.
            let _ = catch_unwind(AssertUnwindSafe(move || drop(session)));
            (
                SessionOutcome::Panicked,
                RaceSummary::default(),
                Some(format!(
                    "session panicked: {}",
                    panic_text(payload.as_ref())
                )),
            )
        }
    };

    let degraded = summary.degraded
        || shed_total > 0
        || !matches!(outcome, SessionOutcome::Finished | SessionOutcome::Drained);
    summary.degraded = degraded;
    let summary_json = summary.to_json();

    // Tell the client what happened (ignore write failures — for hangups
    // and reaps the peer may already be gone).
    if let Some(msg) = &error {
        send_frame(
            &stream,
            &ServerFrame::Error {
                message: msg.clone(),
            },
        );
    }
    if outcome != SessionOutcome::Hangup {
        send_frame(
            &stream,
            &ServerFrame::Summary {
                shed: shed_total,
                json: summary_json.clone(),
            },
        );
    }

    SessionRecord {
        session: 0, // filled in by the reader thread from its id
        outcome,
        degraded,
        events,
        shed: shed_total,
        summary_json,
        error,
    }
}

/// Apply one wire event to the session — the exact mirror of the
/// in-process driving surface, so remote and local runs agree byte-for-byte.
fn apply_event(session: &mut Session, ev: &WireEvent) {
    match ev {
        WireEvent::Op(op) => {
            session.observe(op, &[]);
        }
        WireEvent::Barrier => session.on_barrier(),
        WireEvent::Acquire { rank, lock } => session.on_acquire(*rank, *lock),
        WireEvent::Release { rank, lock } => session.on_release(*rank, *lock),
    }
}

fn send_frame(stream: &TcpStream, frame: &ServerFrame) {
    let mut w = stream;
    let _ = write_frame(&mut w, &frame.encode());
}

fn bump_outcome(stats: &ServerStats, outcome: SessionOutcome) {
    let counter = match outcome {
        SessionOutcome::Finished => &stats.finished,
        SessionOutcome::Drained => &stats.drained,
        SessionOutcome::Reaped => &stats.reaped,
        SessionOutcome::Hangup => &stats.hangups,
        SessionOutcome::Poisoned => &stats.poisoned,
        SessionOutcome::Panicked => &stats.panics_supervised,
    };
    counter.fetch_add(1, Ordering::Relaxed);
}

fn push_record(ledger: &Ledger, record: SessionRecord) {
    ledger.lock().expect("ledger poisoned").push(record);
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    // Mirrors the sharded pipeline's payload stringification.
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Outcome histogram of a ledger — convenience for logs and the stress
/// harness's one-line report.
pub fn outcome_histogram(records: &[SessionRecord]) -> BTreeMap<&'static str, usize> {
    let mut hist = BTreeMap::new();
    for r in records {
        *hist.entry(r.outcome.label()).or_insert(0) += 1;
    }
    hist
}

//! Property tests for the wire codec's trust boundary: arbitrary and
//! corrupted bytes must decode to typed errors (or valid frames), never
//! panic, and valid frames must survive a round trip bit-for-bit.

use dsm::addr::GlobalAddr;
use dsm_service::frame::{read_frame, ClientFrame, ServerFrame, WireEvent};
use proptest::prelude::*;
use race_core::{DsmOp, OpKind};

/// Decode an arbitrary wire event from four generator words — covers every
/// event and op-kind arm.
fn event_from_words(sel: u64, a: u64, b: u64, c: u64) -> WireEvent {
    let rank = (a % 8) as usize;
    let range = |seed: u64| {
        let addr = if seed.is_multiple_of(2) {
            GlobalAddr::public((seed % 8) as usize, (seed % 4096) as usize)
        } else {
            GlobalAddr::private((seed % 8) as usize, (seed % 4096) as usize)
        };
        addr.range(1 + (seed % 64) as usize)
    };
    match sel % 7 {
        0 => WireEvent::Op(DsmOp {
            op_id: b,
            actor: rank,
            kind: OpKind::Put {
                src: range(b),
                dst: range(c),
            },
        }),
        1 => WireEvent::Op(DsmOp {
            op_id: b,
            actor: rank,
            kind: OpKind::Get {
                src: range(b),
                dst: range(c),
            },
        }),
        2 => WireEvent::Op(DsmOp {
            op_id: b,
            actor: rank,
            kind: OpKind::LocalRead { range: range(c) },
        }),
        3 => WireEvent::Op(DsmOp {
            op_id: b,
            actor: rank,
            kind: OpKind::LocalWrite { range: range(c) },
        }),
        4 => WireEvent::Op(DsmOp {
            op_id: b,
            actor: rank,
            kind: OpKind::AtomicRmw { range: range(c) },
        }),
        5 => WireEvent::Barrier,
        _ => WireEvent::Acquire {
            rank,
            lock: ((b % 8) as usize, (c % 4096) as usize),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any generated event round-trips exactly.
    #[test]
    fn events_round_trip(raw in proptest::collection::vec(
        (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
        1..40,
    )) {
        for (sel, a, b, c) in raw {
            let frame = ClientFrame::Event(event_from_words(sel, a, b, c));
            let decoded = ClientFrame::decode(&frame.encode());
            prop_assert_eq!(decoded.as_ref(), Ok(&frame));
        }
    }

    /// Arbitrary byte soup decodes without panicking, on both sides of the
    /// protocol.
    #[test]
    fn random_bytes_never_panic_the_decoders(
        bytes in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let _ = ClientFrame::decode(&bytes);
        let _ = ServerFrame::decode(&bytes);
    }

    /// Single-byte corruption of a valid frame decodes to a typed error or
    /// a (different but) valid frame — never a panic, and never the
    /// original frame when the corrupted byte matters.
    #[test]
    fn corrupted_frames_fail_typed(
        (sel, a, b, c) in (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
        flip_pos in 0usize..4096,
        flip_bits in 1u8..=255,
    ) {
        let frame = ClientFrame::Event(event_from_words(sel, a, b, c));
        let mut payload = frame.encode();
        let pos = flip_pos % payload.len();
        payload[pos] ^= flip_bits;
        // Must not panic; errors must be typed (that's the return type);
        // success is legitimate when the flipped bits land in a value field.
        let _ = ClientFrame::decode(&payload);
    }

    /// Truncation at every length decodes to a typed error, never a panic.
    #[test]
    fn truncated_frames_fail_typed(
        (sel, a, b, c) in (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
        keep in 0usize..4096,
    ) {
        let frame = ClientFrame::Event(event_from_words(sel, a, b, c));
        let mut payload = frame.encode();
        let keep = keep % payload.len();
        payload.truncate(keep);
        prop_assert!(ClientFrame::decode(&payload).is_err());
    }

    /// `read_frame` handles arbitrary byte streams (hostile length
    /// prefixes included) without panicking or over-allocating.
    #[test]
    fn read_frame_survives_arbitrary_streams(
        bytes in proptest::collection::vec(0u8..=255, 0..64),
    ) {
        let mut cursor = std::io::Cursor::new(bytes);
        let _ = read_frame(&mut cursor);
    }

    /// The resume-protocol frames (v2) round-trip exactly for every token
    /// and sequence value.
    #[test]
    fn resume_frames_round_trip(
        token in 0u64..u64::MAX,
        seq in 0u64..u64::MAX,
        session in 0u64..u64::MAX,
    ) {
        let resume = ClientFrame::Resume { token, last_acked_seq: seq };
        prop_assert_eq!(ClientFrame::decode(&resume.encode()).as_ref(), Ok(&resume));

        let hello_ack = ServerFrame::HelloAck { session, token };
        prop_assert_eq!(ServerFrame::decode(&hello_ack.encode()).as_ref(), Ok(&hello_ack));

        let resume_ack = ServerFrame::ResumeAck { session, next_seq: seq };
        prop_assert_eq!(ServerFrame::decode(&resume_ack.encode()).as_ref(), Ok(&resume_ack));
    }

    /// Truncating a resume-protocol frame at any length is a typed error,
    /// never a panic — tokens cannot be smuggled through short frames.
    #[test]
    fn truncated_resume_frames_fail_typed(
        token in 0u64..u64::MAX,
        seq in 0u64..u64::MAX,
        keep in 0usize..4096,
    ) {
        let payload = ClientFrame::Resume { token, last_acked_seq: seq }.encode();
        let cut = keep % payload.len();
        prop_assert!(ClientFrame::decode(&payload[..cut]).is_err());

        let payload = ServerFrame::HelloAck { session: seq, token }.encode();
        let cut = keep % payload.len();
        prop_assert!(ServerFrame::decode(&payload[..cut]).is_err());

        let payload = ServerFrame::ResumeAck { session: token, next_seq: seq }.encode();
        let cut = keep % payload.len();
        prop_assert!(ServerFrame::decode(&payload[..cut]).is_err());
    }

    /// XOR-corrupting a resume frame decodes to a typed error or a valid
    /// frame with different fields — never a panic, and flips in the
    /// version byte are always rejected.
    #[test]
    fn corrupted_resume_frames_fail_typed(
        token in 0u64..u64::MAX,
        seq in 0u64..u64::MAX,
        flip_pos in 0usize..4096,
        flip_bits in 1u8..=255,
    ) {
        let mut payload = ClientFrame::Resume { token, last_acked_seq: seq }.encode();
        let pos = flip_pos % payload.len();
        payload[pos] ^= flip_bits;
        match ClientFrame::decode(&payload) {
            // Version byte (offset 1) corrupted: must be refused as such.
            _ if pos == 1 => prop_assert!(matches!(
                ClientFrame::decode(&payload),
                Err(dsm_service::FrameError::Version { .. })
            )),
            // Tag corrupted into another tag or garbage: any typed outcome
            // is fine; the original frame must not come back.
            Ok(frame) => prop_assert_ne!(
                frame,
                ClientFrame::Resume { token, last_acked_seq: seq }
            ),
            Err(_) => {}
        }
    }
}

//! End-to-end behaviour of the detection service: parity with in-process
//! sessions, and one test per way a client can go wrong — the server must
//! degrade exactly the offending session and nothing else.

use std::io::Write;
use std::net::TcpStream;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dsm::addr::GlobalAddr;
use dsm_service::frame::WireEvent;
use dsm_service::server::{ServeConfig, Server, SessionOutcome, SlowClientPolicy};
use dsm_service::{ClientError, ServiceClient};
use race_core::api::{ChannelSink, ReportSink, SummarySink};
use race_core::{DetectorConfig, DetectorKind, DsmOp, OpKind, RaceReport};

const N: usize = 4;

fn config() -> DetectorConfig {
    DetectorConfig::new(DetectorKind::Dual, N)
}

/// A deterministic racing workload: ranks 0 and 1 both put to the same
/// public words on rank 2 with no synchronisation — every word is a race.
fn racing_events(words: usize, base_op: u64) -> Vec<WireEvent> {
    let mut events = Vec::new();
    let mut op_id = base_op;
    for w in 0..words {
        for actor in 0..2usize {
            let src = GlobalAddr::private(actor, 64 * w).range(8);
            let dst = GlobalAddr::public(2, 8 * w).range(8);
            events.push(WireEvent::Op(DsmOp {
                op_id,
                actor,
                kind: OpKind::Put { src, dst },
            }));
            op_id += 1;
        }
    }
    events
}

/// The in-process twin: the same events through a plain `Session`.
fn in_process_json(events: &[WireEvent]) -> String {
    let mut session = config().session_with(Box::new(SummarySink::default()));
    for ev in events {
        match ev {
            WireEvent::Op(op) => {
                session.observe(op, &[]);
            }
            WireEvent::Barrier => session.on_barrier(),
            WireEvent::Acquire { rank, lock } => session.on_acquire(*rank, *lock),
            WireEvent::Release { rank, lock } => session.on_release(*rank, *lock),
        }
    }
    session.finish().0.to_json()
}

fn quick_serve_config() -> ServeConfig {
    ServeConfig {
        idle_timeout: Duration::from_millis(400),
        ..ServeConfig::default()
    }
}

#[test]
fn clean_session_matches_in_process_run_byte_for_byte() {
    let server = Server::bind("127.0.0.1:0", quick_serve_config()).unwrap();
    let events = racing_events(6, 1);

    let mut client = ServiceClient::connect(server.local_addr(), &config()).unwrap();
    for ev in &events {
        client.send(ev).unwrap();
    }
    let remote = client.finish().unwrap();

    assert!(remote.summary.total > 0, "workload must actually race");
    assert!(!remote.summary.degraded);
    assert_eq!(remote.shed, 0);
    assert_eq!(
        remote.raw_json,
        in_process_json(&events),
        "remote summary must be byte-identical to the in-process twin"
    );

    let report = server.shutdown();
    assert_eq!(report.stats.finished, 1);
    assert_eq!(report.stats.degraded_sessions(), 0);
}

#[test]
fn ping_reports_session_health_midstream() {
    let server = Server::bind("127.0.0.1:0", quick_serve_config()).unwrap();
    let mut client = ServiceClient::connect(server.local_addr(), &config()).unwrap();
    for ev in racing_events(3, 1) {
        client.send(&ev).unwrap();
    }
    let health = client.ping().unwrap();
    assert_eq!(health.events, 6, "3 words x 2 racing puts");
    assert!(!health.degraded);
    assert!(health.reports > 0);
    client.finish().unwrap();
    server.shutdown();
}

#[test]
fn garbage_bytes_poison_only_their_session() {
    let server = Server::bind("127.0.0.1:0", quick_serve_config()).unwrap();

    // A hostile connection: valid length prefix, garbage payload.
    let mut hostile = TcpStream::connect(server.local_addr()).unwrap();
    hostile.write_all(&9u32.to_le_bytes()).unwrap();
    hostile.write_all(&[0xff; 9]).unwrap();
    hostile.flush().unwrap();

    // A clean session on the same server, concurrently.
    let events = racing_events(4, 1);
    let mut client = ServiceClient::connect(server.local_addr(), &config()).unwrap();
    for ev in &events {
        client.send(ev).unwrap();
    }
    let remote = client.finish().unwrap();
    assert_eq!(remote.raw_json, in_process_json(&events));

    drop(hostile);
    let report = server.shutdown();
    assert_eq!(report.stats.finished, 1);
    assert_eq!(report.stats.poisoned, 1);
    assert!(report.stats.frames_rejected >= 1);
    let poisoned = report.with_outcome(SessionOutcome::Poisoned);
    assert_eq!(poisoned.len(), 1);
    assert!(poisoned[0].degraded);
}

#[test]
fn mid_stream_hangup_degrades_that_session_only() {
    let server = Server::bind("127.0.0.1:0", quick_serve_config()).unwrap();

    let mut doomed = ServiceClient::connect(server.local_addr(), &config()).unwrap();
    for ev in racing_events(2, 1) {
        doomed.send(&ev).unwrap();
    }
    drop(doomed); // vanish without Finish

    // Server must still accept and complete new sessions.
    let events = racing_events(4, 100);
    let mut client = ServiceClient::connect(server.local_addr(), &config()).unwrap();
    for ev in &events {
        client.send(ev).unwrap();
    }
    assert_eq!(client.finish().unwrap().raw_json, in_process_json(&events));

    let report = server.shutdown();
    assert_eq!(report.stats.finished, 1);
    assert_eq!(report.stats.hangups, 1);
    let hung = report.with_outcome(SessionOutcome::Hangup);
    assert_eq!(hung.len(), 1);
    assert!(hung[0].degraded);
    assert_eq!(hung[0].events, 4, "events before the hangup still counted");
}

#[test]
fn injected_panic_recovers_in_place_from_checkpoint() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            panic_on_op_id: Some(3),
            ..quick_serve_config()
        },
    )
    .unwrap();

    // The worker panics on op 3, rebuilds the session from its checkpoint +
    // journal, applies op 3 exactly once, and the stream completes with the
    // full workload's summary — degraded, because a panic happened.
    let events = racing_events(4, 1);
    let mut victim = ServiceClient::connect(server.local_addr(), &config()).unwrap();
    for ev in &events {
        victim.send(ev).unwrap();
    }
    let remote = victim.finish().unwrap();
    assert!(remote.summary.degraded, "a panicked session must degrade");
    assert!(
        remote
            .error
            .as_deref()
            .unwrap()
            .contains("injected session panic"),
        "panic must be reported: {:?}",
        remote.error
    );
    // Everything but the degraded flag matches the uninterrupted twin: the
    // recovery replayed the stream, it did not truncate it.
    let mut twin = race_core::RaceSummary::from_json(&in_process_json(&events)).unwrap();
    twin.degraded = true;
    assert_eq!(remote.raw_json, twin.to_json());

    // The accept loop survived: a fresh clean session still works
    // (op ids chosen to dodge the injected panic, which is one-shot anyway).
    let clean = racing_events(4, 100);
    let mut client = ServiceClient::connect(server.local_addr(), &config()).unwrap();
    for ev in &clean {
        client.send(ev).unwrap();
    }
    assert_eq!(client.finish().unwrap().raw_json, in_process_json(&clean));

    let report = server.shutdown();
    assert_eq!(report.stats.panics_supervised, 1);
    assert_eq!(report.stats.finished, 2, "the victim finished too");
    assert!(
        report.with_outcome(SessionOutcome::Panicked).is_empty(),
        "a recovered panic is not a terminal outcome"
    );
    let finished = report.with_outcome(SessionOutcome::Finished);
    let degraded_finished: Vec<_> = finished.iter().filter(|r| r.degraded).collect();
    assert_eq!(degraded_finished.len(), 1, "exactly the victim is degraded");
    assert_eq!(degraded_finished[0].events, 8);
    assert!(degraded_finished[0]
        .error
        .as_deref()
        .unwrap()
        .contains("injected session panic"));
}

#[test]
fn idle_session_is_reaped() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            idle_timeout: Duration::from_millis(150),
            ..ServeConfig::default()
        },
    )
    .unwrap();

    let mut client = ServiceClient::connect(server.local_addr(), &config()).unwrap();
    for ev in racing_events(2, 1) {
        client.send(&ev).unwrap();
    }
    // Go silent; the server must reap us and say why.
    std::thread::sleep(Duration::from_millis(600));
    match client.finish() {
        Ok(remote) => {
            assert!(remote.summary.degraded);
            assert!(remote.error.is_some());
        }
        Err(ClientError::Io(_)) | Err(ClientError::Frame(_)) => {
            // Connection already closed by the reap — fine.
        }
        Err(ClientError::Rejected(msg)) => {
            // The auto-reconnect presented its token, but a *reaped* session
            // is terminal, not parked — the refusal is the typed proof.
            assert!(msg.contains("resume token"), "unexpected rejection: {msg}");
        }
        Err(e) => panic!("unexpected client error: {e}"),
    }

    let report = server.shutdown();
    assert_eq!(report.stats.reaped, 1);
    let reaped = report.with_outcome(SessionOutcome::Reaped);
    assert_eq!(reaped.len(), 1);
    assert!(reaped[0].degraded);
    assert_eq!(reaped[0].events, 4, "events before the stall still counted");
}

/// A sink that sleeps per report: makes the session worker measurably
/// slower than the socket reader, forcing the bounded queue full.
#[derive(Debug)]
struct SlowSink {
    inner: SummarySink,
    delay: Duration,
}

impl ReportSink for SlowSink {
    fn on_report(&mut self, report: &RaceReport) {
        std::thread::sleep(self.delay);
        self.inner.on_report(report);
    }
}

#[test]
fn shed_policy_drops_counted_events_and_degrades() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            queue_capacity: 1,
            slow_policy: SlowClientPolicy::Shed,
            retry: race_core::RetryPolicy {
                attempts: 2,
                base_delay: Duration::from_micros(50),
            },
            sink_factory: Some(Arc::new(|| {
                Box::new(SlowSink {
                    inner: SummarySink::default(),
                    delay: Duration::from_millis(2),
                })
            })),
            ..quick_serve_config()
        },
    )
    .unwrap();

    let events = racing_events(64, 1); // every op races => every op is slow
    let mut client = ServiceClient::connect(server.local_addr(), &config()).unwrap();
    for ev in &events {
        client.send(ev).unwrap();
    }
    let remote = client.finish().unwrap();
    assert!(remote.shed > 0, "tiny queue + slow sink must shed");
    assert!(
        remote.summary.degraded,
        "shedding is lossy and must be reported as degradation"
    );

    let report = server.shutdown();
    assert_eq!(report.stats.events_shed, remote.shed);
}

#[test]
fn block_policy_sheds_nothing_under_the_same_pressure() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            queue_capacity: 1,
            slow_policy: SlowClientPolicy::Block,
            sink_factory: Some(Arc::new(|| {
                Box::new(SlowSink {
                    inner: SummarySink::default(),
                    delay: Duration::from_micros(500),
                })
            })),
            ..quick_serve_config()
        },
    )
    .unwrap();

    let events = racing_events(32, 1);
    let mut client = ServiceClient::connect(server.local_addr(), &config()).unwrap();
    for ev in &events {
        client.send(ev).unwrap();
    }
    let remote = client.finish().unwrap();
    assert_eq!(remote.shed, 0, "back-pressure loses nothing");
    assert!(!remote.summary.degraded);
    assert_eq!(remote.raw_json, in_process_json(&events));
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_live_sessions() {
    let server = Server::bind("127.0.0.1:0", quick_serve_config()).unwrap();

    let mut client = ServiceClient::connect(server.local_addr(), &config()).unwrap();
    for ev in racing_events(5, 1) {
        client.send(&ev).unwrap();
    }
    // No Finish: the session is live when shutdown starts.
    let report = server.shutdown();
    assert_eq!(report.stats.drained, 1);
    let drained = report.with_outcome(SessionOutcome::Drained);
    assert_eq!(drained.len(), 1);
    assert_eq!(drained[0].events, 10, "all pre-shutdown events applied");
    assert!(
        !drained[0].degraded,
        "a graceful drain is not a fault: summary covers everything received"
    );
    assert_eq!(
        drained[0].summary_json,
        in_process_json(&racing_events(5, 1)),
        "drained summary equals the in-process twin of the received prefix"
    );
}

/// Satellite regression: a `ChannelSink` whose receiver hangs up must not
/// take the per-session worker thread (or the server) down — dropped
/// reports are counted by the sink and the session still finishes cleanly.
#[test]
fn channel_sink_receiver_hangup_is_survived_by_session_worker() {
    let dropped_counts: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_factory = {
        let counts = Arc::clone(&dropped_counts);
        move || -> Box<dyn ReportSink> {
            let (tx, rx) = mpsc::channel();
            drop(rx); // receiver gone before the first report
            Box::new(HangupProbe {
                inner: ChannelSink::new(tx),
                counts: Arc::clone(&counts),
            })
        }
    };

    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            sink_factory: Some(Arc::new(sink_factory)),
            ..quick_serve_config()
        },
    )
    .unwrap();

    let events = racing_events(4, 1);
    let mut client = ServiceClient::connect(server.local_addr(), &config()).unwrap();
    for ev in &events {
        client.send(ev).unwrap();
    }
    let remote = client.finish().unwrap();
    assert!(
        !remote.summary.degraded,
        "a hung-up report consumer must not degrade detection"
    );
    assert_eq!(
        remote.raw_json,
        in_process_json(&events),
        "summary comes from the session tee, independent of the sink's fate"
    );

    let report = server.shutdown();
    assert_eq!(report.stats.finished, 1);
    assert_eq!(report.stats.panics_supervised, 0);
    let counts = dropped_counts.lock().unwrap();
    assert!(
        counts.iter().any(|&c| c > 0),
        "ChannelSink must have counted dropped reports: {counts:?}"
    );
}

/// Satellite regression: the shutdown ledger is bounded. Overflow evicts
/// the *oldest* records FIFO and counts them — mirroring the `DedupSink`
/// bound — so a long-lived server cannot grow without limit.
#[test]
fn ledger_is_bounded_with_fifo_eviction_and_counter() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            ledger_capacity: 3,
            ..quick_serve_config()
        },
    )
    .unwrap();

    // Five clean sessions, one event each, strictly sequential so the
    // ledger order is deterministic.
    for i in 0..5u64 {
        let mut client = ServiceClient::connect(server.local_addr(), &config()).unwrap();
        client
            .send(&WireEvent::Op(DsmOp {
                op_id: 1000 + i,
                actor: 0,
                kind: OpKind::LocalRead {
                    range: GlobalAddr::public(1, 0).range(8),
                },
            }))
            .unwrap();
        client.finish().unwrap();
    }

    let report = server.shutdown();
    assert_eq!(
        report.stats.finished, 5,
        "eviction loses records, not stats"
    );
    assert_eq!(report.sessions.len(), 3, "ledger capped at capacity");
    assert_eq!(report.evicted_records, 2, "evictions are counted");
    let ids: Vec<u64> = report.sessions.iter().map(|r| r.session).collect();
    assert_eq!(ids, vec![3, 4, 5], "oldest records evicted first");
}

/// Satellite: resume tokens are load-bearing security state. A forged or
/// stale token is refused with a typed error, counted, and — crucially —
/// must not destroy the legitimately parked session it guessed at.
#[test]
fn forged_and_stale_resume_tokens_are_rejected() {
    use dsm_service::frame::{read_frame, write_frame, ClientFrame, ServerFrame};

    let server = Server::bind("127.0.0.1:0", quick_serve_config()).unwrap();

    // Park a real session: stream a prefix, then vanish.
    let mut doomed = ServiceClient::connect(server.local_addr(), &config()).unwrap();
    for ev in racing_events(2, 1) {
        doomed.send(&ev).unwrap();
    }
    let real_token = doomed.resume_token();
    drop(doomed);
    std::thread::sleep(Duration::from_millis(100)); // let the server park it

    let resume_attempt = |token: u64, last_acked_seq: u64| -> ServerFrame {
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write_frame(
            &mut stream,
            &ClientFrame::Resume {
                token,
                last_acked_seq,
            }
            .encode(),
        )
        .unwrap();
        ServerFrame::decode(&read_frame(&mut stream).unwrap()).unwrap()
    };

    // Forged token: refused.
    match resume_attempt(real_token ^ 0xBAD_CAFE, 0) {
        ServerFrame::Error { message } => assert!(message.contains("resume token")),
        other => panic!("forged token accepted: {other:?}"),
    }
    // Right token, impossible progress claim: refused, and the parked
    // session survives the attempt.
    match resume_attempt(real_token, u64::MAX) {
        ServerFrame::Error { message } => assert!(message.contains("sequence")),
        other => panic!("impossible sequence accepted: {other:?}"),
    }
    // The real claim still works: the refusals above did not consume the
    // parked state.
    match resume_attempt(real_token, 0) {
        ServerFrame::ResumeAck { next_seq, .. } => assert_eq!(next_seq, 4),
        other => panic!("legitimate resume refused: {other:?}"),
    }

    let report = server.shutdown();
    assert_eq!(report.stats.poisoned, 2, "both bad attempts recorded");
    assert!(report.stats.frames_rejected >= 2);
    assert_eq!(report.stats.resumed, 1);
}

/// Satellite: a dead endpoint fails typed within the connect timeout —
/// never a hang, never a panic.
#[test]
fn dead_endpoint_fails_typed_and_bounded() {
    use dsm_service::ClientTimeouts;

    // Bind then immediately drop a listener: the port is (momentarily)
    // guaranteed dead.
    let dead_addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };
    let started = std::time::Instant::now();
    let result = ServiceClient::connect_with_timeouts(
        dead_addr,
        &config(),
        ClientTimeouts {
            connect: Duration::from_millis(500),
            read: Duration::from_millis(500),
        },
    );
    match result {
        Err(ClientError::Io(_)) => {}
        Ok(_) => panic!("connected to a dead endpoint"),
        Err(e) => panic!("wrong error class: {e}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "failure must be bounded by the connect timeout"
    );
}

/// Wraps a `ChannelSink` to expose its dropped-count at session teardown.
#[derive(Debug)]
struct HangupProbe {
    inner: ChannelSink,
    counts: Arc<Mutex<Vec<usize>>>,
}

impl ReportSink for HangupProbe {
    fn on_report(&mut self, report: &RaceReport) {
        self.inner.on_report(report);
    }

    fn on_flush(&mut self, summary: &race_core::RaceSummary) {
        self.inner.on_flush(summary);
        self.counts.lock().unwrap().push(self.inner.dropped());
    }
}

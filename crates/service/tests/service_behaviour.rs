//! End-to-end behaviour of the detection service: parity with in-process
//! sessions, and one test per way a client can go wrong — the server must
//! degrade exactly the offending session and nothing else.

use std::io::Write;
use std::net::TcpStream;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dsm::addr::GlobalAddr;
use dsm_service::frame::WireEvent;
use dsm_service::server::{ServeConfig, Server, SessionOutcome, SlowClientPolicy};
use dsm_service::{ClientError, ServiceClient};
use race_core::api::{ChannelSink, ReportSink, SummarySink};
use race_core::{DetectorConfig, DetectorKind, DsmOp, OpKind, RaceReport};

const N: usize = 4;

fn config() -> DetectorConfig {
    DetectorConfig::new(DetectorKind::Dual, N)
}

/// A deterministic racing workload: ranks 0 and 1 both put to the same
/// public words on rank 2 with no synchronisation — every word is a race.
fn racing_events(words: usize, base_op: u64) -> Vec<WireEvent> {
    let mut events = Vec::new();
    let mut op_id = base_op;
    for w in 0..words {
        for actor in 0..2usize {
            let src = GlobalAddr::private(actor, 64 * w).range(8);
            let dst = GlobalAddr::public(2, 8 * w).range(8);
            events.push(WireEvent::Op(DsmOp {
                op_id,
                actor,
                kind: OpKind::Put { src, dst },
            }));
            op_id += 1;
        }
    }
    events
}

/// The in-process twin: the same events through a plain `Session`.
fn in_process_json(events: &[WireEvent]) -> String {
    let mut session = config().session_with(Box::new(SummarySink::default()));
    for ev in events {
        match ev {
            WireEvent::Op(op) => {
                session.observe(op, &[]);
            }
            WireEvent::Barrier => session.on_barrier(),
            WireEvent::Acquire { rank, lock } => session.on_acquire(*rank, *lock),
            WireEvent::Release { rank, lock } => session.on_release(*rank, *lock),
        }
    }
    session.finish().0.to_json()
}

fn quick_serve_config() -> ServeConfig {
    ServeConfig {
        idle_timeout: Duration::from_millis(400),
        ..ServeConfig::default()
    }
}

#[test]
fn clean_session_matches_in_process_run_byte_for_byte() {
    let server = Server::bind("127.0.0.1:0", quick_serve_config()).unwrap();
    let events = racing_events(6, 1);

    let mut client = ServiceClient::connect(server.local_addr(), &config()).unwrap();
    for ev in &events {
        client.send(ev).unwrap();
    }
    let remote = client.finish().unwrap();

    assert!(remote.summary.total > 0, "workload must actually race");
    assert!(!remote.summary.degraded);
    assert_eq!(remote.shed, 0);
    assert_eq!(
        remote.raw_json,
        in_process_json(&events),
        "remote summary must be byte-identical to the in-process twin"
    );

    let report = server.shutdown();
    assert_eq!(report.stats.finished, 1);
    assert_eq!(report.stats.degraded_sessions(), 0);
}

#[test]
fn ping_reports_session_health_midstream() {
    let server = Server::bind("127.0.0.1:0", quick_serve_config()).unwrap();
    let mut client = ServiceClient::connect(server.local_addr(), &config()).unwrap();
    for ev in racing_events(3, 1) {
        client.send(&ev).unwrap();
    }
    let health = client.ping().unwrap();
    assert_eq!(health.events, 6, "3 words x 2 racing puts");
    assert!(!health.degraded);
    assert!(health.reports > 0);
    client.finish().unwrap();
    server.shutdown();
}

#[test]
fn garbage_bytes_poison_only_their_session() {
    let server = Server::bind("127.0.0.1:0", quick_serve_config()).unwrap();

    // A hostile connection: valid length prefix, garbage payload.
    let mut hostile = TcpStream::connect(server.local_addr()).unwrap();
    hostile.write_all(&9u32.to_le_bytes()).unwrap();
    hostile.write_all(&[0xff; 9]).unwrap();
    hostile.flush().unwrap();

    // A clean session on the same server, concurrently.
    let events = racing_events(4, 1);
    let mut client = ServiceClient::connect(server.local_addr(), &config()).unwrap();
    for ev in &events {
        client.send(ev).unwrap();
    }
    let remote = client.finish().unwrap();
    assert_eq!(remote.raw_json, in_process_json(&events));

    drop(hostile);
    let report = server.shutdown();
    assert_eq!(report.stats.finished, 1);
    assert_eq!(report.stats.poisoned, 1);
    assert!(report.stats.frames_rejected >= 1);
    let poisoned = report.with_outcome(SessionOutcome::Poisoned);
    assert_eq!(poisoned.len(), 1);
    assert!(poisoned[0].degraded);
}

#[test]
fn mid_stream_hangup_degrades_that_session_only() {
    let server = Server::bind("127.0.0.1:0", quick_serve_config()).unwrap();

    let mut doomed = ServiceClient::connect(server.local_addr(), &config()).unwrap();
    for ev in racing_events(2, 1) {
        doomed.send(&ev).unwrap();
    }
    drop(doomed); // vanish without Finish

    // Server must still accept and complete new sessions.
    let events = racing_events(4, 100);
    let mut client = ServiceClient::connect(server.local_addr(), &config()).unwrap();
    for ev in &events {
        client.send(ev).unwrap();
    }
    assert_eq!(client.finish().unwrap().raw_json, in_process_json(&events));

    let report = server.shutdown();
    assert_eq!(report.stats.finished, 1);
    assert_eq!(report.stats.hangups, 1);
    let hung = report.with_outcome(SessionOutcome::Hangup);
    assert_eq!(hung.len(), 1);
    assert!(hung[0].degraded);
    assert_eq!(hung[0].events, 4, "events before the hangup still counted");
}

#[test]
fn injected_panic_is_supervised_and_server_survives() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            panic_on_op_id: Some(3),
            ..quick_serve_config()
        },
    )
    .unwrap();

    let mut victim = ServiceClient::connect(server.local_addr(), &config()).unwrap();
    for ev in racing_events(4, 1) {
        // Sends may start failing once the worker is down; that's the
        // degradation being tested, not an error.
        if victim.send(&ev).is_err() {
            break;
        }
    }
    match victim.finish() {
        Ok(remote) => {
            assert!(remote.summary.degraded, "panicked session must degrade");
            assert!(remote.error.is_some(), "panic must be reported");
        }
        Err(ClientError::Io(_)) | Err(ClientError::Frame(_)) => {
            // The connection may drop before the error frame arrives;
            // the ledger assertion below is the real check.
        }
        Err(e) => panic!("unexpected client error: {e}"),
    }

    // The accept loop survived: a fresh clean session still works
    // (op ids chosen to dodge the injected panic).
    let events = racing_events(4, 100);
    let mut client = ServiceClient::connect(server.local_addr(), &config()).unwrap();
    for ev in &events {
        client.send(ev).unwrap();
    }
    assert_eq!(client.finish().unwrap().raw_json, in_process_json(&events));

    let report = server.shutdown();
    assert_eq!(report.stats.panics_supervised, 1);
    assert_eq!(report.stats.finished, 1);
    let panicked = report.with_outcome(SessionOutcome::Panicked);
    assert_eq!(panicked.len(), 1);
    assert!(panicked[0].degraded);
    assert!(panicked[0]
        .error
        .as_deref()
        .unwrap()
        .contains("injected session panic"));
}

#[test]
fn idle_session_is_reaped() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            idle_timeout: Duration::from_millis(150),
            ..ServeConfig::default()
        },
    )
    .unwrap();

    let mut client = ServiceClient::connect(server.local_addr(), &config()).unwrap();
    for ev in racing_events(2, 1) {
        client.send(&ev).unwrap();
    }
    // Go silent; the server must reap us and say why.
    std::thread::sleep(Duration::from_millis(600));
    match client.finish() {
        Ok(remote) => {
            assert!(remote.summary.degraded);
            assert!(remote.error.is_some());
        }
        Err(ClientError::Io(_)) | Err(ClientError::Frame(_)) => {
            // Connection already closed by the reap — fine.
        }
        Err(e) => panic!("unexpected client error: {e}"),
    }

    let report = server.shutdown();
    assert_eq!(report.stats.reaped, 1);
    let reaped = report.with_outcome(SessionOutcome::Reaped);
    assert_eq!(reaped.len(), 1);
    assert!(reaped[0].degraded);
    assert_eq!(reaped[0].events, 4, "events before the stall still counted");
}

/// A sink that sleeps per report: makes the session worker measurably
/// slower than the socket reader, forcing the bounded queue full.
#[derive(Debug)]
struct SlowSink {
    inner: SummarySink,
    delay: Duration,
}

impl ReportSink for SlowSink {
    fn on_report(&mut self, report: &RaceReport) {
        std::thread::sleep(self.delay);
        self.inner.on_report(report);
    }
}

#[test]
fn shed_policy_drops_counted_events_and_degrades() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            queue_capacity: 1,
            slow_policy: SlowClientPolicy::Shed,
            retry: race_core::RetryPolicy {
                attempts: 2,
                base_delay: Duration::from_micros(50),
            },
            sink_factory: Some(Arc::new(|| {
                Box::new(SlowSink {
                    inner: SummarySink::default(),
                    delay: Duration::from_millis(2),
                })
            })),
            ..quick_serve_config()
        },
    )
    .unwrap();

    let events = racing_events(64, 1); // every op races => every op is slow
    let mut client = ServiceClient::connect(server.local_addr(), &config()).unwrap();
    for ev in &events {
        client.send(ev).unwrap();
    }
    let remote = client.finish().unwrap();
    assert!(remote.shed > 0, "tiny queue + slow sink must shed");
    assert!(
        remote.summary.degraded,
        "shedding is lossy and must be reported as degradation"
    );

    let report = server.shutdown();
    assert_eq!(report.stats.events_shed, remote.shed);
}

#[test]
fn block_policy_sheds_nothing_under_the_same_pressure() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            queue_capacity: 1,
            slow_policy: SlowClientPolicy::Block,
            sink_factory: Some(Arc::new(|| {
                Box::new(SlowSink {
                    inner: SummarySink::default(),
                    delay: Duration::from_micros(500),
                })
            })),
            ..quick_serve_config()
        },
    )
    .unwrap();

    let events = racing_events(32, 1);
    let mut client = ServiceClient::connect(server.local_addr(), &config()).unwrap();
    for ev in &events {
        client.send(ev).unwrap();
    }
    let remote = client.finish().unwrap();
    assert_eq!(remote.shed, 0, "back-pressure loses nothing");
    assert!(!remote.summary.degraded);
    assert_eq!(remote.raw_json, in_process_json(&events));
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_live_sessions() {
    let server = Server::bind("127.0.0.1:0", quick_serve_config()).unwrap();

    let mut client = ServiceClient::connect(server.local_addr(), &config()).unwrap();
    for ev in racing_events(5, 1) {
        client.send(&ev).unwrap();
    }
    // No Finish: the session is live when shutdown starts.
    let report = server.shutdown();
    assert_eq!(report.stats.drained, 1);
    let drained = report.with_outcome(SessionOutcome::Drained);
    assert_eq!(drained.len(), 1);
    assert_eq!(drained[0].events, 10, "all pre-shutdown events applied");
    assert!(
        !drained[0].degraded,
        "a graceful drain is not a fault: summary covers everything received"
    );
    assert_eq!(
        drained[0].summary_json,
        in_process_json(&racing_events(5, 1)),
        "drained summary equals the in-process twin of the received prefix"
    );
}

/// Satellite regression: a `ChannelSink` whose receiver hangs up must not
/// take the per-session worker thread (or the server) down — dropped
/// reports are counted by the sink and the session still finishes cleanly.
#[test]
fn channel_sink_receiver_hangup_is_survived_by_session_worker() {
    let dropped_counts: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_factory = {
        let counts = Arc::clone(&dropped_counts);
        move || -> Box<dyn ReportSink> {
            let (tx, rx) = mpsc::channel();
            drop(rx); // receiver gone before the first report
            Box::new(HangupProbe {
                inner: ChannelSink::new(tx),
                counts: Arc::clone(&counts),
            })
        }
    };

    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            sink_factory: Some(Arc::new(sink_factory)),
            ..quick_serve_config()
        },
    )
    .unwrap();

    let events = racing_events(4, 1);
    let mut client = ServiceClient::connect(server.local_addr(), &config()).unwrap();
    for ev in &events {
        client.send(ev).unwrap();
    }
    let remote = client.finish().unwrap();
    assert!(
        !remote.summary.degraded,
        "a hung-up report consumer must not degrade detection"
    );
    assert_eq!(
        remote.raw_json,
        in_process_json(&events),
        "summary comes from the session tee, independent of the sink's fate"
    );

    let report = server.shutdown();
    assert_eq!(report.stats.finished, 1);
    assert_eq!(report.stats.panics_supervised, 0);
    let counts = dropped_counts.lock().unwrap();
    assert!(
        counts.iter().any(|&c| c > 0),
        "ChannelSink must have counted dropped reports: {counts:?}"
    );
}

/// Wraps a `ChannelSink` to expose its dropped-count at session teardown.
#[derive(Debug)]
struct HangupProbe {
    inner: ChannelSink,
    counts: Arc<Mutex<Vec<usize>>>,
}

impl ReportSink for HangupProbe {
    fn on_report(&mut self, report: &RaceReport) {
        self.inner.on_report(report);
    }

    fn on_flush(&mut self, summary: &race_core::RaceSummary) {
        self.inner.on_flush(summary);
        self.counts.lock().unwrap().push(self.inner.dropped());
    }
}

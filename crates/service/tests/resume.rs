//! Tier-1 durability matrix: kill the connection mid-stream at a
//! pseudo-random point for every detector kind × shard count, resume via
//! the token, and require the final summary to be **byte-identical** to an
//! uninterrupted in-process run of the same events — with exact
//! outcome-ledger accounting (one park, one resume, one finish, nothing
//! degraded, nothing poisoned).

use std::time::Duration;

use dsm::addr::GlobalAddr;
use dsm_service::frame::WireEvent;
use dsm_service::server::{ServeConfig, Server, SessionOutcome};
use dsm_service::ServiceClient;
use race_core::api::{DetectorConfig, SummarySink};
use race_core::clockstore::Granularity;
use race_core::detector::DetectorKind;
use race_core::event::{DsmOp, LockId, OpKind};
use race_core::RetryPolicy;

const N: usize = 4;

/// Deterministic generator (same LCG family the chaos layer uses).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn pick(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

const LOCKS: [LockId; 2] = [(0, 0), (1, 64)];

/// A mixed wire workload: racing puts/gets laced with barriers and lock
/// transitions so the resumed session must restore every clock species.
fn workload(len: usize, seed: u64) -> Vec<WireEvent> {
    let mut rng = Lcg(seed);
    let mut held = [false; LOCKS.len()];
    let mut events = Vec::with_capacity(len);
    for i in 0..len {
        let roll = rng.pick(100);
        if roll < 6 {
            events.push(WireEvent::Barrier);
            continue;
        }
        if roll < 14 {
            let which = rng.pick(LOCKS.len());
            let rank = rng.pick(N);
            if held[which] {
                held[which] = false;
                events.push(WireEvent::Release {
                    rank,
                    lock: LOCKS[which],
                });
            } else {
                held[which] = true;
                events.push(WireEvent::Acquire {
                    rank,
                    lock: LOCKS[which],
                });
            }
            continue;
        }
        let actor = rng.pick(N);
        let target = GlobalAddr::public(rng.pick(N), 8 * rng.pick(10)).range(8);
        let kind = match rng.pick(3) {
            0 => OpKind::Put {
                src: GlobalAddr::private(actor, 0).range(8),
                dst: target,
            },
            1 => OpKind::Get {
                src: target,
                dst: GlobalAddr::private(actor, 0).range(8),
            },
            _ => OpKind::AtomicRmw { range: target },
        };
        events.push(WireEvent::Op(DsmOp {
            op_id: i as u64,
            actor,
            kind,
        }));
    }
    events
}

fn cell_config(kind: DetectorKind, shards: usize) -> DetectorConfig {
    let mut config = DetectorConfig::new(kind, N);
    config.granularity = Granularity::WORD;
    config.shards = shards;
    config
}

/// The uninterrupted twin: the same events through a plain in-process
/// session with the same sink the server defaults to.
fn twin_json(config: &DetectorConfig, events: &[WireEvent]) -> String {
    let mut session = config
        .clone()
        .session_with(Box::new(SummarySink::default()));
    for ev in events {
        match ev {
            WireEvent::Op(op) => {
                session.observe(op, &[]);
            }
            WireEvent::Barrier => session.on_barrier(),
            WireEvent::Acquire { rank, lock } => session.on_acquire(*rank, *lock),
            WireEvent::Release { rank, lock } => session.on_release(*rank, *lock),
        }
    }
    session.finish().0.to_json()
}

#[test]
fn killed_mid_stream_sessions_resume_byte_identical_across_the_matrix() {
    for kind in DetectorKind::ALL {
        for shards in 1..=4usize {
            let seed = 0x5E55_10F1 ^ ((shards as u64) << 40) ^ kind.label().len() as u64;
            let events = workload(140, seed);
            let config = cell_config(kind, shards);

            // Kill points: one or two pseudo-random cuts per cell.
            let mut rng = Lcg(seed.rotate_left(23));
            let mut cuts = vec![10 + rng.pick(events.len() - 20)];
            if rng.pick(2) == 1 {
                let second = cuts[0] + 1 + rng.pick(events.len() - cuts[0] - 2);
                cuts.push(second);
            }

            let server = Server::bind(
                "127.0.0.1:0",
                ServeConfig {
                    checkpoint_every: 16,
                    idle_timeout: Duration::from_secs(10),
                    ..ServeConfig::default()
                },
            )
            .expect("bind");

            let mut client = ServiceClient::connect(server.local_addr(), &config).expect("connect");
            client.set_retry_policy(RetryPolicy {
                attempts: 8,
                base_delay: Duration::from_millis(2),
            });
            let session_id = client.session_id();

            for (i, ev) in events.iter().enumerate() {
                if cuts.contains(&i) {
                    client.drop_connection();
                    // Give the server a beat to notice the dead socket and
                    // park the session before the reconnect dials in.
                    std::thread::sleep(Duration::from_millis(50));
                }
                client
                    .send(ev)
                    .unwrap_or_else(|e| panic!("{kind:?}/{shards}: send {i} failed: {e}"));
            }
            assert_eq!(
                client.reconnects(),
                cuts.len() as u64,
                "{kind:?}/{shards}: every cut must have healed via resume"
            );
            assert_eq!(
                client.session_id(),
                session_id,
                "{kind:?}/{shards}: session identity survives the reconnects"
            );

            let remote = client
                .finish()
                .unwrap_or_else(|e| panic!("{kind:?}/{shards}: finish failed: {e}"));
            assert!(
                !remote.summary.degraded,
                "{kind:?}/{shards}: a resumed session is lossless, not degraded"
            );
            assert_eq!(
                remote.raw_json,
                twin_json(&config, &events),
                "{kind:?}/{shards}: resumed summary must be byte-identical"
            );

            // Exact ledger accounting: every cut parked then resumed; the
            // one logical session finished cleanly; nothing else happened.
            let report = server.shutdown();
            assert_eq!(report.stats.parked, cuts.len() as u64, "{kind:?}/{shards}");
            assert_eq!(report.stats.resumed, cuts.len() as u64, "{kind:?}/{shards}");
            assert_eq!(report.stats.finished, 1, "{kind:?}/{shards}");
            assert_eq!(report.stats.hangups, 0, "{kind:?}/{shards}");
            assert_eq!(report.stats.poisoned, 0, "{kind:?}/{shards}");
            assert_eq!(report.stats.degraded_sessions(), 0, "{kind:?}/{shards}");
            let finished = report.with_outcome(SessionOutcome::Finished);
            assert_eq!(finished.len(), 1, "{kind:?}/{shards}");
            assert_eq!(finished[0].session, session_id, "{kind:?}/{shards}");
            assert_eq!(
                finished[0].events,
                events.len() as u64,
                "{kind:?}/{shards}: no event lost or duplicated across cuts"
            );
            assert_eq!(
                finished[0].summary_json,
                twin_json(&config, &events),
                "{kind:?}/{shards}: ledger summary byte-identical too"
            );
        }
    }
}

/// An unresumed park expires: the reaper finalises it as a hangup with the
/// checkpointed event count, and a late resume attempt is refused.
#[test]
fn expired_park_is_reaped_into_a_hangup() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            park_ttl: Duration::from_millis(100),
            ..ServeConfig::default()
        },
    )
    .expect("bind");

    let config = cell_config(DetectorKind::Dual, 1);
    let mut client = ServiceClient::connect(server.local_addr(), &config).expect("connect");
    let events = workload(20, 0xA11CE);
    for ev in &events {
        client.send(ev).expect("send");
    }
    // Make sure everything is applied before the hangup, then vanish.
    let health = client.ping().expect("ping");
    assert_eq!(health.events, events.len() as u64);
    drop(client);

    // Past the TTL the reaper must have finalised the park.
    std::thread::sleep(Duration::from_millis(400));
    let report = server.shutdown();
    assert_eq!(report.stats.parked, 1);
    assert_eq!(report.stats.resumed, 0);
    assert_eq!(report.stats.hangups, 1);
    let hung = report.with_outcome(SessionOutcome::Hangup);
    assert_eq!(hung.len(), 1);
    assert!(hung[0].degraded);
    assert_eq!(hung[0].events, events.len() as u64);
    assert!(hung[0].summary_json.contains("\"degraded\":true"));
}

//! Tier-1 gate for the oracle-validated scenario matrix: the full
//! detector-kind × shard-count × network-model sweep must satisfy every
//! embedded ground-truth annotation, and the whole matrix must be a pure
//! function of the seed (same seed ⇒ same scores, cell for cell).

use dsm_bench::scenarios::{run_scenarios, scenario_matrix, MATRIX_KINDS, MATRIX_SHARDS};
use simulator::workloads::RaceGrade;

#[test]
fn full_matrix_satisfies_ground_truth_and_is_deterministic() {
    let first = run_scenarios(1);
    assert!(
        first.ok,
        "scenario sweep violated ground truth:\n{}",
        first
            .lines
            .iter()
            .filter(|l| l.starts_with("FAIL"))
            .cloned()
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Full coverage: every scenario × net × kind × shard cell was graded.
    let nets = dsm_bench::scenarios::net_matrix().len();
    let expected = scenario_matrix().len() * nets * MATRIX_KINDS.len() * MATRIX_SHARDS.len();
    assert_eq!(first.cells.len(), expected, "cells missing from the sweep");
    assert_eq!(first.runs, expected);

    // Determinism: a second sweep from the same seed reproduces every cell
    // — reports, truth counts and both Score levels — exactly.
    let second = run_scenarios(1);
    assert!(second.ok);
    assert_eq!(first.cells, second.cells, "same seed must give same scores");
}

#[test]
fn race_free_twins_are_silent_and_racy_twins_are_site_complete() {
    let report = run_scenarios(1);
    assert!(report.ok);
    let truths: std::collections::HashMap<String, _> = scenario_matrix()
        .into_iter()
        .map(|w| (w.name.clone(), w.truth.expect("annotated")))
        .collect();
    let mut silent_cells = 0;
    let mut complete_cells = 0;
    for cell in &report.cells {
        let truth = &truths[&cell.scenario];
        if truth.is_race_free() {
            // Oracle agrees with the annotation in every cell…
            assert_eq!(cell.truth_pairs, 0, "{}: oracle found races", cell.scenario);
            // …and the sound detector stays silent.
            if cell.detector == "dual-clock" {
                assert_eq!(
                    cell.reports, 0,
                    "{} [{} shards={} net={}]: dual clock reported on a race-free twin",
                    cell.scenario, cell.detector, cell.shards, cell.net
                );
                silent_cells += 1;
            }
        } else {
            match truth.grade {
                // Always-racing twins hit their whole declared catalogue…
                RaceGrade::Always => assert_eq!(
                    cell.truth_sites,
                    truth.racy_sites.len(),
                    "{}: oracle missed declared sites",
                    cell.scenario
                ),
                // …schedule-dependent twins hit a (possibly empty) subset —
                // per-cell soundness is asserted inside run_scenarios, and
                // the sweep-level both-outcomes check lives there too.
                RaceGrade::Sometimes => assert!(
                    cell.truth_sites <= truth.racy_sites.len(),
                    "{}: oracle found more sites than declared",
                    cell.scenario
                ),
                RaceGrade::Never => unreachable!("race-free handled above"),
            }
            // The site-complete kinds report every site the oracle found
            // in *this* run (per-run truth, so this holds for both grades).
            if cell.detector != "literal-paper" {
                assert_eq!(
                    cell.sites.false_negatives, 0,
                    "{} [{} shards={} net={}]: missed a true race site",
                    cell.scenario, cell.detector, cell.shards, cell.net
                );
                assert!((cell.sites.recall() - 1.0).abs() < 1e-12);
                complete_cells += 1;
            }
        }
        if cell.detector == "dual-clock" {
            assert_eq!(
                cell.pairs.false_positives, 0,
                "{} [{} shards={} net={}]: unsound dual-clock pair",
                cell.scenario, cell.detector, cell.shards, cell.net
            );
        }
    }
    assert!(
        silent_cells > 0 && complete_cells > 0,
        "both gates exercised"
    );
}

#[test]
fn fault_cells_fire_and_stay_graded() {
    // The fault-plan nets exist to prove grading survives perturbed
    // delivery: at least one faulted cell must actually have injected
    // (degraded), and every degraded cell still satisfied its contract
    // (run_scenarios would have failed otherwise).
    let report = run_scenarios(2);
    assert!(report.ok);
    let degraded = report.cells.iter().filter(|c| c.degraded).count();
    assert!(degraded > 0, "fault plans never fired across two seeds");
    assert!(report
        .cells
        .iter()
        .filter(|c| c.degraded)
        .all(|c| c.net == "fault-delay" || c.net == "fault-reorder"));
}

//! Tier-1 acceptance test for the detection service: 128 concurrent
//! clients mixing clean streams, mid-stream hangups, garbage bytes and
//! stallers, plus one injected session panic (recovered in place from its
//! checkpoint) and two reconnect cells (boundary hangup and mid-frame TCP
//! cut, both resumed via token). The server must never die, every clean,
//! recovered or resumed session's summary must be byte-identical to an
//! in-process run, and every poisoned/stalled/vanished session must be
//! recorded degraded with the right outcome — with exact park/resume
//! accounting in the ledger.

#[test]
fn server_survives_128_chaotic_clients_with_byte_identical_clean_summaries() {
    let report = dsm_bench::serve::run_serve_smoke(128, 0);
    assert!(
        report.ok,
        "serve smoke invariants violated:\n{}",
        report.lines.join("\n")
    );
    assert_eq!(report.parity_failed, 0);
    // 128 clients / 4 kinds = 32 clean, plus the recovered panic client,
    // both resume cells and the post-chaos probe.
    assert_eq!(report.parity_ok, 36);
    assert_eq!(
        report.clients, 132,
        "fleet + panic client + two resume cells + probe"
    );
}

//! The report-path bench: the detector hot loop driven through the
//! `race_core::api` façade with each shipped sink, against the legacy
//! direct-log-append path (PR-3's hot loop).
//!
//! `report_path/{hotspot,stencil}/{legacy-log,session-*}` is the set the
//! BENCH_0004 acceptance criterion reads; `repro --bench-sinks` prints the
//! same comparison as JSON. The claim under test: streaming through a sink
//! costs nothing measurable — on the silent stencil stream the sink is
//! never consulted, and on the report-dense hotspot stream the `VecSink`
//! path hands reports over by value exactly like the old log append.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsm_bench::opstream::{self, StreamEvent};
use race_core::api::{CountingSink, DetectorConfig, ReportSink, SummarySink, VecSink};
use race_core::DetectorKind;

fn bench_set(c: &mut Criterion, label: &str, n: usize, events: &[StreamEvent]) {
    let config = DetectorConfig::new(DetectorKind::Dual, n);
    let mut group = c.benchmark_group(format!("report_path/{label}"));
    group.bench_with_input(BenchmarkId::from_parameter("legacy-log"), &(), |b, _| {
        b.iter(|| {
            let mut det = config.build();
            opstream::drive(&mut *det, events)
        });
    });
    group.bench_with_input(BenchmarkId::from_parameter("sink-vec"), &(), |b, _| {
        b.iter(|| {
            let mut det = config.build();
            let mut sink = VecSink::new();
            opstream::drive_sink(&mut *det, &mut sink, events)
        });
    });
    type MakeSink = fn() -> Box<dyn ReportSink>;
    let sinks: [(&str, MakeSink); 3] = [
        ("session-vec", || Box::new(VecSink::new())),
        ("session-summary", || Box::new(SummarySink::default())),
        ("session-counting", || Box::new(CountingSink::default())),
    ];
    for (path, make_sink) in sinks {
        group.bench_with_input(BenchmarkId::from_parameter(path), &(), |b, _| {
            b.iter(|| {
                let mut session = config.session_with(make_sink());
                opstream::drive_session(&mut session, events)
            });
        });
    }
    group.finish();
}

fn hotspot_stream(c: &mut Criterion) {
    let n = 8;
    let events = opstream::hotspot(n, 512, 8);
    bench_set(c, "hotspot", n, &events);
}

fn stencil_stream(c: &mut Criterion) {
    let n = 16;
    let events = opstream::stencil(n, 16, 4);
    bench_set(c, "stencil", n, &events);
}

criterion_group!(benches, hotspot_stream, stencil_stream);
criterion_main!(benches);

//! Shard-transport microbenches: what moving the check-and-update across
//! the router/worker boundary costs, on top of the work itself.
//!
//! * `transport/<workload>/epoch` — the sequential epoch detector, the
//!   per-access floor.
//! * `transport/<workload>/inline@1` — `ShardedDetector::new(.., 1)`: the
//!   batch API over the degenerate inline shard (API overhead only).
//! * `transport/<workload>/threaded@1` — `ShardedDetector::threaded(.., 1)`:
//!   the full zero-copy transport with nothing to parallelise; the gap to
//!   `epoch` is the transport + router-replica cost per access.
//! * `transport/<workload>/threaded@2` — the production threaded pipeline.
//!
//! On hosts with one usable core the threaded rows measure serialized
//! pipeline cost, not scaling — see docs/BENCHMARKS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsm_bench::opstream::{self, StreamEvent};
use race_core::{Granularity, HbDetector, HbMode, MemOp, ShardedDetector, StoreConfig};

fn bench_workload(c: &mut Criterion, label: &str, n: usize, events: &[StreamEvent]) {
    let batch: Vec<MemOp> = opstream::memops(events);
    let mut group = c.benchmark_group(format!("transport/{label}"));
    group.bench_with_input(BenchmarkId::from_parameter("epoch"), &(), |b, _| {
        b.iter(|| {
            let mut det = HbDetector::new(n, Granularity::WORD, HbMode::Dual);
            opstream::drive(&mut det, events)
        });
    });
    group.bench_with_input(BenchmarkId::from_parameter("inline@1"), &(), |b, _| {
        b.iter(|| {
            let mut det = ShardedDetector::new(n, Granularity::WORD, HbMode::Dual, 1);
            det.observe_batch(&batch)
        });
    });
    group.bench_with_input(BenchmarkId::from_parameter("threaded@1"), &(), |b, _| {
        b.iter(|| {
            let mut det = ShardedDetector::threaded(
                n,
                Granularity::WORD,
                HbMode::Dual,
                1,
                StoreConfig::default(),
            );
            det.observe_batch(&batch)
        });
    });
    group.bench_with_input(BenchmarkId::from_parameter("threaded@2"), &(), |b, _| {
        b.iter(|| {
            let mut det = ShardedDetector::new(n, Granularity::WORD, HbMode::Dual, 2);
            det.observe_batch(&batch)
        });
    });
    group.finish();
}

fn stencil(c: &mut Criterion) {
    let n = 16;
    let events = opstream::stencil(n, 16, 8);
    bench_workload(c, "stencil", n, &events);
}

fn hotspot(c: &mut Criterion) {
    let n = 8;
    let events = opstream::hotspot(n, 128, 8);
    bench_workload(c, "hotspot", n, &events);
}

criterion_group!(benches, stencil, hotspot);
criterion_main!(benches);

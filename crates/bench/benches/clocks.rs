//! SEC4C wall-clock companion: the clock machinery itself — comparison
//! (Algorithm 3), merge (Algorithm 4), matrix maintenance (§IV-B) — as a
//! function of n. The paper's storage claim is linear/quadratic growth; the
//! time cost of the operations grows the same way.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vclock::{compare_clocks, max_clock, MatrixClock, SparseClock, VectorClock};

fn clock_for(n: usize, salt: u64) -> VectorClock {
    VectorClock::from_components((0..n).map(|i| (i as u64 * 7 + salt) % 100).collect())
}

fn compare(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm3_compare");
    for n in [2usize, 8, 32, 128] {
        let a = clock_for(n, 1);
        let b = clock_for(n, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                std::hint::black_box(
                    !compare_clocks(std::hint::black_box(&a), std::hint::black_box(&b))
                        && !compare_clocks(&b, &a),
                )
            });
        });
    }
    group.finish();
}

fn merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm4_merge");
    for n in [2usize, 8, 32, 128] {
        let a = clock_for(n, 1);
        let b = clock_for(n, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(max_clock(&a, &b)));
        });
    }
    group.finish();
}

fn matrix_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix_observe_tick");
    for n in [2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            let remote = clock_for(n, 5);
            bench.iter(|| {
                let mut m = MatrixClock::zero(0, n);
                for _ in 0..16 {
                    m.observe(1 % n, &remote);
                    std::hint::black_box(m.tick());
                }
                m
            });
        });
    }
    group.finish();
}

fn sparse_vs_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_vs_dense_relation");
    let n = 64;
    // Two active writers out of 64.
    let mut a = VectorClock::zero(n);
    a.set(3, 9);
    a.set(17, 2);
    let mut b = VectorClock::zero(n);
    b.set(3, 4);
    b.set(40, 7);
    let sa = SparseClock::from_dense(&a);
    let sb = SparseClock::from_dense(&b);
    group.bench_function("dense", |bench| {
        bench.iter(|| std::hint::black_box(a.relation(&b)));
    });
    group.bench_function("sparse", |bench| {
        bench.iter(|| std::hint::black_box(sa.relation(&sb)));
    });
    group.finish();
}

criterion_group!(benches, compare, merge, matrix_update, sparse_vs_dense);
criterion_main!(benches);

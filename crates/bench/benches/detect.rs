//! SEC4D wall-clock companion: per-access cost of each detector on the
//! random workload, plus the oracle's offline analysis cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use race_core::{DetectorKind, Granularity, Oracle};
use simulator::workloads::random_access::{generate, RandomSpec};
use simulator::{Engine, SimConfig};

fn detectors(c: &mut Criterion) {
    let w = generate(RandomSpec {
        n: 6,
        ops_per_rank: 32,
        hot_words: 8,
        p_write: 0.5,
        locked: false,
        seed: 7,
    });
    let mut group = c.benchmark_group("detector_full_run");
    for kind in DetectorKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |bench, &kind| {
                let cfg = SimConfig::debugging(w.n).with_detector(kind);
                bench.iter(|| Engine::new(cfg.clone(), w.programs.clone()).run());
            },
        );
    }
    group.finish();
}

fn detector_observe_only(c: &mut Criterion) {
    // Pure detector cost, no simulator: a stream of conflicting ops.
    use race_core::{DsmOp, OpKind};
    let mut group = c.benchmark_group("detector_observe_1k_ops");
    for kind in [
        DetectorKind::Dual,
        DetectorKind::Single,
        DetectorKind::Lockset,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |bench, &kind| {
                bench.iter(|| {
                    let mut det = kind.build(8, Granularity::WORD);
                    for i in 0..1000u64 {
                        let actor = (i % 8) as usize;
                        let word = dsm::GlobalAddr::public(0, ((i % 16) * 8) as usize).range(8);
                        let op = DsmOp {
                            op_id: i,
                            actor,
                            kind: if i % 3 == 0 {
                                OpKind::LocalWrite { range: word }
                            } else {
                                OpKind::LocalRead { range: word }
                            },
                        };
                        std::hint::black_box(det.observe(&op, &[]));
                    }
                    det.reports().len()
                });
            },
        );
    }
    group.finish();
}

fn oracle_analysis(c: &mut Criterion) {
    let w = generate(RandomSpec {
        n: 6,
        ops_per_rank: 32,
        hot_words: 8,
        p_write: 0.5,
        locked: false,
        seed: 7,
    });
    let r = Engine::new(SimConfig::debugging(w.n), w.programs).run();
    c.bench_function("oracle_offline_analysis", |bench| {
        bench.iter(|| {
            let oracle = Oracle::analyze(&r.trace);
            std::hint::black_box(oracle.score(&r.deduped))
        });
    });
}

criterion_group!(benches, detectors, detector_observe_only, oracle_analysis);
criterion_main!(benches);

//! SHMEM wall-clock benches: real-thread put/get throughput with and
//! without detection, and the cost of lock-protected updates — the price a
//! threaded PGAS pays for the paper's algorithm (§V-A's overhead argument
//! on the shared-memory substrate of §III-B).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use race_core::DetectorKind;
use shmem::{GlobalAddr, ShmemConfig};

fn puts_per_detector(c: &mut Criterion) {
    let mut group = c.benchmark_group("shmem_disjoint_puts");
    group.sample_size(20);
    for kind in [
        DetectorKind::Vanilla,
        DetectorKind::Single,
        DetectorKind::Dual,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |bench, &kind| {
                bench.iter(|| {
                    shmem::run(ShmemConfig::new(4).with_detector(kind), |pe| {
                        let me = pe.my_pe();
                        for i in 0..64usize {
                            pe.put_u64(GlobalAddr::public(me, (i % 32) * 8).range(8), i as u64);
                        }
                    })
                });
            },
        );
    }
    group.finish();
}

fn contended_counter(c: &mut Criterion) {
    let mut group = c.benchmark_group("shmem_locked_counter");
    group.sample_size(20);
    for pes in [2usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(pes), &pes, |bench, &pes| {
            let counter = GlobalAddr::public(0, 0).range(8);
            bench.iter(|| {
                shmem::run(ShmemConfig::new(pes), |pe| {
                    for _ in 0..16 {
                        let guard = pe.lock(counter);
                        let (v, _) = pe.get_u64(counter);
                        pe.put_u64(counter, v + 1);
                        drop(guard);
                    }
                })
            });
        });
    }
    group.finish();
}

fn onesided_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("shmem_reduction");
    group.sample_size(20);
    for pes in [4usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(pes), &pes, |bench, &pes| {
            bench.iter(|| {
                shmem::run(ShmemConfig::new(pes), |pe| {
                    let me = pe.my_pe();
                    pe.put_u64(GlobalAddr::public(me, 0).range(8), me as u64 + 1);
                    pe.barrier();
                    if me == 0 {
                        let parts: Vec<_> = (0..pe.n_pes())
                            .map(|r| GlobalAddr::public(r, 0).range(8))
                            .collect();
                        std::hint::black_box(pe.reduce_sum_u64(&parts));
                    }
                })
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    puts_per_detector,
    contended_counter,
    onesided_reduction
);
criterion_main!(benches);

//! SEC5A wall-clock companion: full-system simulation cost, vanilla vs
//! detection, as the process count grows, plus the multi-seed explorer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use race_core::DetectorKind;
use simulator::workloads::{master_worker, stencil};
use simulator::{explore, Engine, SimConfig};

fn master_worker_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec5a_master_worker");
    group.sample_size(20);
    for workers in [4usize, 9] {
        for kind in [DetectorKind::Vanilla, DetectorKind::Dual] {
            let w = master_worker::racy(workers, 2);
            group.bench_with_input(
                BenchmarkId::new(kind.label(), w.n),
                &kind,
                |bench, &kind| {
                    let cfg = SimConfig::debugging(w.n).with_detector(kind);
                    bench.iter(|| Engine::new(cfg.clone(), w.programs.clone()).run());
                },
            );
        }
    }
    group.finish();
}

fn stencil_iterations(c: &mut Criterion) {
    let mut group = c.benchmark_group("stencil_sync");
    group.sample_size(15);
    for iters in [1usize, 4] {
        let w = stencil::with_barrier(4, 8, iters);
        group.bench_with_input(BenchmarkId::from_parameter(iters), &iters, |bench, _| {
            let cfg = SimConfig::debugging(w.n);
            bench.iter(|| Engine::new(cfg.clone(), w.programs.clone()).run());
        });
    }
    group.finish();
}

fn explorer_parallel_seeds(c: &mut Criterion) {
    let mut group = c.benchmark_group("explorer");
    group.sample_size(10);
    let w = stencil::missing_barrier(4, 4, 2);
    let cfg = SimConfig::debugging(4);
    for seeds in [4usize, 16] {
        let seed_list: Vec<u64> = (1..=seeds as u64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(seeds), &seeds, |bench, _| {
            bench.iter(|| explore(&cfg, &w.programs, &seed_list));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    master_worker_scale,
    stencil_iterations,
    explorer_parallel_seeds
);
criterion_main!(benches);

//! The tentpole bench: epoch fast path + flat store + allocation-free
//! observe, versus the full-vector-clock reference implementation, on
//! detector-only op streams at WORD granularity.
//!
//! `detector_stream/{stencil,random_access}/{epoch,reference}` is the pair
//! the ≥2× acceptance criterion reads; `repro --bench` prints the same
//! comparison as JSON for BENCH_0001.json.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsm_bench::opstream::{self, StreamEvent};
use race_core::{Granularity, HbDetector, HbMode, ReferenceHbDetector};
use simulator::workloads::random_access::RandomSpec;

fn bench_pair(c: &mut Criterion, label: &str, n: usize, events: &[StreamEvent]) {
    let mut group = c.benchmark_group(format!("detector_stream/{label}"));
    group.bench_with_input(BenchmarkId::from_parameter("epoch"), &(), |b, _| {
        b.iter(|| {
            let mut det = HbDetector::new(n, Granularity::WORD, HbMode::Dual);
            opstream::drive(&mut det, events)
        });
    });
    group.bench_with_input(BenchmarkId::from_parameter("reference"), &(), |b, _| {
        b.iter(|| {
            let mut det = ReferenceHbDetector::new(n, Granularity::WORD, HbMode::Dual);
            opstream::drive(&mut det, events)
        });
    });
    group.finish();
}

fn stencil_stream(c: &mut Criterion) {
    let n = 16;
    let events = opstream::stencil(n, 16, 4);
    bench_pair(c, "stencil", n, &events);
}

fn random_stream(c: &mut Criterion) {
    let spec = RandomSpec {
        n: 8,
        ops_per_rank: 128,
        hot_words: 256,
        p_write: 0.25,
        locked: false,
        seed: 0xB0,
    };
    let events = opstream::random(spec);
    bench_pair(c, "random_access", spec.n, &events);
}

fn scaling_with_n(c: &mut Criterion) {
    // The epoch win grows with n (O(1) vs O(n) per compare/update).
    let mut group = c.benchmark_group("detector_stream/stencil_scaling");
    for n in [4usize, 16, 64] {
        let events = opstream::stencil(n, 8, 2);
        group.bench_with_input(BenchmarkId::new("epoch", n), &(), |b, _| {
            b.iter(|| {
                let mut det = HbDetector::new(n, Granularity::WORD, HbMode::Dual);
                opstream::drive(&mut det, &events)
            });
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &(), |b, _| {
            b.iter(|| {
                let mut det = ReferenceHbDetector::new(n, Granularity::WORD, HbMode::Dual);
                opstream::drive(&mut det, &events)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, stencil_stream, random_stream, scaling_with_n);
criterion_main!(benches);

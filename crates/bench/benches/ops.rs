//! FIG2/FIG3 wall-clock companion: cost of simulating the one-sided
//! operations (put, get, deferred put) across message sizes.
//!
//! The *virtual-time* results live in `repro fig2`/`repro fig3`; these
//! benches measure the simulator machinery itself, which is what a
//! downstream user of the library pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use race_core::DetectorKind;
use simulator::{Engine, Program, ProgramBuilder, SimConfig};

fn put_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_put");
    for size in [8usize, 256, 4096, 65536] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let dst = dsm::GlobalAddr::public(1, 0).range(size);
            b.iter(|| {
                let programs = vec![
                    ProgramBuilder::new(0)
                        .put_imm(vec![0xAB; size], dst)
                        .build(),
                    Program::new(),
                ];
                let mut cfg = SimConfig::lockstep(2, 1_000);
                cfg.public_len = size.max(4096);
                cfg.detector.kind = DetectorKind::Vanilla;
                Engine::new(cfg, programs).run()
            });
        });
    }
    group.finish();
}

fn get_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_get");
    for size in [8usize, 4096, 65536] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let src = dsm::GlobalAddr::public(0, 0).range(size);
            let dst = dsm::GlobalAddr::private(1, 0).range(size);
            b.iter(|| {
                let programs = vec![Program::new(), ProgramBuilder::new(1).get(src, dst).build()];
                let mut cfg = SimConfig::lockstep(2, 1_000);
                cfg.public_len = size.max(4096);
                cfg.private_len = size.max(4096);
                cfg.detector.kind = DetectorKind::Vanilla;
                Engine::new(cfg, programs).run()
            });
        });
    }
    group.finish();
}

fn fig3_deferral(c: &mut Criterion) {
    c.bench_function("fig3_deferred_put", |b| {
        let w = simulator::workloads::figures::fig3(1 << 16);
        let mut cfg = SimConfig::lockstep(3, 1_000);
        cfg.latency = simulator::LatencySpec::InfiniBand;
        cfg.public_len = 1 << 16;
        cfg.private_len = 1 << 16;
        cfg.detector.kind = DetectorKind::Vanilla;
        b.iter(|| Engine::new(cfg.clone(), w.programs.clone()).run());
    });
}

criterion_group!(benches, put_roundtrip, get_roundtrip, fig3_deferral);
criterion_main!(benches);

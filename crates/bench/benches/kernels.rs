//! Clock-kernel microbenches: the chunked branch-free inner loops of
//! `vclock::kernels` against naive scalar loops, at the widths the
//! detectors actually run (n = 4…128 processes).
//!
//! Two input shapes per width:
//! * `ordered` — `a ≤ b` everywhere (the epoch-guard common case): the
//!   scalar early-exit never fires, so the loops run full length and the
//!   chunked accumulation can vectorise.
//! * `concurrent` — a single divergence in each direction placed in the
//!   *last* chunk, the worst case for between-chunk early exits.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use vclock::kernels;

const WIDTHS: [usize; 4] = [4, 16, 64, 128];

fn scalar_leq(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

fn scalar_merge(a: &mut [u64], b: &[u64]) {
    for (x, y) in a.iter_mut().zip(b) {
        *x = (*x).max(*y);
    }
}

fn inputs(n: usize) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    let a: Vec<u64> = (0..n as u64).map(|i| i * 3).collect();
    let ordered: Vec<u64> = a.iter().map(|&x| x + 1).collect();
    let mut concurrent = ordered.clone();
    // One component in each direction, late in the vector.
    concurrent[n - 1] = 0;
    (a, ordered, concurrent)
}

fn bench_leq(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/leq");
    for n in WIDTHS {
        let (a, ordered, concurrent) = inputs(n);
        group.bench_with_input(BenchmarkId::new("chunked_ordered", n), &(), |b, _| {
            b.iter(|| kernels::leq(black_box(&a), black_box(&ordered)))
        });
        group.bench_with_input(BenchmarkId::new("scalar_ordered", n), &(), |b, _| {
            b.iter(|| scalar_leq(black_box(&a), black_box(&ordered)))
        });
        group.bench_with_input(BenchmarkId::new("chunked_concurrent", n), &(), |b, _| {
            b.iter(|| kernels::leq(black_box(&a), black_box(&concurrent)))
        });
    }
    group.finish();
}

fn bench_dominance(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/dominance");
    for n in WIDTHS {
        let (a, ordered, concurrent) = inputs(n);
        group.bench_with_input(BenchmarkId::new("ordered", n), &(), |b, _| {
            b.iter(|| kernels::dominance(black_box(&a), black_box(&ordered)))
        });
        group.bench_with_input(BenchmarkId::new("concurrent", n), &(), |b, _| {
            b.iter(|| kernels::dominance(black_box(&a), black_box(&concurrent)))
        });
        group.bench_with_input(BenchmarkId::new("scalar_two_pass", n), &(), |b, _| {
            b.iter(|| {
                (
                    !scalar_leq(black_box(&a), black_box(&ordered)),
                    !scalar_leq(black_box(&ordered), black_box(&a)),
                )
            })
        });
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/merge");
    for n in WIDTHS {
        let (a, ordered, _) = inputs(n);
        group.bench_with_input(BenchmarkId::new("chunked", n), &(), |b, _| {
            let mut dst = a.clone();
            b.iter(|| {
                dst.copy_from_slice(&a);
                kernels::merge(black_box(&mut dst), black_box(&ordered));
            })
        });
        group.bench_with_input(BenchmarkId::new("scalar", n), &(), |b, _| {
            let mut dst = a.clone();
            b.iter(|| {
                dst.copy_from_slice(&a);
                scalar_merge(black_box(&mut dst), black_box(&ordered));
            })
        });
        group.bench_with_input(BenchmarkId::new("fused_dominated", n), &(), |b, _| {
            let mut dst = a.clone();
            b.iter(|| {
                dst.copy_from_slice(&a);
                kernels::merge_dominated(black_box(&mut dst), black_box(&ordered))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_leq, bench_dominance, bench_merge);
criterion_main!(benches);

//! The sharded-pipeline bench: `race_core::ShardedDetector` at 1/2/4
//! worker shards versus the sequential epoch detector, on the same
//! detector-only op streams as the `epoch` bench.
//!
//! `detector_shards/{stencil,random_access}/{seq,shards-k}` is the pair the
//! BENCH_0002 acceptance criterion reads; `repro --bench-sharded` prints
//! the same comparison as JSON. Shard scaling needs real cores: on a host
//! with fewer than `k + 1` usable cores (workers plus the router) the
//! `shards-k` rows measure pipeline overhead, not parallelism — the
//! committed JSON records `host_cores` for exactly this reason.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsm_bench::opstream::{self, StreamEvent};
use race_core::{Granularity, HbDetector, HbMode, MemOp, ShardedDetector};
use simulator::workloads::random_access::RandomSpec;

fn bench_set(c: &mut Criterion, label: &str, n: usize, events: &[StreamEvent]) {
    let batch: Vec<MemOp> = opstream::memops(events);
    let mut group = c.benchmark_group(format!("detector_shards/{label}"));
    group.bench_with_input(BenchmarkId::from_parameter("seq"), &(), |b, _| {
        b.iter(|| {
            let mut det = HbDetector::new(n, Granularity::WORD, HbMode::Dual);
            opstream::drive(&mut det, events)
        });
    });
    for shards in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("shards-{shards}")),
            &(),
            |b, _| {
                b.iter(|| {
                    let mut det = ShardedDetector::new(n, Granularity::WORD, HbMode::Dual, shards);
                    det.observe_batch(&batch)
                });
            },
        );
    }
    group.finish();
}

fn stencil_stream(c: &mut Criterion) {
    let n = 16;
    let events = opstream::stencil(n, 16, 4);
    bench_set(c, "stencil", n, &events);
}

fn random_stream(c: &mut Criterion) {
    let spec = RandomSpec {
        n: 8,
        ops_per_rank: 128,
        hot_words: 256,
        p_write: 0.25,
        locked: false,
        seed: 0xB0,
    };
    let events = opstream::random(spec);
    bench_set(c, "random_access", spec.n, &events);
}

criterion_group!(benches, stencil_stream, random_stream);
criterion_main!(benches);

//! Detector-only operation streams for perf measurement.
//!
//! The full-system benches (`ops`, `detect`, `overhead`) run the whole
//! discrete-event engine, where network and lock plumbing dominates. To
//! measure the *detector hot path* itself — the target of the epoch
//! fast-path work — these generators reproduce the access patterns of the
//! `stencil` and `random_access` workloads as bare [`DsmOp`] streams plus
//! synchronisation events, and [`drive`] feeds them straight into a
//! [`Detector`].

use race_core::{Detector, DsmOp, LockId, MemOp, OpKind, ShardedDetector};
use simulator::workloads::random_access::RandomSpec;

use dsm::GlobalAddr;

/// One event of a detector-only stream.
#[derive(Debug, Clone)]
pub enum StreamEvent {
    /// A DSM operation observed by the detector.
    Op(DsmOp),
    /// A barrier among all ranks.
    Barrier,
    /// `rank` acquired the NIC area lock `lock` (scenario streams with
    /// lock hand-off synchronisation, e.g. [`producer_consumer`]).
    Acquire {
        /// Acquiring process.
        rank: usize,
        /// The program lock.
        lock: LockId,
    },
    /// `rank` released the NIC area lock `lock`.
    Release {
        /// Releasing process.
        rank: usize,
        /// The program lock.
        lock: LockId,
    },
}

/// Number of *clocked* memory accesses a stream performs: the public-side
/// accesses of each op (private memory never reaches the clocks, §IV-A).
/// Synchronisation events — barriers and lock hand-offs — touch clocks but
/// never memory, so they count zero; the match is exhaustive on purpose,
/// so a new event variant cannot silently skew every `ns/access` and
/// `accesses_per_sec` column in the committed BENCH_*.json files.
pub fn access_count(events: &[StreamEvent]) -> u64 {
    use dsm::addr::Segment;
    events
        .iter()
        .map(|e| match e {
            StreamEvent::Op(op) => op
                .accesses()
                .into_iter()
                .filter(|(_, r, _)| r.addr.segment == Segment::Public)
                .count() as u64,
            StreamEvent::Barrier => 0,
            StreamEvent::Acquire { .. } | StreamEvent::Release { .. } => 0,
        })
        .sum()
}

/// The stencil pattern of `simulator::workloads::stencil`: each rank owns
/// `words` words; per iteration it writes its interior, reads its
/// neighbours' boundary words, and everyone barriers. Fully synchronised —
/// the detector's totally-ordered fast path.
pub fn stencil(n: usize, words: usize, iters: usize) -> Vec<StreamEvent> {
    assert!(n >= 2 && words >= 2);
    let mut events = Vec::new();
    let mut op_id = 0u64;
    let mut op = |actor: usize, kind: OpKind, events: &mut Vec<StreamEvent>| {
        events.push(StreamEvent::Op(DsmOp { op_id, actor, kind }));
        op_id += 1;
    };
    for _ in 0..iters {
        for rank in 0..n {
            for w in 0..words {
                op(
                    rank,
                    OpKind::LocalWrite {
                        range: GlobalAddr::public(rank, w * 8).range(8),
                    },
                    &mut events,
                );
            }
        }
        events.push(StreamEvent::Barrier);
        for rank in 0..n {
            let left = (rank + n - 1) % n;
            let right = (rank + 1) % n;
            for (nbr, w) in [(left, words - 1), (right, 0)] {
                op(
                    rank,
                    OpKind::Get {
                        src: GlobalAddr::public(nbr, w * 8).range(8),
                        dst: GlobalAddr::private(rank, 0).range(8),
                    },
                    &mut events,
                );
            }
        }
        events.push(StreamEvent::Barrier);
    }
    events
}

/// The `random_access` pattern: every rank issues `spec.ops_per_rank`
/// put/get operations against `spec.hot_words` shared words, unlocked —
/// genuinely concurrent traffic exercising demotion and the antichain
/// slow path.
pub fn random(spec: RandomSpec) -> Vec<StreamEvent> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut events = Vec::new();
    let word = |i: usize| {
        let rank = i % spec.n;
        let slot = i / spec.n;
        GlobalAddr::public(rank, slot * 8).range(8)
    };
    // Interleave rank streams round-robin, as the engine's lockstep
    // scheduling roughly does.
    for op_index in 0..spec.ops_per_rank {
        for rank in 0..spec.n {
            let target = word(rng.gen_range(0..spec.hot_words));
            let op_id = (op_index * spec.n + rank) as u64;
            let kind = if rng.gen_bool(spec.p_write) {
                OpKind::Put {
                    src: GlobalAddr::private(rank, 0).range(8),
                    dst: target,
                }
            } else {
                OpKind::Get {
                    src: target,
                    dst: GlobalAddr::private(rank, 0).range(8),
                }
            };
            events.push(StreamEvent::Op(DsmOp {
                op_id,
                actor: rank,
                kind,
            }));
        }
    }
    events
}

/// The `hotspot` pattern: every rank hammers the same few words of rank
/// 0's public segment, completely unsynchronised, ~25% writes. Maximum
/// contention for the detector: the hot areas demote to dense joins, the
/// antichains grow to the concurrency width, every access runs the O(n)
/// scan, and the report stream is dense — the worst case for the sharded
/// pipeline's routing (all areas hash to a handful of shards) and report
/// merge. Deterministic, no RNG.
pub fn hotspot(n: usize, ops_per_rank: usize, hot_words: usize) -> Vec<StreamEvent> {
    assert!(n >= 2 && hot_words >= 1);
    let mut events = Vec::new();
    for op_index in 0..ops_per_rank {
        for rank in 0..n {
            let word = (op_index * 7 + rank) % hot_words;
            let target = GlobalAddr::public(0, word * 8).range(8);
            let op_id = (op_index * n + rank) as u64;
            let kind = if (op_index + rank) % 4 == 0 {
                OpKind::Put {
                    src: GlobalAddr::private(rank, 0).range(8),
                    dst: target,
                }
            } else {
                OpKind::Get {
                    src: target,
                    dst: GlobalAddr::private(rank, 0).range(8),
                }
            };
            events.push(StreamEvent::Op(DsmOp {
                op_id,
                actor: rank,
                kind,
            }));
        }
    }
    events
}

/// The producer/consumer hand-off pattern of
/// `simulator::workloads::producer_consumer`, as a detector-only stream:
/// `pairs` disjoint rank pairs exchange `items` values through one shared
/// word each, every access bracketed by the word's lock hand-off events.
/// Lock-disciplined — zero reports from any sound detector — while still
/// exercising the lock-clock path the engine benches never isolate.
pub fn producer_consumer(pairs: usize, items: usize) -> Vec<StreamEvent> {
    assert!(pairs >= 1 && items >= 1);
    let mut events = Vec::new();
    let mut op_id = 0u64;
    for item in 0..items {
        for p in 0..pairs {
            let (producer, consumer) = (2 * p, 2 * p + 1);
            let buf = GlobalAddr::public(producer, 0).range(8);
            let lock: LockId = (producer, 0);
            // Producer writes under the lock…
            events.push(StreamEvent::Acquire {
                rank: producer,
                lock,
            });
            events.push(StreamEvent::Op(DsmOp {
                op_id,
                actor: producer,
                kind: OpKind::LocalWrite { range: buf },
            }));
            op_id += 1;
            events.push(StreamEvent::Release {
                rank: producer,
                lock,
            });
            // …and the consumer gets it under the same lock.
            events.push(StreamEvent::Acquire {
                rank: consumer,
                lock,
            });
            events.push(StreamEvent::Op(DsmOp {
                op_id,
                actor: consumer,
                kind: OpKind::Get {
                    src: buf,
                    dst: GlobalAddr::private(consumer, item * 8).range(8),
                },
            }));
            op_id += 1;
            events.push(StreamEvent::Release {
                rank: consumer,
                lock,
            });
        }
    }
    events
}

/// Feed a stream through a detector; returns the total number of reports.
pub fn drive(detector: &mut dyn Detector, events: &[StreamEvent]) -> usize {
    let mut reports = 0;
    for e in events {
        match e {
            StreamEvent::Op(op) => reports += detector.observe(op, &[]),
            StreamEvent::Barrier => detector.on_barrier(),
            StreamEvent::Acquire { rank, lock } => detector.on_acquire(*rank, *lock),
            StreamEvent::Release { rank, lock } => detector.on_release(*rank, *lock),
        }
    }
    reports
}

/// Feed a stream through a detector's sink path
/// ([`Detector::observe_sink`]) with a caller-owned sink — the bare
/// streaming hot loop, no session bookkeeping; returns the total number of
/// reports, including any a final flush drains.
pub fn drive_sink(
    detector: &mut dyn Detector,
    sink: &mut dyn race_core::ReportSink,
    events: &[StreamEvent],
) -> usize {
    let mut reports = 0;
    for e in events {
        match e {
            StreamEvent::Op(op) => reports += detector.observe_sink(op, &[], sink),
            StreamEvent::Barrier => detector.on_barrier(),
            StreamEvent::Acquire { rank, lock } => detector.on_acquire(*rank, *lock),
            StreamEvent::Release { rank, lock } => detector.on_release(*rank, *lock),
        }
    }
    reports + detector.flush_sink(sink)
}

/// Feed a stream through a `race_core::api` [`race_core::Session`]
/// (reports go to the session's sink); returns the total number of
/// reports, including any a final flush drains.
pub fn drive_session(session: &mut race_core::Session, events: &[StreamEvent]) -> usize {
    let mut reports = 0;
    for e in events {
        match e {
            StreamEvent::Op(op) => reports += session.observe(op, &[]),
            StreamEvent::Barrier => session.on_barrier(),
            StreamEvent::Acquire { rank, lock } => session.on_acquire(*rank, *lock),
            StreamEvent::Release { rank, lock } => session.on_release(*rank, *lock),
        }
    }
    reports + session.flush()
}

/// The stream as [`MemOp`] events for the batched sharded pipeline.
pub fn memops(events: &[StreamEvent]) -> Vec<MemOp> {
    events
        .iter()
        .map(|e| match e {
            StreamEvent::Op(op) => MemOp::Op(*op),
            StreamEvent::Barrier => MemOp::Barrier,
            StreamEvent::Acquire { rank, lock } => MemOp::Acquire {
                rank: *rank,
                lock: *lock,
            },
            StreamEvent::Release { rank, lock } => MemOp::Release {
                rank: *rank,
                lock: *lock,
            },
        })
        .collect()
}

/// Feed a pre-converted stream through the sharded pipeline in batches of
/// `batch` events; returns the total number of reports.
pub fn drive_batched(detector: &mut ShardedDetector, events: &[MemOp], batch: usize) -> usize {
    let mut reports = 0;
    for chunk in events.chunks(batch.max(1)) {
        reports += detector.observe_batch(chunk);
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use race_core::{Granularity, HbDetector, HbMode, ReferenceHbDetector};

    #[test]
    fn stencil_stream_is_race_free_and_stays_on_fast_path() {
        let events = stencil(8, 8, 3);
        let mut d = HbDetector::new(8, Granularity::WORD, HbMode::Dual);
        assert_eq!(
            drive(&mut d, &events),
            0,
            "synchronised stencil never races"
        );
        assert_eq!(
            d.store().epoch_areas(),
            d.store().touched_areas(),
            "every area stays in epoch representation"
        );
    }

    #[test]
    fn random_stream_matches_reference_reports() {
        let spec = RandomSpec {
            n: 6,
            ops_per_rank: 40,
            hot_words: 12,
            p_write: 0.5,
            locked: false,
            seed: 7,
        };
        let events = random(spec);
        let mut fast = HbDetector::new(spec.n, Granularity::WORD, HbMode::Dual);
        let mut slow = ReferenceHbDetector::new(spec.n, Granularity::WORD, HbMode::Dual);
        let a = drive(&mut fast, &events);
        let b = drive(&mut slow, &events);
        assert_eq!(a, b);
        assert!(a > 0, "unlocked random traffic must race");
    }

    #[test]
    fn batched_sharded_drive_matches_sequential() {
        let spec = RandomSpec {
            n: 6,
            ops_per_rank: 40,
            hot_words: 12,
            p_write: 0.5,
            locked: false,
            seed: 7,
        };
        let events = random(spec);
        let mut seq = HbDetector::new(spec.n, Granularity::WORD, HbMode::Dual);
        let a = drive(&mut seq, &events);
        let mut par = race_core::ShardedDetector::new(spec.n, Granularity::WORD, HbMode::Dual, 4);
        let b = drive_batched(&mut par, &memops(&events), 64);
        assert_eq!(a, b);
        assert_eq!(seq.reports(), par.reports());
    }

    #[test]
    fn hotspot_is_racy_and_matches_reference() {
        let events = hotspot(4, 32, 4);
        let mut fast = HbDetector::new(4, Granularity::WORD, HbMode::Dual);
        let mut slow = ReferenceHbDetector::new(4, Granularity::WORD, HbMode::Dual);
        let a = drive(&mut fast, &events);
        let b = drive(&mut slow, &events);
        assert_eq!(a, b);
        assert!(a > 0, "unsynchronised hotspot traffic must race");
        let mut par = race_core::ShardedDetector::new(4, Granularity::WORD, HbMode::Dual, 3);
        let c = drive_batched(&mut par, &memops(&events), 32);
        assert_eq!(a, c);
        assert_eq!(fast.reports(), par.reports());
    }

    #[test]
    fn access_counting() {
        let events = stencil(2, 2, 1);
        // 2 ranks × 2 local writes + 2 ranks × 2 gets (public read side
        // only — the private destination is not clocked).
        assert_eq!(access_count(&events), 4 + 4);
    }

    #[test]
    fn lock_events_count_zero_accesses() {
        // Sync events must never skew the ns/access denominators of
        // committed bench rows: the producer/consumer stream is 2 clocked
        // accesses per item per pair (the write and the get's public read),
        // no matter how many lock events bracket them.
        let events = producer_consumer(2, 3);
        assert_eq!(access_count(&events), 2 * 3 * 2);
        let locks = events
            .iter()
            .filter(|e| matches!(e, StreamEvent::Acquire { .. } | StreamEvent::Release { .. }))
            .count();
        assert_eq!(locks, 2 * 3 * 4, "an acquire+release bracket per access");
    }

    #[test]
    fn lock_disciplined_stream_is_race_free_on_every_drive_path() {
        let events = producer_consumer(2, 4);
        let mut d = HbDetector::new(4, Granularity::WORD, HbMode::Dual);
        assert_eq!(drive(&mut d, &events), 0, "hand-off orders every pair");
        let mut d = HbDetector::new(4, Granularity::WORD, HbMode::Dual);
        let mut sink = race_core::VecSink::new();
        assert_eq!(drive_sink(&mut d, &mut sink, &events), 0);
        let mut session =
            race_core::DetectorConfig::new(race_core::DetectorKind::Dual, 4).session();
        assert_eq!(drive_session(&mut session, &events), 0);
        let mut par = ShardedDetector::new(4, Granularity::WORD, HbMode::Dual, 3);
        assert_eq!(drive_batched(&mut par, &memops(&events), 8), 0);
    }

    #[test]
    fn stripping_the_locks_races_and_all_paths_agree() {
        // The same traffic minus the hand-off events must race — proving
        // the lock events (not luck) made the stream clean — and the
        // sharded pipeline must agree with the inline detector on it.
        let events: Vec<StreamEvent> = producer_consumer(2, 4)
            .into_iter()
            .filter(|e| matches!(e, StreamEvent::Op(_)))
            .collect();
        let mut d = HbDetector::new(4, Granularity::WORD, HbMode::Dual);
        let inline_reports = drive(&mut d, &events);
        assert!(inline_reports > 0, "unlocked hand-off must race");
        let mut par = ShardedDetector::new(4, Granularity::WORD, HbMode::Dual, 2);
        assert_eq!(drive_batched(&mut par, &memops(&events), 4), inline_reports);
    }
}

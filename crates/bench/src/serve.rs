//! Stress harness for the detection service: hundreds of concurrent
//! clients mixing clean streams with hangups, garbage bytes, stallers and
//! one injected worker panic. The server must survive all of it, every
//! clean session's summary must be byte-identical to an in-process twin,
//! and every misbehaving session must land in the ledger with the right
//! degraded outcome.
//!
//! Driven by `repro --serve-smoke` (CI) and the tier-1
//! `serve_stress` test.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use dsm::GlobalAddr;
use dsm_service::frame::WireEvent;
use dsm_service::server::{outcome_histogram, ServeConfig, Server, SessionOutcome};
use dsm_service::ServiceClient;
use race_core::api::SummarySink;
use race_core::{DetectorConfig, DetectorKind, DsmOp, OpKind};

use crate::opstream::{self, StreamEvent};

/// Op id reserved for the panic-injection client; no generated workload
/// reaches it.
const PANIC_OP_ID: u64 = u64::MAX / 2;

/// Idle timeout for the stress server — short enough that staller clients
/// (who sleep `2 * STRESS_IDLE`) are reaped within the harness's bounded
/// runtime.
const STRESS_IDLE: Duration = Duration::from_millis(300);

/// What one simulated client does to the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientKind {
    /// Streams a workload, finishes, checks summary parity.
    Clean,
    /// Streams half a workload, then vanishes without `Finish`.
    Hangup,
    /// Sends hostile bytes (garbage payloads or a hostile length prefix).
    Garbage,
    /// Streams a little, then goes silent past the idle timeout.
    Staller,
}

fn kind_for(index: usize) -> ClientKind {
    match index % 4 {
        0 => ClientKind::Clean,
        1 => ClientKind::Hangup,
        2 => ClientKind::Garbage,
        _ => ClientKind::Staller,
    }
}

/// The stream events of client `index` — deterministic per index/seed, so
/// the in-process twin replays exactly the same workload.
fn client_events(index: usize, seed: u64) -> Vec<StreamEvent> {
    let variant = (index as u64 + seed) % 3;
    match variant {
        0 => opstream::hotspot(4, 30, 4),
        1 => opstream::stencil(4, 16, 2),
        _ => opstream::producer_consumer(2, 12),
    }
}

/// Convert a detector stream into wire events (the bench→service bridge).
pub fn wire_events(events: &[StreamEvent]) -> Vec<WireEvent> {
    events
        .iter()
        .map(|e| match e {
            StreamEvent::Op(op) => WireEvent::Op(*op),
            StreamEvent::Barrier => WireEvent::Barrier,
            StreamEvent::Acquire { rank, lock } => WireEvent::Acquire {
                rank: *rank,
                lock: *lock,
            },
            StreamEvent::Release { rank, lock } => WireEvent::Release {
                rank: *rank,
                lock: *lock,
            },
        })
        .collect()
}

/// The in-process twin of a served session: the same events through a plain
/// bounded `Session`, summarised with the same canonical JSON.
pub fn in_process_summary_json(config: &DetectorConfig, events: &[WireEvent]) -> String {
    let mut session = config.session_with(Box::new(SummarySink::default()));
    for ev in events {
        match ev {
            WireEvent::Op(op) => {
                session.observe(op, &[]);
            }
            WireEvent::Barrier => session.on_barrier(),
            WireEvent::Acquire { rank, lock } => session.on_acquire(*rank, *lock),
            WireEvent::Release { rank, lock } => session.on_release(*rank, *lock),
        }
    }
    session.finish().0.to_json()
}

/// What one client thread reports back to the harness.
#[derive(Debug)]
enum ClientResult {
    /// Clean client: parity verdict (remote JSON vs twin JSON).
    Parity { matched: bool, detail: String },
    /// The misbehaviour was delivered as intended.
    Misbehaved(ClientKind),
    /// The client could not even do its job (e.g. connect failed) — a
    /// harness-level failure, not a server verdict.
    Broken(String),
}

/// Outcome of one stress run.
#[derive(Debug)]
pub struct ServeSmokeReport {
    /// Human-readable log lines (printed by `repro --serve-smoke`).
    pub lines: Vec<String>,
    /// True when every invariant held.
    pub ok: bool,
    /// Total client connections simulated (including the panic client and
    /// the final liveness probe).
    pub clients: usize,
    /// Clean sessions whose summary matched the in-process twin.
    pub parity_ok: usize,
    /// Clean sessions whose summary differed (must be 0).
    pub parity_failed: usize,
}

/// Run the stress mix against a fresh server: `clients` concurrent
/// connections (at least 8; rounded up to a multiple of 4 so every
/// misbehaviour kind appears), plus one panic-injection client and one
/// post-chaos liveness probe.
pub fn run_serve_smoke(clients: usize, seed: u64) -> ServeSmokeReport {
    let clients = clients.max(8).div_ceil(4) * 4;
    let mut lines = Vec::new();
    let mut ok = true;
    let config = DetectorConfig::new(DetectorKind::Dual, 4);

    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            idle_timeout: STRESS_IDLE,
            queue_capacity: 64,
            panic_on_op_id: Some(PANIC_OP_ID),
            ..ServeConfig::default()
        },
    )
    .expect("bind stress server");
    let addr = server.local_addr();

    // --- The chaos fleet. --------------------------------------------------
    let mut handles = Vec::new();
    for index in 0..clients {
        let config = config.clone();
        handles.push(std::thread::spawn(move || {
            run_client(addr, &config, index, seed)
        }));
    }
    // One panic-injection client rides along.
    {
        let config = config.clone();
        handles.push(std::thread::spawn(move || run_panic_client(addr, &config)));
    }

    let mut parity_ok = 0usize;
    let mut parity_failed = 0usize;
    let mut misbehaved = [0usize; 4];
    for handle in handles {
        match handle.join() {
            Ok(ClientResult::Parity { matched: true, .. }) => parity_ok += 1,
            Ok(ClientResult::Parity {
                matched: false,
                detail,
            }) => {
                parity_failed += 1;
                ok = false;
                lines.push(format!("serve-smoke: PARITY MISMATCH: {detail}"));
            }
            Ok(ClientResult::Misbehaved(kind)) => {
                misbehaved[match kind {
                    ClientKind::Clean => 0,
                    ClientKind::Hangup => 1,
                    ClientKind::Garbage => 2,
                    ClientKind::Staller => 3,
                }] += 1;
            }
            Ok(ClientResult::Broken(what)) => {
                ok = false;
                lines.push(format!("serve-smoke: client broke: {what}"));
            }
            Err(_) => {
                ok = false;
                lines.push("serve-smoke: client thread panicked".into());
            }
        }
    }

    // --- Post-chaos liveness probe: the server must still serve cleanly. --
    let probe_events = wire_events(&client_events(0, seed));
    match serve_one(addr, &config, &probe_events) {
        Ok(json) => {
            let twin = in_process_summary_json(&config, &probe_events);
            if json == twin {
                parity_ok += 1;
                lines.push("serve-smoke: post-chaos liveness probe passed".into());
            } else {
                ok = false;
                parity_failed += 1;
                lines.push("serve-smoke: post-chaos probe summary mismatched".into());
            }
        }
        Err(e) => {
            ok = false;
            lines.push(format!("serve-smoke: server unreachable after chaos: {e}"));
        }
    }

    // --- Ledger invariants. ------------------------------------------------
    let report = server.shutdown();
    let stats = report.stats;
    let quarter = clients / 4;
    lines.push(format!(
        "serve-smoke: {} connections, outcomes {:?}, {} frames rejected, parity {}/{}",
        stats.accepted,
        outcome_histogram(&report.sessions),
        stats.frames_rejected,
        parity_ok,
        parity_ok + parity_failed,
    ));

    let mut check = |cond: bool, what: &str| {
        if !cond {
            ok = false;
            lines.push(format!("serve-smoke: INVARIANT FAILED: {what}"));
        }
    };
    // The misbehaving clients must all have delivered their chaos (indices
    // 1=hangup, 2=garbage, 3=staller; the panic client logs under 0).
    check(
        misbehaved[1] == quarter && misbehaved[2] == quarter && misbehaved[3] == quarter,
        "every misbehaving client must have delivered its fault",
    );
    // Every connection is accounted for: the fleet + panic client + probe
    // (+1 shutdown wake-up connection that is dropped unrecorded).
    check(
        stats.accepted >= (clients + 2) as u64,
        "server must have accepted every connection",
    );
    check(
        stats.finished == (quarter + 1) as u64,
        "every clean client (and the probe) must finish",
    );
    check(
        stats.hangups == quarter as u64,
        "every hangup client must be recorded as a hangup",
    );
    check(
        stats.poisoned == quarter as u64,
        "every garbage client must be recorded as poisoned",
    );
    check(
        stats.reaped == quarter as u64,
        "every staller must be reaped by the idle timeout",
    );
    check(
        stats.panics_supervised == 1,
        "the injected panic must be supervised exactly once",
    );
    check(parity_failed == 0, "clean summaries must be byte-identical");
    check(
        report
            .sessions
            .iter()
            .filter(|r| {
                !matches!(
                    r.outcome,
                    SessionOutcome::Finished | SessionOutcome::Drained
                )
            })
            .all(|r| r.degraded),
        "every non-clean outcome must be marked degraded",
    );
    check(
        report
            .sessions
            .iter()
            .filter(|r| r.outcome == SessionOutcome::Finished)
            .all(|r| !r.degraded),
        "no clean session may be marked degraded",
    );

    ServeSmokeReport {
        lines,
        ok,
        clients: clients + 2,
        parity_ok,
        parity_failed,
    }
}

/// Drive one clean session and return the remote summary's raw JSON.
fn serve_one(
    addr: std::net::SocketAddr,
    config: &DetectorConfig,
    events: &[WireEvent],
) -> Result<String, String> {
    let mut client = ServiceClient::connect(addr, config).map_err(|e| format!("connect: {e}"))?;
    for ev in events {
        client.send(ev).map_err(|e| format!("send: {e}"))?;
    }
    let remote = client.finish().map_err(|e| format!("finish: {e}"))?;
    Ok(remote.raw_json)
}

fn run_client(
    addr: std::net::SocketAddr,
    config: &DetectorConfig,
    index: usize,
    seed: u64,
) -> ClientResult {
    let kind = kind_for(index);
    let events = wire_events(&client_events(index, seed));
    match kind {
        ClientKind::Clean => match serve_one(addr, config, &events) {
            Ok(json) => {
                let twin = in_process_summary_json(config, &events);
                ClientResult::Parity {
                    matched: json == twin,
                    detail: format!("client {index}: remote {json} != twin {twin}"),
                }
            }
            Err(e) => ClientResult::Broken(format!("clean client {index}: {e}")),
        },
        ClientKind::Hangup => {
            let mut client = match ServiceClient::connect(addr, config) {
                Ok(c) => c,
                Err(e) => return ClientResult::Broken(format!("hangup client {index}: {e}")),
            };
            for ev in events.iter().take(events.len() / 2) {
                if client.send(ev).is_err() {
                    break;
                }
            }
            drop(client); // vanish mid-stream
            ClientResult::Misbehaved(kind)
        }
        ClientKind::Garbage => {
            let mut stream = match TcpStream::connect(addr) {
                Ok(s) => s,
                Err(e) => return ClientResult::Broken(format!("garbage client {index}: {e}")),
            };
            // Alternate hostile shapes: junk payload behind a valid prefix,
            // or a hostile oversized length prefix.
            let attack: &[u8] = if index.is_multiple_of(2) {
                &[
                    12, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef, 0xff, 0xff, 0xff,
                    0xff,
                ]
            } else {
                &[0xff, 0xff, 0xff, 0x7f, 0x00]
            };
            let _ = stream.write_all(attack);
            let _ = stream.flush();
            ClientResult::Misbehaved(kind)
        }
        ClientKind::Staller => {
            let mut client = match ServiceClient::connect(addr, config) {
                Ok(c) => c,
                Err(e) => return ClientResult::Broken(format!("staller {index}: {e}")),
            };
            for ev in events.iter().take(4) {
                if client.send(ev).is_err() {
                    break;
                }
            }
            // Silence past the idle timeout: the server must reap us.
            std::thread::sleep(STRESS_IDLE * 2);
            drop(client);
            ClientResult::Misbehaved(kind)
        }
    }
}

/// A client whose stream trips the server's injected-panic hook, proving
/// per-session supervision under concurrent load.
fn run_panic_client(addr: std::net::SocketAddr, config: &DetectorConfig) -> ClientResult {
    let mut client = match ServiceClient::connect(addr, config) {
        Ok(c) => c,
        Err(e) => return ClientResult::Broken(format!("panic client: {e}")),
    };
    let range = GlobalAddr::public(0, 0).range(8);
    let op = DsmOp {
        op_id: PANIC_OP_ID,
        actor: 0,
        kind: OpKind::LocalWrite { range },
    };
    let _ = client.send(&WireEvent::Op(op));
    // The worker is dead; finishing may fail at any point — both are fine,
    // the ledger (panics_supervised == 1) is the assertion that matters.
    let _ = client.finish();
    ClientResult::Misbehaved(ClientKind::Clean)
}

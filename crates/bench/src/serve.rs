//! Stress harness for the detection service: hundreds of concurrent
//! clients mixing clean streams with hangups, garbage bytes, stallers, one
//! injected worker panic (recovered in place from its checkpoint) and two
//! reconnect cells — a clean mid-stream hangup and a mid-frame TCP cut,
//! both resumed via the session token. The server must survive all of it,
//! every clean, recovered or resumed session's summary must be
//! byte-identical to an in-process twin, and every misbehaving session
//! must land in the ledger with the right degraded outcome.
//!
//! Driven by `repro --serve-smoke` (CI) and the tier-1
//! `serve_stress` test.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use dsm::GlobalAddr;
use dsm_service::frame::{read_frame, write_frame, ClientFrame, ServerFrame, WireEvent};
use dsm_service::server::{outcome_histogram, ServeConfig, Server, SessionOutcome};
use dsm_service::ServiceClient;
use race_core::api::SummarySink;
use race_core::{DetectorConfig, DetectorKind, DsmOp, OpKind, RaceSummary, RetryPolicy};

use crate::opstream::{self, StreamEvent};

/// Op id reserved for the panic-injection client; no generated workload
/// reaches it.
const PANIC_OP_ID: u64 = u64::MAX / 2;

/// Idle timeout for the stress server — short enough that staller clients
/// (who sleep `2 * STRESS_IDLE`) are reaped within the harness's bounded
/// runtime.
const STRESS_IDLE: Duration = Duration::from_millis(300);

/// What one simulated client does to the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientKind {
    /// Streams a workload, finishes, checks summary parity.
    Clean,
    /// Streams half a workload, then vanishes without `Finish`.
    Hangup,
    /// Sends hostile bytes (garbage payloads or a hostile length prefix).
    Garbage,
    /// Streams a little, then goes silent past the idle timeout.
    Staller,
}

fn kind_for(index: usize) -> ClientKind {
    match index % 4 {
        0 => ClientKind::Clean,
        1 => ClientKind::Hangup,
        2 => ClientKind::Garbage,
        _ => ClientKind::Staller,
    }
}

/// The stream events of client `index` — deterministic per index/seed, so
/// the in-process twin replays exactly the same workload.
fn client_events(index: usize, seed: u64) -> Vec<StreamEvent> {
    let variant = (index as u64 + seed) % 3;
    match variant {
        0 => opstream::hotspot(4, 30, 4),
        1 => opstream::stencil(4, 16, 2),
        _ => opstream::producer_consumer(2, 12),
    }
}

/// Convert a detector stream into wire events (the bench→service bridge).
pub fn wire_events(events: &[StreamEvent]) -> Vec<WireEvent> {
    events
        .iter()
        .map(|e| match e {
            StreamEvent::Op(op) => WireEvent::Op(*op),
            StreamEvent::Barrier => WireEvent::Barrier,
            StreamEvent::Acquire { rank, lock } => WireEvent::Acquire {
                rank: *rank,
                lock: *lock,
            },
            StreamEvent::Release { rank, lock } => WireEvent::Release {
                rank: *rank,
                lock: *lock,
            },
        })
        .collect()
}

/// The in-process twin of a served session: the same events through a plain
/// bounded `Session`, summarised with the same canonical JSON.
pub fn in_process_summary_json(config: &DetectorConfig, events: &[WireEvent]) -> String {
    let mut session = config.session_with(Box::new(SummarySink::default()));
    for ev in events {
        match ev {
            WireEvent::Op(op) => {
                session.observe(op, &[]);
            }
            WireEvent::Barrier => session.on_barrier(),
            WireEvent::Acquire { rank, lock } => session.on_acquire(*rank, *lock),
            WireEvent::Release { rank, lock } => session.on_release(*rank, *lock),
        }
    }
    session.finish().0.to_json()
}

/// What one client thread reports back to the harness.
#[derive(Debug)]
enum ClientResult {
    /// Clean client: parity verdict (remote JSON vs twin JSON).
    Parity { matched: bool, detail: String },
    /// The misbehaviour was delivered as intended.
    Misbehaved(ClientKind),
    /// The client could not even do its job (e.g. connect failed) — a
    /// harness-level failure, not a server verdict.
    Broken(String),
}

/// Outcome of one stress run.
#[derive(Debug)]
pub struct ServeSmokeReport {
    /// Human-readable log lines (printed by `repro --serve-smoke`).
    pub lines: Vec<String>,
    /// True when every invariant held.
    pub ok: bool,
    /// Total client connections simulated (including the panic client and
    /// the final liveness probe).
    pub clients: usize,
    /// Clean sessions whose summary matched the in-process twin.
    pub parity_ok: usize,
    /// Clean sessions whose summary differed (must be 0).
    pub parity_failed: usize,
}

/// Run the stress mix against a fresh server: `clients` concurrent
/// connections (at least 8; rounded up to a multiple of 4 so every
/// misbehaviour kind appears), plus one panic-injection client and one
/// post-chaos liveness probe.
pub fn run_serve_smoke(clients: usize, seed: u64) -> ServeSmokeReport {
    let clients = clients.max(8).div_ceil(4) * 4;
    let mut lines = Vec::new();
    let mut ok = true;
    let config = DetectorConfig::new(DetectorKind::Dual, 4);

    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            idle_timeout: STRESS_IDLE,
            queue_capacity: 64,
            panic_on_op_id: Some(PANIC_OP_ID),
            ..ServeConfig::default()
        },
    )
    .expect("bind stress server");
    let addr = server.local_addr();

    // --- The chaos fleet. --------------------------------------------------
    let mut handles = Vec::new();
    for index in 0..clients {
        let config = config.clone();
        handles.push(std::thread::spawn(move || {
            run_client(addr, &config, index, seed)
        }));
    }
    // One panic-injection client rides along.
    {
        let config = config.clone();
        handles.push(std::thread::spawn(move || {
            run_panic_client(addr, &config, seed)
        }));
    }
    // Two reconnect cells: a clean hangup at a frame boundary, and a TCP
    // cut in the middle of a frame — both must resume byte-identical.
    {
        let config = config.clone();
        handles.push(std::thread::spawn(move || {
            run_boundary_resume_client(addr, &config, seed)
        }));
    }
    {
        let config = config.clone();
        handles.push(std::thread::spawn(move || {
            run_midframe_resume_client(addr, &config, seed)
        }));
    }

    let mut parity_ok = 0usize;
    let mut parity_failed = 0usize;
    let mut misbehaved = [0usize; 4];
    for handle in handles {
        match handle.join() {
            Ok(ClientResult::Parity { matched: true, .. }) => parity_ok += 1,
            Ok(ClientResult::Parity {
                matched: false,
                detail,
            }) => {
                parity_failed += 1;
                ok = false;
                lines.push(format!("serve-smoke: PARITY MISMATCH: {detail}"));
            }
            Ok(ClientResult::Misbehaved(kind)) => {
                misbehaved[match kind {
                    ClientKind::Clean => 0,
                    ClientKind::Hangup => 1,
                    ClientKind::Garbage => 2,
                    ClientKind::Staller => 3,
                }] += 1;
            }
            Ok(ClientResult::Broken(what)) => {
                ok = false;
                lines.push(format!("serve-smoke: client broke: {what}"));
            }
            Err(_) => {
                ok = false;
                lines.push("serve-smoke: client thread panicked".into());
            }
        }
    }

    // --- Post-chaos liveness probe: the server must still serve cleanly. --
    let probe_events = wire_events(&client_events(0, seed));
    match serve_one(addr, &config, &probe_events) {
        Ok(json) => {
            let twin = in_process_summary_json(&config, &probe_events);
            if json == twin {
                parity_ok += 1;
                lines.push("serve-smoke: post-chaos liveness probe passed".into());
            } else {
                ok = false;
                parity_failed += 1;
                lines.push("serve-smoke: post-chaos probe summary mismatched".into());
            }
        }
        Err(e) => {
            ok = false;
            lines.push(format!("serve-smoke: server unreachable after chaos: {e}"));
        }
    }

    // --- Ledger invariants. ------------------------------------------------
    let report = server.shutdown();
    let stats = report.stats;
    let quarter = clients / 4;
    lines.push(format!(
        "serve-smoke: {} connections, outcomes {:?}, {} frames rejected, parity {}/{}",
        stats.accepted,
        outcome_histogram(&report.sessions),
        stats.frames_rejected,
        parity_ok,
        parity_ok + parity_failed,
    ));

    let mut check = |cond: bool, what: &str| {
        if !cond {
            ok = false;
            lines.push(format!("serve-smoke: INVARIANT FAILED: {what}"));
        }
    };
    // The misbehaving clients must all have delivered their chaos (indices
    // 1=hangup, 2=garbage, 3=staller; the panic client logs under 0).
    check(
        misbehaved[1] == quarter && misbehaved[2] == quarter && misbehaved[3] == quarter,
        "every misbehaving client must have delivered its fault",
    );
    // Every connection is accounted for: the fleet + panic client + the two
    // resume cells (two connections each) + probe (+1 shutdown wake-up
    // connection that is dropped unrecorded).
    check(
        stats.accepted >= (clients + 6) as u64,
        "server must have accepted every connection",
    );
    check(
        stats.finished == (quarter + 4) as u64,
        "every clean client, the probe, the recovered panic client and both resume cells must finish",
    );
    check(
        stats.hangups == quarter as u64,
        "every unresumed hangup must be swept into a hangup record",
    );
    check(
        stats.poisoned == quarter as u64,
        "every garbage client must be recorded as poisoned",
    );
    check(
        stats.reaped == quarter as u64,
        "every staller must be reaped by the idle timeout",
    );
    check(
        stats.panics_supervised == 1,
        "the injected panic must be supervised exactly once",
    );
    check(
        stats.parked == (quarter + 2) as u64,
        "every hangup and both resume cells must have parked",
    );
    check(
        stats.resumed == 2,
        "exactly the two resume cells must have resumed",
    );
    check(parity_failed == 0, "clean summaries must be byte-identical");
    check(
        report
            .sessions
            .iter()
            .filter(|r| {
                !matches!(
                    r.outcome,
                    SessionOutcome::Finished | SessionOutcome::Drained
                )
            })
            .all(|r| r.degraded),
        "every non-clean outcome must be marked degraded",
    );
    check(
        report.with_outcome(SessionOutcome::Panicked).is_empty(),
        "the supervised panic must recover, not end its session",
    );
    check(
        report
            .sessions
            .iter()
            .filter(|r| r.outcome == SessionOutcome::Finished && r.degraded)
            .count()
            == 1,
        "exactly the recovered panic victim may finish degraded",
    );

    ServeSmokeReport {
        lines,
        ok,
        clients: clients + 4,
        parity_ok,
        parity_failed,
    }
}

/// Drive one clean session and return the remote summary's raw JSON.
fn serve_one(
    addr: std::net::SocketAddr,
    config: &DetectorConfig,
    events: &[WireEvent],
) -> Result<String, String> {
    let mut client = ServiceClient::connect(addr, config).map_err(|e| format!("connect: {e}"))?;
    for ev in events {
        client.send(ev).map_err(|e| format!("send: {e}"))?;
    }
    let remote = client.finish().map_err(|e| format!("finish: {e}"))?;
    Ok(remote.raw_json)
}

fn run_client(
    addr: std::net::SocketAddr,
    config: &DetectorConfig,
    index: usize,
    seed: u64,
) -> ClientResult {
    let kind = kind_for(index);
    let events = wire_events(&client_events(index, seed));
    match kind {
        ClientKind::Clean => match serve_one(addr, config, &events) {
            Ok(json) => {
                let twin = in_process_summary_json(config, &events);
                ClientResult::Parity {
                    matched: json == twin,
                    detail: format!("client {index}: remote {json} != twin {twin}"),
                }
            }
            Err(e) => ClientResult::Broken(format!("clean client {index}: {e}")),
        },
        ClientKind::Hangup => {
            let mut client = match ServiceClient::connect(addr, config) {
                Ok(c) => c,
                Err(e) => return ClientResult::Broken(format!("hangup client {index}: {e}")),
            };
            for ev in events.iter().take(events.len() / 2) {
                if client.send(ev).is_err() {
                    break;
                }
            }
            drop(client); // vanish mid-stream
            ClientResult::Misbehaved(kind)
        }
        ClientKind::Garbage => {
            let mut stream = match TcpStream::connect(addr) {
                Ok(s) => s,
                Err(e) => return ClientResult::Broken(format!("garbage client {index}: {e}")),
            };
            // Alternate hostile shapes: junk payload behind a valid prefix,
            // or a hostile oversized length prefix.
            let attack: &[u8] = if index.is_multiple_of(2) {
                &[
                    12, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef, 0xff, 0xff, 0xff,
                    0xff,
                ]
            } else {
                &[0xff, 0xff, 0xff, 0x7f, 0x00]
            };
            let _ = stream.write_all(attack);
            let _ = stream.flush();
            ClientResult::Misbehaved(kind)
        }
        ClientKind::Staller => {
            let mut client = match ServiceClient::connect(addr, config) {
                Ok(c) => c,
                Err(e) => return ClientResult::Broken(format!("staller {index}: {e}")),
            };
            for ev in events.iter().take(4) {
                if client.send(ev).is_err() {
                    break;
                }
            }
            // Silence past the idle timeout: the server must reap us.
            std::thread::sleep(STRESS_IDLE * 2);
            drop(client);
            ClientResult::Misbehaved(kind)
        }
    }
}

/// A client whose stream trips the server's injected-panic hook in the
/// middle of a real workload. The worker must recover the session in place
/// from its checkpoint + journal and the final summary must match the
/// in-process twin of the *complete* stream — degraded, because a panic
/// happened, but not truncated.
fn run_panic_client(
    addr: std::net::SocketAddr,
    config: &DetectorConfig,
    seed: u64,
) -> ClientResult {
    let mut events = wire_events(&client_events(1, seed));
    let half = events.len() / 2;
    events.insert(
        half,
        WireEvent::Op(DsmOp {
            op_id: PANIC_OP_ID,
            actor: 0,
            kind: OpKind::LocalWrite {
                range: GlobalAddr::public(0, 0).range(8),
            },
        }),
    );

    let mut client = match ServiceClient::connect(addr, config) {
        Ok(c) => c,
        Err(e) => return ClientResult::Broken(format!("panic client: {e}")),
    };
    for ev in &events {
        if let Err(e) = client.send(ev) {
            return ClientResult::Broken(format!("panic client send: {e}"));
        }
    }
    let remote = match client.finish() {
        Ok(r) => r,
        Err(e) => return ClientResult::Broken(format!("panic client finish: {e}")),
    };
    let twin = match RaceSummary::from_json(&in_process_summary_json(config, &events)) {
        Ok(mut twin) => {
            twin.degraded = true; // the one divergence a recovered panic may cause
            twin.to_json()
        }
        Err(e) => return ClientResult::Broken(format!("panic twin: {e}")),
    };
    ClientResult::Parity {
        matched: remote.raw_json == twin && remote.error.is_some(),
        detail: format!(
            "panic client: remote {} != degraded twin {twin} (error {:?})",
            remote.raw_json, remote.error
        ),
    }
}

/// How long the resume cells wait after killing a connection before
/// reconnecting, so the server has provably parked the session.
const PARK_SETTLE: Duration = Duration::from_millis(50);

/// Reconnect cell 1: kill the TCP connection at a clean frame boundary
/// mid-stream, then let the client's auto-reconnect resume the parked
/// session. The final summary must be byte-identical to an uninterrupted
/// in-process run — parks are lossless, so not even `degraded` may differ.
fn run_boundary_resume_client(
    addr: std::net::SocketAddr,
    config: &DetectorConfig,
    seed: u64,
) -> ClientResult {
    let events = wire_events(&client_events(2, seed));
    let cut = events.len() / 2;
    let mut client = match ServiceClient::connect(addr, config) {
        Ok(c) => c,
        Err(e) => return ClientResult::Broken(format!("boundary-resume client: {e}")),
    };
    client.set_retry_policy(RetryPolicy {
        attempts: 8,
        base_delay: Duration::from_millis(2),
    });
    let session_id = client.session_id();
    for (i, ev) in events.iter().enumerate() {
        if i == cut {
            client.drop_connection();
            std::thread::sleep(PARK_SETTLE);
        }
        if let Err(e) = client.send(ev) {
            return ClientResult::Broken(format!("boundary-resume send {i}: {e}"));
        }
    }
    if client.reconnects() != 1 || client.session_id() != session_id {
        return ClientResult::Broken(format!(
            "boundary-resume: expected one identity-preserving reconnect, got {} (session {} -> {})",
            client.reconnects(),
            session_id,
            client.session_id()
        ));
    }
    match client.finish() {
        Ok(remote) => {
            let twin = in_process_summary_json(config, &events);
            ClientResult::Parity {
                matched: remote.raw_json == twin && !remote.summary.degraded,
                detail: format!("boundary-resume: remote {} != twin {twin}", remote.raw_json),
            }
        }
        Err(e) => ClientResult::Broken(format!("boundary-resume finish: {e}")),
    }
}

/// Reconnect cell 2: cut the TCP stream in the *middle of a frame* (length
/// prefix promising more bytes than ever arrive), then resume by hand with
/// the raw wire protocol. The half-frame must be discarded, the `ResumeAck`
/// must name exactly the applied-event count, and the finished summary must
/// be byte-identical to the uninterrupted twin.
fn run_midframe_resume_client(
    addr: std::net::SocketAddr,
    config: &DetectorConfig,
    seed: u64,
) -> ClientResult {
    let broken = |what: String| ClientResult::Broken(format!("midframe-resume: {what}"));
    let events = wire_events(&client_events(3, seed));
    let cut = events.len() / 2;

    // Handshake + prefix on the first connection, by hand.
    let mut stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => return broken(format!("connect: {e}")),
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let hello = ClientFrame::Hello {
        config_json: config.to_json(),
    };
    if let Err(e) = write_frame(&mut stream, &hello.encode()) {
        return broken(format!("hello: {e}"));
    }
    let (session_id, token) = match read_frame(&mut stream).map(|p| ServerFrame::decode(&p)) {
        Ok(Ok(ServerFrame::HelloAck { session, token })) => (session, token),
        other => return broken(format!("hello-ack: {other:?}")),
    };
    for ev in &events[..cut] {
        if let Err(e) = write_frame(&mut stream, &ClientFrame::Event(*ev).encode()) {
            return broken(format!("prefix send: {e}"));
        }
    }
    // The mid-frame cut: a length prefix promising 40 bytes, 7 bytes of
    // payload, then the connection dies.
    let _ = stream.write_all(&40u32.to_le_bytes());
    let _ = stream.write_all(&[0x02, 0, 1, 2, 3, 4, 5]);
    let _ = stream.flush();
    drop(stream);
    std::thread::sleep(PARK_SETTLE);

    // Resume on a fresh connection and stream the rest.
    let mut stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => return broken(format!("reconnect: {e}")),
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let resume = ClientFrame::Resume {
        token,
        last_acked_seq: 0,
    };
    if let Err(e) = write_frame(&mut stream, &resume.encode()) {
        return broken(format!("resume: {e}"));
    }
    match read_frame(&mut stream).map(|p| ServerFrame::decode(&p)) {
        Ok(Ok(ServerFrame::ResumeAck { session, next_seq })) => {
            if session != session_id || next_seq != cut as u64 {
                return broken(format!(
                    "resume-ack mismatch: session {session} (want {session_id}), \
                     next_seq {next_seq} (want {cut}) — the half-frame must not count"
                ));
            }
        }
        other => return broken(format!("resume-ack: {other:?}")),
    }
    for ev in &events[cut..] {
        if let Err(e) = write_frame(&mut stream, &ClientFrame::Event(*ev).encode()) {
            return broken(format!("tail send: {e}"));
        }
    }
    if let Err(e) = write_frame(&mut stream, &ClientFrame::Finish.encode()) {
        return broken(format!("finish: {e}"));
    }
    let json = loop {
        match read_frame(&mut stream).map(|p| ServerFrame::decode(&p)) {
            Ok(Ok(ServerFrame::Summary { json, .. })) => break json,
            Ok(Ok(ServerFrame::Health { .. } | ServerFrame::Error { .. })) => continue,
            other => return broken(format!("summary: {other:?}")),
        }
    };
    let twin = in_process_summary_json(config, &events);
    ClientResult::Parity {
        matched: json == twin,
        detail: format!("midframe-resume: remote {json} != twin {twin}"),
    }
}

//! The `repro --analyze` harness: static/dynamic cross-validation.
//!
//! Two independent oracles grade every scenario-matrix twin:
//!
//! * the **static** MHP analyzer ([`dsm_analysis::analyze`]) classifies
//!   each conflicting site pair over *all* schedules from the workload's
//!   sync structure alone;
//! * the **dynamic** oracle ([`Oracle::analyze`]) replays the recorded
//!   happens-before relation of *one* schedule per seed.
//!
//! The harness asserts exact agreement:
//!
//! * the static grade and site catalogue equal the twin's embedded
//!   [`ScenarioTruth`](simulator::workloads::ScenarioTruth) annotation
//!   (so the annotations are machine-checked, not hand-trusted);
//! * every site the dynamic oracle reports on any sampled schedule is in
//!   the static catalogue (a statically `NeverRaces` site must never race
//!   dynamically);
//! * `Always` twins hit their full catalogue on **every** sampled seed;
//! * `Sometimes` twins show **both** outcomes across the sampled seeds —
//!   some schedule races at a catalogued site, some schedule leaves one
//!   unhit — which is precisely what no single dynamic run can certify.
//!
//! `repro --analyze` exits 1 on any disagreement.

use dsm_analysis::analyze;
use race_core::Oracle;
use simulator::workloads::RaceGrade;
use simulator::{Engine, SimConfig};

use crate::scenarios::scenario_matrix;

/// Outcome of the cross-validation sweep (`repro --analyze` exits
/// non-zero when `ok` is false).
pub struct AnalyzeReport {
    /// One verdict line per scenario; failures are prefixed `FAIL`.
    pub lines: Vec<String>,
    /// True when static and dynamic verdicts agreed everywhere.
    pub ok: bool,
    /// Scenarios checked.
    pub scenarios: usize,
    /// Dynamic engine runs executed.
    pub runs: usize,
}

impl AnalyzeReport {
    fn fail(&mut self, line: String) {
        self.ok = false;
        self.lines.push(format!("FAIL {line}"));
    }
}

/// Cross-validate every matrix twin across `seeds` dynamic schedules.
pub fn run_analyze(seeds: u64) -> AnalyzeReport {
    let mut report = AnalyzeReport {
        lines: Vec::new(),
        ok: true,
        scenarios: 0,
        runs: 0,
    };
    // Aggregated over `Sometimes` twins: at least one sampled schedule must
    // miss a catalogued site somewhere (see `check_schedule_dependence` in
    // the scenarios harness for why this is not per twin: a saturated
    // contention twin's non-racing schedules are never sampled).
    let (mut any_partial, mut sometimes_twins) = (false, 0usize);
    for w in scenario_matrix() {
        report.scenarios += 1;
        let Some(truth) = w.truth.clone() else {
            report.fail(format!("{}: matrix scenario without ground truth", w.name));
            continue;
        };
        let analysis = match analyze(&w) {
            Ok(a) => a,
            Err(e) => {
                report.fail(format!(
                    "{}: static analysis rejected workload: {e}",
                    w.name
                ));
                continue;
            }
        };
        let static_sites = analysis.racy_sites();
        let static_grade = analysis.grade();
        if static_grade != truth.grade {
            report.fail(format!(
                "{}: static grade {} disagrees with annotation {}",
                w.name,
                static_grade.label(),
                truth.grade.label()
            ));
        }
        if static_sites != truth.racy_sites {
            report.fail(format!(
                "{}: static site catalogue {static_sites:?} != annotated {:?}",
                w.name, truth.racy_sites
            ));
        }

        // Dynamic side: one schedule per seed, graded by the trace oracle.
        let (mut hit, mut partial) = (false, false);
        for seed in 0..seeds.max(1) {
            let cfg = SimConfig::debugging(w.n).with_seed(seed);
            let r = Engine::new(cfg, w.programs.clone()).run();
            report.runs += 1;
            if !r.stuck.is_empty() || !r.errors.is_empty() {
                report.fail(format!(
                    "{} [seed={seed}]: unhealthy run ({} stuck, {} error(s))",
                    w.name,
                    r.stuck.len(),
                    r.errors.len()
                ));
                continue;
            }
            let oracle = Oracle::analyze(&r.trace);
            let mut dynamic: Vec<(usize, usize)> = oracle.truth_sites().into_iter().collect();
            dynamic.sort_unstable();
            for site in &dynamic {
                if !static_sites.contains(site) {
                    report.fail(format!(
                        "{} [seed={seed}]: dynamic race at {site:?} outside the static catalogue",
                        w.name
                    ));
                }
            }
            hit |= !dynamic.is_empty();
            partial |= dynamic.len() < static_sites.len();
            match truth.grade {
                RaceGrade::Never => {
                    if !dynamic.is_empty() {
                        report.fail(format!(
                            "{} [seed={seed}]: statically race-free twin raced at {dynamic:?}",
                            w.name
                        ));
                    }
                }
                RaceGrade::Always => {
                    if dynamic != static_sites {
                        report.fail(format!(
                            "{} [seed={seed}]: always-racing twin hit {dynamic:?}, expected {static_sites:?}",
                            w.name
                        ));
                    }
                }
                RaceGrade::Sometimes => {}
            }
        }
        if truth.grade == RaceGrade::Sometimes {
            if !hit {
                report.fail(format!(
                    "{}: schedule-dependent twin never raced across {seeds} seed(s)",
                    w.name
                ));
            }
            any_partial |= partial;
            sometimes_twins += 1;
        }
        if report.ok {
            report.lines.push(format!(
                "analyze {:<28} grade {:<9} sites {:<2} static == annotation == dynamic",
                w.name,
                static_grade.label(),
                static_sites.len()
            ));
        }
    }
    if sometimes_twins > 0 && !any_partial {
        report.fail(
            "every schedule-dependent twin raced at every catalogued site on \
             every sampled seed (no schedule dependence observed)"
                .to_string(),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_and_dynamic_oracles_agree_on_the_matrix() {
        let report = run_analyze(6);
        assert!(
            report.ok,
            "cross-validation failed:\n{}",
            report.lines.join("\n")
        );
        assert_eq!(report.scenarios, 16);
    }
}

//! Regenerate every figure and quantified claim of the paper.
//!
//! Usage:
//!   repro             # all experiments (the EXPERIMENTS.md content)
//!   repro FIG2 SEC5A  # a selection by experiment id

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tables = dsm_bench::all_tables();
    let mut printed = 0;
    for t in &tables {
        if args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(t.id)) {
            println!("{t}");
            printed += 1;
        }
    }
    if printed == 0 {
        eprintln!("no experiment matched {:?}; known ids:", args);
        for t in &tables {
            eprintln!("  {}", t.id);
        }
        std::process::exit(1);
    }
}

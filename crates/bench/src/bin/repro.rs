//! Regenerate every figure and quantified claim of the paper, plus the
//! detector perf summary.
//!
//! Usage:
//!   repro                 # all experiment tables (the EXPERIMENTS.md content)
//!   repro FIG2 SEC5A      # a selection by experiment id
//!   repro --bench         # single-line JSON perf rows (the BENCH_0001.json
//!                         # content): epoch fast path vs full-vector-clock
//!                         # reference on stencil / random_access at WORD
//!   repro --bench-sharded # the BENCH_0003.json content: the sharded
//!                         # pipeline at 1/2/4/8 worker shards (plus the
//!                         # forced-threaded single shard, `sharded-mt`) vs
//!                         # the sequential epoch detector on the stencil,
//!                         # random_access and hotspot streams
//!   repro --bench-check   # CI perf smoke: fails (exit 1) if the epoch
//!                         # detector's throughput drops below the
//!                         # reference detector's on either seed workload
//!                         # (order-inversion check only — robust on
//!                         # shared runners)

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--bench-check") {
        // Rows to stdout, verdicts to stderr — the one measurement serves
        // as both the BENCH_0001-shaped summary and the smoke verdict.
        let check = dsm_bench::perfjson::bench_check();
        for row in &check.rows {
            println!("{}", row.to_json());
        }
        for line in &check.lines {
            eprintln!("{line}");
        }
        if !check.ok {
            eprintln!("bench-check: epoch/reference throughput order inverted");
            std::process::exit(1);
        }
        return;
    }

    if args.iter().any(|a| a == "--bench-sharded") {
        let rows = dsm_bench::perfjson::bench_rows_sharded();
        for row in &rows {
            println!("{}", row.to_json());
        }
        for (workload, detector, shards, speedup) in dsm_bench::perfjson::sharded_speedups(&rows) {
            eprintln!(
                "# {workload}: {detector} @ {shards} shard(s) {speedup:.2}x vs sequential epoch"
            );
        }
        eprintln!(
            "# host cores: {} (threaded scaling needs >= shards+1 cores)",
            dsm_bench::perfjson::host_cores()
        );
        return;
    }

    if args.iter().any(|a| a == "--bench") {
        let rows = dsm_bench::perfjson::bench_rows();
        for row in &rows {
            println!("{}", row.to_json());
        }
        for (workload, speedup) in dsm_bench::perfjson::speedups(&rows) {
            eprintln!("# {workload}: epoch fast path {speedup:.2}x vs reference");
        }
        return;
    }

    let tables = dsm_bench::all_tables();
    let mut printed = 0;
    for t in &tables {
        if args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(t.id)) {
            println!("{t}");
            printed += 1;
        }
    }
    if printed == 0 {
        eprintln!("no experiment matched {:?}; known ids:", args);
        for t in &tables {
            eprintln!("  {}", t.id);
        }
        std::process::exit(1);
    }
}

//! Regenerate every figure and quantified claim of the paper, plus the
//! detector perf summary.
//!
//! Usage:
//!   repro                 # all experiment tables (the EXPERIMENTS.md content)
//!   repro FIG2 SEC5A      # a selection by experiment id
//!   repro --bench         # single-line JSON perf rows (the BENCH_0001.json
//!                         # content): epoch fast path vs full-vector-clock
//!                         # reference on stencil / random_access at WORD
//!   repro --bench-sharded # the BENCH_0003.json content: the sharded
//!                         # pipeline at 1/2/4/8 worker shards (plus the
//!                         # forced-threaded single shard, `sharded-mt`) vs
//!                         # the sequential epoch detector on the stencil,
//!                         # random_access and hotspot streams
//!   repro --bench-check   # CI perf smoke: fails (exit 1) if the epoch
//!                         # detector's throughput drops below the
//!                         # reference detector's on either seed workload
//!                         # (order-inversion check only — robust on
//!                         # shared runners)
//!   repro --bench-sinks   # the BENCH_0004.json content: the report-path
//!                         # microbench — legacy direct log append vs the
//!                         # api::Session paths (VecSink / SummarySink /
//!                         # CountingSink) on hotspot and stencil
//!   repro --config JSON   # DetectorConfig round-trip smoke: build a
//!                         # session from the JSON, drive the hotspot
//!                         # stream, serialize → reparse → rebuild, and
//!                         # fail (exit 1) unless the two report streams
//!                         # are byte-identical
//!   repro --serve-smoke   # detection-service stress: one server, 128
//!                         # concurrent clients (override with --clients N)
//!                         # mixing clean streams, mid-stream hangups,
//!                         # garbage bytes and stallers, plus an injected
//!                         # session panic. Fails (exit 1) unless the
//!                         # server survives, every misbehaving session is
//!                         # recorded degraded with the right outcome, and
//!                         # every clean summary is byte-identical to an
//!                         # in-process Session run
//!   repro --chaos         # fault-injection sweep: scenario workloads
//!                         # under a seed matrix of network fault plans,
//!                         # plus sharded-pipeline runs with a worker
//!                         # killed mid-stream. Fails (exit 1) if a panic
//!                         # escapes, a quiet plan perturbs a run, an
//!                         # injection goes unreported as degraded, or a
//!                         # supervised kill changes the report stream.
//!                         # `--seeds N` widens the matrix (default 8).
//!   repro --scenarios     # the oracle-validated scenario matrix: every
//!                         # annotated workload twin through the engine
//!                         # across detector kinds × shard counts 1–4 ×
//!                         # network models, graded by the oracle. Prints
//!                         # the BENCH_0005.json rows (scored columns next
//!                         # to throughput) to stdout and fails (exit 1)
//!                         # on any ground-truth violation: a racy twin
//!                         # missing a declared site, a race-free twin
//!                         # reported by the dual clock, a false-positive
//!                         # dual-clock pair, or a report stream that
//!                         # changes with the shard count. `--seeds N`
//!                         # widens the sweep (default 4).
//!   repro --analyze       # static/dynamic cross-validation: the static
//!                         # MHP analyzer (dsm-analysis) grades every
//!                         # matrix twin over all schedules, and must agree
//!                         # exactly with the embedded annotation and with
//!                         # Oracle::analyze over per-seed dynamic runs.
//!                         # Fails (exit 1) on any disagreement. `--seeds
//!                         # N` widens the dynamic sample (default 6).
//!   repro --lint          # never-panic repo lint: scan library (non-test)
//!                         # code of the root crate and crates/*/src for
//!                         # unwrap/expect/panic!/todo! and decoder
//!                         # indexing, against the committed justified
//!                         # allowlist (LINT_ALLOWLIST.txt). Fails (exit 1)
//!                         # on any unlisted hit or stale allowlist entry.

fn parse_seeds(args: &[String], default: u64) -> u64 {
    args.iter()
        .position(|a| a == "--seeds")
        .and_then(|at| args.get(at + 1))
        .map(|v| match v.parse::<u64>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("--seeds needs a positive integer, got {v:?}");
                std::process::exit(1);
            }
        })
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--analyze") {
        let seeds = parse_seeds(&args, 6);
        let report = dsm_bench::analysis::run_analyze(seeds);
        for line in &report.lines {
            println!("{line}");
        }
        if !report.ok {
            eprintln!(
                "analyze: static/dynamic disagreement ({} scenario(s), {} run(s))",
                report.scenarios, report.runs
            );
            std::process::exit(1);
        }
        eprintln!(
            "# analyze: {} scenario(s), {} dynamic run(s): static verdicts == annotations == oracle",
            report.scenarios, report.runs
        );
        return;
    }

    if args.iter().any(|a| a == "--lint") {
        // CI runs `cargo run -p dsm-bench --bin repro -- --lint` from the
        // workspace root; allow an explicit root for out-of-tree use.
        let root = args
            .iter()
            .position(|a| a == "--root")
            .and_then(|at| args.get(at + 1))
            .map(String::as_str)
            .unwrap_or(".")
            .to_string();
        let cfg = dsm_analysis::LintConfig::new(root);
        let report = match dsm_analysis::run_lint(&cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("lint: io error: {e}");
                std::process::exit(1);
            }
        };
        for line in report.lines() {
            println!("{line}");
        }
        if !report.ok() {
            eprintln!("lint: panic-policy violation (see FAIL lines above)");
            std::process::exit(1);
        }
        return;
    }

    if args.iter().any(|a| a == "--scenarios") {
        let seeds = parse_seeds(&args, 4);
        let report = dsm_bench::scenarios::run_scenarios(seeds);
        for line in &report.lines {
            eprintln!("{line}");
        }
        if !report.ok {
            eprintln!(
                "scenarios: ground truth violated ({} runs across {} seed(s))",
                report.runs, seeds
            );
            std::process::exit(1);
        }
        for row in dsm_bench::scenarios::bench_rows_scenarios() {
            println!("{}", row.to_json());
        }
        eprintln!(
            "# scenarios: {} run(s) across {} seed(s), every oracle ground-truth assertion held",
            report.runs, seeds
        );
        return;
    }

    if args.iter().any(|a| a == "--serve-smoke") {
        let clients = args
            .iter()
            .position(|a| a == "--clients")
            .and_then(|at| args.get(at + 1))
            .map(|v| match v.parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => {
                    eprintln!("--clients needs a positive integer, got {v:?}");
                    std::process::exit(1);
                }
            })
            .unwrap_or(128);
        let seeds = parse_seeds(&args, 1);
        let mut failed = false;
        for seed in 0..seeds {
            let report = dsm_bench::serve::run_serve_smoke(clients, seed);
            for line in &report.lines {
                println!("{line}");
            }
            failed |= !report.ok;
        }
        if failed {
            eprintln!("serve-smoke: invariant violated");
            std::process::exit(1);
        }
        eprintln!(
            "# serve-smoke: server survived {clients}+ chaotic clients across {seeds} seed(s); clean summaries byte-identical"
        );
        return;
    }

    if args.iter().any(|a| a == "--chaos") {
        let seeds = parse_seeds(&args, 8);
        let report = dsm_bench::chaos::run_chaos(seeds);
        for line in &report.lines {
            println!("{line}");
        }
        if !report.ok {
            eprintln!("chaos: invariant violated ({} runs)", report.runs);
            std::process::exit(1);
        }
        eprintln!(
            "# chaos: {} run(s) across {} seed(s), all invariants held",
            report.runs, seeds
        );
        return;
    }

    if let Some(at) = args.iter().position(|a| a == "--config") {
        let Some(json) = args.get(at + 1) else {
            eprintln!("--config needs a DetectorConfig JSON argument");
            std::process::exit(1);
        };
        let config = match race_core::DetectorConfig::from_json(json) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("config parse error: {e}");
                std::process::exit(1);
            }
        };
        match dsm_bench::perfjson::config_roundtrip(&config) {
            Ok((reports, accesses)) => {
                println!(
                    "{{\"config\":{},\"reports\":{},\"accesses\":{},\"roundtrip\":\"ok\"}}",
                    config.to_json(),
                    reports,
                    accesses,
                );
            }
            Err(e) => {
                eprintln!("config round-trip FAILED: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if args.iter().any(|a| a == "--bench-sinks") {
        let rows = dsm_bench::perfjson::bench_rows_sinks();
        for row in &rows {
            println!("{}", row.to_json());
        }
        for (workload, path, ratio) in dsm_bench::perfjson::sink_overheads(&rows) {
            eprintln!("# {workload}: {path} {ratio:.2}x ns/access vs legacy-log");
        }
        return;
    }

    if args.iter().any(|a| a == "--bench-check") {
        // Rows to stdout, verdicts to stderr — the one measurement serves
        // as both the BENCH_0001-shaped summary and the smoke verdict.
        let check = dsm_bench::perfjson::bench_check();
        for row in &check.rows {
            println!("{}", row.to_json());
        }
        for line in &check.lines {
            eprintln!("{line}");
        }
        if !check.ok {
            eprintln!("bench-check: epoch/reference throughput order inverted");
            std::process::exit(1);
        }
        return;
    }

    if args.iter().any(|a| a == "--bench-sharded") {
        let rows = dsm_bench::perfjson::bench_rows_sharded();
        for row in &rows {
            println!("{}", row.to_json());
        }
        for (workload, detector, shards, speedup) in dsm_bench::perfjson::sharded_speedups(&rows) {
            eprintln!(
                "# {workload}: {detector} @ {shards} shard(s) {speedup:.2}x vs sequential epoch"
            );
        }
        eprintln!(
            "# host cores: {} (threaded scaling needs >= shards+1 cores)",
            dsm_bench::perfjson::host_cores()
        );
        return;
    }

    if args.iter().any(|a| a == "--bench") {
        let rows = dsm_bench::perfjson::bench_rows();
        for row in &rows {
            println!("{}", row.to_json());
        }
        for (workload, speedup) in dsm_bench::perfjson::speedups(&rows) {
            eprintln!("# {workload}: epoch fast path {speedup:.2}x vs reference");
        }
        return;
    }

    let tables = dsm_bench::all_tables();
    let mut printed = 0;
    for t in &tables {
        if args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(t.id)) {
            println!("{t}");
            printed += 1;
        }
    }
    if printed == 0 {
        eprintln!("no experiment matched {:?}; known ids:", args);
        for t in &tables {
            eprintln!("  {}", t.id);
        }
        std::process::exit(1);
    }
}

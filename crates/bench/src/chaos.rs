//! The `repro --chaos` harness: scenario workloads under a seed matrix of
//! fault plans, asserting the whole stack honours the §IV-D contract —
//! trouble is **signalled, never fatal** — even when the environment
//! misbehaves.
//!
//! Two layers of chaos, both deterministic per seed:
//!
//! 1. **Network chaos** — real engine runs of scenario workloads under a
//!    matrix of [`FaultSpec`]s (quiet control, delay, duplicate, reorder,
//!    drop, storm). Invariants: (a) no panic ever escapes a run; (b) when
//!    a plan injected nothing (delivery order preserved), the report
//!    stream is byte-identical to the no-fault baseline and the run is
//!    not degraded; (c) whenever injection fired, the run's summary says
//!    [`RaceSummary::degraded`](race_core::RaceSummary::degraded); (d) no
//!    run ever wedges — the lossy cells (drop, storm) complete through
//!    the engine's bounded-wait degrade path with zero stuck ranks.
//! 2. **Pipeline chaos** — detector-only streams through the sharded
//!    pipeline with a worker killed at a seed-derived point mid-stream.
//!    Invariants: byte-identical report stream versus the healthy inline
//!    detector, [`PipelineHealth::Degraded`] after the kill, and a
//!    healthy no-kill control that stays `Healthy`.
//!
//! Everything is pure functions over seeds, so a CI failure line names
//! the exact `(scenario, spec, seed)` triple to replay locally.

use std::panic::{catch_unwind, AssertUnwindSafe};

use netsim::FaultSpec;
use race_core::{
    Detector, Granularity, HbDetector, HbMode, PipelineHealth, RaceReport, ShardedDetector, VecSink,
};
use simulator::workloads::{master_worker, reduction, stencil, Workload};
use simulator::{Engine, SimConfig};

use crate::opstream;

/// Outcome of a chaos sweep: human-readable verdict lines plus an overall
/// pass flag (`repro --chaos` exits non-zero when `ok` is false).
pub struct ChaosReport {
    /// One line per checked invariant group; failures are prefixed
    /// `"FAIL"`.
    pub lines: Vec<String>,
    /// True when every invariant held across the whole matrix.
    pub ok: bool,
    /// Total engine / pipeline runs executed.
    pub runs: usize,
}

impl ChaosReport {
    fn fail(&mut self, line: String) {
        self.ok = false;
        self.lines.push(format!("FAIL {line}"));
    }
}

/// The fault-plan matrix: one quiet control plus each fault class alone
/// plus a storm mixing all of them. Probabilities are chosen so small
/// scenario runs actually trigger injections.
pub fn spec_matrix() -> Vec<(&'static str, FaultSpec)> {
    vec![
        ("quiet", FaultSpec::default()),
        (
            "delay",
            FaultSpec {
                delay: 0.5,
                extra_delay_ns: 3_000,
                ..Default::default()
            },
        ),
        (
            "duplicate",
            FaultSpec {
                duplicate: 0.3,
                ..Default::default()
            },
        ),
        (
            "reorder",
            FaultSpec {
                reorder: 0.5,
                reorder_window_ns: 2_000,
                ..Default::default()
            },
        ),
        (
            "drop",
            FaultSpec {
                drop: 0.05,
                ..Default::default()
            },
        ),
        (
            "storm",
            FaultSpec {
                drop: 0.02,
                duplicate: 0.2,
                delay: 0.3,
                extra_delay_ns: 2_000,
                reorder: 0.3,
                reorder_window_ns: 1_000,
            },
        ),
    ]
}

/// Small scenario workloads: synchronised, racy and one-sided traffic.
fn scenarios() -> Vec<Workload> {
    vec![
        stencil::with_barrier(4, 8, 2),
        master_worker::racy(3, 2),
        reduction::onesided(4),
    ]
}

/// A run's observable outcome, or the panic message if one escaped.
struct RunOutcome {
    reports: Vec<RaceReport>,
    degraded: bool,
    injected: u64,
    stuck: Vec<usize>,
}

fn engine_run(cfg: SimConfig, w: &Workload) -> Result<RunOutcome, String> {
    let programs = w.programs.clone();
    catch_unwind(AssertUnwindSafe(move || {
        let r = Engine::new(cfg, programs).run();
        RunOutcome {
            reports: r.reports,
            degraded: r.summary.degraded,
            injected: r.stats.injected_total(),
            stuck: r.stuck,
        }
    }))
    .map_err(|payload| {
        payload
            .downcast::<String>()
            .map(|s| *s)
            .unwrap_or_else(|p| {
                p.downcast::<&'static str>()
                    .map(|s| s.to_string())
                    .unwrap_or_else(|_| "non-string panic payload".into())
            })
    })
}

/// Layer 1: engine runs under the fault matrix across `seeds` seeds.
fn network_chaos(seeds: u64, report: &mut ChaosReport) {
    let specs = spec_matrix();
    for w in scenarios() {
        let mut checked = 0u64;
        let mut fired = 0u64;
        for seed in 0..seeds {
            let base = match engine_run(SimConfig::debugging(w.n).with_seed(seed), &w) {
                Ok(o) => o,
                Err(msg) => {
                    report.fail(format!("{} seed {seed} baseline panicked: {msg}", w.name));
                    continue;
                }
            };
            report.runs += 1;
            for (label, spec) in &specs {
                let cfg = SimConfig::debugging(w.n).with_seed(seed).with_faults(*spec);
                let out = match engine_run(cfg, &w) {
                    Ok(o) => o,
                    Err(msg) => {
                        report.fail(format!(
                            "{} spec {label} seed {seed} panicked: {msg}",
                            w.name
                        ));
                        continue;
                    }
                };
                report.runs += 1;
                checked += 1;
                if !out.stuck.is_empty() {
                    // The wedge-free smoke: lossy plans must complete via
                    // the engine's bounded-wait degrade path, never leave
                    // ranks stuck.
                    report.fail(format!(
                        "{} spec {label} seed {seed}: rank(s) {:?} wedged",
                        w.name, out.stuck
                    ));
                }
                if out.injected == 0 {
                    // Delivery untouched: the run must be indistinguishable
                    // from the baseline.
                    if out.reports != base.reports {
                        report.fail(format!(
                            "{} spec {label} seed {seed}: no injection but reports diverge",
                            w.name
                        ));
                    }
                    if out.degraded {
                        report.fail(format!(
                            "{} spec {label} seed {seed}: degraded without injection",
                            w.name
                        ));
                    }
                } else {
                    fired += 1;
                    if !out.degraded {
                        report.fail(format!(
                            "{} spec {label} seed {seed}: {} injection(s) but not degraded",
                            w.name, out.injected
                        ));
                    }
                }
            }
        }
        report.lines.push(format!(
            "network  {:<24} {} run(s), {} with injections: ok",
            w.name, checked, fired
        ));
    }
}

/// Layer 2: sharded-pipeline streams with a worker killed mid-stream at a
/// seed-derived point; report parity against the inline detector.
fn pipeline_chaos(seeds: u64, report: &mut ChaosReport) {
    let n = 4;
    let events = opstream::hotspot(n, 40, 8);
    let memops = opstream::memops(&events);
    // The healthy inline truth, computed once.
    let baseline = {
        let mut det = HbDetector::new(n, Granularity::WORD, HbMode::Dual);
        let mut sink = VecSink::new();
        opstream::drive_sink(&mut det, &mut sink, &events);
        sink.into_reports()
    };
    let mut kills = 0u64;
    for seed in 0..seeds {
        let shards = 2 + (seed as usize % 3);
        let batch = 1 + (seed as usize % 7);
        let chunks = memops.len().div_ceil(batch);
        let kill_shard = seed as usize % shards;
        let kill_at = (seed as usize * 13 + 5) % chunks.max(1);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // Control: same configuration, nobody killed.
            let mut healthy = ShardedDetector::new(n, Granularity::WORD, HbMode::Dual, shards);
            let mut healthy_sink = VecSink::new();
            for chunk in memops.chunks(batch) {
                healthy.observe_batch_sink(chunk, &mut healthy_sink);
            }
            let control_health = healthy.health();
            // Chaos: kill one worker mid-stream.
            let mut det = ShardedDetector::new(n, Granularity::WORD, HbMode::Dual, shards);
            let mut sink = VecSink::new();
            for (i, chunk) in memops.chunks(batch).enumerate() {
                if i == kill_at {
                    det.inject_worker_panic(kill_shard);
                }
                det.observe_batch_sink(chunk, &mut sink);
            }
            (
                healthy_sink.into_reports(),
                control_health,
                sink.into_reports(),
                det.health(),
            )
        }));
        report.runs += 2;
        let (control, control_health, killed, killed_health) = match outcome {
            Ok(t) => t,
            Err(_) => {
                report.fail(format!(
                    "pipeline seed {seed} (shards={shards} batch={batch}): panic escaped"
                ));
                continue;
            }
        };
        if control_health != PipelineHealth::Healthy {
            report.fail(format!("pipeline seed {seed}: control degraded"));
        }
        if control != baseline {
            report.fail(format!(
                "pipeline seed {seed}: control diverges from inline"
            ));
        }
        if killed_health != PipelineHealth::Degraded {
            report.fail(format!(
                "pipeline seed {seed}: worker killed but health not Degraded"
            ));
        } else {
            kills += 1;
        }
        if killed != baseline {
            report.fail(format!(
                "pipeline seed {seed} (shards={shards} batch={batch} kill_shard={kill_shard} \
                 kill_at={kill_at}): report stream diverges after worker death"
            ));
        }
    }
    report.lines.push(format!(
        "pipeline hotspot(n={n})          {} seed(s), {} supervised kill(s): ok",
        seeds, kills
    ));
}

/// Run the full chaos sweep over `seeds` seeds per scenario/spec pair.
pub fn run_chaos(seeds: u64) -> ChaosReport {
    let mut report = ChaosReport {
        lines: Vec::new(),
        ok: true,
        runs: 0,
    };
    network_chaos(seeds.max(1), &mut report);
    pipeline_chaos(seeds.max(1), &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_sweep_passes_on_a_small_matrix() {
        let r = run_chaos(2);
        assert!(r.ok, "chaos sweep failed:\n{}", r.lines.join("\n"));
        assert!(r.runs > 0);
        assert!(r.lines.iter().all(|l| !l.starts_with("FAIL")));
    }

    #[test]
    fn lossy_plans_complete_wedge_free() {
        // The drop and storm cells must genuinely inject (else the smoke
        // proves nothing) and every run must complete with zero stuck
        // ranks via the engine's bounded-wait degrade path.
        for label in ["drop", "storm"] {
            let spec = spec_matrix()
                .into_iter()
                .find(|(l, _)| *l == label)
                .map(|(_, s)| s)
                .unwrap();
            let mut fired = 0u64;
            for w in scenarios() {
                for seed in 0..4 {
                    let cfg = SimConfig::debugging(w.n).with_seed(seed).with_faults(spec);
                    let out = engine_run(cfg, &w)
                        .unwrap_or_else(|msg| panic!("{label} seed {seed} panicked: {msg}"));
                    assert!(
                        out.stuck.is_empty(),
                        "{} {label} seed {seed}: wedged ranks {:?}",
                        w.name,
                        out.stuck
                    );
                    if out.injected > 0 {
                        fired += 1;
                        assert!(out.degraded);
                    }
                }
            }
            assert!(fired > 0, "{label} plan never injected across the sweep");
        }
    }

    #[test]
    fn spec_matrix_has_quiet_control_and_fires() {
        let specs = spec_matrix();
        assert_eq!(specs[0].0, "quiet");
        assert!(specs[0].1.is_quiet());
        assert!(specs.iter().skip(1).all(|(_, s)| !s.is_quiet()));
    }
}

//! Single-line JSON perf summaries for the detector hot path.
//!
//! `repro --bench` prints one line per measured configuration; the
//! committed `BENCH_0001.json` is exactly that output, seeding the repo's
//! perf trajectory. `repro --bench-sharded` measures the sharded pipeline
//! against the same sequential epoch detector; its output was committed as
//! `BENCH_0002.json` (the PR-2 transport) and, after the zero-copy
//! transport rework, as `BENCH_0003.json` — adding the high-contention
//! `hotspot` workload and, at one shard, both the production configuration
//! (`sharded`, which runs the degenerate single shard inline) and the
//! forced-threaded pipeline (`sharded-mt`, which measures the transport
//! itself). `repro --bench-check` is the CI perf smoke: it fails when the
//! epoch detector stops beating the full-vector-clock reference.
//! Hand-formatted JSON — no serialisation dependency.

use std::time::Instant;

use race_core::api::{CountingSink, DetectorConfig, ReportSink, SummarySink, VecSink};
use race_core::{
    Detector, DetectorKind, Granularity, HbDetector, HbMode, MemOp, ReferenceHbDetector,
    ShardedDetector, StoreConfig,
};
use simulator::workloads::random_access::RandomSpec;

use crate::opstream::{self, StreamEvent};

/// One measured configuration.
pub struct PerfRow {
    /// Workload label (`stencil` / `random_access`).
    pub workload: &'static str,
    /// Detector label (`epoch` = optimised, `reference` = pre-optimisation).
    pub detector: &'static str,
    /// Process count.
    pub n: usize,
    /// Clocked accesses per run of the stream.
    pub accesses: u64,
    /// Measured throughput, accesses per second.
    pub ops_per_sec: f64,
    /// Inverse throughput, ns per clocked access.
    pub ns_per_access: f64,
    /// Race reports per run (sanity: must match between detectors).
    pub reports: usize,
    /// §IV-D clock storage at the end of a run, bytes.
    pub clock_bytes: usize,
}

impl PerfRow {
    /// The committed JSON shape: one object per line.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"workload\":\"{}\",\"detector\":\"{}\",\"n\":{},",
                "\"accesses\":{},\"ops_per_sec\":{:.0},\"ns_per_access\":{:.1},",
                "\"reports\":{},\"clock_bytes\":{}}}"
            ),
            self.workload,
            self.detector,
            self.n,
            self.accesses,
            self.ops_per_sec,
            self.ns_per_access,
            self.reports,
            self.clock_bytes,
        )
    }
}

fn measure(
    workload: &'static str,
    detector: &'static str,
    n: usize,
    events: &[StreamEvent],
    mut make: impl FnMut() -> Box<dyn Detector>,
) -> PerfRow {
    let accesses = opstream::access_count(events);
    // Calibrate to ~0.2 s of measurement.
    let mut runs = 1u32;
    let (reports, clock_bytes, elapsed) = loop {
        let t = Instant::now();
        let mut reports = 0;
        let mut clock_bytes = 0;
        for _ in 0..runs {
            let mut det = make();
            reports = opstream::drive(&mut *det, events);
            clock_bytes = det.clock_memory_bytes();
        }
        let elapsed = t.elapsed();
        if elapsed.as_millis() >= 200 || runs >= 1 << 20 {
            break (reports, clock_bytes, elapsed);
        }
        runs = (runs * 4).min(1 << 20);
    };
    let total_accesses = accesses * runs as u64;
    let secs = elapsed.as_secs_f64();
    PerfRow {
        workload,
        detector,
        n,
        accesses,
        ops_per_sec: total_accesses as f64 / secs,
        ns_per_access: secs * 1e9 / total_accesses as f64,
        reports,
        clock_bytes,
    }
}

/// The `BENCH_0001` measurement set: optimised vs reference detector on
/// the stencil and random-access patterns at WORD granularity.
pub fn bench_rows() -> Vec<PerfRow> {
    let mut rows = Vec::new();

    let stencil_n = 16;
    let stencil_events = opstream::stencil(stencil_n, 16, 4);
    {
        let (label, events, n) = ("stencil", &stencil_events, stencil_n);
        rows.push(measure(label, "epoch", n, events, || {
            Box::new(HbDetector::new(n, Granularity::WORD, HbMode::Dual))
        }));
        rows.push(measure(label, "reference", n, events, || {
            Box::new(ReferenceHbDetector::new(n, Granularity::WORD, HbMode::Dual))
        }));
    }

    let spec = RandomSpec {
        n: 8,
        ops_per_rank: 128,
        hot_words: 256,
        p_write: 0.25,
        locked: false,
        seed: 0xB0,
    };
    let random_events = opstream::random(spec);
    rows.push(measure(
        "random_access",
        "epoch",
        spec.n,
        &random_events,
        || Box::new(HbDetector::new(spec.n, Granularity::WORD, HbMode::Dual)),
    ));
    rows.push(measure(
        "random_access",
        "reference",
        spec.n,
        &random_events,
        || {
            Box::new(ReferenceHbDetector::new(
                spec.n,
                Granularity::WORD,
                HbMode::Dual,
            ))
        },
    ));

    rows
}

/// One measured sharded-pipeline configuration (the `BENCH_0002` /
/// `BENCH_0003` shape).
///
/// `shards == 0` marks the sequential epoch-detector baseline row the
/// speedups are computed against. `host_cores` records the measuring
/// machine's usable core count — shard scaling is only physically possible
/// when `host_cores >= shards + 1` (workers plus the router), so committed
/// rows stay interpretable across hosts.
pub struct ShardRow {
    /// Workload label (`stencil` / `random_access` / `hotspot`).
    pub workload: &'static str,
    /// Detector label: `epoch` baseline, `sharded` (production pipeline —
    /// inline at one shard), or `sharded-mt` (threaded even at one shard,
    /// isolating the transport cost).
    pub detector: &'static str,
    /// Worker shard count (0 for the sequential baseline).
    pub shards: usize,
    /// Process count.
    pub n: usize,
    /// Clocked accesses per run of the stream.
    pub accesses: u64,
    /// Measured throughput, accesses per second.
    pub ops_per_sec: f64,
    /// Inverse throughput, ns per clocked access.
    pub ns_per_access: f64,
    /// Race reports per run (must match the baseline).
    pub reports: usize,
    /// Usable CPU cores on the measuring host.
    pub host_cores: usize,
}

impl ShardRow {
    /// The committed JSON shape: one object per line.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"workload\":\"{}\",\"detector\":\"{}\",\"shards\":{},\"n\":{},",
                "\"accesses\":{},\"ops_per_sec\":{:.0},\"ns_per_access\":{:.1},",
                "\"reports\":{},\"host_cores\":{}}}"
            ),
            self.workload,
            self.detector,
            self.shards,
            self.n,
            self.accesses,
            self.ops_per_sec,
            self.ns_per_access,
            self.reports,
            self.host_cores,
        )
    }
}

/// Usable cores on this host (respects CPU affinity masks / cgroup limits
/// where the platform exposes them).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn measure_sharded(
    workload: &'static str,
    n: usize,
    shards: usize,
    events: &[StreamEvent],
    force_threaded: bool,
) -> ShardRow {
    let accesses = opstream::access_count(events);
    let batch: Vec<MemOp> = opstream::memops(events);
    // A fresh detector per run — so each timed run includes spawning and
    // joining the worker threads. Detector state cannot be reused across
    // runs (replaying the stream against populated area clocks changes the
    // verdicts), which is why these rows use long streams: they amortise
    // the per-run setup to noise and measure steady-state throughput.
    let mut runs = 1u32;
    let (reports, elapsed) = loop {
        let t = Instant::now();
        let mut reports = 0;
        for _ in 0..runs {
            let mut det = if force_threaded {
                ShardedDetector::threaded(
                    n,
                    Granularity::WORD,
                    HbMode::Dual,
                    shards,
                    StoreConfig::default(),
                )
            } else {
                ShardedDetector::new(n, Granularity::WORD, HbMode::Dual, shards)
            };
            reports = det.observe_batch(&batch);
        }
        let elapsed = t.elapsed();
        if elapsed.as_millis() >= 200 || runs >= 1 << 20 {
            break (reports, elapsed);
        }
        runs = (runs * 4).min(1 << 20);
    };
    let total_accesses = accesses * runs as u64;
    let secs = elapsed.as_secs_f64();
    ShardRow {
        workload,
        detector: if force_threaded {
            "sharded-mt"
        } else {
            "sharded"
        },
        shards,
        n,
        accesses,
        ops_per_sec: total_accesses as f64 / secs,
        ns_per_access: secs * 1e9 / total_accesses as f64,
        reports,
        host_cores: host_cores(),
    }
}

/// The `BENCH_0003` measurement set: the sharded pipeline versus the
/// sequential epoch detector (the PR-1 fast path) at WORD granularity, on
/// the stencil, random-access and high-contention hotspot patterns.
///
/// Per workload: the sequential baseline (`shards: 0`), the production
/// pipeline at 1/2/4/8 shards (`sharded` — one shard runs inline), and the
/// forced-threaded single shard (`sharded-mt`), which isolates what the
/// zero-copy transport itself costs. Long streams keep the per-run worker
/// spawn out of the steady-state numbers.
pub fn bench_rows_sharded() -> Vec<ShardRow> {
    let cores = host_cores();
    let mut rows = Vec::new();

    let stencil_n = 16;
    let stencil_events = opstream::stencil(stencil_n, 16, 32);
    let spec = RandomSpec {
        n: 8,
        ops_per_rank: 1024,
        hot_words: 256,
        p_write: 0.25,
        locked: false,
        seed: 0xB0,
    };
    let random_events = opstream::random(spec);
    let hotspot_n = 8;
    let hotspot_events = opstream::hotspot(hotspot_n, 512, 8);

    for (label, events, n) in [
        ("stencil", &stencil_events, stencil_n),
        ("random_access", &random_events, spec.n),
        ("hotspot", &hotspot_events, hotspot_n),
    ] {
        // Sequential baseline: the PR-1 epoch detector driven per op.
        let base = measure(label, "epoch", n, events, || {
            Box::new(HbDetector::new(n, Granularity::WORD, HbMode::Dual))
        });
        rows.push(ShardRow {
            workload: label,
            detector: "epoch",
            shards: 0,
            n,
            accesses: base.accesses,
            ops_per_sec: base.ops_per_sec,
            ns_per_access: base.ns_per_access,
            reports: base.reports,
            host_cores: cores,
        });
        for shards in [1usize, 2, 4, 8] {
            rows.push(measure_sharded(label, n, shards, events, false));
        }
        rows.push(measure_sharded(label, n, 1, events, true));
    }
    rows
}

/// Speedup table derived from [`bench_rows_sharded`] output: each sharded
/// row (both pipeline variants) against its workload's sequential epoch
/// baseline, as `(workload, detector, shards, speedup)`.
pub fn sharded_speedups(rows: &[ShardRow]) -> Vec<(String, String, usize, f64)> {
    let mut out = Vec::new();
    for r in rows.iter().filter(|r| r.detector != "epoch") {
        if let Some(base) = rows
            .iter()
            .find(|b| b.detector == "epoch" && b.workload == r.workload)
        {
            out.push((
                r.workload.to_string(),
                r.detector.to_string(),
                r.shards,
                base.ns_per_access / r.ns_per_access,
            ));
        }
    }
    out
}

/// One measured report path (the `BENCH_0004` shape): the detector hot
/// loop driven through the `race_core::api` façade with a given sink,
/// against the `legacy-log` direct-append baseline. Embeds the exact
/// [`DetectorConfig`] JSON so the row is reproducible from itself.
pub struct SinkRow {
    /// Workload label (`hotspot` / `stencil`).
    pub workload: &'static str,
    /// Report path: `legacy-log` (PR-3's direct log append, the baseline);
    /// `sink-vec` (the bare `observe_sink` hot loop into a caller-owned
    /// `VecSink` — the apples-to-apples sink-vs-log comparison);
    /// `session-vec` / `session-summary` / `session-counting` (the full
    /// `Session`, which additionally folds every report into the bounded
    /// running summary).
    pub path: &'static str,
    /// The exact detector configuration, as JSON.
    pub config: String,
    /// Process count.
    pub n: usize,
    /// Clocked accesses per run of the stream.
    pub accesses: u64,
    /// Measured throughput, accesses per second.
    pub ops_per_sec: f64,
    /// Inverse throughput, ns per clocked access.
    pub ns_per_access: f64,
    /// Race reports per run (must match across paths).
    pub reports: usize,
}

impl SinkRow {
    /// The committed JSON shape: one object per line, config embedded.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"workload\":\"{}\",\"path\":\"{}\",\"n\":{},",
                "\"accesses\":{},\"ops_per_sec\":{:.0},\"ns_per_access\":{:.1},",
                "\"reports\":{},\"config\":{}}}"
            ),
            self.workload,
            self.path,
            self.n,
            self.accesses,
            self.ops_per_sec,
            self.ns_per_access,
            self.reports,
            self.config,
        )
    }
}

/// How a [`measure_sink_path`] run consumes reports — one variant per
/// BENCH_0004 row label, so a path cannot be mislabelled or dispatched to
/// the wrong measurement body.
enum ReportPath {
    /// PR-3's hot path: `observe()` appending straight to the detector's
    /// internal log.
    LegacyLog,
    /// The bare sink path: `observe_sink()` handing reports by value to a
    /// caller-owned `VecSink` — the apples-to-apples comparison against
    /// [`ReportPath::LegacyLog`] (no session bookkeeping).
    BareSink,
    /// The full `Session` (which additionally folds every report into the
    /// bounded running summary), streaming into the constructed sink.
    Session(fn() -> Box<dyn ReportSink>),
}

impl ReportPath {
    /// The row's `path` label.
    fn label(&self, sink_label: &'static str) -> &'static str {
        match self {
            ReportPath::LegacyLog => "legacy-log",
            ReportPath::BareSink => "sink-vec",
            ReportPath::Session(_) => sink_label,
        }
    }
}

fn measure_sink_path(
    workload: &'static str,
    path: ReportPath,
    sink_label: &'static str,
    events: &[StreamEvent],
    config: &DetectorConfig,
) -> SinkRow {
    let accesses = opstream::access_count(events);
    let mut runs = 1u32;
    let (reports, elapsed) = loop {
        let t = Instant::now();
        let mut reports = 0;
        for _ in 0..runs {
            match &path {
                ReportPath::LegacyLog => {
                    let mut det = config.build();
                    opstream::drive(&mut *det, events);
                    // Flush so batched configs count end-of-stream
                    // leftovers, exactly like the sink paths do.
                    det.flush();
                    reports = det.reports().len();
                }
                ReportPath::BareSink => {
                    let mut det = config.build();
                    let mut sink = VecSink::new();
                    reports = opstream::drive_sink(&mut *det, &mut sink, events);
                }
                ReportPath::Session(make_sink) => {
                    let mut session = config.session_with(make_sink());
                    reports = opstream::drive_session(&mut session, events);
                }
            }
        }
        let elapsed = t.elapsed();
        if elapsed.as_millis() >= 200 || runs >= 1 << 20 {
            break (reports, elapsed);
        }
        runs = (runs * 4).min(1 << 20);
    };
    let total_accesses = accesses * runs as u64;
    let secs = elapsed.as_secs_f64();
    SinkRow {
        workload,
        path: path.label(sink_label),
        config: config.to_json(),
        n: config.n,
        accesses,
        ops_per_sec: total_accesses as f64 / secs,
        ns_per_access: secs * 1e9 / total_accesses as f64,
        reports,
    }
}

/// The `BENCH_0004` measurement set: the report-path microbench. One
/// dual-clock WORD-granularity configuration driven over the racy
/// `hotspot` stream (dense reports — the worst case for any sink) and the
/// silent `stencil` stream (the no-race path, where the sink must cost
/// nothing because it is never consulted), through each report path.
pub fn bench_rows_sinks() -> Vec<SinkRow> {
    let mut rows = Vec::new();
    let hotspot_n = 8;
    let hotspot_events = opstream::hotspot(hotspot_n, 512, 8);
    let stencil_n = 16;
    let stencil_events = opstream::stencil(stencil_n, 16, 32);
    for (workload, events, n) in [
        ("hotspot", &hotspot_events, hotspot_n),
        ("stencil", &stencil_events, stencil_n),
    ] {
        let config = DetectorConfig::new(DetectorKind::Dual, n);
        rows.push(measure_sink_path(
            workload,
            ReportPath::LegacyLog,
            "",
            events,
            &config,
        ));
        rows.push(measure_sink_path(
            workload,
            ReportPath::BareSink,
            "",
            events,
            &config,
        ));
        type MakeSink = fn() -> Box<dyn ReportSink>;
        let sessions: [(&'static str, MakeSink); 3] = [
            ("session-vec", || Box::new(VecSink::new())),
            ("session-summary", || Box::<SummarySink>::default()),
            ("session-counting", || Box::<CountingSink>::default()),
        ];
        for (label, make_sink) in sessions {
            rows.push(measure_sink_path(
                workload,
                ReportPath::Session(make_sink),
                label,
                events,
                &config,
            ));
        }
    }
    rows
}

/// Overhead table derived from [`bench_rows_sinks`] output: each session
/// path against its workload's `legacy-log` baseline, as
/// `(workload, path, ns_per_access ratio)` (1.0 = free).
pub fn sink_overheads(rows: &[SinkRow]) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    for r in rows.iter().filter(|r| r.path != "legacy-log") {
        if let Some(base) = rows
            .iter()
            .find(|b| b.path == "legacy-log" && b.workload == r.workload)
        {
            out.push((
                r.workload.to_string(),
                r.path.to_string(),
                r.ns_per_access / base.ns_per_access,
            ));
        }
    }
    out
}

/// The `repro --config` round-trip smoke: build a session from `config`,
/// drive the hotspot stream, then serialize → reparse → rebuild and drive
/// the identical stream; the two report streams must be byte-identical.
/// Returns `(reports, accesses)` on success.
pub fn config_roundtrip(config: &DetectorConfig) -> Result<(usize, u64), String> {
    if config.n < 2 {
        // Races need two processes; silently bumping `n` would make the
        // echoed config misrepresent what was actually measured.
        return Err(format!(
            "n must be >= 2 to exercise races, got {}",
            config.n
        ));
    }
    let config = config.clone();
    let events = opstream::hotspot(config.n, 128, 8);
    let accesses = opstream::access_count(&events);
    let run = |c: &DetectorConfig| -> Vec<race_core::RaceReport> {
        let mut session = c.session();
        opstream::drive_session(&mut session, &events);
        let (_, sink) = session.finish();
        sink.reports().to_vec()
    };
    let direct = run(&config);
    let reparsed = DetectorConfig::from_json(&config.to_json())?;
    if reparsed != config {
        return Err(format!(
            "config round-trip mismatch: {} vs {}",
            config.to_json(),
            reparsed.to_json()
        ));
    }
    let rebuilt = run(&reparsed);
    if direct != rebuilt {
        return Err(format!(
            "report streams diverge after round-trip: {} vs {} reports",
            direct.len(),
            rebuilt.len()
        ));
    }
    Ok((direct.len(), accesses))
}

/// Outcome of the CI perf smoke: the measured rows (so callers can print
/// them without re-running the measurement), the human-readable verdict
/// lines, and the overall pass/fail.
pub struct BenchCheck {
    /// The `bench_rows` measurements the verdicts were derived from.
    pub rows: Vec<PerfRow>,
    /// One verdict line per seed workload.
    pub lines: Vec<String>,
    /// False when an order inversion was measured.
    pub ok: bool,
}

/// The CI perf smoke (`repro --bench-check`): on each seed workload the
/// epoch detector's measured throughput must not drop below the
/// full-vector-clock reference's — an order-inversion check only, which
/// stays robust on noisy shared runners where absolute thresholds flake.
/// One [`bench_rows`] measurement serves both the verdicts and the row
/// printout, so CI pays the calibrated timing loops once.
pub fn bench_check() -> BenchCheck {
    let rows = bench_rows();
    let mut lines = Vec::new();
    let mut ok = true;
    for workload in ["stencil", "random_access"] {
        let find = |detector: &str| {
            rows.iter()
                .find(|r| r.workload == workload && r.detector == detector)
                .expect("bench_rows emits both detectors per workload")
        };
        let epoch = find("epoch");
        let reference = find("reference");
        let ratio = epoch.ops_per_sec / reference.ops_per_sec;
        let verdict = if epoch.ops_per_sec >= reference.ops_per_sec {
            "ok"
        } else {
            ok = false;
            "REGRESSION"
        };
        lines.push(format!(
            "bench-check {workload}: epoch {:.0} ops/s vs reference {:.0} ops/s ({ratio:.2}x) … {verdict}",
            epoch.ops_per_sec, reference.ops_per_sec,
        ));
    }
    BenchCheck { rows, lines, ok }
}

/// Speedup table derived from [`bench_rows`] output (epoch vs reference
/// per workload).
pub fn speedups(rows: &[PerfRow]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for r in rows.iter().filter(|r| r.detector == "epoch") {
        if let Some(base) = rows
            .iter()
            .find(|b| b.detector == "reference" && b.workload == r.workload)
        {
            out.push((r.workload.to_string(), base.ns_per_access / r.ns_per_access));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Committed-row schema registry
// ---------------------------------------------------------------------------

/// Every row family a committed `BENCH_*.json` may contain, as `(family,
/// exact ordered top-level key list)`. The single source of truth for
/// schema drift: a `to_json` change that adds, drops or reorders a key
/// fails [`validate_bench_line`] — and with it the test that replays every
/// committed bench file — instead of silently forking the corpus.
pub const ROW_SCHEMAS: &[(&str, &[&str])] = &[
    (
        "perf",
        &[
            "workload",
            "detector",
            "n",
            "accesses",
            "ops_per_sec",
            "ns_per_access",
            "reports",
            "clock_bytes",
        ],
    ),
    (
        "sharded",
        &[
            "workload",
            "detector",
            "shards",
            "n",
            "accesses",
            "ops_per_sec",
            "ns_per_access",
            "reports",
            "host_cores",
        ],
    ),
    (
        "sink",
        &[
            "workload",
            "path",
            "n",
            "accesses",
            "ops_per_sec",
            "ns_per_access",
            "reports",
            "config",
        ],
    ),
    (
        "scenario",
        &[
            "scenario",
            "detector",
            "n",
            "shards",
            "net",
            "seed",
            "accesses",
            "wall_ns_per_run",
            "accesses_per_sec",
            "reports",
            "truth_pairs",
            "truth_sites",
            "pair_precision",
            "pair_recall",
            "site_precision",
            "site_recall",
        ],
    ),
];

/// The top-level keys of a one-line JSON object, in order (nested objects
/// — e.g. the sink rows' embedded `config` — contribute their outer key
/// only).
pub fn row_keys(line: &str) -> Result<Vec<String>, String> {
    let line = line.trim();
    if !line.starts_with('{') || !line.ends_with('}') {
        return Err(format!("not a JSON object line: {line:?}"));
    }
    let mut keys = Vec::new();
    let mut depth = 0usize;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' => depth += 1,
            '}' => depth = depth.saturating_sub(1),
            '"' => {
                let mut s = String::new();
                for c in chars.by_ref() {
                    if c == '"' {
                        break;
                    }
                    s.push(c);
                }
                // A string at depth 1 followed by ':' is a top-level key.
                if depth == 1 {
                    while chars.peek().is_some_and(|c| c.is_whitespace()) {
                        chars.next();
                    }
                    if chars.peek() == Some(&':') {
                        keys.push(s);
                    }
                }
            }
            _ => {}
        }
    }
    if keys.is_empty() {
        return Err(format!("no keys found in {line:?}"));
    }
    Ok(keys)
}

/// Validate one committed bench line against the registry; returns the
/// matching row family.
pub fn validate_bench_line(line: &str) -> Result<&'static str, String> {
    let keys = row_keys(line)?;
    for (family, schema) in ROW_SCHEMAS {
        if keys.len() == schema.len() && keys.iter().zip(schema.iter()).all(|(a, b)| a == b) {
            return Ok(family);
        }
    }
    Err(format!("row matches no known schema; keys = {keys:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_keys_handles_nesting_and_rejects_garbage() {
        let keys = row_keys("{\"a\":1,\"b\":{\"inner\":2},\"c\":\"x\"}").unwrap();
        assert_eq!(keys, vec!["a", "b", "c"], "nested keys stay invisible");
        assert!(row_keys("not json").is_err());
        assert!(row_keys("{}").is_err());
    }

    #[test]
    fn every_row_producer_matches_its_registered_schema() {
        let perf = PerfRow {
            workload: "stencil",
            detector: "epoch",
            n: 4,
            accesses: 10,
            ops_per_sec: 1.0,
            ns_per_access: 1.0,
            reports: 0,
            clock_bytes: 0,
        };
        assert_eq!(validate_bench_line(&perf.to_json()), Ok("perf"));
        let scenario = crate::scenarios::ScenarioRow {
            scenario: "fanout-racy(4p,2r)".into(),
            detector: "dual-clock",
            n: 4,
            shards: 1,
            net: "jittered-ib",
            seed: 1,
            accesses: 18,
            wall_ns_per_run: 100,
            accesses_per_sec: 100,
            reports: 3,
            truth_pairs: 24,
            truth_sites: 3,
            pair_precision: 1.0,
            pair_recall: 0.5,
            site_precision: 1.0,
            site_recall: 1.0,
        };
        assert_eq!(validate_bench_line(&scenario.to_json()), Ok("scenario"));
    }

    #[test]
    fn committed_bench_files_match_known_schemas() {
        // The drift gate: every line of every committed BENCH_*.json must
        // still match a registered row family, bit-for-bit in key order.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..");
        let mut checked_files = 0;
        for entry in std::fs::read_dir(&root).expect("repo root readable") {
            let path = entry.expect("entry").path();
            let name = path.file_name().and_then(|s| s.to_str()).unwrap_or("");
            if !name.starts_with("BENCH_") || !name.ends_with(".json") {
                continue;
            }
            checked_files += 1;
            let body = std::fs::read_to_string(&path).expect("bench file readable");
            for (i, line) in body.lines().filter(|l| !l.trim().is_empty()).enumerate() {
                validate_bench_line(line).unwrap_or_else(|e| {
                    panic!("{name} line {}: {e}", i + 1);
                });
            }
        }
        assert!(checked_files >= 4, "committed bench corpus went missing");
    }

    #[test]
    fn shard_row_json_shape() {
        let row = ShardRow {
            workload: "stencil",
            detector: "sharded",
            shards: 4,
            n: 16,
            accesses: 1000,
            ops_per_sec: 2_000_000.0,
            ns_per_access: 500.0,
            reports: 3,
            host_cores: 8,
        };
        let j = row.to_json();
        assert!(!j.contains('\n'));
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "\"shards\":4",
            "\"host_cores\":8",
            "\"detector\":\"sharded\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn sharded_speedups_pair_against_epoch_baseline() {
        let mk = |detector: &'static str, shards: usize, ns: f64| ShardRow {
            workload: "stencil",
            detector,
            shards,
            n: 4,
            accesses: 10,
            ops_per_sec: 1e9 / ns,
            ns_per_access: ns,
            reports: 0,
            host_cores: 1,
        };
        let rows = vec![
            mk("epoch", 0, 300.0),
            mk("sharded", 2, 150.0),
            mk("sharded-mt", 1, 600.0),
        ];
        let s = sharded_speedups(&rows);
        assert_eq!(s.len(), 2);
        assert_eq!((s[0].1.as_str(), s[0].2), ("sharded", 2));
        assert!((s[0].3 - 2.0).abs() < 1e-9);
        assert_eq!((s[1].1.as_str(), s[1].2), ("sharded-mt", 1));
        assert!((s[1].3 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sink_row_json_embeds_the_config() {
        let config = DetectorConfig::new(DetectorKind::Dual, 8);
        let row = SinkRow {
            workload: "hotspot",
            path: "session-vec",
            config: config.to_json(),
            n: 8,
            accesses: 100,
            ops_per_sec: 1e6,
            ns_per_access: 1000.0,
            reports: 5,
        };
        let j = row.to_json();
        assert!(!j.contains('\n'));
        assert!(j.contains("\"path\":\"session-vec\""));
        assert!(j.contains("\"config\":{\"kind\":\"dual-clock\""));
        // The embedded config must itself round-trip.
        let embedded = &j[j.find("\"config\":").unwrap() + "\"config\":".len()..j.len() - 1];
        assert_eq!(DetectorConfig::from_json(embedded).unwrap(), config);
    }

    #[test]
    fn sink_overheads_pair_against_legacy_baseline() {
        let mk = |path: &'static str, ns: f64| SinkRow {
            workload: "hotspot",
            path,
            config: String::from("{}"),
            n: 4,
            accesses: 10,
            ops_per_sec: 1e9 / ns,
            ns_per_access: ns,
            reports: 0,
        };
        let rows = vec![mk("legacy-log", 100.0), mk("session-vec", 110.0)];
        let o = sink_overheads(&rows);
        assert_eq!(o.len(), 1);
        assert_eq!(o[0].1, "session-vec");
        assert!((o[0].2 - 1.1).abs() < 1e-9);
    }

    #[test]
    fn config_roundtrip_smoke_passes_for_every_kind() {
        for kind in DetectorKind::ALL {
            let config = DetectorConfig::new(kind, 4);
            let (reports, accesses) =
                config_roundtrip(&config).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert!(accesses > 0);
            if kind == DetectorKind::Dual {
                assert!(reports > 0, "hotspot must race under the dual clock");
            }
        }
        // Sharded + batched too: the drained stream must round-trip.
        let config = DetectorConfig::new(DetectorKind::Dual, 4)
            .with_shards(2)
            .with_batch(64);
        config_roundtrip(&config).expect("sharded batched round-trip");
    }

    #[test]
    fn json_shape_is_single_line_and_parsable_fields() {
        let row = PerfRow {
            workload: "stencil",
            detector: "epoch",
            n: 4,
            accesses: 100,
            ops_per_sec: 1_000_000.0,
            ns_per_access: 1000.0,
            reports: 0,
            clock_bytes: 64,
        };
        let j = row.to_json();
        assert!(!j.contains('\n'));
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "\"workload\"",
            "\"detector\"",
            "\"ops_per_sec\"",
            "\"ns_per_access\"",
            "\"clock_bytes\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }
}

//! Single-line JSON perf summaries for the detector hot path.
//!
//! `repro --bench` prints one line per measured configuration; the
//! committed `BENCH_0001.json` is exactly that output, seeding the repo's
//! perf trajectory. Hand-formatted JSON — no serialisation dependency.

use std::time::Instant;

use race_core::{Detector, Granularity, HbDetector, HbMode, ReferenceHbDetector};
use simulator::workloads::random_access::RandomSpec;

use crate::opstream::{self, StreamEvent};

/// One measured configuration.
pub struct PerfRow {
    /// Workload label (`stencil` / `random_access`).
    pub workload: &'static str,
    /// Detector label (`epoch` = optimised, `reference` = pre-optimisation).
    pub detector: &'static str,
    /// Process count.
    pub n: usize,
    /// Clocked accesses per run of the stream.
    pub accesses: u64,
    /// Measured throughput, accesses per second.
    pub ops_per_sec: f64,
    /// Inverse throughput, ns per clocked access.
    pub ns_per_access: f64,
    /// Race reports per run (sanity: must match between detectors).
    pub reports: usize,
    /// §IV-D clock storage at the end of a run, bytes.
    pub clock_bytes: usize,
}

impl PerfRow {
    /// The committed JSON shape: one object per line.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"workload\":\"{}\",\"detector\":\"{}\",\"n\":{},",
                "\"accesses\":{},\"ops_per_sec\":{:.0},\"ns_per_access\":{:.1},",
                "\"reports\":{},\"clock_bytes\":{}}}"
            ),
            self.workload,
            self.detector,
            self.n,
            self.accesses,
            self.ops_per_sec,
            self.ns_per_access,
            self.reports,
            self.clock_bytes,
        )
    }
}

fn measure(
    workload: &'static str,
    detector: &'static str,
    n: usize,
    events: &[StreamEvent],
    mut make: impl FnMut() -> Box<dyn Detector>,
) -> PerfRow {
    let accesses = opstream::access_count(events);
    // Calibrate to ~0.2 s of measurement.
    let mut runs = 1u32;
    let (reports, clock_bytes, elapsed) = loop {
        let t = Instant::now();
        let mut reports = 0;
        let mut clock_bytes = 0;
        for _ in 0..runs {
            let mut det = make();
            reports = opstream::drive(&mut *det, events);
            clock_bytes = det.clock_memory_bytes();
        }
        let elapsed = t.elapsed();
        if elapsed.as_millis() >= 200 || runs >= 1 << 20 {
            break (reports, clock_bytes, elapsed);
        }
        runs = (runs * 4).min(1 << 20);
    };
    let total_accesses = accesses * runs as u64;
    let secs = elapsed.as_secs_f64();
    PerfRow {
        workload,
        detector,
        n,
        accesses,
        ops_per_sec: total_accesses as f64 / secs,
        ns_per_access: secs * 1e9 / total_accesses as f64,
        reports,
        clock_bytes,
    }
}

/// The `BENCH_0001` measurement set: optimised vs reference detector on
/// the stencil and random-access patterns at WORD granularity.
pub fn bench_rows() -> Vec<PerfRow> {
    let mut rows = Vec::new();

    let stencil_n = 16;
    let stencil_events = opstream::stencil(stencil_n, 16, 4);
    {
        let (label, events, n) = ("stencil", &stencil_events, stencil_n);
        rows.push(measure(label, "epoch", n, events, || {
            Box::new(HbDetector::new(n, Granularity::WORD, HbMode::Dual))
        }));
        rows.push(measure(label, "reference", n, events, || {
            Box::new(ReferenceHbDetector::new(n, Granularity::WORD, HbMode::Dual))
        }));
    }

    let spec = RandomSpec {
        n: 8,
        ops_per_rank: 128,
        hot_words: 256,
        p_write: 0.25,
        locked: false,
        seed: 0xB0,
    };
    let random_events = opstream::random(spec);
    rows.push(measure(
        "random_access",
        "epoch",
        spec.n,
        &random_events,
        || Box::new(HbDetector::new(spec.n, Granularity::WORD, HbMode::Dual)),
    ));
    rows.push(measure(
        "random_access",
        "reference",
        spec.n,
        &random_events,
        || {
            Box::new(ReferenceHbDetector::new(
                spec.n,
                Granularity::WORD,
                HbMode::Dual,
            ))
        },
    ));

    rows
}

/// Speedup table derived from [`bench_rows`] output (epoch vs reference
/// per workload).
pub fn speedups(rows: &[PerfRow]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for r in rows.iter().filter(|r| r.detector == "epoch") {
        if let Some(base) = rows
            .iter()
            .find(|b| b.detector == "reference" && b.workload == r.workload)
        {
            out.push((r.workload.to_string(), base.ns_per_access / r.ns_per_access));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_single_line_and_parsable_fields() {
        let row = PerfRow {
            workload: "stencil",
            detector: "epoch",
            n: 4,
            accesses: 100,
            ops_per_sec: 1_000_000.0,
            ns_per_access: 1000.0,
            reports: 0,
            clock_bytes: 64,
        };
        let j = row.to_json();
        assert!(!j.contains('\n'));
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "\"workload\"",
            "\"detector\"",
            "\"ops_per_sec\"",
            "\"ns_per_access\"",
            "\"clock_bytes\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }
}

//! Shared helpers for the benchmark harness and the `repro` binary.
//!
//! Every experiment of the paper (DESIGN.md's index) is a function here
//! returning a printable table; the `repro` binary selects and prints them,
//! and EXPERIMENTS.md records the output. Measurements use *virtual* time
//! and message counts, which are deterministic per seed — the Criterion
//! benches in `benches/` additionally measure the wall-clock cost of the
//! simulator and detector machinery themselves.

use race_core::{DetectorKind, Oracle, RaceClass};
use simulator::workloads::{figures, master_worker, random_access, reduction};
use simulator::{Engine, Program, RunResult, SimConfig};

pub mod analysis;
pub mod chaos;
pub mod opstream;
pub mod perfjson;
pub mod scenarios;
pub mod serve;

/// Run one configuration, asserting the run is healthy.
pub fn run(cfg: SimConfig, programs: Vec<Program>) -> RunResult {
    let r = Engine::new(cfg, programs).run();
    assert!(r.errors.is_empty(), "engine errors: {:?}", r.errors);
    assert!(r.stuck.is_empty(), "stuck: {:?}", r.stuck);
    r
}

/// A printable experiment result.
pub struct Table {
    /// Experiment id from DESIGN.md (e.g. "FIG2").
    pub id: &'static str,
    /// Header line.
    pub title: String,
    /// Pre-formatted rows.
    pub rows: Vec<String>,
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} — {}", self.id, self.title)?;
        for row in &self.rows {
            writeln!(f, "   {row}")?;
        }
        Ok(())
    }
}

/// FIG1 — model exercise: remote put/get across the global address space.
pub fn fig1() -> Table {
    let w = figures::fig1();
    let r = run(SimConfig::debugging(w.n), w.programs);
    Table {
        id: "FIG1",
        title: "memory organisation: private/public segments, remote get/put".into(),
        rows: vec![
            format!(
                "P0 got P1's value into private memory : {:#x}",
                r.read_u64(dsm::GlobalAddr::private(0, 0).range(8))
            ),
            format!(
                "P2's put landed in P1's public memory : {:#x}",
                r.read_u64(dsm::GlobalAddr::public(1, 64).range(8))
            ),
            format!(
                "P2's put landed in its own public mem : {:#x}",
                r.read_u64(dsm::GlobalAddr::public(2, 0).range(8))
            ),
            format!("virtual time: {}", r.virtual_time),
        ],
    }
}

/// FIG2 — put = 1 message, get = 2 messages; latency asymmetry.
pub fn fig2() -> Table {
    let w = figures::fig2();
    let cfg = SimConfig::lockstep(w.n, 1_000).with_detector(DetectorKind::Vanilla);
    let r = run(cfg, w.programs.clone());
    let lat = |label: &str| {
        r.op_latencies
            .iter()
            .find(|(c, _)| c.label() == label)
            .map(|(_, ns)| *ns)
            .unwrap_or(0)
    };
    Table {
        id: "FIG2",
        title: "one-sided operation message counts (paper: put=1, get=2)".into(),
        rows: vec![
            format!(
                "put data messages : {}",
                r.stats.msgs(netsim::OpClass::PutData)
            ),
            format!(
                "get request msgs  : {}",
                r.stats.msgs(netsim::OpClass::GetRequest)
            ),
            format!(
                "get reply msgs    : {}",
                r.stats.msgs(netsim::OpClass::GetReply)
            ),
            format!("put latency (injection, one-sided) : {} ns", lat("put")),
            format!("get latency (round trip)           : {} ns", lat("get")),
        ],
    }
}

/// FIG3 — a put overlapping an in-progress get is delayed until the get
/// ends.
pub fn fig3() -> Table {
    let block = 1 << 20;
    let w = figures::fig3(block);
    let mut cfg = SimConfig::lockstep(w.n, 1_000).with_detector(DetectorKind::Vanilla);
    cfg.latency = simulator::LatencySpec::InfiniBand;
    cfg.public_len = block;
    cfg.private_len = block;
    let with_get = run(cfg.clone(), w.programs.clone()).put_apply_delays[0];
    let without = run(
        cfg,
        vec![w.programs[0].clone(), Program::new(), Program::new()],
    )
    .put_apply_delays[0];
    Table {
        id: "FIG3",
        title: "put deferred behind an in-progress get on the same data".into(),
        rows: vec![
            format!("put send→apply delay, no concurrent get : {without} ns"),
            format!("put send→apply delay, get in progress   : {with_get} ns"),
            format!(
                "deferral factor                         : {:.1}×",
                with_get as f64 / without.max(1) as f64
            ),
        ],
    }
}

/// FIG4 — concurrent gets are not a race; only the single-clock baseline
/// reports them.
pub fn fig4() -> Table {
    let w = figures::fig4();
    let mut rows = Vec::new();
    for kind in [
        DetectorKind::Dual,
        DetectorKind::Single,
        DetectorKind::Literal,
    ] {
        let r = run(
            SimConfig::debugging(w.n).with_detector(kind),
            w.programs.clone(),
        );
        let rr = r
            .deduped
            .iter()
            .filter(|x| x.class == RaceClass::ReadRead)
            .count();
        rows.push(format!(
            "{:<14} reports {:>2} (read-read false positives: {})",
            kind.label(),
            r.deduped.len(),
            rr
        ));
    }
    Table {
        id: "FIG4",
        title: "two concurrent gets of an initialised variable (no race)".into(),
        rows,
    }
}

/// FIG5a / FIG5b / FIG5c — the three detection scenarios.
pub fn fig5() -> Table {
    let mut rows = Vec::new();
    {
        let w = figures::fig5a();
        let r = run(SimConfig::debugging(w.n), w.programs);
        let clocks = r
            .deduped
            .first()
            .and_then(|rep| rep.previous.as_ref().map(|prev| (prev, &rep.current)));
        rows.push(match clocks {
            Some((prev, cur)) => format!(
                "5a concurrent puts     : {} race ({} × {})",
                r.deduped.len(),
                prev.clock,
                cur.clock
            ),
            None => format!("5a concurrent puts     : {} race", r.deduped.len()),
        });
    }
    {
        let w = figures::fig5b();
        let r = run(SimConfig::debugging(w.n), w.programs);
        rows.push(format!(
            "5b causal get/put chain: {} races (chain value delivered: {})",
            r.deduped.len(),
            r.read_u64(dsm::GlobalAddr::public(0, 0).range(8))
        ));
    }
    {
        let w = figures::fig5c();
        let r = run(SimConfig::debugging(w.n), w.programs);
        let ww_on_a = r
            .deduped
            .iter()
            .filter(|x| x.class == RaceClass::WriteWrite && x.area == race_core::AreaKey::new(1, 0))
            .count();
        rows.push(format!(
            "5c chained m1→m4       : {ww_on_a} WW race on `a` (paper's X needs the strict Algorithm-3 comparison; see ABL-lit)"
        ));
        let w = figures::fig5c_racy();
        let r = run(SimConfig::debugging(w.n), w.programs);
        let ww_on_a = r
            .deduped
            .iter()
            .filter(|x| x.class == RaceClass::WriteWrite && x.area == race_core::AreaKey::new(1, 0))
            .count();
        rows.push(format!(
            "5c racy variant        : {ww_on_a} WW race on `a` (independent chain head)"
        ));
    }
    Table {
        id: "FIG5",
        title: "vector-clock race detection scenarios".into(),
        rows,
    }
}

/// SEC4C — clock storage and wire sizes versus n.
pub fn clocksize() -> Table {
    let mut rows = vec![format!(
        "{:>4} {:>12} {:>12} {:>14} {:>16}",
        "n", "vector (B)", "matrix (B)", "clock B / op", "sparse 2-writer"
    )];
    for n in [2usize, 4, 8, 16, 32, 64] {
        let vec_b = vclock::VectorClock::zero(n).dense_wire_size();
        let mat_b = vclock::MatrixClock::zero(0, n).dense_size_bytes();
        // One remote put with detection: measure actual clock bytes.
        let dst = dsm::GlobalAddr::public(1, 0).range(8);
        let programs: Vec<Program> = (0..n)
            .map(|r| {
                if r == 0 {
                    simulator::ProgramBuilder::new(0).put_u64(1, dst).build()
                } else {
                    Program::new()
                }
            })
            .collect();
        let r = run(SimConfig::lockstep(n, 100), programs);
        let mut dense = vclock::VectorClock::zero(n);
        dense.set(0, 3);
        dense.set(1.min(n - 1), 5);
        let sparse = vclock::SparseClock::from_dense(&dense).sparse_wire_size();
        rows.push(format!(
            "{:>4} {:>12} {:>12} {:>14} {:>16}",
            n,
            vec_b,
            mat_b,
            r.stats.bytes(netsim::OpClass::Clock),
            sparse
        ));
    }
    Table {
        id: "SEC4C",
        title: "clock sizes must grow with n (Charron-Bost lower bound)".into(),
        rows,
    }
}

/// SEC4D-mem — dual store doubles clock memory; granularity trade-off.
pub fn memory() -> Table {
    let w = random_access::generate(random_access::RandomSpec {
        n: 6,
        ops_per_rank: 24,
        hot_words: 12,
        p_write: 0.5,
        locked: false,
        seed: 42,
    });
    let mut rows = vec![format!(
        "{:<14} {:>12} {:>14} {:>10}",
        "detector", "clock bytes", "touched areas", "reports"
    )];
    for kind in [
        DetectorKind::Dual,
        DetectorKind::Single,
        DetectorKind::Vanilla,
    ] {
        let r = run(
            SimConfig::debugging(w.n).with_detector(kind),
            w.programs.clone(),
        );
        let clocks_per_area = match kind {
            DetectorKind::Single => 1,
            DetectorKind::Vanilla => 0,
            _ => 2,
        };
        let areas = if clocks_per_area == 0 {
            0
        } else {
            r.clock_memory_bytes / (clocks_per_area * w.n * 8)
        };
        rows.push(format!(
            "{:<14} {:>12} {:>14} {:>10}",
            kind.label(),
            r.clock_memory_bytes,
            areas,
            r.deduped.len()
        ));
    }
    rows.push(String::new());
    rows.push(format!(
        "{:<14} {:>12} {:>10}",
        "granularity", "clock bytes", "reports"
    ));
    for (label, gran) in [
        ("word (8B)", race_core::Granularity::WORD),
        ("line (64B)", race_core::Granularity::CACHE_LINE),
        ("page (4KB)", race_core::Granularity::PAGE),
    ] {
        let mut cfg = SimConfig::debugging(w.n);
        cfg.detector.granularity = gran;
        let r = run(cfg, w.programs.clone());
        rows.push(format!(
            "{:<14} {:>12} {:>10}",
            label,
            r.clock_memory_bytes,
            r.deduped.len()
        ));
    }
    Table {
        id: "SEC4D-mem",
        title: "dual clocks double the clock memory (and granularity trades memory for precision)"
            .into(),
        rows,
    }
}

/// SEC4D-fp — false positives / negatives per detector, oracle-scored,
/// across write ratios.
pub fn falsepos() -> Table {
    let mut rows = vec![format!(
        "{:<8} {:<14} {:>8} {:>8} {:>8} {:>10} {:>12}",
        "p_write", "detector", "reports", "pair-FP", "site-FN", "precision", "site-recall"
    )];
    for p_write in [0.0, 0.25, 0.5, 1.0] {
        for kind in [
            DetectorKind::Dual,
            DetectorKind::Single,
            DetectorKind::Literal,
        ] {
            let mut reports = 0usize;
            let mut fp = 0usize;
            let mut site_fn = 0usize;
            let mut prec = 0.0f64;
            let mut srec = 0.0f64;
            let seeds = [1u64, 2, 3];
            for &seed in &seeds {
                let w = random_access::generate(random_access::RandomSpec {
                    n: 4,
                    ops_per_rank: 24,
                    hot_words: 6,
                    p_write,
                    locked: false,
                    seed: 0xF0 + seed,
                });
                let r = run(
                    SimConfig::debugging(w.n)
                        .with_detector(kind)
                        .with_seed(seed),
                    w.programs,
                );
                let oracle = Oracle::analyze(&r.trace);
                let pairs = oracle.score(&r.deduped);
                let sites = oracle.site_score(&r.deduped);
                reports += r.deduped.len();
                fp += pairs.false_positives;
                site_fn += sites.false_negatives;
                prec += pairs.precision();
                srec += sites.recall();
            }
            rows.push(format!(
                "{:<8.2} {:<14} {:>8} {:>8} {:>8} {:>10.2} {:>12.2}",
                p_write,
                kind.label(),
                reports,
                fp,
                site_fn,
                prec / seeds.len() as f64,
                srec / seeds.len() as f64,
            ));
        }
    }
    Table {
        id: "SEC4D-fp",
        title:
            "detection quality vs oracle (3 seeds each): dual clock eliminates the false positives"
                .into(),
        rows,
    }
}

/// SEC5A — detection overhead versus vanilla at debugging scale, on a
/// contended (all workers → one slot) and an uncontended (one slot per
/// worker) pattern. Contention makes the Algorithm-1 locks serialise the
/// workers, so the time ratio is pattern-dependent; the message ratio is
/// structural (locks + clock round trips per remote access).
pub fn overhead() -> Table {
    let mut rows = vec![format!(
        "{:<22} {:<4} {:>8} {:>9} {:>7} {:>11} {:>11} {:>8}",
        "pattern", "n", "msgs", "msgs+det", "msg ×", "vtime (µs)", "vtime+det", "time ×"
    )];
    for workers in [2usize, 4, 8, 15] {
        for (label, w) in [
            ("racy shared slot", master_worker::racy(workers, 2)),
            ("slotted (disjoint)", master_worker::slotted(workers, 2)),
        ] {
            let vanilla = run(
                SimConfig::debugging(w.n).with_detector(DetectorKind::Vanilla),
                w.programs.clone(),
            );
            let dual = run(SimConfig::debugging(w.n), w.programs.clone());
            rows.push(format!(
                "{:<22} {:<4} {:>8} {:>9} {:>7.2} {:>11.1} {:>11.1} {:>8.2}",
                label,
                w.n,
                vanilla.stats.total_msgs(),
                dual.stats.total_msgs(),
                dual.stats.total_msgs() as f64 / vanilla.stats.total_msgs() as f64,
                vanilla.virtual_time.as_us_f64(),
                dual.virtual_time.as_us_f64(),
                dual.virtual_time.as_ns() as f64 / vanilla.virtual_time.as_ns().max(1) as f64,
            ));
        }
    }
    Table {
        id: "SEC5A",
        title: "detection overhead at debugging scale (contended vs disjoint result slots)".into(),
        rows,
    }
}

/// SEC5B — one-sided reduction: the owners never send.
pub fn reduction_exp() -> Table {
    let mut rows = vec![format!(
        "{:>4} {:>10} {:>10} {:>10} {:>8}",
        "n", "get-req", "get-reply", "put-msgs", "races"
    )];
    for n in [4usize, 8, 16] {
        let w = reduction::onesided(n);
        let r = run(SimConfig::debugging(n), w.programs);
        rows.push(format!(
            "{:>4} {:>10} {:>10} {:>10} {:>8}",
            n,
            r.stats.msgs(netsim::OpClass::GetRequest),
            r.stats.msgs(netsim::OpClass::GetReply),
            r.stats.msgs(netsim::OpClass::PutData),
            r.deduped.len()
        ));
    }
    Table {
        id: "SEC5B",
        title: "one-sided reduction (future work §V-B): root-only traffic, race-free".into(),
        rows,
    }
}

/// ABL-lit — the literal algorithms versus the corrected dual clock.
pub fn literal() -> Table {
    // Crafted WAR program.
    let word = dsm::GlobalAddr::public(1, 0).range(8);
    let programs = vec![
        simulator::ProgramBuilder::new(0)
            .get(word, dsm::GlobalAddr::private(0, 0).range(8))
            .build(),
        Program::new(),
        simulator::ProgramBuilder::new(2)
            .compute(200_000)
            .put_u64(9, word)
            .build(),
    ];
    let mut rows = vec![format!(
        "{:<14} {:>14} {:>12}",
        "detector", "WAR detected", "fig4 RR-FPs"
    )];
    for kind in [DetectorKind::Dual, DetectorKind::Literal] {
        let r = run(
            SimConfig::debugging(3).with_detector(kind),
            programs.clone(),
        );
        let war = r.deduped.iter().any(|x| x.class == RaceClass::ReadWrite);
        let w4 = figures::fig4();
        let r4 = run(SimConfig::debugging(w4.n).with_detector(kind), w4.programs);
        let rr = r4
            .deduped
            .iter()
            .filter(|x| x.class == RaceClass::ReadRead)
            .count();
        rows.push(format!(
            "{:<14} {:>14} {:>12}",
            kind.label(),
            if war { "yes" } else { "MISSED" },
            rr
        ));
    }
    rows.push(String::new());
    rows.push("strict Algorithm-3 comparison on Fig 5c's clocks (1000 vs 2022):".into());
    let m1 = vclock::VectorClock::from_components(vec![1, 0, 0, 0]);
    let m4 = vclock::VectorClock::from_components(vec![2, 0, 2, 2]);
    rows.push(format!(
        "  standard ≤ : ordered={}  |  strict < : race={}  (explains the paper's X)",
        m1.leq(&m4),
        !vclock::literal_less(&m1, &m4) && !vclock::literal_less(&m4, &m1)
    ));
    Table {
        id: "ABL-lit",
        title: "printed algorithms vs corrected protocol".into(),
        rows,
    }
}

/// SHMEM — the threaded backend at a glance.
pub fn shmem_exp() -> Table {
    let n = 4;
    let counter = shmem::GlobalAddr::public(0, 0).range(8);
    let buggy = shmem::run(shmem::ShmemConfig::new(n), |pe| {
        for _ in 0..20 {
            let (v, _) = pe.get_u64(counter);
            pe.put_u64(counter, v + 1);
        }
    });
    let fixed = shmem::run(shmem::ShmemConfig::new(n), |pe| {
        for _ in 0..20 {
            let guard = pe.lock(counter);
            let (v, _) = pe.get_u64(counter);
            pe.put_u64(counter, v + 1);
            drop(guard);
        }
    });
    Table {
        id: "SHMEM",
        title: "§III-B on real threads: unsynchronised vs locked counter (4 PEs × 20 increments)"
            .into(),
        rows: vec![
            format!(
                "unsynchronised: value {} (expected 80), race reports {}",
                buggy.read_u64(counter),
                buggy.reports.len()
            ),
            format!(
                "lock-protected: value {} (expected 80), race reports {}",
                fixed.read_u64(counter),
                fixed.reports.len()
            ),
        ],
    }
}

/// EXT-atomic — the same shared counter under atomic / locked / racy
/// disciplines: message bill, final value, detection verdicts.
pub fn atomics() -> Table {
    use simulator::workloads::counters;
    let n = 4;
    let increments = 4;
    let mut rows = vec![format!(
        "{:<10} {:>8} {:>8} {:>9} {:>9} {:>12} {:>8}",
        "discipline", "msgs", "atomic", "lock", "put/get", "final value", "races"
    )];
    for (label, w, expected) in [
        (
            "atomic",
            counters::atomic(n, increments),
            Some((n * increments) as u64),
        ),
        ("locked", counters::locked(n, increments), None),
        ("racy", counters::racy(n, increments), None),
    ] {
        let r = run(SimConfig::debugging(n), w.programs.clone());
        let data = r.stats.msgs(netsim::OpClass::PutData)
            + r.stats.msgs(netsim::OpClass::GetRequest)
            + r.stats.msgs(netsim::OpClass::GetReply);
        let value = r.read_u64(counters::counter());
        if let Some(e) = expected {
            assert_eq!(value, e, "atomics must count exactly");
        }
        rows.push(format!(
            "{:<10} {:>8} {:>8} {:>9} {:>9} {:>12} {:>8}",
            label,
            r.stats.total_msgs(),
            r.stats.msgs(netsim::OpClass::Atomic),
            r.stats.msgs(netsim::OpClass::Lock),
            data,
            value,
            r.deduped.len()
        ));
    }
    Table {
        id: "EXT-atomic",
        title: "NIC atomics (§V-B 'new operations'): 4 ranks × 4 increments of one word".into(),
        rows,
    }
}

/// EXT-matvec — symmetric-heap-placed distributed multiply.
pub fn matvec_exp() -> Table {
    use simulator::workloads::matvec;
    let mut rows = vec![format!(
        "{:>2} {:>4} {:>8} {:>10} {:>8} {:>8}",
        "n", "dim", "msgs", "vtime(µs)", "races", "correct"
    )];
    for (n, dim) in [(2usize, 4usize), (4, 8), (6, 12)] {
        let mv = matvec::build(n, dim);
        let r = run(SimConfig::debugging(n), mv.workload.programs.clone());
        let correct = mv
            .gathered
            .iter()
            .enumerate()
            .all(|(i, g)| r.read_u64(*g) == mv.expected[i]);
        rows.push(format!(
            "{:>2} {:>4} {:>8} {:>10.1} {:>8} {:>8}",
            n,
            dim,
            r.stats.total_msgs(),
            r.virtual_time.as_us_f64(),
            r.deduped.len(),
            correct
        ));
    }
    Table {
        id: "EXT-matvec",
        title: "distributed mat-vec on the symmetric heap: correct, race-free, detection on".into(),
        rows,
    }
}

/// EXT-delta — delta-encoded clock updates vs dense retransmission on a
/// protocol-shaped update stream (each op ticks the writer and occasionally
/// absorbs a peer, exactly the shape Algorithm 5's `put_clock` ships).
pub fn delta() -> Table {
    use vclock::{DeltaDecoder, DeltaEncoder, VectorClock};
    let mut rows = vec![format!(
        "{:>4} {:>8} {:>12} {:>12} {:>8}",
        "n", "updates", "dense (B)", "delta (B)", "saving"
    )];
    for n in [4usize, 16, 64] {
        let updates = 100u64;
        let mut enc = DeltaEncoder::new(n);
        let mut dec = DeltaDecoder::new(n);
        let mut clock = VectorClock::zero(n);
        let (mut dense_b, mut delta_b) = (0usize, 0usize);
        for step in 1..=updates {
            clock.tick(0);
            if step % 5 == 0 {
                let peer = (step as usize) % n;
                let v = clock.get(peer) + 1;
                clock.set(peer, v);
            }
            let d = enc.encode(&clock);
            dense_b += clock.dense_wire_size();
            delta_b += d.wire_size();
            dec.decode(&d);
        }
        rows.push(format!(
            "{:>4} {:>8} {:>12} {:>12} {:>7.1}×",
            n,
            updates,
            dense_b,
            delta_b,
            dense_b as f64 / delta_b.max(1) as f64
        ));
    }
    Table {
        id: "EXT-delta",
        title: "delta-encoded clock updates (the §IV-C width bound limits state, not traffic)"
            .into(),
        rows,
    }
}

/// All experiments, in index order.
pub fn all_tables() -> Vec<Table> {
    vec![
        fig1(),
        fig2(),
        fig3(),
        fig4(),
        fig5(),
        clocksize(),
        memory(),
        falsepos(),
        overhead(),
        reduction_exp(),
        literal(),
        atomics(),
        matvec_exp(),
        delta(),
        shmem_exp(),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_table_renders() {
        for t in super::all_tables() {
            let text = t.to_string();
            assert!(text.contains(t.id));
            assert!(!t.rows.is_empty());
        }
    }
}

//! The `repro --scenarios` harness: the oracle-validated scenario matrix.
//!
//! Every communication-pattern twin in [`scenario_matrix`] carries a
//! [`ScenarioTruth`] annotation (its complete race-site catalogue, or
//! race-freedom). The harness drives each scenario through the full engine
//! across **detector kinds × shard counts 1–4 × network models** (quiet
//! latency/topology variants plus the PR-6 fault matrix's delay and
//! reorder plans — the non-lossy plans: dropped messages no longer wedge
//! the engine, which force-completes lost waits degraded, but a run that
//! skipped detection traffic cannot be graded against the oracle's
//! ground truth; the lossy plans' wedge-free smoke lives in
//! `repro --chaos`), runs [`Oracle::analyze`] on each recorded trace, and
//! asserts:
//!
//! * **annotation soundness** — every site the oracle finds racy is in the
//!   scenario's declared catalogue; race-free twins have empty oracle
//!   truth in every cell;
//! * **annotation completeness** — `always_races` twins hit *all* their
//!   declared sites in every cell (their conflicts carry no
//!   synchronisation, so no schedule can order them);
//! * **detector contracts** — the dual clock is sound (zero false-positive
//!   pairs, zero reports on race-free twins) and site-complete; the
//!   single clock is site-complete with its false positives confined to
//!   the documented read-read class (§IV-D); the literal mode's scores
//!   are recorded but not recall-gated (Algorithm 1's write-after-read
//!   blind spot is a *finding*, not a bug);
//! * **shard parity** — the deduped report stream is identical across
//!   shard counts for a fixed (scenario, kind, net, seed);
//! * **hygiene** — no panic escapes, no rank wedges, quiet nets surface
//!   no substrate errors.
//!
//! Everything is a pure function of the seed, so a failure line names the
//! exact `(scenario, detector, shards, net, seed)` cell to replay, and the
//! same seed always reproduces the same [`Score`]s.

use std::panic::{catch_unwind, AssertUnwindSafe};

use netsim::{FaultSpec, Topology};
use race_core::{DetectorKind, Oracle, RaceClass, RaceReport, Score};
use simulator::workloads::{
    fanin, fanout, handshake, lock_contention, pipeline_nm, poisson, producer_consumer, sendsend,
    RaceGrade, ScenarioTruth, Workload,
};
use simulator::{Engine, LatencySpec, SimConfig};

use crate::chaos;

/// Detector kinds the matrix sweeps: the clock-based kinds the paper
/// compares (all shardable, so the shard axis is meaningful for each).
pub const MATRIX_KINDS: [DetectorKind; 3] = [
    DetectorKind::Dual,
    DetectorKind::Single,
    DetectorKind::Literal,
];

/// Shard counts the matrix sweeps (acceptance: 1–4).
pub const MATRIX_SHARDS: [usize; 4] = [1, 2, 3, 4];

/// The scenario matrix: eight communication patterns, each as a race-free /
/// racy twin with embedded ground truth. The first six racy twins are
/// graded [`RaceGrade::Always`] (no synchronisation at all on the racy
/// sites); the last two ([`handshake`], [`sendsend`]) are graded
/// [`RaceGrade::Sometimes`] — their conflicts are ordered by an
/// atomic-flag data-flow edge in some interleavings and not in others, so
/// the sweep must observe both outcomes across cells. Scales are
/// debugging-sized (§V-A) so the full cross product stays a smoke-test,
/// not a soak.
pub fn scenario_matrix() -> Vec<Workload> {
    vec![
        fanout::safe(4, 2),
        fanout::racy(4, 2),
        fanin::safe(4, 2),
        fanin::racy(4, 2),
        pipeline_nm::safe(4, 3),
        pipeline_nm::racy(4, 3),
        poisson::safe(4, 3, 2_000, 11),
        poisson::racy(4, 3, 2_000, 11),
        producer_consumer::safe(4, 3),
        producer_consumer::racy(4, 3),
        lock_contention::safe(4, 2, 2),
        lock_contention::racy(4, 2, 2),
        handshake::safe(4, 2),
        handshake::racy(4, 2),
        sendsend::safe(3, 2),
        sendsend::racy(3, 2),
    ]
}

/// One network model of the sweep: latency spec, topology and an optional
/// fault plan (delay / reorder only — a lossy plan completes degraded by
/// skipping lost waits, so its trace cannot be oracle-graded; its
/// wedge-free smoke lives in `repro --chaos`).
#[derive(Debug, Clone)]
pub struct NetModel {
    /// Row label.
    pub name: &'static str,
    /// Latency model.
    pub latency: LatencySpec,
    /// Interconnect topology (`None` = the scenario-sized full mesh).
    pub topology: Option<fn(usize) -> Topology>,
    /// Fault plan, straight from [`chaos::spec_matrix`].
    pub faults: Option<FaultSpec>,
}

fn fault_plan(label: &str) -> FaultSpec {
    chaos::spec_matrix()
        .into_iter()
        .find(|(l, _)| *l == label)
        .map(|(_, s)| s)
        .unwrap_or_else(|| panic!("fault plan {label:?} missing from the chaos matrix"))
}

/// The network axis: the debugging default, two deterministic
/// latency/topology variants, and the two non-lossy fault plans of the
/// PR-6 chaos matrix.
pub fn net_matrix() -> Vec<NetModel> {
    vec![
        NetModel {
            name: "jittered-ib",
            latency: LatencySpec::JitteredInfiniBand { max_ns: 2_000 },
            topology: None,
            faults: None,
        },
        NetModel {
            name: "lockstep-ring",
            latency: LatencySpec::Constant { ns: 500 },
            topology: Some(|n| Topology::Ring { nodes: n }),
            faults: None,
        },
        NetModel {
            name: "ethernet-star",
            latency: LatencySpec::Ethernet,
            topology: Some(|_| Topology::Star { hub: 0 }),
            faults: None,
        },
        NetModel {
            name: "fault-delay",
            latency: LatencySpec::JitteredInfiniBand { max_ns: 2_000 },
            topology: None,
            faults: Some(fault_plan("delay")),
        },
        NetModel {
            name: "fault-reorder",
            latency: LatencySpec::JitteredInfiniBand { max_ns: 2_000 },
            topology: None,
            faults: Some(fault_plan("reorder")),
        },
    ]
}

/// One graded cell of the matrix: the oracle's verdict on one engine run.
/// Deliberately timing-free, so two sweeps from the same seed must produce
/// *equal* cells (the determinism acceptance check).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioCell {
    /// Workload name.
    pub scenario: String,
    /// Detector kind label.
    pub detector: &'static str,
    /// Shard count.
    pub shards: usize,
    /// Network model label.
    pub net: &'static str,
    /// Run seed.
    pub seed: u64,
    /// Deduped report count.
    pub reports: usize,
    /// Oracle ground-truth pair count.
    pub truth_pairs: usize,
    /// Oracle ground-truth site count.
    pub truth_sites: usize,
    /// Pair-level score of the deduped reports.
    pub pairs: Score,
    /// Site-level score of the deduped reports.
    pub sites: Score,
    /// Whether fault injection actually fired.
    pub degraded: bool,
}

/// Outcome of a scenario sweep, mirroring [`chaos::ChaosReport`]:
/// human-readable verdict lines plus the graded cells (`repro --scenarios`
/// exits non-zero when `ok` is false).
pub struct ScenarioReport {
    /// One line per scenario × net summary; failures are prefixed `FAIL`.
    pub lines: Vec<String>,
    /// True when every ground-truth assertion held across the matrix.
    pub ok: bool,
    /// Total engine runs executed.
    pub runs: usize,
    /// Every graded cell, in sweep order.
    pub cells: Vec<ScenarioCell>,
}

impl ScenarioReport {
    fn fail(&mut self, line: String) {
        self.ok = false;
        self.lines.push(format!("FAIL {line}"));
    }
}

struct CellOutcome {
    cell: ScenarioCell,
    deduped: Vec<RaceReport>,
    read_read_only: bool,
    oracle_truth_sites: Vec<(usize, usize)>,
    stuck: usize,
    errors: usize,
}

fn run_cell(
    w: &Workload,
    kind: DetectorKind,
    shards: usize,
    net: &NetModel,
    seed: u64,
) -> Result<CellOutcome, String> {
    let mut cfg = SimConfig::debugging(w.n)
        .with_seed(seed)
        .with_detector(kind)
        .with_shards(shards);
    cfg.latency = net.latency;
    if let Some(topo) = net.topology {
        cfg.topology = topo(w.n);
    }
    if let Some(spec) = net.faults {
        cfg = cfg.with_faults(spec);
    }
    let programs = w.programs.clone();
    let (name, net_name) = (w.name.clone(), net.name);
    catch_unwind(AssertUnwindSafe(move || {
        let r = Engine::new(cfg, programs).run();
        let oracle = Oracle::analyze(&r.trace);
        let pairs = oracle.score(&r.deduped);
        let sites = oracle.site_score(&r.deduped);
        let mut oracle_truth_sites: Vec<(usize, usize)> =
            oracle.truth_sites().into_iter().collect();
        oracle_truth_sites.sort_unstable();
        CellOutcome {
            cell: ScenarioCell {
                scenario: name,
                detector: kind.label(),
                shards,
                net: net_name,
                seed,
                reports: r.deduped.len(),
                truth_pairs: oracle.truth().len(),
                truth_sites: oracle_truth_sites.len(),
                pairs,
                sites,
                degraded: r.summary.degraded,
            },
            read_read_only: r.deduped.iter().all(|p| p.class == RaceClass::ReadRead),
            oracle_truth_sites,
            stuck: r.stuck.len(),
            errors: r.errors.len(),
            deduped: r.deduped,
        }
    }))
    .map_err(|payload| {
        payload
            .downcast::<String>()
            .map(|s| *s)
            .unwrap_or_else(|p| {
                p.downcast::<&'static str>()
                    .map(|s| s.to_string())
                    .unwrap_or_else(|_| "non-string panic payload".into())
            })
    })
}

/// Apply every ground-truth and contract assertion to one graded cell.
fn check_cell(out: &CellOutcome, truth: &ScenarioTruth, report: &mut ScenarioReport) {
    let c = &out.cell;
    let at = format!(
        "{} [{} shards={} net={} seed={}]",
        c.scenario, c.detector, c.shards, c.net, c.seed
    );
    if out.stuck > 0 {
        report.fail(format!("{at}: {} rank(s) wedged", out.stuck));
        return;
    }
    if out.errors > 0 && c.net != "fault-delay" && c.net != "fault-reorder" {
        report.fail(format!(
            "{at}: {} substrate error(s) on a quiet net",
            out.errors
        ));
    }
    // Annotation soundness: the oracle can never find a site outside the
    // declared catalogue.
    for site in &out.oracle_truth_sites {
        if !truth.racy_sites.contains(site) {
            report.fail(format!(
                "{at}: oracle found undeclared race site {site:?} (annotation incomplete)"
            ));
        }
    }
    if truth.is_race_free() && c.truth_pairs > 0 {
        report.fail(format!(
            "{at}: declared race-free but oracle found {} true pair(s)",
            c.truth_pairs
        ));
    }
    // Annotation completeness: always-racing twins hit every declared site
    // in every schedule. (`sometimes` twins are checked at sweep level
    // instead: both outcomes must appear somewhere across the matrix.)
    if truth.always_races() && out.oracle_truth_sites != truth.racy_sites {
        report.fail(format!(
            "{at}: always-racing twin hit sites {:?}, declared {:?}",
            out.oracle_truth_sites, truth.racy_sites
        ));
    }
    // Detector contracts.
    match c.detector {
        "dual-clock" => {
            if c.pairs.false_positives > 0 {
                report.fail(format!(
                    "{at}: dual clock reported {} false-positive pair(s)",
                    c.pairs.false_positives
                ));
            }
            if truth.is_race_free() && c.reports > 0 {
                report.fail(format!(
                    "{at}: race-free twin but dual clock reported {} race(s)",
                    c.reports
                ));
            }
            if c.sites.false_negatives > 0 {
                report.fail(format!(
                    "{at}: dual clock missed {} true race site(s)",
                    c.sites.false_negatives
                ));
            }
        }
        "single-clock" => {
            if c.sites.false_negatives > 0 {
                report.fail(format!(
                    "{at}: single clock missed {} true race site(s)",
                    c.sites.false_negatives
                ));
            }
            if truth.is_race_free() && c.reports > 0 && !out.read_read_only {
                report.fail(format!(
                    "{at}: single clock's false positives must be read-read only"
                ));
            }
        }
        // literal-paper: scores recorded, recall not gated — Algorithm 1's
        // write-after-read blind spot is the measured finding.
        _ => {}
    }
}

/// Sweep the whole matrix for one seed; returns cells in deterministic
/// order and appends verdicts to `report`.
fn sweep_seed(seed: u64, report: &mut ScenarioReport) {
    let nets = net_matrix();
    for w in scenario_matrix() {
        let Some(truth) = w.truth.clone() else {
            report.fail(format!("{}: matrix scenario without ground truth", w.name));
            continue;
        };
        let mut cells_here = 0usize;
        for net in &nets {
            for kind in MATRIX_KINDS {
                // Shard-parity baseline: the 1-shard deduped stream.
                let mut baseline: Option<Vec<RaceReport>> = None;
                for shards in MATRIX_SHARDS {
                    let out = match run_cell(&w, kind, shards, net, seed) {
                        Ok(o) => o,
                        Err(msg) => {
                            report.fail(format!(
                                "{} [{} shards={} net={} seed={}]: panicked: {msg}",
                                w.name,
                                kind.label(),
                                shards,
                                net.name,
                                seed
                            ));
                            continue;
                        }
                    };
                    report.runs += 1;
                    cells_here += 1;
                    check_cell(&out, &truth, report);
                    match &baseline {
                        None => baseline = Some(out.deduped.clone()),
                        Some(base) => {
                            if *base != out.deduped {
                                report.fail(format!(
                                    "{} [{} net={} seed={}]: report stream diverges at {} shard(s)",
                                    w.name,
                                    kind.label(),
                                    net.name,
                                    seed,
                                    shards
                                ));
                            }
                        }
                    }
                    report.cells.push(out.cell);
                }
            }
        }
        report.lines.push(format!(
            "scenario {:<28} seed {seed}: {cells_here} cell(s) ok",
            w.name
        ));
    }
}

/// Run the full oracle-validated sweep over seeds `0..seeds`.
pub fn run_scenarios(seeds: u64) -> ScenarioReport {
    let mut report = ScenarioReport {
        lines: Vec::new(),
        ok: true,
        runs: 0,
        cells: Vec::new(),
    };
    for seed in 0..seeds.max(1) {
        sweep_seed(seed, &mut report);
    }
    check_schedule_dependence(&mut report);
    report
}

/// Sweep-level check for `sometimes`-graded twins. Per twin, at least one
/// cell must hit a catalogued site (the races are real). Across all
/// `sometimes` twins together, at least one cell must *miss* a catalogued
/// site (the races are demonstrably not inevitable) — aggregate rather
/// than per twin because a saturated-contention twin like
/// `lockcontend-racy` is schedule-dependent only through schedules (full
/// serialisation) the random sweep never samples. Per-cell soundness
/// already pins every oracle site inside the catalogue, so `truth_sites`
/// counts suffice here.
fn check_schedule_dependence(report: &mut ScenarioReport) {
    let mut any_partial = false;
    let mut sometimes_twins = 0usize;
    for w in scenario_matrix() {
        let Some(truth) = w.truth else { continue };
        if truth.grade != RaceGrade::Sometimes {
            continue;
        }
        sometimes_twins += 1;
        let declared = truth.racy_sites.len();
        let (mut hit, mut partial) = (false, false);
        for c in report.cells.iter().filter(|c| c.scenario == w.name) {
            hit |= c.truth_sites > 0;
            partial |= c.truth_sites < declared;
        }
        any_partial |= partial;
        if !hit {
            report.fail(format!(
                "{}: schedule-dependent twin never raced in any cell of the sweep",
                w.name
            ));
        }
    }
    if sometimes_twins > 0 && !any_partial {
        report.fail(
            "every schedule-dependent twin hit every declared site in every cell \
             of the sweep (no schedule dependence observed)"
                .to_string(),
        );
    }
}

// ---------------------------------------------------------------------------
// Bench rows (the BENCH_0005.json content)
// ---------------------------------------------------------------------------

/// One perf row of `repro --scenarios`: a scenario × detector cell at the
/// baseline configuration, carrying throughput *and* the oracle's scored
/// columns — the "correctness fixture as bench workload" shape.
#[derive(Debug, Clone)]
pub struct ScenarioRow {
    /// Workload name.
    pub scenario: String,
    /// Detector kind label.
    pub detector: &'static str,
    /// Process count.
    pub n: usize,
    /// Shard count.
    pub shards: usize,
    /// Network model label.
    pub net: &'static str,
    /// Run seed.
    pub seed: u64,
    /// Clocked accesses in the recorded trace.
    pub accesses: usize,
    /// Mean wall-clock ns per engine run (whole simulation, calibrated).
    pub wall_ns_per_run: u64,
    /// Trace accesses per wall-clock second.
    pub accesses_per_sec: u64,
    /// Deduped report count.
    pub reports: usize,
    /// Oracle ground-truth pair / site counts.
    pub truth_pairs: usize,
    /// Oracle ground-truth site count.
    pub truth_sites: usize,
    /// Pair-level precision/recall and site-level precision/recall.
    pub pair_precision: f64,
    /// Pair-level recall.
    pub pair_recall: f64,
    /// Site-level precision.
    pub site_precision: f64,
    /// Site-level recall.
    pub site_recall: f64,
}

impl ScenarioRow {
    /// The single-line JSON shape committed as `BENCH_0005.json`
    /// (hand-formatted like every producer in this workspace).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"scenario\":\"{}\",\"detector\":\"{}\",\"n\":{},\"shards\":{},",
                "\"net\":\"{}\",\"seed\":{},\"accesses\":{},\"wall_ns_per_run\":{},",
                "\"accesses_per_sec\":{},\"reports\":{},\"truth_pairs\":{},",
                "\"truth_sites\":{},\"pair_precision\":{:.4},\"pair_recall\":{:.4},",
                "\"site_precision\":{:.4},\"site_recall\":{:.4}}}"
            ),
            self.scenario,
            self.detector,
            self.n,
            self.shards,
            self.net,
            self.seed,
            self.accesses,
            self.wall_ns_per_run,
            self.accesses_per_sec,
            self.reports,
            self.truth_pairs,
            self.truth_sites,
            self.pair_precision,
            self.pair_recall,
            self.site_precision,
            self.site_recall,
        )
    }
}

/// Produce the BENCH_0005 rows: every scenario × matrix kind at the
/// baseline net, 1 shard, seed 1, wall-clock calibrated to at least ~60 ms
/// or 64 runs per row. Scores are seed-deterministic; only the timing
/// columns vary between hosts.
pub fn bench_rows_scenarios() -> Vec<ScenarioRow> {
    let seed = 1u64;
    let mut rows = Vec::new();
    for w in scenario_matrix() {
        for kind in MATRIX_KINDS {
            let cfg = || {
                SimConfig::debugging(w.n)
                    .with_seed(seed)
                    .with_detector(kind)
            };
            // Calibrate: run once, then repeat until the budget is spent.
            let budget = std::time::Duration::from_millis(60);
            let started = std::time::Instant::now();
            let mut r = Engine::new(cfg(), w.programs.clone()).run();
            let mut runs = 1u32;
            while started.elapsed() < budget && runs < 64 {
                r = Engine::new(cfg(), w.programs.clone()).run();
                runs += 1;
            }
            let wall_ns_per_run = (started.elapsed().as_nanos() / u128::from(runs)) as u64;
            let oracle = Oracle::analyze(&r.trace);
            let pairs = oracle.score(&r.deduped);
            let sites = oracle.site_score(&r.deduped);
            let accesses = r.trace.events.len();
            rows.push(ScenarioRow {
                scenario: w.name.clone(),
                detector: kind.label(),
                n: w.n,
                shards: 1,
                net: "jittered-ib",
                seed,
                accesses,
                wall_ns_per_run,
                accesses_per_sec: if wall_ns_per_run == 0 {
                    0
                } else {
                    (accesses as u128 * 1_000_000_000 / wall_ns_per_run as u128) as u64
                },
                reports: r.deduped.len(),
                truth_pairs: oracle.truth().len(),
                truth_sites: oracle.truth_sites().len(),
                pair_precision: pairs.precision(),
                pair_recall: pairs.recall(),
                site_precision: sites.precision(),
                site_recall: sites.recall(),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_sixteen_annotated_scenarios_in_twin_pairs() {
        let m = scenario_matrix();
        assert_eq!(m.len(), 16);
        let mut sometimes = 0usize;
        for pair in m.chunks(2) {
            let safe = pair[0].truth.as_ref().unwrap();
            let racy = pair[1].truth.as_ref().unwrap();
            assert!(safe.is_race_free(), "{} must be race-free", pair[0].name);
            assert!(
                !racy.is_race_free(),
                "{} must declare race sites",
                pair[1].name
            );
            match racy.grade {
                RaceGrade::Always => {}
                RaceGrade::Sometimes => sometimes += 1,
                RaceGrade::Never => panic!("{} racy twin graded never", pair[1].name),
            }
        }
        assert_eq!(
            sometimes, 3,
            "the lock-contention (RMW absorb), handshake and send/send twins \
             are schedule-dependent"
        );
    }

    #[test]
    fn net_matrix_reuses_the_chaos_fault_plans() {
        let nets = net_matrix();
        assert_eq!(nets.len(), 5);
        let delay = nets.iter().find(|n| n.name == "fault-delay").unwrap();
        assert_eq!(delay.faults, Some(fault_plan("delay")));
        assert!(
            nets.iter()
                .filter_map(|n| n.faults)
                .all(|f| f.drop == 0.0 && f.duplicate == 0.0),
            "only non-lossy, non-duplicating plans — skipped waits can't be oracle-graded"
        );
    }

    #[test]
    fn a_wrong_annotation_fails_the_sweep() {
        // The exit-1 path: grade a genuinely racy run against a falsified
        // race-free annotation and the harness must flag it.
        let w = fanout::racy(4, 2);
        let net = &net_matrix()[0];
        let out = run_cell(&w, DetectorKind::Dual, 1, net, 1).unwrap();
        let mut report = ScenarioReport {
            lines: Vec::new(),
            ok: true,
            runs: 0,
            cells: Vec::new(),
        };
        check_cell(&out, &ScenarioTruth::race_free(), &mut report);
        assert!(!report.ok, "undeclared races must fail the sweep");
        assert!(report.lines.iter().any(|l| l.starts_with("FAIL")));

        // And an annotation claiming more sites than exist must also fail.
        let mut report = ScenarioReport {
            lines: Vec::new(),
            ok: true,
            runs: 0,
            cells: Vec::new(),
        };
        let inflated = ScenarioTruth::always(vec![(1, 0), (2, 0), (3, 0), (3, 7)]);
        check_cell(&out, &inflated, &mut report);
        assert!(
            !report.ok,
            "an unhit declared site must fail an always twin"
        );
    }

    #[test]
    fn scenario_row_json_is_single_line_with_scored_columns() {
        let row = ScenarioRow {
            scenario: "fanout-racy(4p,2r)".into(),
            detector: "dual-clock",
            n: 4,
            shards: 1,
            net: "jittered-ib",
            seed: 1,
            accesses: 100,
            wall_ns_per_run: 1_000,
            accesses_per_sec: 100_000_000,
            reports: 3,
            truth_pairs: 6,
            truth_sites: 3,
            pair_precision: 1.0,
            pair_recall: 0.5,
            site_precision: 1.0,
            site_recall: 1.0,
        };
        let json = row.to_json();
        assert!(!json.contains('\n'));
        for key in [
            "\"scenario\":",
            "\"detector\":",
            "\"pair_precision\":",
            "\"site_recall\":",
            "\"accesses_per_sec\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"pair_recall\":0.5000"));
    }
}

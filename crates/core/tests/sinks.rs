//! Differential property tests for the `race_core::api` report-streaming
//! layer: driving any detector through a sink (the façade's hot path) must
//! produce **byte-for-byte** the report stream of the legacy internal log,
//! for every [`DetectorKind`] and shard count — and the aggregating sinks
//! must retain bounded state, never per-report copies.

use proptest::prelude::*;
use race_core::api::{CountingSink, DetectorConfig, SummarySink, VecSink};
use race_core::{DetectorKind, DsmOp, Granularity, OpKind, RaceSummary};

use dsm::addr::GlobalAddr;

/// One random step of a workload (same decoding scheme as the
/// `differential.rs` suite, kept local so the two files stay independent).
#[derive(Debug, Clone)]
enum Step {
    Op(DsmOp),
    Barrier,
    Release { rank: usize, lock: (usize, usize) },
    Acquire { rank: usize, lock: (usize, usize) },
}

fn decode(n: usize, raw: (usize, usize, usize, usize, usize), op_id: u64) -> Step {
    let (kind_sel, actor_raw, target_raw, word, len_sel) = raw;
    let actor = actor_raw % n;
    let target = target_raw % n;
    let offset = (word % 12) * 8;
    let len = [8usize, 16, 24][len_sel % 3];
    let public = GlobalAddr::public(target, offset).range(len);
    let own_word = GlobalAddr::public(target, offset).range(8);
    let private = GlobalAddr::private(actor, 0).range(len);
    match kind_sel % 10 {
        0 | 1 => Step::Op(DsmOp {
            op_id,
            actor,
            kind: OpKind::LocalWrite { range: public },
        }),
        2 | 3 => Step::Op(DsmOp {
            op_id,
            actor,
            kind: OpKind::LocalRead { range: public },
        }),
        4 => Step::Op(DsmOp {
            op_id,
            actor,
            kind: OpKind::Put {
                src: private,
                dst: public,
            },
        }),
        5 => Step::Op(DsmOp {
            op_id,
            actor,
            kind: OpKind::Get {
                src: public,
                dst: private,
            },
        }),
        6 => Step::Op(DsmOp {
            op_id,
            actor,
            kind: OpKind::AtomicRmw { range: own_word },
        }),
        7 => Step::Barrier,
        8 => Step::Release {
            rank: actor,
            lock: (target, offset),
        },
        _ => Step::Acquire {
            rank: actor,
            lock: (target, offset),
        },
    }
}

/// Drive the legacy path: `observe()` into the detector's internal log.
fn drive_legacy(config: &DetectorConfig, steps: &[Step]) -> Vec<race_core::RaceReport> {
    let mut det = config.build();
    for step in steps {
        match step {
            Step::Op(op) => {
                det.observe(op, &[]);
            }
            Step::Barrier => det.on_barrier(),
            Step::Release { rank, lock } => det.on_release(*rank, *lock),
            Step::Acquire { rank, lock } => det.on_acquire(*rank, *lock),
        }
    }
    det.flush();
    det.reports().to_vec()
}

/// Drive the façade path: a `Session` streaming into `VecSink`.
fn drive_session(
    config: &DetectorConfig,
    steps: &[Step],
) -> (Vec<race_core::RaceReport>, RaceSummary) {
    let mut session = config.session();
    for step in steps {
        match step {
            Step::Op(op) => {
                session.observe(op, &[]);
            }
            Step::Barrier => session.on_barrier(),
            Step::Release { rank, lock } => session.on_release(*rank, *lock),
            Step::Acquire { rank, lock } => session.on_acquire(*rank, *lock),
        }
    }
    let (summary, sink) = session.finish();
    (sink.reports().to_vec(), summary)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For random op streams, the `VecSink` stream equals the legacy
    /// `reports()` log byte-for-byte, across every `DetectorKind` and
    /// shard counts 1–4 — and the session's bounded summary agrees with
    /// the summary of the retained stream.
    #[test]
    fn vec_sink_stream_equals_legacy_log(
        n in 2usize..5,
        raw in collection::vec((0usize..10, 0usize..8, 0usize..8, 0usize..16, 0usize..3), 1..50),
        shards in 1usize..5,
    ) {
        let steps: Vec<Step> = raw
            .iter()
            .enumerate()
            .map(|(i, &r)| decode(n, r, i as u64))
            .collect();
        for kind in DetectorKind::ALL {
            for granularity in [Granularity::WORD, Granularity::CACHE_LINE] {
                let config = DetectorConfig::new(kind, n)
                    .with_granularity(granularity)
                    .with_shards(shards);
                let legacy = drive_legacy(&config, &steps);
                let (streamed, summary) = drive_session(&config, &steps);
                prop_assert_eq!(
                    &legacy, &streamed,
                    "sink stream diverges kind={:?} gran={:?} shards={}",
                    kind, granularity, shards
                );
                prop_assert_eq!(summary.total, streamed.len());
                let recomputed = RaceSummary::from_reports(&streamed);
                prop_assert_eq!(summary.by_class, recomputed.by_class);
                prop_assert_eq!(summary.by_area, recomputed.by_area);
                prop_assert_eq!(summary.by_process_pair, recomputed.by_process_pair);
            }
        }
    }

    /// Batched configs buffer but must emit the identical stream once
    /// flushed (capacity chosen small so mid-stream drains happen).
    #[test]
    fn batched_session_stream_equals_legacy_log(
        n in 2usize..5,
        raw in collection::vec((0usize..10, 0usize..8, 0usize..8, 0usize..16, 0usize..3), 1..50),
        shards in 1usize..4,
        batch in 1usize..9,
    ) {
        let steps: Vec<Step> = raw
            .iter()
            .enumerate()
            .map(|(i, &r)| decode(n, r, i as u64))
            .collect();
        let unbatched = DetectorConfig::new(DetectorKind::Dual, n).with_shards(shards);
        let batched = unbatched.clone().with_batch(batch);
        let legacy = drive_legacy(&unbatched, &steps);
        let (streamed, _) = drive_session(&batched, &steps);
        prop_assert_eq!(legacy, streamed, "shards={} batch={}", shards, batch);
    }

    /// `SummarySink` (and the session's own aggregate) retain O(areas)
    /// state: bounded by distinct classes / areas / process pairs, never
    /// growing with the report count.
    #[test]
    fn summary_sink_memory_is_o_areas(
        n in 2usize..5,
        raw in collection::vec((0usize..10, 0usize..8, 0usize..8, 0usize..16, 0usize..3), 1..60),
    ) {
        let steps: Vec<Step> = raw
            .iter()
            .enumerate()
            .map(|(i, &r)| decode(n, r, i as u64))
            .collect();
        let config = DetectorConfig::new(DetectorKind::Single, n); // noisiest kind
        let mut session = config.session_with(Box::new(SummarySink::default()));
        let mut distinct_areas = std::collections::BTreeSet::new();
        let mut total = 0usize;
        for step in &steps {
            if let Step::Op(op) = step {
                total += session.observe(op, &[]);
            } else if let Step::Barrier = step {
                session.on_barrier();
            }
        }
        let summary = session.summary();
        for area in summary.by_area.keys() {
            distinct_areas.insert(*area);
        }
        prop_assert_eq!(summary.total, total);
        // Bounded state: classes ≤ 3, areas ≤ touched areas, pairs ≤ n².
        prop_assert!(summary.by_class.len() <= 3);
        prop_assert!(summary.by_area.len() <= 12 * n, "areas bounded by the address pool");
        prop_assert!(summary.by_process_pair.len() <= n * n);
        // And no per-report retention anywhere in the session.
        prop_assert!(session.reports().is_empty(), "aggregating sink keeps no reports");
    }
}

/// Memory shape of the aggregating sinks, checked structurally: a million
/// same-pair reports leave a one-entry summary and a two-word counter.
#[test]
fn aggregating_sinks_do_not_grow_with_report_count() {
    use race_core::api::ReportSink;
    use race_core::{AccessKind, AccessSummary, AreaKey, RaceClass, RaceReport};
    use std::sync::Arc;
    use vclock::VectorClock;

    let report = RaceReport {
        detector: "test",
        class: RaceClass::WriteWrite,
        current: AccessSummary {
            id: 1,
            process: 0,
            kind: AccessKind::Write,
            range: GlobalAddr::public(1, 0).range(8),
            clock: Arc::new(VectorClock::zero(2)),
            atomic: false,
        },
        previous: None,
        area: AreaKey::new(1, 0),
    };
    let mut summary = SummarySink::default();
    let mut counting = CountingSink::default();
    let mut vec = VecSink::new();
    for _ in 0..100_000 {
        summary.on_report(&report);
        counting.on_report(&report);
    }
    for _ in 0..100 {
        vec.on_report(&report);
    }
    assert_eq!(summary.summary().total, 100_000);
    assert_eq!(summary.summary().by_area.len(), 1, "one area, one entry");
    assert_eq!(summary.summary().by_class.len(), 1);
    assert_eq!(counting.total(), 100_000);
    assert_eq!(counting.true_races(), 100_000);
    assert_eq!(vec.len(), 100, "only the retaining sink grows");
}

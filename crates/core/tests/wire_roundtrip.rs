//! Round-trip property test for the epoch-delta clock transport
//! (`race_core::wire`): on random interleavings of ticks, synchronisation
//! merges and shard sends, the delta-encoded stream applied shard-side must
//! reconstruct exactly the clocks an always-full-snapshot transport ships —
//! for every shard, every actor, at every step.
//!
//! This is the wire-format half of the sharded pipeline's proof obligation;
//! the end-to-end half (byte-identical reports) lives in `differential.rs`.

use std::sync::Arc;

use proptest::prelude::*;
use race_core::{ClockCache, ClockEncoder, ClockWire};
use vclock::VectorClock;

const N: usize = 4;
const SHARDS: usize = 3;

/// One scripted router step.
#[derive(Debug, Clone)]
enum Step {
    /// `actor` merges `other`'s current clock (a sync event: read-absorb,
    /// barrier leg, or lock hand-off — anything that bumps the sync
    /// generation).
    Sync { actor: usize, other: usize },
    /// `actor` performs an op whose accesses hit the shards named by the
    /// low [`SHARDS`] bits of `mask` (each set shard receives `items`
    /// routed accesses, exercising the `Cached` re-send path).
    Op {
        actor: usize,
        mask: usize,
        items: usize,
    },
}

fn decode(raw: (usize, usize, usize, usize)) -> Step {
    let (sel, a, b, c) = raw;
    let actor = a % N;
    if sel % 4 == 0 {
        let other = (actor + 1 + b % (N - 1)) % N;
        Step::Sync { actor, other }
    } else {
        Step::Op {
            actor,
            mask: 1 + b % ((1 << SHARDS) - 1), // at least one shard
            items: 1 + c % 3,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn delta_stream_reconstructs_the_full_snapshot_stream(
        raw in proptest::collection::vec(
            (0usize..8, 0usize..N, 0usize..64, 0usize..4),
            1..80,
        )
    ) {
        let mut clocks: Vec<VectorClock> = (0..N).map(|_| VectorClock::zero(N)).collect();
        let mut gens = [0u64; N];
        let mut encoders: Vec<ClockEncoder> =
            (0..SHARDS).map(|_| ClockEncoder::new(N)).collect();
        let mut caches: Vec<ClockCache> = (0..SHARDS).map(|_| ClockCache::new(N)).collect();
        let mut seq = 0u64;
        // Independent compression oracle: once a shard has received any
        // clock for an actor, further sends must stay off the Rebase path
        // until a sync event actually invalidates the shard's cache.
        let mut cache_valid = [[false; N]; SHARDS];

        for step in raw.into_iter().map(decode) {
            match step {
                Step::Sync { actor, other } => {
                    let foreign = clocks[other].clone();
                    clocks[actor].merge(&foreign);
                    gens[actor] += 1;
                    for shard_caches in &mut cache_valid {
                        shard_caches[actor] = false;
                    }
                }
                Step::Op { actor, mask, items } => {
                    let count = clocks[actor].tick(actor);
                    // A valid generation base: any row state of the current
                    // generation works, since apply() overrides the own
                    // component with `count` (here the freshest one).
                    let snapshot = Arc::new(clocks[actor].clone());
                    for shard in 0..SHARDS {
                        if mask & (1 << shard) == 0 {
                            continue;
                        }
                        for item in 0..items {
                            let wire = encoders[shard].encode(
                                actor,
                                seq,
                                gens[actor],
                                count,
                                || Arc::clone(&snapshot),
                            );
                            // Compression: a valid shard cache must be
                            // served by Delta (first item of the op) or
                            // Cached (the rest), never re-shipped whole.
                            if cache_valid[shard][actor] {
                                prop_assert!(
                                    !matches!(wire, ClockWire::Rebase(..)),
                                    "redundant rebase: shard {} actor {} seq {}",
                                    shard,
                                    actor,
                                    seq
                                );
                            }
                            if item > 0 {
                                prop_assert!(
                                    matches!(wire, ClockWire::Cached),
                                    "same-op resend must be Cached: shard {} actor {} seq {}",
                                    shard,
                                    actor,
                                    seq
                                );
                            }
                            cache_valid[shard][actor] = true;
                            // The value oracle: an always-full transport
                            // would deliver exactly the actor's current
                            // clock.
                            let rebuilt = caches[shard].apply(actor, wire);
                            prop_assert_eq!(
                                &*rebuilt,
                                &clocks[actor],
                                "shard {} actor {} seq {}",
                                shard,
                                actor,
                                seq
                            );
                        }
                    }
                    seq += 1;
                }
            }
        }
    }
}

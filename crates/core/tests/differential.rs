//! Differential property test: the epoch-fast-path detector must report
//! **exactly** the races of the full-vector-clock reference — same
//! reports, same order, same attribution — in every [`HbMode`] and at
//! several granularities, on random workloads mixing every operation shape
//! with barriers and lock hand-offs.
//!
//! This is the proof obligation of the fast path: epochs/guards may only
//! skip work whose outcome is provably "no race", never change a verdict.

use proptest::prelude::*;
use race_core::{
    Detector, DsmOp, Granularity, HbDetector, HbMode, MemOp, OpKind, PipelineHealth, RaceReport,
    ReferenceHbDetector, ShardedDetector, VecSink,
};

use dsm::addr::GlobalAddr;

/// One random step of a workload.
#[derive(Debug, Clone)]
enum Step {
    Op(DsmOp),
    Barrier,
    Release { rank: usize, lock: (usize, usize) },
    Acquire { rank: usize, lock: (usize, usize) },
}

/// Decode a raw tuple into a step. `n` is the process count; offsets index
/// a small pool of hot words so conflicts actually happen.
fn decode(n: usize, raw: (usize, usize, usize, usize, usize), op_id: u64) -> Step {
    let (kind_sel, actor_raw, target_raw, word, len_sel) = raw;
    let actor = actor_raw % n;
    let target = target_raw % n;
    let offset = (word % 12) * 8;
    let len = [8usize, 16, 24][len_sel % 3];
    let public = GlobalAddr::public(target, offset).range(len);
    let own_word = GlobalAddr::public(target, offset).range(8);
    let private = GlobalAddr::private(actor, 0).range(len);
    match kind_sel % 10 {
        0 | 1 => Step::Op(DsmOp {
            op_id,
            actor,
            kind: OpKind::LocalWrite { range: public },
        }),
        2 | 3 => Step::Op(DsmOp {
            op_id,
            actor,
            kind: OpKind::LocalRead { range: public },
        }),
        4 => Step::Op(DsmOp {
            op_id,
            actor,
            kind: OpKind::Put {
                src: private,
                dst: public,
            },
        }),
        5 => Step::Op(DsmOp {
            op_id,
            actor,
            kind: OpKind::Get {
                src: public,
                dst: private,
            },
        }),
        6 => Step::Op(DsmOp {
            op_id,
            actor,
            kind: OpKind::AtomicRmw { range: own_word },
        }),
        7 => Step::Barrier,
        8 => Step::Release {
            rank: actor,
            lock: (target, offset),
        },
        _ => Step::Acquire {
            rank: actor,
            lock: (target, offset),
        },
    }
}

/// Reports with the detector label normalised (the two implementations
/// attribute to different names by design; everything else must match).
fn normalised(reports: &[RaceReport]) -> Vec<RaceReport> {
    reports
        .iter()
        .cloned()
        .map(|mut r| {
            r.detector = "";
            r
        })
        .collect()
}

fn drive(steps: &[Step], fast: &mut HbDetector, slow: &mut ReferenceHbDetector) {
    for (i, step) in steps.iter().enumerate() {
        match step {
            Step::Op(op) => {
                // Drive the legacy log path (the whole-log assertions below
                // depend on it) and compare each op's log tail.
                let na = fast.observe(op, &[]);
                let nb = slow.observe(op, &[]);
                let a = &fast.reports()[fast.reports().len() - na..];
                let b = &slow.reports()[slow.reports().len() - nb..];
                assert_eq!(
                    normalised(a),
                    normalised(b),
                    "divergent reports at step {i}: {step:?}"
                );
            }
            Step::Barrier => {
                fast.on_barrier();
                slow.on_barrier();
            }
            Step::Release { rank, lock } => {
                fast.on_release(*rank, *lock);
                slow.on_release(*rank, *lock);
            }
            Step::Acquire { rank, lock } => {
                fast.on_acquire(*rank, *lock);
                slow.on_acquire(*rank, *lock);
            }
        }
    }
}

/// The same step stream as [`MemOp`] events, for the batched pipeline.
fn memops(steps: &[Step]) -> Vec<MemOp> {
    steps
        .iter()
        .map(|s| match s {
            Step::Op(op) => MemOp::Op(*op),
            Step::Barrier => MemOp::Barrier,
            Step::Release { rank, lock } => MemOp::Release {
                rank: *rank,
                lock: *lock,
            },
            Step::Acquire { rank, lock } => MemOp::Acquire {
                rank: *rank,
                lock: *lock,
            },
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Byte-identical report streams across every mode and granularity.
    #[test]
    fn epoch_fast_path_matches_reference(
        n in 2usize..5,
        raw in collection::vec((0usize..10, 0usize..8, 0usize..8, 0usize..16, 0usize..3), 1..60),
    ) {
        let steps: Vec<Step> = raw
            .iter()
            .enumerate()
            .map(|(i, &r)| decode(n, r, i as u64))
            .collect();
        for mode in [HbMode::Dual, HbMode::Single, HbMode::Literal] {
            for granularity in [
                Granularity::WORD,
                Granularity::block(16),
                Granularity::CACHE_LINE,
                Granularity::PAGE,
            ] {
                let mut fast = HbDetector::new(n, granularity, mode);
                let mut slow = ReferenceHbDetector::new(n, granularity, mode);
                drive(&steps, &mut fast, &mut slow);
                // Whole-log equality, emitted order and sorted order.
                let mut a = normalised(fast.reports());
                let mut b = normalised(slow.reports());
                prop_assert_eq!(&a, &b, "log divergence mode={:?} gran={:?}", mode, granularity);
                let key = |r: &RaceReport| (r.current.id, r.previous.as_ref().map(|p| p.id), r.area);
                a.sort_by_key(key);
                b.sort_by_key(key);
                prop_assert_eq!(a, b);
                // Identical §IV-D accounting, too.
                prop_assert_eq!(fast.clock_memory_bytes(), slow.clock_memory_bytes());
            }
        }
    }

    /// The sharded pipeline must emit the **byte-identical** report stream
    /// of the sequential detectors — same reports, same order, same
    /// attribution — for every shard count, batch split, mode and
    /// granularity, and agree on clock-memory accounting and per-process
    /// clock evolution. This is the proof obligation of the router/shard
    /// split: partitioning areas across threads may not reorder, drop or
    /// invent a verdict.
    #[test]
    fn sharded_pipeline_matches_sequential_detectors(
        n in 2usize..5,
        raw in collection::vec((0usize..10, 0usize..8, 0usize..8, 0usize..16, 0usize..3), 1..48),
        shards in 1usize..5,
        batch in 1usize..17,
    ) {
        let steps: Vec<Step> = raw
            .iter()
            .enumerate()
            .map(|(i, &r)| decode(n, r, i as u64))
            .collect();
        let events = memops(&steps);
        for mode in [HbMode::Dual, HbMode::Single, HbMode::Literal] {
            for granularity in [Granularity::WORD, Granularity::block(16), Granularity::PAGE] {
                let mut fast = HbDetector::new(n, granularity, mode);
                let mut slow = ReferenceHbDetector::new(n, granularity, mode);
                drive(&steps, &mut fast, &mut slow);
                let mut sharded = ShardedDetector::new(n, granularity, mode, shards);
                for chunk in events.chunks(batch) {
                    sharded.observe_batch(chunk);
                }
                // Byte-identical against the optimised sequential detector
                // (same detector label, so no normalisation needed)…
                prop_assert_eq!(
                    fast.reports(),
                    sharded.reports(),
                    "sharded log divergence mode={:?} gran={:?} shards={} batch={}",
                    mode, granularity, shards, batch
                );
                // …and against the paper-literal reference modulo the label.
                prop_assert_eq!(normalised(sharded.reports()), normalised(slow.reports()));
                prop_assert_eq!(fast.clock_memory_bytes(), sharded.clock_memory_bytes());
                for rank in 0..n {
                    prop_assert_eq!(
                        fast.process_clock(rank),
                        sharded.process_clock(rank),
                        "clock divergence rank={} mode={:?}",
                        rank, mode
                    );
                }
            }
        }
    }

    /// Supervision property: killing one shard worker at a random point
    /// mid-stream (test-only poison message) must leave the report stream
    /// **byte-identical** to the healthy run — the supervisor replays its
    /// journal through a rebuilt inline detector — and must surface
    /// [`PipelineHealth::Degraded`]. A chaos event may cost parallelism,
    /// never a verdict.
    #[test]
    fn worker_death_preserves_stream_and_degrades(
        n in 2usize..5,
        raw in collection::vec((0usize..10, 0usize..8, 0usize..8, 0usize..16, 0usize..3), 4..48),
        shards in 2usize..5,
        batch in 1usize..9,
        kill_shard in 0usize..4,
        kill_frac in 0.0f64..1.0,
    ) {
        let steps: Vec<Step> = raw
            .iter()
            .enumerate()
            .map(|(i, &r)| decode(n, r, i as u64))
            .collect();
        let events = memops(&steps);
        let chunks = events.len().div_ceil(batch);
        let kill_shard = kill_shard % shards;
        let kill_at = ((chunks as f64) * kill_frac) as usize;
        let healthy = {
            let mut det = ShardedDetector::new(n, Granularity::WORD, HbMode::Dual, shards);
            let mut sink = VecSink::new();
            for chunk in events.chunks(batch) {
                det.observe_batch_sink(chunk, &mut sink);
            }
            prop_assert_eq!(det.health(), PipelineHealth::Healthy);
            sink.into_reports()
        };
        let mut det = ShardedDetector::new(n, Granularity::WORD, HbMode::Dual, shards);
        let mut sink = VecSink::new();
        for (i, chunk) in events.chunks(batch).enumerate() {
            if i == kill_at {
                prop_assert!(det.inject_worker_panic(kill_shard));
            }
            det.observe_batch_sink(chunk, &mut sink);
        }
        prop_assert!(det.is_inline(), "worker death must degrade to inline");
        prop_assert_eq!(det.health(), PipelineHealth::Degraded);
        prop_assert!(det.last_error().is_some());
        prop_assert_eq!(
            healthy, sink.into_reports(),
            "stream changed: shards={} batch={} kill_shard={} kill_at={}",
            shards, batch, kill_shard, kill_at
        );
    }

    /// The fast path must also agree on *process clock evolution* — the
    /// absorb-skip optimisation may not change what readers learn.
    #[test]
    fn process_clocks_match_reference(
        n in 2usize..5,
        raw in collection::vec((0usize..10, 0usize..8, 0usize..8, 0usize..16, 0usize..3), 1..40),
    ) {
        let steps: Vec<Step> = raw
            .iter()
            .enumerate()
            .map(|(i, &r)| decode(n, r, i as u64))
            .collect();
        for mode in [HbMode::Dual, HbMode::Single, HbMode::Literal] {
            let mut fast = HbDetector::new(n, Granularity::WORD, mode);
            let mut slow = ReferenceHbDetector::new(n, Granularity::WORD, mode);
            drive(&steps, &mut fast, &mut slow);
            for rank in 0..n {
                prop_assert_eq!(
                    fast.process_clock(rank),
                    slow.process_clock(rank),
                    "clock divergence at rank {} mode={:?}",
                    rank,
                    mode
                );
            }
        }
    }
}

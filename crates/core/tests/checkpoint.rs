//! Durable-session parity: `restore(checkpoint) + replay(journal)` must be
//! byte-identical to the uninterrupted run — same per-event report counts,
//! same deduped report stream, same summary JSON, same re-checkpoint bytes —
//! for every detector kind × shard count, with the kill point chosen
//! pseudo-randomly per cell.

use race_core::api::{DedupSink, DetectorConfig, ReportSink, Session, VecSink};
use race_core::clockstore::Granularity;
use race_core::detector::DetectorKind;
use race_core::event::{DsmOp, LockId, OpKind};
use race_core::{JournalEvent, SnapshotError};

use dsm::addr::GlobalAddr;

/// Deterministic generator (same LCG family the chaos layer uses).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn pick(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

const LOCKS: [LockId; 3] = [(0, 0), (0, 64), (1, 0)];

/// A mixed workload: puts/gets/local accesses/atomics on a small shared
/// region, laced with barriers and lock transitions so every journal event
/// variant is exercised.
fn workload(n: usize, len: usize, seed: u64) -> Vec<JournalEvent> {
    let mut rng = Lcg(seed);
    let mut held: Vec<Vec<LockId>> = vec![Vec::new(); n];
    let mut events = Vec::with_capacity(len);
    for i in 0..len {
        let roll = rng.pick(100);
        if roll < 8 {
            let rank = rng.pick(n);
            let lock = LOCKS[rng.pick(LOCKS.len())];
            if !held[rank].contains(&lock) {
                held[rank].push(lock);
                events.push(JournalEvent::Acquire { rank, lock });
                continue;
            }
        } else if roll < 16 {
            let rank = rng.pick(n);
            if let Some(lock) = held[rank].pop() {
                events.push(JournalEvent::Release { rank, lock });
                continue;
            }
        } else if roll < 20 {
            events.push(JournalEvent::Barrier);
            continue;
        }
        let actor = rng.pick(n);
        let target = GlobalAddr::public(rng.pick(n), 8 * rng.pick(12)).range(8);
        let kind = match rng.pick(5) {
            0 => OpKind::Put {
                src: GlobalAddr::private(actor, 0).range(8),
                dst: target,
            },
            1 => OpKind::Get {
                src: target,
                dst: GlobalAddr::private(actor, 0).range(8),
            },
            2 => OpKind::LocalRead { range: target },
            3 => OpKind::LocalWrite { range: target },
            _ => OpKind::AtomicRmw { range: target },
        };
        events.push(JournalEvent::Op {
            op: DsmOp {
                op_id: i as u64,
                actor,
                kind,
            },
            held: held[actor].clone(),
        });
    }
    events
}

fn durable_sink() -> Box<dyn ReportSink> {
    Box::new(DedupSink::new(Box::new(VecSink::new())))
}

fn config(kind: DetectorKind, shards: usize) -> DetectorConfig {
    let mut config = DetectorConfig::new(kind, 4);
    config.granularity = Granularity::WORD;
    config.shards = shards;
    config
}

#[test]
fn restore_plus_replay_matches_uninterrupted() {
    for kind in DetectorKind::ALL {
        for shards in 1..=4 {
            let seed = 0xC0FFEE ^ ((shards as u64) << 32) ^ kind.label().len() as u64;
            let events = workload(4, 400, seed);

            // Kill the durable run at a pseudo-random point after the
            // checkpoint; both cuts vary per (kind, shards) cell.
            let mut rng = Lcg(seed.rotate_left(17));
            let cut = 50 + rng.pick(events.len() / 2 - 50);
            let kill = cut + 1 + rng.pick(events.len() - cut - 1);

            // Uninterrupted control.
            let mut control = config(kind, shards).session_with(durable_sink());
            let mut control_counts = Vec::with_capacity(events.len());
            let mut stream_len_at_cut = 0;
            for (i, event) in events.iter().enumerate() {
                control_counts.push(control.replay(event));
                if i + 1 == cut {
                    stream_len_at_cut = control.reports().len();
                }
            }
            control.flush();
            let control_tail = format!("{:?}", &control.reports()[stream_len_at_cut..]);
            let control_json = control.summary().to_json();
            let control_ckpt = control.checkpoint().expect("control checkpoint");

            // Durable run: checkpoint at `cut`, die at `kill`.
            let mut durable = config(kind, shards).session_with(durable_sink());
            for (i, event) in events[..cut].iter().enumerate() {
                assert_eq!(durable.replay(event), control_counts[i], "prefix diverged");
            }
            let ckpt = durable.checkpoint().expect("mid-stream checkpoint");
            for (i, event) in events[cut..kill].iter().enumerate() {
                assert_eq!(durable.replay(event), control_counts[cut + i]);
            }
            let journal = durable.journal().to_vec();
            assert_eq!(journal.len(), kill - cut, "journal holds exactly the tail");
            drop(durable); // the crash

            // Resume: restore + replay journal + finish the stream.
            let mut resumed = Session::restore(&ckpt, durable_sink()).expect("restore");
            assert_eq!(resumed.events(), cut as u64);
            assert!(resumed.journaling(), "restored sessions journal from birth");
            for (i, event) in journal.iter().enumerate() {
                assert_eq!(
                    resumed.replay(event),
                    control_counts[cut + i],
                    "{kind:?}/{shards}: replayed event {i} diverged"
                );
            }
            for (i, event) in events[kill..].iter().enumerate() {
                assert_eq!(resumed.replay(event), control_counts[kill + i]);
            }
            resumed.flush();
            assert_eq!(
                format!("{:?}", resumed.reports()),
                control_tail,
                "{kind:?}/{shards}: resumed report stream diverged"
            );
            assert_eq!(
                resumed.summary().to_json(),
                control_json,
                "{kind:?}/{shards}: summary JSON diverged"
            );
            assert_eq!(
                resumed.checkpoint().expect("final checkpoint"),
                control_ckpt,
                "{kind:?}/{shards}: final checkpoint bytes diverged"
            );
        }
    }
}

#[test]
fn restore_then_checkpoint_is_byte_identical() {
    for kind in DetectorKind::ALL {
        let events = workload(4, 200, 0xDEADBEEF);
        let mut session = config(kind, 2).session_with(durable_sink());
        for event in &events {
            session.replay(event);
        }
        let ckpt = session.checkpoint().expect("checkpoint");
        let mut restored = Session::restore(&ckpt, durable_sink()).expect("restore");
        assert_eq!(
            restored.checkpoint().expect("re-checkpoint"),
            ckpt,
            "{kind:?}: checkpoint/restore/checkpoint not a fixed point"
        );
    }
}

#[test]
fn journal_truncates_at_each_checkpoint() {
    let events = workload(4, 120, 7);
    let mut session = config(DetectorKind::Dual, 1).session_with(durable_sink());
    assert!(!session.journaling(), "journalling is opt-in");
    assert!(session.journal().is_empty());
    for event in &events[..40] {
        session.replay(event);
    }
    assert!(
        session.journal().is_empty(),
        "no journal before the first checkpoint"
    );
    session.checkpoint().expect("checkpoint");
    assert!(session.journaling());
    for event in &events[40..100] {
        session.replay(event);
    }
    assert_eq!(session.journal().len(), 60, "journal = events since ckpt");
    session.checkpoint().expect("checkpoint");
    assert!(session.journal().is_empty(), "checkpoint truncates");
    for event in &events[100..] {
        session.replay(event);
    }
    assert_eq!(session.journal().len(), 20);
}

// ---------------------------------------------------------------------------
// Golden blob: the committed v1 checkpoint must stay restorable forever.
// Regenerate with UPDATE_GOLDEN=1 cargo test -p race-core --test checkpoint.
// ---------------------------------------------------------------------------

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/checkpoint_v1.bin"
);

fn golden_session() -> Session {
    let events = workload(4, 150, 0x90_1D);
    let mut session = config(DetectorKind::Dual, 1).session_with(durable_sink());
    for event in &events {
        session.replay(event);
    }
    session
}

#[test]
fn golden_checkpoint_restores() {
    let ckpt = golden_session().checkpoint().expect("checkpoint");
    assert_eq!(ckpt[0], race_core::SNAPSHOT_VERSION);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, &ckpt).expect("write golden blob");
    }
    let golden = std::fs::read(GOLDEN_PATH).expect("golden blob committed");
    assert_eq!(
        ckpt, golden,
        "checkpoint encoding changed; bump SNAPSHOT_VERSION or run with UPDATE_GOLDEN=1"
    );
    let mut restored = Session::restore(&golden, durable_sink()).expect("golden restores");
    assert_eq!(
        restored.checkpoint().expect("re-checkpoint"),
        golden,
        "golden blob is a checkpoint fixed point"
    );
}

#[test]
fn golden_with_unknown_version_is_a_typed_error_never_a_panic() {
    let mut blob = std::fs::read(GOLDEN_PATH).expect("golden blob committed");
    blob[0] = 0xFE;
    match Session::restore(&blob, durable_sink()) {
        Err(SnapshotError::UnknownVersion { got }) => assert_eq!(got, 0xFE),
        other => panic!("expected UnknownVersion, got {other:?}"),
    }
    // Hostile truncations of the golden blob are typed errors too.
    let blob = std::fs::read(GOLDEN_PATH).expect("golden blob committed");
    for len in 0..blob.len().min(64) {
        assert!(Session::restore(&blob[..len], durable_sink()).is_err());
    }
}

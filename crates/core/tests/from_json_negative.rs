//! Negative-path coverage for `DetectorConfig::from_json`: every malformed
//! or out-of-range input must come back as `Err` with a message naming the
//! offending field — never a panic, and never a config that would panic
//! later in `build()`.

use race_core::{DetectorConfig, DetectorKind};

fn valid_json() -> String {
    DetectorConfig::new(DetectorKind::Dual, 4).to_json()
}

/// Build a valid JSON config with one field's value text replaced.
fn with_field(field: &str, value: &str) -> String {
    let json = valid_json();
    let key = format!("\"{field}\":");
    let at = json.find(&key).expect("field present") + key.len();
    let end = json[at..]
        .find([',', '}'])
        .map(|i| at + i)
        .expect("terminated");
    format!("{}{}{}", &json[..at], value, &json[end..])
}

#[test]
fn the_probe_edits_fields_correctly() {
    // Sanity-check the test helper itself: an edited-but-valid config
    // parses and carries the edit.
    let c = DetectorConfig::from_json(&with_field("shards", "8")).unwrap();
    assert_eq!(c.shards, 8);
}

#[test]
fn malformed_json_is_an_error_not_a_panic() {
    for garbage in [
        "",
        "{",
        "}{",
        "not json at all",
        "{\"kind\":\"dual-clock\"",
        "{\"kind\":\"dual-clock\",\"n\":}",
        "{\"kind\":\"dual-clock\",\"n\"4}",
        "{\"kind\":\"dual-clock", // unterminated string value
        "\u{1F980} crab bytes \u{0}",
    ] {
        let r = DetectorConfig::from_json(garbage);
        assert!(r.is_err(), "accepted garbage {garbage:?}");
    }
}

#[test]
fn missing_fields_name_the_field() {
    let err = DetectorConfig::from_json("{\"kind\":\"dual-clock\"}").unwrap_err();
    assert!(err.contains("missing field"), "got {err:?}");
}

#[test]
fn unknown_kind_label_is_reported() {
    let err = DetectorConfig::from_json(&with_field("kind", "\"triple-clock\"")).unwrap_err();
    assert!(err.contains("unknown detector kind"), "got {err:?}");
    assert!(
        err.contains("triple-clock"),
        "message names the label: {err:?}"
    );
}

#[test]
fn unknown_pipeline_label_is_reported() {
    let err = DetectorConfig::from_json(&with_field("pipeline", "\"quantum\"")).unwrap_err();
    assert!(err.contains("unknown pipeline"), "got {err:?}");
    assert!(err.contains("quantum"), "message names the label: {err:?}");
}

#[test]
fn non_power_of_two_granularity_is_rejected() {
    for bad in ["0", "3", "24"] {
        let err = DetectorConfig::from_json(&with_field("granularity", bad)).unwrap_err();
        assert!(err.contains("power of two"), "granularity {bad}: {err:?}");
    }
}

#[test]
fn zero_processes_rejected() {
    let err = DetectorConfig::from_json(&with_field("n", "0")).unwrap_err();
    assert!(err.contains("at least 1"), "got {err:?}");
}

#[test]
fn shards_out_of_range_rejected() {
    // shards == 0 would panic in build(); a shard count beyond MAX_SHARDS
    // would spawn an absurd worker fleet. Both must be parse errors.
    for bad in ["0", "1025", "999999999"] {
        let err = DetectorConfig::from_json(&with_field("shards", bad)).unwrap_err();
        assert!(err.contains("shards"), "shards {bad}: {err:?}");
        assert!(err.contains("out of range"), "shards {bad}: {err:?}");
    }
    let max = DetectorConfig::MAX_SHARDS.to_string();
    assert!(DetectorConfig::from_json(&with_field("shards", &max)).is_ok());
}

#[test]
fn batch_out_of_range_rejected() {
    let too_big = (DetectorConfig::MAX_BATCH + 1).to_string();
    let err = DetectorConfig::from_json(&with_field("batch", &too_big)).unwrap_err();
    assert!(err.contains("batch"), "got {err:?}");
    assert!(err.contains("out of range"), "got {err:?}");
    let max = DetectorConfig::MAX_BATCH.to_string();
    assert!(DetectorConfig::from_json(&with_field("batch", &max)).is_ok());
}

#[test]
fn negative_and_non_numeric_numbers_are_field_errors() {
    for (field, value) in [("n", "-1"), ("shards", "\"two\""), ("batch", "1.5")] {
        let r = DetectorConfig::from_json(&with_field(field, value));
        assert!(r.is_err(), "{field}={value} accepted");
    }
}

#[test]
fn every_accepted_config_builds_without_panicking() {
    // The contract the validation exists for: Ok(config) ⇒ build() is safe.
    for (field, value) in [
        ("shards", "1"),
        ("shards", "4"),
        ("batch", "0"),
        ("batch", "1024"),
        ("n", "1"),
        ("granularity", "64"),
    ] {
        let c = DetectorConfig::from_json(&with_field(field, value)).unwrap();
        let _ = c.build();
    }
}

//! Oracle edge-semantics fixtures, independent of the simulator: hand-built
//! traces pinning the check-then-absorb order of Algorithm 2 (a data-flow
//! edge leaves the reading access racy while ordering everything the reader
//! does *afterwards* — the Fig 5b chains) and the §V-B atomic rule
//! (NIC-serialised atomic–atomic pairs never race).

use dsm::addr::GlobalAddr;
use race_core::{AccessKind, Oracle, Rank, Score, Trace, TraceAccess};

fn acc(id: u64, process: Rank, kind: AccessKind, owner: Rank, off: usize) -> TraceAccess {
    TraceAccess {
        id,
        process,
        kind,
        range: GlobalAddr::public(owner, off).range(8),
        atomic: false,
    }
}

fn atomic(id: u64, process: Rank, kind: AccessKind, owner: Rank, off: usize) -> TraceAccess {
    TraceAccess {
        atomic: true,
        ..acc(id, process, kind, owner, off)
    }
}

/// The full Fig 5b chain across three processes: P0 writes x, P1 reads x
/// (data flow) then writes y, P2 reads y (data flow) then writes x.
///
/// Absorb edges order each reader's *subsequent* accesses, so causality
/// reaches P2's final write of x transitively — it does NOT race with P0's
/// original write. But each reading access itself stays concurrent with the
/// write it observed: exactly two races.
#[test]
fn fig5b_chain_transitivity_through_two_absorb_edges() {
    let mut t = Trace::new(3);
    t.push_access(acc(1, 0, AccessKind::Write, 0, 0)); // P0: w(x)
    t.push_access(acc(3, 1, AccessKind::Read, 0, 0)); // P1: r(x), saw w(x)
    t.push_absorb_edge(1, 3);
    t.push_access(acc(5, 1, AccessKind::Write, 1, 0)); // P1: w(y)
    t.push_access(acc(7, 2, AccessKind::Read, 1, 0)); // P2: r(y), saw w(y)
    t.push_absorb_edge(5, 7);
    t.push_access(acc(9, 2, AccessKind::Write, 0, 0)); // P2: w(x)
    let o = Oracle::analyze(&t);
    assert_eq!(
        o.truth(),
        &[(1, 3), (5, 7)],
        "both observing reads race; the chained final write does not"
    );
}

/// An absorb edge is one-directional causality: it orders the reader's
/// later accesses after the write, but gives the *writer* no knowledge of
/// the reader — the writer's subsequent conflicting write still races.
#[test]
fn absorb_edge_does_not_order_the_writers_later_accesses() {
    let mut t = Trace::new(2);
    t.push_access(acc(1, 0, AccessKind::Write, 0, 0)); // P0: w(x)
    t.push_access(acc(3, 1, AccessKind::Read, 0, 0)); // P1: r(x), saw w(x)
    t.push_absorb_edge(1, 3);
    t.push_access(acc(5, 0, AccessKind::Write, 0, 0)); // P0: w(x) again
    let o = Oracle::analyze(&t);
    assert_eq!(
        o.truth(),
        &[(1, 3), (3, 5)],
        "the second write races with the read that only the reader absorbed"
    );
}

/// Stacking an absorb edge on top of a sync edge must not undo the sync
/// ordering: with a lock hand-off the read is ordered, data flow or not.
#[test]
fn sync_edge_dominates_a_parallel_absorb_edge() {
    let mut t = Trace::new(2);
    t.push_access(acc(1, 0, AccessKind::Write, 0, 0));
    t.push_access(acc(3, 1, AccessKind::Read, 0, 0));
    t.push_edge(1, 3); // lock hand-off
    t.push_absorb_edge(1, 3); // and the read also saw the value
    t.push_access(acc(5, 1, AccessKind::Write, 0, 0));
    let o = Oracle::analyze(&t);
    assert!(o.truth().is_empty(), "sync ordering covers everything");
}

/// Chained absorb edges through an intermediate hop protect only accesses
/// *after* the hop's read — an access between the two hops still races
/// with the origin.
#[test]
fn chain_protection_starts_only_after_the_absorbing_read() {
    let mut t = Trace::new(3);
    t.push_access(acc(1, 0, AccessKind::Write, 0, 0)); // P0: w(x)
    t.push_access(acc(3, 1, AccessKind::Write, 2, 0)); // P1: w(z), concurrent
    t.push_access(acc(5, 1, AccessKind::Read, 0, 0)); // P1: r(x), saw w(x)
    t.push_absorb_edge(1, 5);
    t.push_access(acc(7, 1, AccessKind::Write, 0, 0)); // P1: w(x), ordered
    t.push_access(acc(9, 2, AccessKind::Write, 2, 0)); // P2: w(z), concurrent
    let o = Oracle::analyze(&t);
    assert!(o.truth().contains(&(1, 5)), "the observing read races");
    assert!(
        !o.truth().contains(&(1, 7)),
        "the write after the absorb is ordered"
    );
    assert!(
        o.truth().contains(&(3, 9)),
        "w(z) predates the absorb, so P2's conflicting write still races"
    );
}

/// §V-B: NIC-executed atomics are serialised by the NIC — an atomic–atomic
/// conflicting pair never races, no matter how concurrent the clocks are.
#[test]
fn atomic_atomic_pairs_never_race() {
    let mut t = Trace::new(2);
    t.push_access(atomic(1, 0, AccessKind::Write, 0, 0));
    t.push_access(atomic(3, 1, AccessKind::Write, 0, 0));
    let o = Oracle::analyze(&t);
    assert!(o.truth().is_empty(), "NIC serialises atomic pairs");
}

/// A mixed pair — one atomic, one plain — is still a race: serialisation
/// only covers accesses that both go through the NIC's atomic unit.
#[test]
fn atomic_versus_plain_access_still_races() {
    let mut t = Trace::new(2);
    t.push_access(atomic(1, 0, AccessKind::Write, 0, 0));
    t.push_access(acc(3, 1, AccessKind::Write, 0, 0));
    let o = Oracle::analyze(&t);
    assert_eq!(o.truth(), &[(1, 3)]);

    let mut t = Trace::new(2);
    t.push_access(acc(1, 0, AccessKind::Read, 0, 0));
    t.push_access(atomic(3, 1, AccessKind::Write, 0, 0));
    assert_eq!(Oracle::analyze(&t).truth(), &[(1, 3)]);
}

/// Atomic reads among themselves follow the ordinary read rule anyway —
/// no write, no race — and truth sites collapse pairs onto words.
#[test]
fn truth_sites_name_the_conflicting_word() {
    let mut t = Trace::new(3);
    t.push_access(acc(1, 0, AccessKind::Write, 1, 16)); // word 2 of rank 1
    t.push_access(acc(3, 2, AccessKind::Write, 1, 16));
    t.push_access(acc(5, 0, AccessKind::Write, 1, 32)); // word 4 of rank 1
    t.push_access(acc(7, 2, AccessKind::Read, 1, 32));
    let o = Oracle::analyze(&t);
    assert_eq!(o.truth().len(), 2);
    let sites = o.truth_sites();
    assert!(sites.contains(&(1, 2)) && sites.contains(&(1, 4)));
}

/// The aggregation helpers: absorb is cell-wise addition with `zero` as
/// identity, and `is_perfect` means sound and complete.
#[test]
fn score_aggregation_helpers() {
    let mut total = Score::zero();
    assert!(total.is_perfect());
    total.absorb(&Score {
        true_positives: 2,
        false_positives: 0,
        false_negatives: 0,
    });
    assert!(total.is_perfect());
    total.absorb(&Score {
        true_positives: 1,
        false_positives: 3,
        false_negatives: 1,
    });
    assert!(!total.is_perfect());
    assert_eq!(total.true_positives, 3);
    assert_eq!(total.false_positives, 3);
    assert_eq!(total.false_negatives, 1);
    assert!((total.precision() - 0.5).abs() < 1e-9);
    assert!((total.recall() - 0.75).abs() < 1e-9);
}

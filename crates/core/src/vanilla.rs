//! The no-detection baseline.
//!
//! §V-A argues detection overhead is acceptable because it is a debugging
//! feature; the overhead experiments need the "full performance" end of
//! that comparison. [`VanillaDetector`] observes operations (so access
//! counts stay comparable) but keeps no clocks, sends no clock traffic,
//! takes no algorithm locks and never reports.

use crate::detector::Detector;
use crate::event::{DsmOp, LockId};
use crate::report::RaceReport;

/// A detector that detects nothing.
#[derive(Debug, Default)]
pub struct VanillaDetector {
    ops_seen: u64,
}

impl VanillaDetector {
    /// A fresh baseline detector.
    pub fn new() -> Self {
        VanillaDetector::default()
    }

    /// Number of operations observed (sanity checks in tests).
    pub fn ops_seen(&self) -> u64 {
        self.ops_seen
    }

    /// Rebuild from a restored op counter (the snapshot codec's restore
    /// path — the counter is this baseline's entire state).
    pub(crate) fn from_ops_seen(ops_seen: u64) -> Self {
        VanillaDetector { ops_seen }
    }
}

impl Detector for VanillaDetector {
    fn name(&self) -> &'static str {
        "vanilla"
    }

    fn observe_sink(
        &mut self,
        _op: &DsmOp,
        _held_locks: &[LockId],
        _sink: &mut dyn crate::api::ReportSink,
    ) -> usize {
        self.ops_seen += 1;
        0
    }

    fn observe(&mut self, op: &DsmOp, held_locks: &[LockId]) -> usize {
        // No log to feed (vanilla never reports); a throwaway empty sink
        // keeps the counting in one place. `VecSink::new` never allocates.
        self.observe_sink(op, held_locks, &mut crate::api::VecSink::new())
    }

    fn reports(&self) -> &[RaceReport] {
        &[]
    }

    fn clock_components_per_area(&self) -> usize {
        0
    }

    fn clock_memory_bytes(&self) -> usize {
        0
    }

    fn requires_locking(&self) -> bool {
        false
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        Some(crate::snapshot::encode_vanilla(self.ops_seen))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OpKind;
    use dsm::addr::GlobalAddr;

    #[test]
    fn never_reports_and_costs_nothing() {
        let mut d = VanillaDetector::new();
        let op = DsmOp {
            op_id: 0,
            actor: 0,
            kind: OpKind::LocalWrite {
                range: GlobalAddr::public(0, 0).range(8),
            },
        };
        for _ in 0..10 {
            assert!(d.observe_collect(&op, &[]).is_empty());
        }
        assert_eq!(d.ops_seen(), 10);
        assert!(d.reports().is_empty());
        assert_eq!(d.clock_memory_bytes(), 0);
        assert_eq!(d.clock_components_per_area(), 0);
        assert!(!d.requires_locking());
    }
}

//! Aggregate views over race reports — what a runtime would print at exit
//! (§IV-D: signalled on standard output, execution never aborted).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::clockstore::AreaKey;
use crate::report::{RaceClass, RaceReport};
use crate::Rank;

/// Aggregated statistics over a set of reports.
///
/// Keys are the cheap value types ([`RaceClass`], [`AreaKey`], rank pairs),
/// so folding a report in ([`RaceSummary::add`]) allocates nothing — this
/// is on the session hot path for every detected race.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaceSummary {
    /// Count per race class.
    pub by_class: BTreeMap<RaceClass, usize>,
    /// Count per memory area.
    pub by_area: BTreeMap<AreaKey, usize>,
    /// Count per unordered process pair.
    pub by_process_pair: BTreeMap<(Rank, Rank), usize>,
    /// Total reports summarised.
    pub total: usize,
    /// True when the run that produced this summary degraded: a detection
    /// component died and a fallback path finished the work (see
    /// [`crate::error::PipelineHealth`]), or the environment injected
    /// faults the pipeline had to absorb. The counts above are still
    /// complete — degradation costs performance, never reports.
    #[serde(default)]
    pub degraded: bool,
}

impl RaceSummary {
    /// Summarise `reports`.
    pub fn from_reports(reports: &[RaceReport]) -> Self {
        let mut s = RaceSummary::default();
        for r in reports {
            s.add(r);
        }
        s
    }

    /// Fold one report into the aggregate. This is the streaming entry
    /// point the [`crate::api`] layer uses: a summary grows with the number
    /// of distinct classes / areas / process pairs, never with the number
    /// of reports, so long-running sessions can aggregate forever in
    /// bounded memory (§IV-D: signalled, never stored fatal-or-forever).
    pub fn add(&mut self, r: &RaceReport) {
        *self.by_class.entry(r.class).or_insert(0) += 1;
        *self.by_area.entry(r.area).or_insert(0) += 1;
        if let Some(prev) = &r.previous {
            let pair = (
                r.current.process.min(prev.process),
                r.current.process.max(prev.process),
            );
            *self.by_process_pair.entry(pair).or_insert(0) += 1;
        }
        self.total += 1;
    }

    /// Reports in the class.
    pub fn count(&self, class: RaceClass) -> usize {
        self.by_class.get(&class).copied().unwrap_or(0)
    }

    /// Number of true races (excludes read-read).
    pub fn true_races(&self) -> usize {
        self.count(RaceClass::WriteWrite) + self.count(RaceClass::ReadWrite)
    }

    /// The most-reported area, if any.
    pub fn hottest_area(&self) -> Option<(AreaKey, usize)> {
        self.by_area
            .iter()
            .max_by_key(|(_, &c)| c)
            .map(|(&k, &c)| (k, c))
    }

    /// One-line canonical JSON encoding — the detection service's wire
    /// currency. `BTreeMap` iteration is ordered, so two structurally equal
    /// summaries always serialise to **byte-identical** strings; the server
    /// parity checks (remote session vs in-process run) compare exactly
    /// this. Hand-formatted like every JSON producer in the workspace.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(128);
        let _ = write!(
            s,
            "{{\"total\":{},\"degraded\":{},\"by_class\":{{",
            self.total, self.degraded
        );
        for (i, (class, count)) in self.by_class.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(s, "{sep}\"{}\":{count}", class.label());
        }
        s.push_str("},\"by_area\":{");
        for (i, (area, count)) in self.by_area.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(s, "{sep}\"{}:{}\":{count}", area.rank, area.block);
        }
        s.push_str("},\"by_pair\":{");
        for (i, ((a, b), count)) in self.by_process_pair.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(s, "{sep}\"{a}-{b}\":{count}");
        }
        s.push_str("}}");
        s
    }

    /// Inverse of [`RaceSummary::to_json`]. Malformed input is reported,
    /// never panicked — this sits on the service's untrusted wire path.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let mut out = RaceSummary {
            total: scalar_field(json, "total")?
                .parse()
                .map_err(|e| format!("total: {e}"))?,
            degraded: match scalar_field(json, "degraded")? {
                "true" => true,
                "false" => false,
                other => return Err(format!("degraded: expected bool, got {other:?}")),
            },
            ..RaceSummary::default()
        };
        for (key, count) in object_entries(json, "by_class")? {
            let class =
                RaceClass::from_label(&key).ok_or_else(|| format!("unknown race class {key:?}"))?;
            out.by_class.insert(class, count);
        }
        for (key, count) in object_entries(json, "by_area")? {
            let (rank, block) = key
                .split_once(':')
                .ok_or_else(|| format!("area key {key:?} is not rank:block"))?;
            let rank = rank.parse().map_err(|e| format!("area rank: {e}"))?;
            let block = block.parse().map_err(|e| format!("area block: {e}"))?;
            out.by_area.insert(AreaKey::new(rank, block), count);
        }
        for (key, count) in object_entries(json, "by_pair")? {
            let (a, b) = key
                .split_once('-')
                .ok_or_else(|| format!("pair key {key:?} is not a-b"))?;
            let a: Rank = a.parse().map_err(|e| format!("pair rank: {e}"))?;
            let b: Rank = b.parse().map_err(|e| format!("pair rank: {e}"))?;
            out.by_process_pair.insert((a, b), count);
        }
        Ok(out)
    }
}

/// The raw token of a scalar (non-object) field in the summary JSON.
fn scalar_field<'a>(json: &'a str, key: &str) -> Result<&'a str, String> {
    let pattern = format!("\"{key}\":");
    let at = json
        .find(&pattern)
        .ok_or_else(|| format!("missing field {key:?}"))?;
    let rest = &json[at + pattern.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Ok(rest[..end].trim())
}

/// The `"key":count` entries of a flat `{"k":1,...}` sub-object.
fn object_entries(json: &str, key: &str) -> Result<Vec<(String, usize)>, String> {
    let pattern = format!("\"{key}\":{{");
    let at = json
        .find(&pattern)
        .ok_or_else(|| format!("missing object {key:?}"))?;
    let body = &json[at + pattern.len()..];
    let end = body
        .find('}')
        .ok_or_else(|| format!("unterminated object {key:?}"))?;
    let mut entries = Vec::new();
    for part in body[..end].split(',').filter(|p| !p.trim().is_empty()) {
        // rsplit: the count never contains ':', but an area key ("0:3") does.
        let (k, v) = part
            .rsplit_once(':')
            .ok_or_else(|| format!("object {key:?}: entry {part:?} has no ':'"))?;
        let k = k.trim().trim_matches('"').to_string();
        let v = v
            .trim()
            .parse()
            .map_err(|e| format!("object {key:?}: count for {k:?}: {e}"))?;
        entries.push((k, v));
    }
    Ok(entries)
}

impl std::fmt::Display for RaceSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} race report(s):", self.total)?;
        for (class, count) in &self.by_class {
            writeln!(f, "  {:<12} {count}", class.label())?;
        }
        if let Some((area, count)) = self.hottest_area() {
            writeln!(f, "  hottest area: {area} ({count} report(s))")?;
        }
        for ((a, b), count) in &self.by_process_pair {
            writeln!(f, "  P{a} × P{b}: {count}")?;
        }
        if self.degraded {
            writeln!(f, "  (degraded run: detection fell back after a fault)")?;
        }
        Ok(())
    }
}

/// Convenience: summarise and keep only areas above a report threshold
/// (triage helper for noisy baselines).
pub fn hot_areas(reports: &[RaceReport], min_reports: usize) -> Vec<(AreaKey, usize)> {
    let mut counts: BTreeMap<AreaKey, usize> = BTreeMap::new();
    for r in reports {
        *counts.entry(r.area).or_insert(0) += 1;
    }
    let mut v: Vec<_> = counts
        .into_iter()
        .filter(|(_, c)| *c >= min_reports)
        .collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AccessKind, AccessSummary};
    use dsm::addr::GlobalAddr;
    use vclock::VectorClock;

    fn report(class: RaceClass, area_block: usize, p_cur: Rank, p_prev: Rank) -> RaceReport {
        let acc = |id, process| AccessSummary {
            id,
            process,
            kind: AccessKind::Write,
            range: GlobalAddr::public(0, area_block * 8).range(8),
            clock: std::sync::Arc::new(VectorClock::zero(2)),
            atomic: false,
        };
        RaceReport {
            detector: "t",
            class,
            current: acc(1, p_cur),
            previous: Some(acc(0, p_prev)),
            area: AreaKey::new(0, area_block),
        }
    }

    #[test]
    fn summarises_classes_and_pairs() {
        let reports = vec![
            report(RaceClass::WriteWrite, 0, 0, 1),
            report(RaceClass::ReadWrite, 0, 1, 0),
            report(RaceClass::ReadRead, 1, 0, 2),
        ];
        let s = RaceSummary::from_reports(&reports);
        assert_eq!(s.total, 3);
        assert_eq!(s.count(RaceClass::WriteWrite), 1);
        assert_eq!(s.true_races(), 2);
        assert_eq!(s.by_process_pair[&(0, 1)], 2);
        assert_eq!(s.hottest_area().unwrap().1, 2);
        let text = s.to_string();
        assert!(text.contains("write-write"));
        assert!(text.contains("P0 × P1"));
    }

    #[test]
    fn hot_areas_filters_and_sorts() {
        let reports = vec![
            report(RaceClass::WriteWrite, 0, 0, 1),
            report(RaceClass::WriteWrite, 0, 0, 1),
            report(RaceClass::WriteWrite, 5, 0, 1),
        ];
        let hot = hot_areas(&reports, 2);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].0, AreaKey::new(0, 0));
        assert_eq!(hot[0].1, 2);
    }

    #[test]
    fn empty_summary() {
        let s = RaceSummary::from_reports(&[]);
        assert_eq!(s.total, 0);
        assert!(s.hottest_area().is_none());
        assert_eq!(s.true_races(), 0);
    }

    #[test]
    fn json_round_trips_and_is_canonical() {
        let mut s = RaceSummary::from_reports(&[
            report(RaceClass::WriteWrite, 0, 0, 1),
            report(RaceClass::ReadWrite, 3, 2, 1),
            report(RaceClass::ReadRead, 1, 0, 2),
        ]);
        s.degraded = true;
        let json = s.to_json();
        let back = RaceSummary::from_json(&json).expect("round trip");
        assert_eq!(s, back);
        assert_eq!(
            json,
            back.to_json(),
            "canonical: equal summaries serialise byte-identically"
        );

        let empty = RaceSummary::default();
        assert_eq!(
            RaceSummary::from_json(&empty.to_json()).expect("empty round trip"),
            empty
        );
    }

    #[test]
    fn json_rejects_garbage_without_panicking() {
        for bad in [
            "",
            "{}",
            "{\"total\":x}",
            "{\"total\":1,\"degraded\":maybe,\"by_class\":{},\"by_area\":{},\"by_pair\":{}}",
            "{\"total\":1,\"degraded\":true,\"by_class\":{\"quantum\":1},\"by_area\":{},\"by_pair\":{}}",
            "{\"total\":1,\"degraded\":true,\"by_class\":{},\"by_area\":{\"07\":1},\"by_pair\":{}}",
            "{\"total\":1,\"degraded\":true,\"by_class\":{},\"by_area\":{},\"by_pair\":{\"0:1\":1}}",
        ] {
            assert!(RaceSummary::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }
}

//! Aggregate views over race reports — what a runtime would print at exit
//! (§IV-D: signalled on standard output, execution never aborted).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::clockstore::AreaKey;
use crate::report::{RaceClass, RaceReport};
use crate::Rank;

/// Aggregated statistics over a set of reports.
///
/// Keys are the cheap value types ([`RaceClass`], [`AreaKey`], rank pairs),
/// so folding a report in ([`RaceSummary::add`]) allocates nothing — this
/// is on the session hot path for every detected race.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RaceSummary {
    /// Count per race class.
    pub by_class: BTreeMap<RaceClass, usize>,
    /// Count per memory area.
    pub by_area: BTreeMap<AreaKey, usize>,
    /// Count per unordered process pair.
    pub by_process_pair: BTreeMap<(Rank, Rank), usize>,
    /// Total reports summarised.
    pub total: usize,
    /// True when the run that produced this summary degraded: a detection
    /// component died and a fallback path finished the work (see
    /// [`crate::error::PipelineHealth`]), or the environment injected
    /// faults the pipeline had to absorb. The counts above are still
    /// complete — degradation costs performance, never reports.
    #[serde(default)]
    pub degraded: bool,
}

impl RaceSummary {
    /// Summarise `reports`.
    pub fn from_reports(reports: &[RaceReport]) -> Self {
        let mut s = RaceSummary::default();
        for r in reports {
            s.add(r);
        }
        s
    }

    /// Fold one report into the aggregate. This is the streaming entry
    /// point the [`crate::api`] layer uses: a summary grows with the number
    /// of distinct classes / areas / process pairs, never with the number
    /// of reports, so long-running sessions can aggregate forever in
    /// bounded memory (§IV-D: signalled, never stored fatal-or-forever).
    pub fn add(&mut self, r: &RaceReport) {
        *self.by_class.entry(r.class).or_insert(0) += 1;
        *self.by_area.entry(r.area).or_insert(0) += 1;
        if let Some(prev) = &r.previous {
            let pair = (
                r.current.process.min(prev.process),
                r.current.process.max(prev.process),
            );
            *self.by_process_pair.entry(pair).or_insert(0) += 1;
        }
        self.total += 1;
    }

    /// Reports in the class.
    pub fn count(&self, class: RaceClass) -> usize {
        self.by_class.get(&class).copied().unwrap_or(0)
    }

    /// Number of true races (excludes read-read).
    pub fn true_races(&self) -> usize {
        self.count(RaceClass::WriteWrite) + self.count(RaceClass::ReadWrite)
    }

    /// The most-reported area, if any.
    pub fn hottest_area(&self) -> Option<(AreaKey, usize)> {
        self.by_area
            .iter()
            .max_by_key(|(_, &c)| c)
            .map(|(&k, &c)| (k, c))
    }
}

impl std::fmt::Display for RaceSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} race report(s):", self.total)?;
        for (class, count) in &self.by_class {
            writeln!(f, "  {:<12} {count}", class.label())?;
        }
        if let Some((area, count)) = self.hottest_area() {
            writeln!(f, "  hottest area: {area} ({count} report(s))")?;
        }
        for ((a, b), count) in &self.by_process_pair {
            writeln!(f, "  P{a} × P{b}: {count}")?;
        }
        if self.degraded {
            writeln!(f, "  (degraded run: detection fell back after a fault)")?;
        }
        Ok(())
    }
}

/// Convenience: summarise and keep only areas above a report threshold
/// (triage helper for noisy baselines).
pub fn hot_areas(reports: &[RaceReport], min_reports: usize) -> Vec<(AreaKey, usize)> {
    let mut counts: BTreeMap<AreaKey, usize> = BTreeMap::new();
    for r in reports {
        *counts.entry(r.area).or_insert(0) += 1;
    }
    let mut v: Vec<_> = counts
        .into_iter()
        .filter(|(_, c)| *c >= min_reports)
        .collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AccessKind, AccessSummary};
    use dsm::addr::GlobalAddr;
    use vclock::VectorClock;

    fn report(class: RaceClass, area_block: usize, p_cur: Rank, p_prev: Rank) -> RaceReport {
        let acc = |id, process| AccessSummary {
            id,
            process,
            kind: AccessKind::Write,
            range: GlobalAddr::public(0, area_block * 8).range(8),
            clock: std::sync::Arc::new(VectorClock::zero(2)),
            atomic: false,
        };
        RaceReport {
            detector: "t",
            class,
            current: acc(1, p_cur),
            previous: Some(acc(0, p_prev)),
            area: AreaKey::new(0, area_block),
        }
    }

    #[test]
    fn summarises_classes_and_pairs() {
        let reports = vec![
            report(RaceClass::WriteWrite, 0, 0, 1),
            report(RaceClass::ReadWrite, 0, 1, 0),
            report(RaceClass::ReadRead, 1, 0, 2),
        ];
        let s = RaceSummary::from_reports(&reports);
        assert_eq!(s.total, 3);
        assert_eq!(s.count(RaceClass::WriteWrite), 1);
        assert_eq!(s.true_races(), 2);
        assert_eq!(s.by_process_pair[&(0, 1)], 2);
        assert_eq!(s.hottest_area().unwrap().1, 2);
        let text = s.to_string();
        assert!(text.contains("write-write"));
        assert!(text.contains("P0 × P1"));
    }

    #[test]
    fn hot_areas_filters_and_sorts() {
        let reports = vec![
            report(RaceClass::WriteWrite, 0, 0, 1),
            report(RaceClass::WriteWrite, 0, 0, 1),
            report(RaceClass::WriteWrite, 5, 0, 1),
        ];
        let hot = hot_areas(&reports, 2);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].0, AreaKey::new(0, 0));
        assert_eq!(hot[0].1, 2);
    }

    #[test]
    fn empty_summary() {
        let s = RaceSummary::from_reports(&[]);
        assert_eq!(s.total, 0);
        assert!(s.hottest_area().is_none());
        assert_eq!(s.true_races(), 0);
    }
}

//! Per-area clock storage (§IV, §IV-C/D).
//!
//! "Each process associates two clocks to areas of shared memory: a
//! general-purpose clock `V` and a write clock `W` that keeps track of the
//! latest write operation." (§IV-A)
//!
//! The paper leaves the size of an "area" open ("a clock must be used for
//! each shared piece of data", §V-A); we make it a configurable
//! [`Granularity`] — per 8-byte word, per cache line, per page, or any
//! power-of-two block — and quantify the memory/precision trade-off in the
//! ABL-gran experiment. Beyond the paper's two clocks, each area keeps
//! short *antichains* of the most recent mutually-concurrent writes and
//! reads so that reports can name the exact conflicting access (the paper's
//! `signal_race_condition()` is unspecified about attribution); the §IV-D
//! memory accounting intentionally counts only the `V`/`W` clocks to match
//! the paper's claim.
//!
//! Two hot-path optimisations over the naive layout (see `hb` for the
//! detector that exploits them):
//!
//! * `V`/`W` are adaptive [`AreaClock`]s: while an area's accesses stay
//!   totally ordered the clocks are FastTrack-style **epochs** and every
//!   compare/update is O(1); they demote to full vectors only on genuine
//!   concurrency (and re-promote once an access dominates again).
//! * the store is a **flat sharded slab**: per owning rank, a bounded
//!   dense array indexed directly by block number (no hashing on the hot
//!   path) with a spillover map for blocks beyond the dense prefix, so
//!   memory never scales with the highest touched block index.

use dsm::addr::{MemRange, Segment};
use serde::{Deserialize, Serialize};
use vclock::{AreaClock, VectorClock};

use crate::event::AccessSummary;
use crate::Rank;

/// Clock granularity: one `(V, W)` pair per `block_bytes` block of public
/// memory. Must be a power of two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Granularity {
    block_bytes: usize,
}

impl Granularity {
    /// One clock pair per 8-byte word — the finest practical granularity
    /// ("a clock for each shared piece of data").
    pub const WORD: Granularity = Granularity { block_bytes: 8 };
    /// One clock pair per 64-byte cache line.
    pub const CACHE_LINE: Granularity = Granularity { block_bytes: 64 };
    /// One clock pair per 4 KiB page (coarse, cheap, imprecise).
    pub const PAGE: Granularity = Granularity { block_bytes: 4096 };

    /// Custom power-of-two block size.
    ///
    /// # Panics
    /// Panics unless `block_bytes` is a power of two.
    pub fn block(block_bytes: usize) -> Granularity {
        assert!(
            block_bytes.is_power_of_two(),
            "granularity must be a power of two, got {block_bytes}"
        );
        Granularity { block_bytes }
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// Index of the block containing `offset`.
    #[inline]
    pub fn block_of(&self, offset: usize) -> usize {
        offset / self.block_bytes
    }

    /// Block indices covered by `range`, allocation-free. Empty for
    /// private or zero-length ranges (private memory is single-owner and
    /// cannot race, §IV-A).
    #[inline]
    pub fn blocks_of(&self, range: &MemRange) -> std::ops::RangeInclusive<usize> {
        if range.addr.segment != Segment::Public || range.len == 0 {
            // An inclusive range with start > end iterates zero times.
            #[allow(clippy::reversed_empty_ranges)]
            return 1..=0;
        }
        self.block_of(range.addr.offset)..=self.block_of(range.end() - 1)
    }
}

/// Identifies one clocked area: a block of one rank's public segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AreaKey {
    /// Owning rank.
    pub rank: Rank,
    /// Block index within the public segment.
    pub block: usize,
}

impl AreaKey {
    /// Construct directly.
    pub fn new(rank: Rank, block: usize) -> Self {
        AreaKey { rank, block }
    }
}

impl std::fmt::Display for AreaKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}#b{}", self.rank, self.block)
    }
}

/// Clock state and recent-access history for one area.
#[derive(Debug, Clone, Default)]
pub struct AreaHistory {
    /// General-purpose clock: join of every access's clock (adaptive epoch
    /// representation; see [`AreaClock`]).
    pub v: AreaClock,
    /// Write clock: join of every write's clock.
    pub w: AreaClock,
    /// Antichain of recent writes (pairwise concurrent).
    pub writes: Vec<AccessSummary>,
    /// Antichain of recent reads not yet superseded.
    pub reads: Vec<AccessSummary>,
}

/// Full clock of the epoch event `e`, looked up in the given antichains.
///
/// Invariant (maintained by `record_write`/`record_read`): an `AreaClock`
/// in `Epoch` state always names a *live* antichain entry — the event that
/// last dominated the area. Searched newest-first; the entry is typically
/// the last one.
fn antichain_clock(chains: [&[AccessSummary]; 2], e: vclock::Epoch) -> &VectorClock {
    for chain in chains {
        if let Some(a) = chain
            .iter()
            .rev()
            .find(|a| a.process == e.rank && a.clock.get(e.rank) == e.count)
        {
            return &a.clock;
        }
    }
    unreachable!("epoch event {e} is not a live antichain entry")
}

impl AreaHistory {
    fn new() -> Self {
        AreaHistory::default()
    }

    /// Record a write with clock `access.clock`: drop superseded entries
    /// (those whose clock precedes the new one), keep concurrent ones.
    ///
    /// Fast path: when the area's join precedes the new clock (an O(1)
    /// epoch test while ordered), *every* recorded entry is superseded and
    /// the antichains reset without a single vector compare. An entry can
    /// never be causally *after* the new access (its clock would need the
    /// actor's fresh tick), so `retain(concurrent)` and "drop everything
    /// ≤ new" are the same filter.
    pub fn record_write(&mut self, access: AccessSummary) {
        let v_le = self.v.leq(&access.clock);
        let w_le = self.w.leq(&access.clock);
        self.record_write_hinted(access, v_le, w_le);
    }

    /// [`AreaHistory::record_write`] with the pre-update guard results
    /// `v ≤ access.clock` / `w ≤ access.clock` supplied by a caller that
    /// already computed them — the detector computes each guard exactly
    /// once per access and shares it between check, absorb and record.
    /// Crate-private: an inconsistent hint would corrupt the antichain
    /// invariant, so only the detector (which just computed the guards)
    /// may supply them.
    pub(crate) fn record_write_hinted(&mut self, access: AccessSummary, v_le: bool, w_le: bool) {
        debug_assert_eq!(v_le, self.v.leq(&access.clock));
        debug_assert_eq!(w_le, self.w.leq(&access.clock));
        if v_le {
            self.writes.clear();
            self.reads.clear();
        } else {
            if w_le {
                self.writes.clear();
            } else {
                self.writes
                    .retain(|p| p.clock.concurrent_with(&access.clock));
            }
            self.reads
                .retain(|p| p.clock.concurrent_with(&access.clock));
        }
        // Demotion resolvers look the epoch event up in the *pre-push*
        // antichains: a concurrent (non-dominated) epoch event is always
        // retained above. W's event is a write; V's may be either kind.
        let (writes, reads) = (&self.writes, &self.reads);
        self.v.record(access.process, &access.clock, |e| {
            antichain_clock([writes, reads], e).clone()
        });
        self.w.record(access.process, &access.clock, |e| {
            antichain_clock([writes, &[]], e).clone()
        });
        self.writes.push(access);
    }

    /// Record a read (same fast path as [`AreaHistory::record_write`]).
    pub fn record_read(&mut self, access: AccessSummary) {
        let v_le = self.v.leq(&access.clock);
        self.record_read_hinted(access, v_le);
    }

    /// [`AreaHistory::record_read`] with the pre-update `v ≤ access.clock`
    /// guard supplied by the caller (crate-private; see
    /// [`AreaHistory::record_write_hinted`]).
    pub(crate) fn record_read_hinted(&mut self, access: AccessSummary, v_le: bool) {
        debug_assert_eq!(v_le, self.v.leq(&access.clock));
        if v_le {
            self.reads.clear();
        } else {
            self.reads
                .retain(|p| p.clock.concurrent_with(&access.clock));
        }
        let (writes, reads) = (&self.writes, &self.reads);
        self.v.record(access.process, &access.clock, |e| {
            antichain_clock([reads, writes], e).clone()
        });
        self.reads.push(access);
    }

    /// Merge the area's write clock into `dst` (the get-reply absorption).
    pub fn merge_w_into(&self, dst: &mut VectorClock) {
        self.w
            .merge_into(dst, |e| antichain_clock([&self.writes, &[]], e));
    }

    /// Merge the area's general clock into `dst` (Single/Literal modes).
    pub fn merge_v_into(&self, dst: &mut VectorClock) {
        self.v
            .merge_into(dst, |e| antichain_clock([&self.reads, &self.writes], e));
    }

    /// The write clock as a dense vector (tests / accounting; cold path).
    pub fn w_vector(&self, n: usize) -> VectorClock {
        let mut out = VectorClock::zero(n);
        self.merge_w_into(&mut out);
        out
    }

    /// The general clock as a dense vector (tests / accounting; cold path).
    pub fn v_vector(&self, n: usize) -> VectorClock {
        let mut out = VectorClock::zero(n);
        self.merge_v_into(&mut out);
        out
    }
}

/// Tuning knobs for the per-rank slab layout shared by [`ClockStore`] and
/// the sharded router's join replicas.
///
/// The detectors accept one of these on their `with_config` constructors;
/// the plain constructors use [`StoreConfig::default`], which preserves the
/// original hardcoded layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreConfig {
    /// Blocks held in the direct-indexed dense prefix of each rank's slab.
    /// Blocks at or above this index fall back to the spillover map, so
    /// slab memory is bounded by `dense_blocks × sizeof(Option<AreaHistory>)`
    /// per rank plus one map entry per actually-touched sparse area — never
    /// by the highest touched block index. Lower it for segment-sparse
    /// deployments (tiny dense arrays, more hashing); raise it when the
    /// working set is dense and hashing must stay off the hot path.
    pub dense_blocks: usize,
}

impl StoreConfig {
    /// The default dense-prefix bound: 65536 blocks (offsets up to 512 KiB
    /// at WORD granularity, ~7 MiB of slab per rank when fully touched).
    pub const DEFAULT_DENSE_BLOCKS: usize = 1 << 16;
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            dense_blocks: Self::DEFAULT_DENSE_BLOCKS,
        }
    }
}

/// The clock table for the whole global address space, from the omniscient
/// simulator's point of view. (In a real deployment each rank's NIC holds
/// the rows for its own areas; the `simulator` engine charges the
/// corresponding clock messages when an actor touches a remote area.)
///
/// Storage is a flat per-rank slab indexed by block number — no hashing on
/// the access path for the first [`StoreConfig::dense_blocks`] blocks of
/// each segment, with a spillover map above that bound, so one word written
/// at the end of a huge public segment costs one map entry, never a dense
/// array spanning the whole segment.
#[derive(Debug)]
pub struct ClockStore {
    n: usize,
    granularity: Granularity,
    dual: bool,
    /// Dense-prefix bound from the [`StoreConfig`].
    dense_blocks: usize,
    /// One slab per owning rank.
    slabs: Vec<RankSlab>,
    /// Number of touched areas across all slabs.
    touched: usize,
}

/// Per-rank area storage: dense direct-indexed prefix (the hot path — two
/// array indexings, no hashing) plus a map for pathological high blocks.
#[derive(Debug, Default)]
struct RankSlab {
    dense: Vec<Option<AreaHistory>>,
    sparse: std::collections::HashMap<usize, AreaHistory>,
}

impl RankSlab {
    fn get(&self, block: usize, dense_blocks: usize) -> Option<&AreaHistory> {
        if block < dense_blocks {
            self.dense.get(block)?.as_ref()
        } else {
            self.sparse.get(&block)
        }
    }

    fn iter(&self) -> impl Iterator<Item = &AreaHistory> {
        self.dense.iter().flatten().chain(self.sparse.values())
    }
}

impl ClockStore {
    /// A store for `n` processes at `granularity`. `dual` selects whether a
    /// separate write clock is kept (§IV-D memory accounting: the dual
    /// store costs exactly twice the single store). Uses the default
    /// [`StoreConfig`]; see [`ClockStore::with_config`].
    pub fn new(n: usize, granularity: Granularity, dual: bool) -> Self {
        ClockStore::with_config(n, granularity, dual, StoreConfig::default())
    }

    /// [`ClockStore::new`] with an explicit slab layout configuration.
    pub fn with_config(
        n: usize,
        granularity: Granularity,
        dual: bool,
        config: StoreConfig,
    ) -> Self {
        ClockStore {
            n,
            granularity,
            dual,
            dense_blocks: config.dense_blocks,
            slabs: (0..n).map(|_| RankSlab::default()).collect(),
            touched: 0,
        }
    }

    /// The slab layout configuration this store was built with.
    pub fn config(&self) -> StoreConfig {
        StoreConfig {
            dense_blocks: self.dense_blocks,
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The configured granularity.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Area keys covered by `range` (public segments only — private memory
    /// is single-owner and cannot race, §IV-A).
    ///
    /// Allocates; the detector hot loop iterates
    /// [`Granularity::blocks_of`] directly instead.
    pub fn areas_for(&self, range: &MemRange) -> Vec<AreaKey> {
        self.granularity
            .blocks_of(range)
            .map(|block| AreaKey::new(range.addr.rank, block))
            .collect()
    }

    /// The history for `key`, creating a zeroed one on first touch.
    #[inline]
    pub fn history_mut(&mut self, key: AreaKey) -> &mut AreaHistory {
        if key.rank >= self.slabs.len() {
            self.slabs.resize_with(key.rank + 1, RankSlab::default);
        }
        let slab = &mut self.slabs[key.rank];
        if key.block < self.dense_blocks {
            if key.block >= slab.dense.len() {
                slab.dense.resize_with(key.block + 1, || None);
            }
            let slot = &mut slab.dense[key.block];
            if slot.is_none() {
                *slot = Some(AreaHistory::new());
                self.touched += 1;
            }
            slot.as_mut().expect("just filled")
        } else {
            // Spillover for blocks beyond the bounded dense prefix.
            match slab.sparse.entry(key.block) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    self.touched += 1;
                    e.insert(AreaHistory::new())
                }
            }
        }
    }

    /// Read-only history access.
    pub fn history(&self, key: &AreaKey) -> Option<&AreaHistory> {
        self.slabs.get(key.rank)?.get(key.block, self.dense_blocks)
    }

    /// Number of areas that have been touched.
    pub fn touched_areas(&self) -> usize {
        self.touched
    }

    /// Bytes of clock storage in the paper's accounting: one `n`-component
    /// clock per touched area, doubled when `dual` (§IV-D: "it doubles the
    /// necessary amount of memory").
    pub fn clock_memory_bytes(&self) -> usize {
        let per_clock = self.n * std::mem::size_of::<u64>();
        self.touched * per_clock * if self.dual { 2 } else { 1 }
    }

    /// Every touched area with its key, in deterministic order (sorted by
    /// [`AreaKey`]): per rank, the dense prefix by block index, then the
    /// spillover map sorted by block. Snapshot codecs rely on this order so
    /// that encoding the same store twice yields identical bytes.
    pub fn sorted_entries(&self) -> Vec<(AreaKey, &AreaHistory)> {
        let mut out = Vec::with_capacity(self.touched);
        for (rank, slab) in self.slabs.iter().enumerate() {
            for (block, slot) in slab.dense.iter().enumerate() {
                if let Some(history) = slot {
                    out.push((AreaKey::new(rank, block), history));
                }
            }
            let mut sparse: Vec<(&usize, &AreaHistory)> = slab.sparse.iter().collect();
            sparse.sort_by_key(|(block, _)| **block);
            for (block, history) in sparse {
                out.push((AreaKey::new(rank, *block), history));
            }
        }
        out
    }

    /// How many touched areas currently hold both clocks in the O(1) epoch
    /// representation (instrumentation for benches and tests).
    pub fn epoch_areas(&self) -> usize {
        self.slabs
            .iter()
            .flat_map(RankSlab::iter)
            .filter(|h| h.v.is_epoch() && h.w.is_epoch())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::AccessKind;
    use dsm::addr::GlobalAddr;
    use std::sync::Arc;
    use vclock::VectorClock;

    fn summary(id: u64, process: usize, clock: Vec<u64>) -> AccessSummary {
        AccessSummary {
            id,
            process,
            kind: AccessKind::Write,
            range: GlobalAddr::public(0, 0).range(8),
            clock: Arc::new(VectorClock::from_components(clock)),
            atomic: false,
        }
    }

    #[test]
    fn granularity_must_be_power_of_two() {
        Granularity::block(16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_granularity_panics() {
        Granularity::block(24);
    }

    #[test]
    fn areas_for_spanning_range() {
        let store = ClockStore::new(2, Granularity::WORD, true);
        // 20 bytes starting at offset 4 touch words 0, 1, 2.
        let r = GlobalAddr::public(1, 4).range(20);
        let areas = store.areas_for(&r);
        assert_eq!(
            areas,
            vec![AreaKey::new(1, 0), AreaKey::new(1, 1), AreaKey::new(1, 2)]
        );
    }

    #[test]
    fn private_ranges_have_no_areas() {
        let store = ClockStore::new(2, Granularity::WORD, true);
        let r = GlobalAddr::private(0, 0).range(64);
        assert!(store.areas_for(&r).is_empty());
    }

    #[test]
    fn zero_len_has_no_areas() {
        let store = ClockStore::new(2, Granularity::WORD, true);
        assert!(store
            .areas_for(&GlobalAddr::public(0, 8).range(0))
            .is_empty());
    }

    #[test]
    fn coarser_granularity_fewer_areas() {
        let fine = ClockStore::new(2, Granularity::WORD, true);
        let coarse = ClockStore::new(2, Granularity::PAGE, true);
        let r = GlobalAddr::public(0, 0).range(4096);
        assert_eq!(fine.areas_for(&r).len(), 512);
        assert_eq!(coarse.areas_for(&r).len(), 1);
    }

    #[test]
    fn memory_accounting_doubles_for_dual() {
        let mut dual = ClockStore::new(4, Granularity::WORD, true);
        let mut single = ClockStore::new(4, Granularity::WORD, false);
        for s in [&mut dual, &mut single] {
            s.history_mut(AreaKey::new(0, 0));
            s.history_mut(AreaKey::new(0, 1));
        }
        assert_eq!(dual.clock_memory_bytes(), 2 * single.clock_memory_bytes());
        assert_eq!(single.clock_memory_bytes(), 2 * 4 * 8);
    }

    #[test]
    fn slab_indexing_matches_touch_accounting() {
        let mut s = ClockStore::new(2, Granularity::WORD, true);
        assert!(s.history(&AreaKey::new(0, 100)).is_none());
        s.history_mut(AreaKey::new(0, 100));
        s.history_mut(AreaKey::new(0, 100)); // idempotent
        s.history_mut(AreaKey::new(1, 3));
        assert_eq!(s.touched_areas(), 2);
        assert!(s.history(&AreaKey::new(0, 100)).is_some());
        assert!(s.history(&AreaKey::new(0, 99)).is_none());
        assert!(
            s.history(&AreaKey::new(5, 0)).is_none(),
            "out-of-range rank reads as untouched"
        );
    }

    #[test]
    fn write_antichain_supersedes_ordered_entries() {
        let mut h = AreaHistory::new();
        h.record_write(summary(1, 0, vec![1, 0]));
        // A later write by the same process supersedes the first.
        h.record_write(summary(3, 0, vec![2, 0]));
        assert_eq!(h.writes.len(), 1);
        assert_eq!(h.writes[0].id, 3);
        assert!(
            h.w.is_epoch(),
            "totally ordered writes stay on the epoch fast path"
        );
        // A concurrent write from the other process is kept alongside.
        h.record_write(summary(5, 1, vec![0, 1]));
        assert_eq!(h.writes.len(), 2);
        assert!(!h.w.is_epoch(), "concurrent writes demote the write clock");
        assert_eq!(h.w_vector(2).components(), &[2, 1]);
    }

    #[test]
    fn read_recording_updates_v_not_w() {
        let mut h = AreaHistory::new();
        let mut read = summary(1, 0, vec![1, 0]);
        read.kind = AccessKind::Read;
        h.record_read(read);
        assert_eq!(h.v_vector(2).components(), &[1, 0]);
        assert_eq!(h.w_vector(2).components(), &[0, 0]);
        assert_eq!(h.reads.len(), 1);
    }

    #[test]
    fn write_clears_superseded_reads() {
        let mut h = AreaHistory::new();
        let mut read = summary(1, 0, vec![1, 0]);
        read.kind = AccessKind::Read;
        h.record_read(read);
        // Write causally after the read: read entry dropped.
        h.record_write(summary(3, 1, vec![1, 1]));
        assert!(h.reads.is_empty());
        assert_eq!(h.writes.len(), 1);
    }

    #[test]
    fn sparse_high_block_costs_one_chunk_not_a_dense_array() {
        // One word at the far end of a large segment (e.g. 1 GiB at WORD
        // granularity → block ≈ 134M) must allocate a single chunk, not a
        // slab spanning every block below it.
        let mut s = ClockStore::new(2, Granularity::WORD, true);
        let far = AreaKey::new(0, 134_217_727);
        s.history_mut(far);
        assert_eq!(s.touched_areas(), 1);
        assert!(s.history(&far).is_some());
        assert!(s.history(&AreaKey::new(0, 0)).is_none());
        // The dense prefix was never grown; the area lives in the map.
        assert!(s.slabs[0].dense.is_empty());
        assert_eq!(s.slabs[0].sparse.len(), 1);
    }

    #[test]
    fn configurable_dense_boundary_places_areas_correctly() {
        // A tiny dense prefix: blocks 0..4 dense, 4.. spill to the map.
        let cfg = StoreConfig { dense_blocks: 4 };
        let mut s = ClockStore::with_config(2, Granularity::WORD, true, cfg);
        assert_eq!(s.config(), cfg);
        // Straddle the boundary: the last dense block, the first sparse
        // block, and one beyond.
        for block in [3usize, 4, 5] {
            s.history_mut(AreaKey::new(0, block)).record_write(summary(
                block as u64,
                0,
                vec![1, 0],
            ));
        }
        assert_eq!(s.touched_areas(), 3);
        assert_eq!(s.slabs[0].dense.len(), 4, "dense prefix capped at 4");
        assert_eq!(s.slabs[0].sparse.len(), 2, "blocks 4 and 5 spilled");
        // Reads resolve across the boundary identically.
        for block in [3usize, 4, 5] {
            let h = s.history(&AreaKey::new(0, block)).expect("touched");
            assert_eq!(h.writes.len(), 1, "block {block}");
        }
        assert!(s.history(&AreaKey::new(0, 6)).is_none());
        // Re-touching an area on either side never double-counts.
        s.history_mut(AreaKey::new(0, 3));
        s.history_mut(AreaKey::new(0, 4));
        assert_eq!(s.touched_areas(), 3);
        // Accounting is layout-independent: the default layout holding the
        // same areas reports identical clock memory.
        let mut dflt = ClockStore::new(2, Granularity::WORD, true);
        for block in [3usize, 4, 5] {
            dflt.history_mut(AreaKey::new(0, block));
        }
        assert_eq!(s.clock_memory_bytes(), dflt.clock_memory_bytes());
    }

    #[test]
    fn epoch_area_instrumentation() {
        let mut s = ClockStore::new(2, Granularity::WORD, true);
        s.history_mut(AreaKey::new(0, 0))
            .record_write(summary(1, 0, vec![1, 0]));
        assert_eq!(s.epoch_areas(), 1);
        s.history_mut(AreaKey::new(0, 0))
            .record_write(summary(3, 1, vec![0, 1]));
        assert_eq!(s.epoch_areas(), 0);
    }
}

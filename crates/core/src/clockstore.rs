//! Per-area clock storage (§IV, §IV-C/D).
//!
//! "Each process associates two clocks to areas of shared memory: a
//! general-purpose clock `V` and a write clock `W` that keeps track of the
//! latest write operation." (§IV-A)
//!
//! The paper leaves the size of an "area" open ("a clock must be used for
//! each shared piece of data", §V-A); we make it a configurable
//! [`Granularity`] — per 8-byte word, per cache line, per page, or any
//! power-of-two block — and quantify the memory/precision trade-off in the
//! ABL-gran experiment. Beyond the paper's two clocks, each area keeps
//! short *antichains* of the most recent mutually-concurrent writes and
//! reads so that reports can name the exact conflicting access (the paper's
//! `signal_race_condition()` is unspecified about attribution); the §IV-D
//! memory accounting intentionally counts only the `V`/`W` clocks to match
//! the paper's claim.

use std::collections::HashMap;

use dsm::addr::{MemRange, Segment};
use serde::{Deserialize, Serialize};
use vclock::VectorClock;

use crate::event::AccessSummary;
use crate::Rank;

/// Clock granularity: one `(V, W)` pair per `block_bytes` block of public
/// memory. Must be a power of two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Granularity {
    block_bytes: usize,
}

impl Granularity {
    /// One clock pair per 8-byte word — the finest practical granularity
    /// ("a clock for each shared piece of data").
    pub const WORD: Granularity = Granularity { block_bytes: 8 };
    /// One clock pair per 64-byte cache line.
    pub const CACHE_LINE: Granularity = Granularity { block_bytes: 64 };
    /// One clock pair per 4 KiB page (coarse, cheap, imprecise).
    pub const PAGE: Granularity = Granularity { block_bytes: 4096 };

    /// Custom power-of-two block size.
    ///
    /// # Panics
    /// Panics unless `block_bytes` is a power of two.
    pub fn block(block_bytes: usize) -> Granularity {
        assert!(
            block_bytes.is_power_of_two(),
            "granularity must be a power of two, got {block_bytes}"
        );
        Granularity { block_bytes }
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// Index of the block containing `offset`.
    pub fn block_of(&self, offset: usize) -> usize {
        offset / self.block_bytes
    }
}

/// Identifies one clocked area: a block of one rank's public segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AreaKey {
    /// Owning rank.
    pub rank: Rank,
    /// Block index within the public segment.
    pub block: usize,
}

impl AreaKey {
    /// Construct directly.
    pub fn new(rank: Rank, block: usize) -> Self {
        AreaKey { rank, block }
    }
}

impl std::fmt::Display for AreaKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}#b{}", self.rank, self.block)
    }
}

/// Clock state and recent-access history for one area.
#[derive(Debug, Clone)]
pub struct AreaHistory {
    /// General-purpose clock: join of every access's clock.
    pub v: VectorClock,
    /// Write clock: join of every write's clock.
    pub w: VectorClock,
    /// Antichain of recent writes (pairwise concurrent).
    pub writes: Vec<AccessSummary>,
    /// Antichain of recent reads not yet superseded.
    pub reads: Vec<AccessSummary>,
}

impl AreaHistory {
    fn new(n: usize) -> Self {
        AreaHistory {
            v: VectorClock::zero(n),
            w: VectorClock::zero(n),
            writes: Vec::new(),
            reads: Vec::new(),
        }
    }

    /// Record a write with clock `access.clock`: drop superseded entries
    /// (those whose clock precedes the new one), keep concurrent ones.
    pub fn record_write(&mut self, access: AccessSummary) {
        self.writes.retain(|p| p.clock.concurrent_with(&access.clock));
        self.reads.retain(|p| p.clock.concurrent_with(&access.clock));
        self.v.merge(&access.clock);
        self.w.merge(&access.clock);
        self.writes.push(access);
    }

    /// Record a read.
    pub fn record_read(&mut self, access: AccessSummary) {
        self.reads.retain(|p| p.clock.concurrent_with(&access.clock));
        self.v.merge(&access.clock);
        self.reads.push(access);
    }
}

/// The clock table for the whole global address space, from the omniscient
/// simulator's point of view. (In a real deployment each rank's NIC holds
/// the rows for its own areas; the `simulator` engine charges the
/// corresponding clock messages when an actor touches a remote area.)
#[derive(Debug)]
pub struct ClockStore {
    n: usize,
    granularity: Granularity,
    dual: bool,
    areas: HashMap<AreaKey, AreaHistory>,
}

impl ClockStore {
    /// A store for `n` processes at `granularity`. `dual` selects whether a
    /// separate write clock is kept (§IV-D memory accounting: the dual
    /// store costs exactly twice the single store).
    pub fn new(n: usize, granularity: Granularity, dual: bool) -> Self {
        ClockStore {
            n,
            granularity,
            dual,
            areas: HashMap::new(),
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The configured granularity.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Area keys covered by `range` (public segments only — private memory
    /// is single-owner and cannot race, §IV-A).
    pub fn areas_for(&self, range: &MemRange) -> Vec<AreaKey> {
        if range.addr.segment != Segment::Public || range.len == 0 {
            return Vec::new();
        }
        let first = self.granularity.block_of(range.addr.offset);
        let last = self.granularity.block_of(range.end() - 1);
        (first..=last)
            .map(|block| AreaKey::new(range.addr.rank, block))
            .collect()
    }

    /// The history for `key`, creating a zeroed one on first touch.
    pub fn history_mut(&mut self, key: AreaKey) -> &mut AreaHistory {
        let n = self.n;
        self.areas.entry(key).or_insert_with(|| AreaHistory::new(n))
    }

    /// Read-only history access.
    pub fn history(&self, key: &AreaKey) -> Option<&AreaHistory> {
        self.areas.get(key)
    }

    /// Number of areas that have been touched.
    pub fn touched_areas(&self) -> usize {
        self.areas.len()
    }

    /// Bytes of clock storage in the paper's accounting: one `n`-component
    /// clock per touched area, doubled when `dual` (§IV-D: "it doubles the
    /// necessary amount of memory").
    pub fn clock_memory_bytes(&self) -> usize {
        let per_clock = self.n * std::mem::size_of::<u64>();
        self.areas.len() * per_clock * if self.dual { 2 } else { 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::AccessKind;
    use dsm::addr::GlobalAddr;

    fn summary(id: u64, process: usize, clock: Vec<u64>) -> AccessSummary {
        AccessSummary {
            id,
            process,
            kind: AccessKind::Write,
            range: GlobalAddr::public(0, 0).range(8),
            clock: VectorClock::from_components(clock),
            atomic: false,
        }
    }

    #[test]
    fn granularity_must_be_power_of_two() {
        Granularity::block(16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_granularity_panics() {
        Granularity::block(24);
    }

    #[test]
    fn areas_for_spanning_range() {
        let store = ClockStore::new(2, Granularity::WORD, true);
        // 20 bytes starting at offset 4 touch words 0, 1, 2.
        let r = GlobalAddr::public(1, 4).range(20);
        let areas = store.areas_for(&r);
        assert_eq!(
            areas,
            vec![AreaKey::new(1, 0), AreaKey::new(1, 1), AreaKey::new(1, 2)]
        );
    }

    #[test]
    fn private_ranges_have_no_areas() {
        let store = ClockStore::new(2, Granularity::WORD, true);
        let r = GlobalAddr::private(0, 0).range(64);
        assert!(store.areas_for(&r).is_empty());
    }

    #[test]
    fn zero_len_has_no_areas() {
        let store = ClockStore::new(2, Granularity::WORD, true);
        assert!(store.areas_for(&GlobalAddr::public(0, 8).range(0)).is_empty());
    }

    #[test]
    fn coarser_granularity_fewer_areas() {
        let fine = ClockStore::new(2, Granularity::WORD, true);
        let coarse = ClockStore::new(2, Granularity::PAGE, true);
        let r = GlobalAddr::public(0, 0).range(4096);
        assert_eq!(fine.areas_for(&r).len(), 512);
        assert_eq!(coarse.areas_for(&r).len(), 1);
    }

    #[test]
    fn memory_accounting_doubles_for_dual() {
        let mut dual = ClockStore::new(4, Granularity::WORD, true);
        let mut single = ClockStore::new(4, Granularity::WORD, false);
        for s in [&mut dual, &mut single] {
            s.history_mut(AreaKey::new(0, 0));
            s.history_mut(AreaKey::new(0, 1));
        }
        assert_eq!(dual.clock_memory_bytes(), 2 * single.clock_memory_bytes());
        assert_eq!(single.clock_memory_bytes(), 2 * 4 * 8);
    }

    #[test]
    fn write_antichain_supersedes_ordered_entries() {
        let mut h = AreaHistory::new(2);
        h.record_write(summary(1, 0, vec![1, 0]));
        // A later write by the same process supersedes the first.
        h.record_write(summary(3, 0, vec![2, 0]));
        assert_eq!(h.writes.len(), 1);
        assert_eq!(h.writes[0].id, 3);
        // A concurrent write from the other process is kept alongside.
        h.record_write(summary(5, 1, vec![0, 1]));
        assert_eq!(h.writes.len(), 2);
        assert_eq!(h.w.components(), &[2, 1]);
    }

    #[test]
    fn read_recording_updates_v_not_w() {
        let mut h = AreaHistory::new(2);
        let mut read = summary(1, 0, vec![1, 0]);
        read.kind = AccessKind::Read;
        h.record_read(read);
        assert_eq!(h.v.components(), &[1, 0]);
        assert_eq!(h.w.components(), &[0, 0]);
        assert_eq!(h.reads.len(), 1);
    }

    #[test]
    fn write_clears_superseded_reads() {
        let mut h = AreaHistory::new(2);
        let mut read = summary(1, 0, vec![1, 0]);
        read.kind = AccessKind::Read;
        h.record_read(read);
        // Write causally after the read: read entry dropped.
        h.record_write(summary(3, 1, vec![1, 1]));
        assert!(h.reads.is_empty());
        assert_eq!(h.writes.len(), 1);
    }
}

//! Race reports and the non-fatal signalling discipline of §IV-D.
//!
//! "Race conditions must be signaled to the user (e.g., by a message on the
//! standard output of the program), but they must not abort the execution
//! of the program." Reports are therefore values: detectors accumulate
//! them, harnesses print them, nothing panics.

use serde::{Deserialize, Serialize};

use crate::clockstore::AreaKey;
use crate::event::AccessSummary;

/// What kind of conflicting pair was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RaceClass {
    /// Two concurrent writes.
    WriteWrite,
    /// A write concurrent with a read (either order of discovery).
    ReadWrite,
    /// Two concurrent reads — **not a race** by the paper's definition
    /// (§III-C requires at least one write). Only the single-clock and
    /// literal baselines emit these; they are the false positives that
    /// §IV-D says the dual-clock design eliminates.
    ReadRead,
}

impl RaceClass {
    /// True when this class is a real race under the paper's definition.
    pub fn is_true_race(self) -> bool {
        !matches!(self, RaceClass::ReadRead)
    }

    /// Label for tables.
    pub fn label(self) -> &'static str {
        match self {
            RaceClass::WriteWrite => "write-write",
            RaceClass::ReadWrite => "read-write",
            RaceClass::ReadRead => "read-read",
        }
    }

    /// Inverse of [`RaceClass::label`] (the wire/JSON decoding).
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "write-write" => Some(RaceClass::WriteWrite),
            "read-write" => Some(RaceClass::ReadWrite),
            "read-read" => Some(RaceClass::ReadRead),
            _ => None,
        }
    }
}

/// One detected race: the access being performed and the recorded access it
/// conflicts with, with both clocks (which are concurrent by construction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RaceReport {
    /// Which detector produced the report (a static label — reports are
    /// hot-path values; no allocation per report).
    pub detector: &'static str,
    /// Pair classification.
    pub class: RaceClass,
    /// The access that triggered the detection (the later one).
    pub current: AccessSummary,
    /// The previously recorded conflicting access. `None` when the detector
    /// cannot attribute (the lockset baseline reports unlocked state rather
    /// than a specific pair).
    pub previous: Option<AccessSummary>,
    /// The memory area the conflict is on.
    pub area: AreaKey,
}

impl RaceReport {
    /// The unordered access-id pair, for oracle scoring. `None` when the
    /// report has no attribution.
    pub fn pair(&self) -> Option<(u64, u64)> {
        self.previous.as_ref().map(|p| {
            let (a, b) = (p.id, self.current.id);
            (a.min(b), a.max(b))
        })
    }

    /// The deduplication identity: the unordered access pair, or a
    /// sentinel for unattributed reports. The single source of truth
    /// shared by [`dedup_reports`] and the streaming
    /// [`crate::api::DedupSink`], so the two can never diverge.
    pub fn dedup_key(&self) -> (u64, u64) {
        match self.pair() {
            Some(p) => p,
            None => (self.current.id, u64::MAX),
        }
    }

    /// §IV-D signalling: the one-line message a runtime would print to
    /// standard output. Never aborts.
    pub fn signal_line(&self) -> String {
        match &self.previous {
            Some(prev) => format!(
                "RACE CONDITION ({}): {} × {} on area {} [{}]",
                self.class.label(),
                prev,
                self.current,
                self.area,
                self.detector,
            ),
            None => format!(
                "RACE CONDITION ({}): {} on area {} [{}]",
                self.class.label(),
                self.current,
                self.area,
                self.detector,
            ),
        }
    }
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.signal_line())
    }
}

/// Deduplicate reports by unordered access pair (keeping first occurrence),
/// so one logical race crossing several clock-granularity blocks counts
/// once in the tables.
pub fn dedup_reports(reports: &[RaceReport]) -> Vec<RaceReport> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for r in reports {
        if seen.insert(r.dedup_key()) {
            out.push(r.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::AccessKind;
    use dsm::addr::GlobalAddr;
    use vclock::VectorClock;

    fn summary(id: u64, process: usize) -> AccessSummary {
        AccessSummary {
            id,
            process,
            kind: AccessKind::Write,
            range: GlobalAddr::public(1, 0).range(8),
            clock: std::sync::Arc::new(VectorClock::zero(3)),
            atomic: false,
        }
    }

    fn report(cur: u64, prev: u64) -> RaceReport {
        RaceReport {
            detector: "test",
            class: RaceClass::WriteWrite,
            current: summary(cur, 0),
            previous: Some(summary(prev, 2)),
            area: AreaKey::new(1, 0),
        }
    }

    #[test]
    fn pair_is_unordered() {
        assert_eq!(report(5, 3).pair(), Some((3, 5)));
        assert_eq!(report(3, 5).pair(), Some((3, 5)));
    }

    #[test]
    fn read_read_is_not_true_race() {
        assert!(!RaceClass::ReadRead.is_true_race());
        assert!(RaceClass::WriteWrite.is_true_race());
        assert!(RaceClass::ReadWrite.is_true_race());
    }

    #[test]
    fn signal_line_contains_parties() {
        let line = report(5, 3).signal_line();
        assert!(line.contains("RACE CONDITION"));
        assert!(line.contains("write-write"));
        assert!(line.contains("#5"));
        assert!(line.contains("#3"));
    }

    #[test]
    fn dedup_by_pair() {
        let reports = vec![report(5, 3), report(3, 5), report(7, 3)];
        let d = dedup_reports(&reports);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn unattributed_report_has_no_pair() {
        let mut r = report(5, 3);
        r.previous = None;
        assert_eq!(r.pair(), None);
        assert!(r.signal_line().contains("RACE CONDITION"));
    }
}

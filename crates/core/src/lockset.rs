//! Eraser-style lockset baseline, adapted to DSM areas.
//!
//! Context: the paper situates itself against runtime checkers for
//! one-sided communication (MARMOT, §II). The classic alternative to
//! happens-before detection is the lockset discipline of Eraser (Savage et
//! al. 1997): every shared location must be consistently protected by at
//! least one lock. We adapt it to the DSM model: the "locks" are the NIC
//! area locks of §III-A, identified by the canonical start of the locked
//! range.
//!
//! The detector is **schedule-insensitive** (it flags missing-lock
//! discipline even when the racy interleaving did not manifest in this run)
//! but produces false positives on programs synchronised by other means
//! (barriers, causal get/put chains) — the experiments contrast this with
//! the paper's clock-based approach on exactly such workloads.

use std::collections::HashSet;

use dsm::addr::Segment;

use crate::clockstore::{AreaKey, ClockStore, Granularity};
use crate::detector::Detector;
use crate::event::{AccessSummary, DsmOp, LockId};
use crate::report::{RaceClass, RaceReport};
use crate::Rank;

/// Per-area lockset state (the Eraser state machine).
#[derive(Debug, Clone)]
enum AreaState {
    /// Never accessed.
    Virgin,
    /// Accessed by a single process so far.
    Exclusive {
        owner: Rank,
        last: AccessSummary,
    },
    /// Accessed by several processes, reads only since sharing began.
    Shared {
        candidates: HashSet<LockId>,
        last: AccessSummary,
    },
    /// Accessed by several processes with at least one write.
    SharedModified {
        candidates: HashSet<LockId>,
        last: AccessSummary,
        reported: bool,
    },
}

/// The lockset detector.
pub struct LocksetDetector {
    granularity: Granularity,
    states: std::collections::HashMap<AreaKey, AreaState>,
    reports: Vec<RaceReport>,
    /// Used only for `areas_for` range→area mapping.
    mapper: ClockStore,
}

impl LocksetDetector {
    /// A lockset detector for `n` processes at `granularity`.
    pub fn new(n: usize, granularity: Granularity) -> Self {
        LocksetDetector {
            granularity,
            states: std::collections::HashMap::new(),
            reports: Vec::new(),
            mapper: ClockStore::new(n, granularity, false),
        }
    }

    /// The configured granularity.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    fn step(
        &mut self,
        area: AreaKey,
        access: &AccessSummary,
        held: &HashSet<LockId>,
    ) -> Option<RaceReport> {
        let state = self.states.remove(&area).unwrap_or(AreaState::Virgin);
        let (next, report) = match state {
            AreaState::Virgin => (
                AreaState::Exclusive {
                    owner: access.process,
                    last: access.clone(),
                },
                None,
            ),
            AreaState::Exclusive { owner, last } => {
                if owner == access.process {
                    (
                        AreaState::Exclusive {
                            owner,
                            last: access.clone(),
                        },
                        None,
                    )
                } else {
                    // Second process arrives: candidate set starts from the
                    // locks held *now* (Eraser's refinement begins at the
                    // first shared access).
                    let candidates: HashSet<LockId> = held.clone();
                    if access.kind.is_write() || last.kind.is_write() {
                        let reported = candidates.is_empty();
                        let report = reported.then(|| RaceReport {
                            detector: "lockset".to_string(),
                            class: if access.kind.is_write() && last.kind.is_write() {
                                RaceClass::WriteWrite
                            } else {
                                RaceClass::ReadWrite
                            },
                            current: access.clone(),
                            previous: Some(last.clone()),
                            area,
                        });
                        (
                            AreaState::SharedModified {
                                candidates,
                                last: access.clone(),
                                reported,
                            },
                            report,
                        )
                    } else {
                        (
                            AreaState::Shared {
                                candidates,
                                last: access.clone(),
                            },
                            None,
                        )
                    }
                }
            }
            AreaState::Shared { candidates, last } => {
                let refined: HashSet<LockId> =
                    candidates.intersection(held).copied().collect();
                if access.kind.is_write() {
                    let reported = refined.is_empty();
                    let report = reported.then(|| RaceReport {
                        detector: "lockset".to_string(),
                        class: RaceClass::ReadWrite,
                        current: access.clone(),
                        previous: Some(last.clone()),
                        area,
                    });
                    (
                        AreaState::SharedModified {
                            candidates: refined,
                            last: access.clone(),
                            reported,
                        },
                        report,
                    )
                } else {
                    (
                        AreaState::Shared {
                            candidates: refined,
                            last: access.clone(),
                        },
                        None,
                    )
                }
            }
            AreaState::SharedModified {
                candidates,
                last,
                reported,
            } => {
                let refined: HashSet<LockId> =
                    candidates.intersection(held).copied().collect();
                let newly_empty = refined.is_empty() && !reported;
                let report = newly_empty.then(|| RaceReport {
                    detector: "lockset".to_string(),
                    class: if access.kind.is_write() && last.kind.is_write() {
                        RaceClass::WriteWrite
                    } else {
                        RaceClass::ReadWrite
                    },
                    current: access.clone(),
                    previous: Some(last.clone()),
                    area,
                });
                (
                    AreaState::SharedModified {
                        candidates: refined,
                        last: access.clone(),
                        reported: reported || newly_empty,
                    },
                    report,
                )
            }
        };
        self.states.insert(area, next);
        report
    }
}

impl Detector for LocksetDetector {
    fn name(&self) -> &'static str {
        "lockset"
    }

    fn observe(&mut self, op: &DsmOp, held_locks: &[LockId]) -> Vec<RaceReport> {
        let held: HashSet<LockId> = held_locks.iter().copied().collect();
        let mut out = Vec::new();
        for (kind, range, access_id) in op.accesses() {
            if range.addr.segment != Segment::Public {
                continue;
            }
            let access = AccessSummary {
                id: access_id,
                process: op.actor,
                kind,
                range,
                clock: vclock::VectorClock::zero(0), // locksets carry no clocks
                atomic: op.is_atomic(),
            };
            for area in self.mapper.areas_for(&range) {
                if let Some(r) = self.step(area, &access, &held) {
                    out.push(r);
                }
            }
        }
        self.reports.extend(out.clone());
        out
    }

    fn reports(&self) -> &[RaceReport] {
        &self.reports
    }

    fn clock_components_per_area(&self) -> usize {
        0 // lockset ships no clocks
    }

    fn clock_memory_bytes(&self) -> usize {
        // One candidate set per touched area; count one machine word per
        // candidate lock plus the state discriminant.
        self.states
            .values()
            .map(|s| {
                8 + match s {
                    AreaState::Shared { candidates, .. }
                    | AreaState::SharedModified { candidates, .. } => 16 * candidates.len(),
                    _ => 0,
                }
            })
            .sum()
    }

    fn requires_locking(&self) -> bool {
        false // purely observational
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OpKind;
    use dsm::addr::GlobalAddr;

    fn wr(op_id: u64, actor: Rank) -> DsmOp {
        DsmOp {
            op_id,
            actor,
            kind: OpKind::LocalWrite {
                range: GlobalAddr::public(0, 0).range(8),
            },
        }
    }

    fn rd(op_id: u64, actor: Rank) -> DsmOp {
        DsmOp {
            op_id,
            actor,
            kind: OpKind::LocalRead {
                range: GlobalAddr::public(0, 0).range(8),
            },
        }
    }

    const L: LockId = (0, 0);

    #[test]
    fn single_owner_never_reported() {
        let mut d = LocksetDetector::new(2, Granularity::WORD);
        for i in 0..5 {
            assert!(d.observe(&wr(i, 0), &[]).is_empty());
        }
    }

    #[test]
    fn unlocked_shared_write_reported_once() {
        let mut d = LocksetDetector::new(2, Granularity::WORD);
        d.observe(&wr(0, 0), &[]);
        let r = d.observe(&wr(1, 1), &[]);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].class, RaceClass::WriteWrite);
        // Subsequent unlocked writes do not re-report the same area.
        assert!(d.observe(&wr(2, 0), &[]).is_empty());
        assert_eq!(d.reports().len(), 1);
    }

    #[test]
    fn consistent_locking_is_silent() {
        let mut d = LocksetDetector::new(2, Granularity::WORD);
        d.observe(&wr(0, 0), &[L]);
        assert!(d.observe(&wr(1, 1), &[L]).is_empty());
        assert!(d.observe(&wr(2, 0), &[L]).is_empty());
    }

    #[test]
    fn dropping_the_lock_later_reports() {
        let mut d = LocksetDetector::new(2, Granularity::WORD);
        d.observe(&wr(0, 0), &[L]);
        assert!(d.observe(&wr(1, 1), &[L]).is_empty());
        // P0 now writes without the lock: candidate set empties → report.
        let r = d.observe(&wr(2, 0), &[]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn read_only_sharing_is_silent() {
        let mut d = LocksetDetector::new(3, Granularity::WORD);
        d.observe(&rd(0, 0), &[]);
        assert!(d.observe(&rd(1, 1), &[]).is_empty());
        assert!(d.observe(&rd(2, 2), &[]).is_empty());
    }

    #[test]
    fn write_after_shared_reads_without_lock_reports() {
        let mut d = LocksetDetector::new(2, Granularity::WORD);
        d.observe(&rd(0, 0), &[]);
        d.observe(&rd(1, 1), &[]); // shared, candidates = {} (no locks held)
        let r = d.observe(&wr(2, 0), &[]);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].class, RaceClass::ReadWrite);
    }

    #[test]
    fn different_locks_do_not_protect() {
        let mut d = LocksetDetector::new(2, Granularity::WORD);
        let l2: LockId = (0, 64);
        d.observe(&wr(0, 0), &[L]);
        let r = d.observe(&wr(1, 1), &[l2]);
        // Candidates start at {l2}∩… — the first shared access seeds with
        // current holds; since the write pair is unprotected by a *common*
        // lock only after refinement, the next access by P0 with L empties.
        assert!(r.is_empty(), "seeding access not yet refutable");
        let r = d.observe(&wr(2, 0), &[L]);
        assert_eq!(r.len(), 1, "no common lock → report");
    }
}

//! Eraser-style lockset baseline, adapted to DSM areas.
//!
//! Context: the paper situates itself against runtime checkers for
//! one-sided communication (MARMOT, §II). The classic alternative to
//! happens-before detection is the lockset discipline of Eraser (Savage et
//! al. 1997): every shared location must be consistently protected by at
//! least one lock. We adapt it to the DSM model: the "locks" are the NIC
//! area locks of §III-A, identified by the canonical start of the locked
//! range.
//!
//! The detector is **schedule-insensitive** (it flags missing-lock
//! discipline even when the racy interleaving did not manifest in this run)
//! but produces false positives on programs synchronised by other means
//! (barriers, causal get/put chains) — the experiments contrast this with
//! the paper's clock-based approach on exactly such workloads.

use std::collections::HashSet;

use dsm::addr::Segment;

use crate::clockstore::{AreaKey, Granularity};
use crate::detector::Detector;
use crate::event::{AccessSummary, DsmOp, LockId};
use crate::report::{RaceClass, RaceReport};
use crate::Rank;

/// Per-area lockset state (the Eraser state machine). `pub(crate)` so the
/// snapshot codec ([`crate::snapshot`]) can persist and restore it.
#[derive(Debug, Clone)]
pub(crate) enum AreaState {
    /// Never accessed.
    Virgin,
    /// Accessed by a single process so far.
    Exclusive { owner: Rank, last: AccessSummary },
    /// Accessed by several processes, reads only since sharing began.
    Shared {
        candidates: HashSet<LockId>,
        last: AccessSummary,
    },
    /// Accessed by several processes with at least one write.
    SharedModified {
        candidates: HashSet<LockId>,
        last: AccessSummary,
        reported: bool,
    },
}

/// The lockset detector.
pub struct LocksetDetector {
    granularity: Granularity,
    states: std::collections::HashMap<AreaKey, AreaState>,
    log: crate::api::VecSink,
}

impl LocksetDetector {
    /// A lockset detector for `n` processes at `granularity`.
    pub fn new(n: usize, granularity: Granularity) -> Self {
        let _ = n; // state is per-area; the process count is implicit
        LocksetDetector {
            granularity,
            states: std::collections::HashMap::new(),
            log: crate::api::VecSink::new(),
        }
    }

    /// The configured granularity.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// The per-area state machine, sorted by key — deterministic input for
    /// the snapshot codec.
    pub(crate) fn snapshot_states(&self) -> Vec<(&AreaKey, &AreaState)> {
        let mut states: Vec<(&AreaKey, &AreaState)> = self.states.iter().collect();
        states.sort_by_key(|(key, _)| **key);
        states
    }

    /// Replace the state machine with restored entries (the snapshot
    /// codec's restore path).
    pub(crate) fn restore_states(&mut self, entries: Vec<(AreaKey, AreaState)>) {
        self.states = entries.into_iter().collect();
    }

    fn step(
        &mut self,
        area: AreaKey,
        access: &AccessSummary,
        held: &HashSet<LockId>,
    ) -> Option<RaceReport> {
        let state = self.states.remove(&area).unwrap_or(AreaState::Virgin);
        let (next, report) = match state {
            AreaState::Virgin => (
                AreaState::Exclusive {
                    owner: access.process,
                    last: access.clone(),
                },
                None,
            ),
            AreaState::Exclusive { owner, last } => {
                if owner == access.process {
                    (
                        AreaState::Exclusive {
                            owner,
                            last: access.clone(),
                        },
                        None,
                    )
                } else {
                    // Second process arrives: candidate set starts from the
                    // locks held *now* (Eraser's refinement begins at the
                    // first shared access).
                    let candidates: HashSet<LockId> = held.clone();
                    if access.kind.is_write() || last.kind.is_write() {
                        let reported = candidates.is_empty();
                        let report = reported.then(|| RaceReport {
                            detector: "lockset",
                            class: if access.kind.is_write() && last.kind.is_write() {
                                RaceClass::WriteWrite
                            } else {
                                RaceClass::ReadWrite
                            },
                            current: access.clone(),
                            previous: Some(last.clone()),
                            area,
                        });
                        (
                            AreaState::SharedModified {
                                candidates,
                                last: access.clone(),
                                reported,
                            },
                            report,
                        )
                    } else {
                        (
                            AreaState::Shared {
                                candidates,
                                last: access.clone(),
                            },
                            None,
                        )
                    }
                }
            }
            AreaState::Shared { candidates, last } => {
                let refined: HashSet<LockId> = candidates.intersection(held).copied().collect();
                if access.kind.is_write() {
                    let reported = refined.is_empty();
                    let report = reported.then(|| RaceReport {
                        detector: "lockset",
                        class: RaceClass::ReadWrite,
                        current: access.clone(),
                        previous: Some(last.clone()),
                        area,
                    });
                    (
                        AreaState::SharedModified {
                            candidates: refined,
                            last: access.clone(),
                            reported,
                        },
                        report,
                    )
                } else {
                    (
                        AreaState::Shared {
                            candidates: refined,
                            last: access.clone(),
                        },
                        None,
                    )
                }
            }
            AreaState::SharedModified {
                candidates,
                last,
                reported,
            } => {
                let refined: HashSet<LockId> = candidates.intersection(held).copied().collect();
                let newly_empty = refined.is_empty() && !reported;
                let report = newly_empty.then(|| RaceReport {
                    detector: "lockset",
                    class: if access.kind.is_write() && last.kind.is_write() {
                        RaceClass::WriteWrite
                    } else {
                        RaceClass::ReadWrite
                    },
                    current: access.clone(),
                    previous: Some(last.clone()),
                    area,
                });
                (
                    AreaState::SharedModified {
                        candidates: refined,
                        last: access.clone(),
                        reported: reported || newly_empty,
                    },
                    report,
                )
            }
        };
        self.states.insert(area, next);
        report
    }
}

impl Detector for LocksetDetector {
    fn name(&self) -> &'static str {
        "lockset"
    }

    fn observe_sink(
        &mut self,
        op: &DsmOp,
        held_locks: &[LockId],
        sink: &mut dyn crate::api::ReportSink,
    ) -> usize {
        let mut new = 0;
        let held: HashSet<LockId> = held_locks.iter().copied().collect();
        // One zero-width clock per op, shared by its accesses.
        let no_clock = std::sync::Arc::new(vclock::VectorClock::zero(0));
        let granularity = self.granularity;
        for (kind, range, access_id) in op.accesses() {
            if range.addr.segment != Segment::Public {
                continue;
            }
            let access = AccessSummary {
                id: access_id,
                process: op.actor,
                kind,
                range,
                clock: std::sync::Arc::clone(&no_clock), // locksets carry no clocks
                atomic: op.is_atomic(),
            };
            for block in granularity.blocks_of(&range) {
                let area = AreaKey::new(range.addr.rank, block);
                if let Some(r) = self.step(area, &access, &held) {
                    sink.accept(r);
                    new += 1;
                }
            }
        }
        new
    }

    fn observe(&mut self, op: &DsmOp, held_locks: &[LockId]) -> usize {
        crate::detector::observe_via_log!(self.log, op, held_locks)
    }

    fn reports(&self) -> &[RaceReport] {
        self.log.as_slice()
    }

    fn clock_components_per_area(&self) -> usize {
        0 // lockset ships no clocks
    }

    fn clock_memory_bytes(&self) -> usize {
        // One candidate set per touched area; count one machine word per
        // candidate lock plus the state discriminant.
        self.states
            .values()
            .map(|s| {
                8 + match s {
                    AreaState::Shared { candidates, .. }
                    | AreaState::SharedModified { candidates, .. } => 16 * candidates.len(),
                    _ => 0,
                }
            })
            .sum()
    }

    fn requires_locking(&self) -> bool {
        false // purely observational
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        Some(crate::snapshot::encode_lockset(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OpKind;
    use dsm::addr::GlobalAddr;

    fn wr(op_id: u64, actor: Rank) -> DsmOp {
        DsmOp {
            op_id,
            actor,
            kind: OpKind::LocalWrite {
                range: GlobalAddr::public(0, 0).range(8),
            },
        }
    }

    fn rd(op_id: u64, actor: Rank) -> DsmOp {
        DsmOp {
            op_id,
            actor,
            kind: OpKind::LocalRead {
                range: GlobalAddr::public(0, 0).range(8),
            },
        }
    }

    const L: LockId = (0, 0);

    #[test]
    fn single_owner_never_reported() {
        let mut d = LocksetDetector::new(2, Granularity::WORD);
        for i in 0..5 {
            assert!(d.observe_collect(&wr(i, 0), &[]).is_empty());
        }
    }

    #[test]
    fn unlocked_shared_write_reported_once() {
        let mut d = LocksetDetector::new(2, Granularity::WORD);
        d.observe_collect(&wr(0, 0), &[]);
        let r = d.observe_collect(&wr(1, 1), &[]);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].class, RaceClass::WriteWrite);
        // Subsequent unlocked writes do not re-report the same area.
        assert!(d.observe_collect(&wr(2, 0), &[]).is_empty());
        // observe_collect routes through a temporary sink, so the legacy
        // log stays empty; the legacy entry point feeds it.
        assert!(d.reports().is_empty());
        let mut d = LocksetDetector::new(2, Granularity::WORD);
        d.observe(&wr(0, 0), &[]);
        d.observe(&wr(1, 1), &[]);
        d.observe(&wr(2, 0), &[]);
        assert_eq!(d.reports().len(), 1);
    }

    #[test]
    fn consistent_locking_is_silent() {
        let mut d = LocksetDetector::new(2, Granularity::WORD);
        d.observe_collect(&wr(0, 0), &[L]);
        assert!(d.observe_collect(&wr(1, 1), &[L]).is_empty());
        assert!(d.observe_collect(&wr(2, 0), &[L]).is_empty());
    }

    #[test]
    fn dropping_the_lock_later_reports() {
        let mut d = LocksetDetector::new(2, Granularity::WORD);
        d.observe_collect(&wr(0, 0), &[L]);
        assert!(d.observe_collect(&wr(1, 1), &[L]).is_empty());
        // P0 now writes without the lock: candidate set empties → report.
        let r = d.observe_collect(&wr(2, 0), &[]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn read_only_sharing_is_silent() {
        let mut d = LocksetDetector::new(3, Granularity::WORD);
        d.observe_collect(&rd(0, 0), &[]);
        assert!(d.observe_collect(&rd(1, 1), &[]).is_empty());
        assert!(d.observe_collect(&rd(2, 2), &[]).is_empty());
    }

    #[test]
    fn write_after_shared_reads_without_lock_reports() {
        let mut d = LocksetDetector::new(2, Granularity::WORD);
        d.observe_collect(&rd(0, 0), &[]);
        d.observe_collect(&rd(1, 1), &[]); // shared, candidates = {} (no locks held)
        let r = d.observe_collect(&wr(2, 0), &[]);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].class, RaceClass::ReadWrite);
    }

    #[test]
    fn different_locks_do_not_protect() {
        let mut d = LocksetDetector::new(2, Granularity::WORD);
        let l2: LockId = (0, 64);
        d.observe_collect(&wr(0, 0), &[L]);
        let r = d.observe_collect(&wr(1, 1), &[l2]);
        // Candidates start at {l2}∩… — the first shared access seeds with
        // current holds; since the write pair is unprotected by a *common*
        // lock only after refinement, the next access by P0 with L empties.
        assert!(r.is_empty(), "seeding access not yet refutable");
        let r = d.observe_collect(&wr(2, 0), &[L]);
        assert_eq!(r.len(), 1, "no common lock → report");
    }
}

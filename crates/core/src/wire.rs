//! Epoch-delta clock transport for the sharded pipeline's data plane.
//!
//! The original transport shipped one `Arc<VectorClock>` per routed access.
//! Cheap in isolation, the refcount traffic is cross-thread: every clone on
//! the router and every drop on a shard is an atomic RMW on a cache line
//! the other side just wrote, and every shard-side deref misses on clock
//! data the router's core owns. On the batch hot path that cost dominates.
//!
//! This module replaces it with the observation the epoch fast path is
//! built on (Mattern's event-clock property, the paper's Lemma 1): between
//! two consecutive ops of one actor, the actor's clock changes *only in its
//! own component* unless a synchronisation event (read-absorb, barrier,
//! lock hand-off) merged foreign knowledge in. The router therefore keeps a
//! per-actor **sync generation** — bumped exactly when a non-own component
//! may have changed — and each shard keeps a cached copy of the last clock
//! it received per actor. The wire format collapses to three cases:
//!
//! | message | size | when |
//! |---|---|---|
//! | [`ClockWire::Cached`] | 0 words | same op as the previous item to this shard |
//! | [`ClockWire::Delta`] | 1 word (`count`) | actor only ticked since the last send |
//! | [`ClockWire::Rebase`] | `Arc` + 1 word | sync generation changed (or first send) |
//!
//! A `Delta(count)` is applied by cloning the shard's cached clock and
//! raising the actor's own component to `count` — an allocation and a copy
//! that stay entirely on the shard's core, touching no router-owned cache
//! lines. A `Rebase` carries the actor's **generation base**: the snapshot
//! the router takes once per sync generation (the only time it clones a row
//! at all). Since non-own components are frozen within a generation, *any*
//! event clock of that generation is "base with the own component raised to
//! `count`" — which is exactly how the shard applies it. The cross-thread
//! `Arc`s are therefore one per actor per sync event per shard, instead of
//! one per access, and the steady tick stream ships bare integers.
//!
//! Correctness is pinned two ways: the encode/apply round-trip property
//! test in `tests/wire_roundtrip.rs` replays random tick/sync interleavings
//! against an always-`Full` oracle, and the end-to-end differential
//! proptests prove the sharded detector's reports stay byte-identical to
//! the sequential detector's.

use std::sync::Arc;

use vclock::VectorClock;

use crate::Rank;

/// The clock of one routed access, in the epoch-delta encoding. See the
/// module docs for the protocol.
#[derive(Debug, Clone)]
pub enum ClockWire {
    /// The receiving shard's cached snapshot for this actor is already the
    /// access's clock (an earlier item of the same op carried it).
    Cached,
    /// The cached snapshot with the actor's own component raised to
    /// `count`. Valid because the actor has only ticked since the last
    /// send to this shard.
    Delta(u64),
    /// The actor's generation base with the own component raised to
    /// `count`; replaces the shard's cache for this actor. Sent when the
    /// sync generation changed (or on first contact).
    Rebase(Arc<VectorClock>, u64),
}

/// Router-side encoder state for **one shard**: what that shard's cache
/// currently holds per actor, in terms the router tracks cheaply (sync
/// generation and op sequence of the last send).
#[derive(Debug)]
pub struct ClockEncoder {
    /// Sync generation of each actor at the last [`ClockWire::Rebase`]
    /// send; `u64::MAX` before anything was sent (generations are bump
    /// counters, they never reach it).
    sent_gen: Vec<u64>,
    /// Op sequence number of the last item sent per actor (to emit
    /// [`ClockWire::Cached`] for further items of the same op).
    sent_seq: Vec<u64>,
}

/// Sentinel for "nothing sent yet" in [`ClockEncoder::sent_gen`].
const NEVER: u64 = u64::MAX;

impl ClockEncoder {
    /// Encoder for a shard that has seen nothing yet, over `n` actors.
    pub fn new(n: usize) -> Self {
        ClockEncoder {
            sent_gen: vec![NEVER; n],
            sent_seq: vec![NEVER; n],
        }
    }

    /// Encode the clock of actor `actor`'s op `seq`, whose current sync
    /// generation is `gen` and whose post-tick own component is `count`.
    /// `base` supplies the actor's generation-base snapshot (only called
    /// when a [`ClockWire::Rebase`] is unavoidable; the base's non-own
    /// components must equal the actor's current row, which is what the
    /// router's once-per-generation snapshot guarantees).
    #[inline]
    pub fn encode(
        &mut self,
        actor: Rank,
        seq: u64,
        gen: u64,
        count: u64,
        base: impl FnOnce() -> Arc<VectorClock>,
    ) -> ClockWire {
        if self.sent_seq[actor] == seq {
            return ClockWire::Cached;
        }
        self.sent_seq[actor] = seq;
        if self.sent_gen[actor] == gen {
            // Only the actor's own component moved since the last send.
            ClockWire::Delta(count)
        } else {
            self.sent_gen[actor] = gen;
            ClockWire::Rebase(base(), count)
        }
    }
}

/// Shard-side cache: the last received clock per actor, applied against
/// incoming [`ClockWire`] messages to reconstruct each access's snapshot.
#[derive(Debug)]
pub struct ClockCache {
    clocks: Vec<Option<Arc<VectorClock>>>,
}

impl ClockCache {
    /// Empty cache over `n` actors.
    pub fn new(n: usize) -> Self {
        ClockCache {
            clocks: vec![None; n],
        }
    }

    /// Reconstruct the access clock carried by `wire` for `actor`,
    /// updating the cache. The returned `Arc` is freshly owned by this
    /// shard for `Delta` messages (no cross-thread refcounts).
    ///
    /// # Panics
    /// Panics on a `Cached`/`Delta` message for an actor that never
    /// received a `Rebase` — the encoder never emits that.
    #[inline]
    pub fn apply(&mut self, actor: Rank, wire: ClockWire) -> Arc<VectorClock> {
        match wire {
            ClockWire::Cached => {
                Arc::clone(self.clocks[actor].as_ref().expect("cached after a rebase"))
            }
            ClockWire::Delta(count) => {
                let mut v: VectorClock =
                    (**self.clocks[actor].as_ref().expect("delta after a rebase")).clone();
                v.set(actor, count);
                let arc = Arc::new(v);
                self.clocks[actor] = Some(Arc::clone(&arc));
                arc
            }
            ClockWire::Rebase(base, count) => {
                let mut v: VectorClock = (*base).clone();
                v.set(actor, count);
                let arc = Arc::new(v);
                self.clocks[actor] = Some(Arc::clone(&arc));
                arc
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock(v: &[u64]) -> Arc<VectorClock> {
        Arc::new(VectorClock::from_components(v.to_vec()))
    }

    #[test]
    fn first_send_is_a_rebase_then_deltas_while_only_ticking() {
        let mut enc = ClockEncoder::new(2);
        let mut cache = ClockCache::new(2);
        // Op 0: first contact — rebase from the generation base (taken at
        // gen start, own component possibly stale: apply raises it).
        let w = enc.encode(0, 0, 0, 1, || clock(&[0, 0]));
        assert!(matches!(w, ClockWire::Rebase(_, 1)));
        assert_eq!(*cache.apply(0, w), *clock(&[1, 0]));
        // Second item of the same op: cached.
        let w = enc.encode(0, 0, 0, 1, || unreachable!("no base needed"));
        assert!(matches!(w, ClockWire::Cached));
        assert_eq!(*cache.apply(0, w), *clock(&[1, 0]));
        // Op 1, same generation: a one-word delta.
        let w = enc.encode(0, 1, 0, 2, || unreachable!("no base needed"));
        assert!(matches!(w, ClockWire::Delta(2)));
        assert_eq!(*cache.apply(0, w), *clock(&[2, 0]));
    }

    #[test]
    fn generation_bump_forces_a_rebase() {
        let mut enc = ClockEncoder::new(2);
        let mut cache = ClockCache::new(2);
        let w = enc.encode(0, 0, 0, 1, || clock(&[0, 0]));
        cache.apply(0, w);
        // A barrier merged foreign knowledge: generation 0 → 1, the new
        // base carries the foreign component.
        let w = enc.encode(0, 1, 1, 2, || clock(&[1, 7]));
        assert!(matches!(w, ClockWire::Rebase(_, 2)));
        assert_eq!(*cache.apply(0, w), *clock(&[2, 7]));
        // Back to deltas afterwards.
        let w = enc.encode(0, 2, 1, 3, || unreachable!("no base needed"));
        assert!(matches!(w, ClockWire::Delta(3)));
        assert_eq!(*cache.apply(0, w), *clock(&[3, 7]));
    }

    #[test]
    fn actors_are_tracked_independently() {
        let mut enc = ClockEncoder::new(2);
        let mut cache = ClockCache::new(2);
        cache.apply(0, enc.encode(0, 0, 0, 1, || clock(&[0, 0])));
        // First send for actor 1 within a later op is still a rebase.
        let w = enc.encode(1, 1, 0, 1, || clock(&[0, 0]));
        assert!(matches!(w, ClockWire::Rebase(_, 1)));
        assert_eq!(*cache.apply(1, w), *clock(&[0, 1]));
        // Actor 0's delta stream is unaffected by actor 1's sends.
        let w = enc.encode(0, 2, 0, 2, || unreachable!("no base needed"));
        assert!(matches!(w, ClockWire::Delta(2)));
        assert_eq!(*cache.apply(0, w), *clock(&[2, 0]));
    }

    #[test]
    fn reconstruction_owns_its_allocation() {
        let mut enc = ClockEncoder::new(1);
        let mut cache = ClockCache::new(1);
        let base = clock(&[0]);
        let first = cache.apply(0, enc.encode(0, 0, 0, 1, || Arc::clone(&base)));
        assert!(
            !Arc::ptr_eq(&first, &base),
            "rebase clocks are shard-local allocations"
        );
        let rebuilt = cache.apply(0, enc.encode(0, 1, 0, 2, || unreachable!()));
        assert!(!Arc::ptr_eq(&rebuilt, &first));
        assert_eq!(*rebuilt, *clock(&[2]));
    }
}

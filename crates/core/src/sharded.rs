//! Sharded parallel detection: the per-area check-and-update fanned out
//! over worker threads, with a byte-identical report stream.
//!
//! The paper keeps two clocks *per memory area* (§IV-A), which makes areas
//! natural shard keys: the expensive part of detection — the Algorithm-3
//! antichain scans and the Algorithm-5 clock updates — touches exactly one
//! area, and areas are disjoint. [`ShardedDetector`] exploits this:
//!
//! ```text
//!            ┌───────────── router (sequential) ─────────────┐
//!  MemOp ──▶ │ tick actor clock · read-absorb · sync events   │
//!            │ hash(area) → shard, epoch-delta clock encoding │
//!            └──────┬──────────────┬──────────────┬───────────┘
//!         recycled  ▼              ▼              ▼   batch buffers
//!             shard 0        shard 1        shard k-1     (OS threads)
//!             own ClockStore own ClockStore own ClockStore
//!             check+update   check+update   check+update
//!                   └──────────────┴──────────────┘
//!                                  ▼
//!                   k-way merge of key-sorted report logs
//! ```
//!
//! **Router (sequential).** Per-process state couples areas: every op ticks
//! its actor's matrix clock, and a *read* absorbs the area's write clock
//! into the reader (§IV-B — the get reply carries the clock). The router
//! therefore owns the actor clocks and replays exactly the sequential
//! detector's clock evolution, using lightweight per-area *join replicas*
//! (`JoinClock`: the epoch trick of [`vclock::AreaClock`], reconstructing
//! event clocks from per-actor generation-base snapshots instead of
//! resolving through antichains). Barriers and lock hand-offs only touch
//! actor clocks, so they are router-local too.
//!
//! **Zero-copy transport.** Routed accesses travel in preallocated
//! `ShardItem` batch buffers that cycle router → shard → router through a
//! recycle channel, so the steady state allocates nothing per batch. Access
//! clocks use the epoch-delta encoding of [`crate::wire`]: a shared
//! generation-base snapshot crosses the thread boundary only when the
//! actor's clock changed in a non-own component since the last send to
//! that shard (sync events); otherwise the wire carries a one-word
//! `(count)` delta — or nothing at all for further accesses of the same op
//! — that the shard applies to its cached copy. The dominant per-access
//! costs of the naive transport (cross-thread `Arc` refcount traffic and
//! cache misses on router-owned clock data) disappear; see the `wire`
//! module docs for the protocol.
//!
//! A single-shard detector skips all of this: `new(.., 1)` runs the
//! check-and-update inline on the caller thread (see
//! [`ShardedDetector::new`]).
//!
//! **Shards (parallel).** Everything per-area — slab lookup, happens-before
//! guards, antichain race scan, history recording — runs on worker threads,
//! each owning the [`ClockStore`] slab set for the areas that hash to it.
//! Work is streamed in chunks while the router is still routing, so router
//! and shards overlap.
//!
//! **Determinism.** Each routed access carries a key `(op sequence, access
//! slot, block, report index)` that totally orders reports exactly as the
//! sequential [`crate::HbDetector`] emits them (ops in order; within an op the
//! read side before the write side; within an access, blocks ascending;
//! within a block, antichain order). Each shard's log is emitted already
//! sorted by that key (items arrive in routing order), so the fence runs a
//! k-way merge over the per-shard replies — no re-sort — and the final
//! stream is **byte-identical** to the single-shard detector's. The
//! differential property tests in `tests/differential.rs` enforce this
//! against both [`crate::HbDetector`] and [`crate::ReferenceHbDetector`].

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use dsm::addr::{MemRange, Segment};
use vclock::{MatrixClock, VectorClock};

use crate::api::{ReportSink, VecSink};
use crate::clockstore::{AreaKey, ClockStore, Granularity, StoreConfig};
use crate::detector::Detector;
use crate::error::{DetectError, PipelineHealth, RetryPolicy};
use crate::event::{AccessKind, AccessSummary, DsmOp, LockId};
use crate::hb::{acquire_clock, barrier_join, check_access, release_clock, HbDetector, HbMode};
use crate::report::RaceReport;
use crate::wire::{ClockCache, ClockEncoder, ClockWire};
use crate::Rank;

/// One element of a batched detection stream: an operation or a
/// synchronisation event, in program order.
///
/// The batched pipeline must see sync events *in sequence* with the
/// operations (a barrier orders everything before it against everything
/// after), so backends that buffer ops buffer these alongside. `Copy`: the
/// whole event is a few plain words, so buffering never touches the heap.
#[derive(Debug, Clone, Copy)]
pub enum MemOp {
    /// A DSM operation (put/get/local/atomic accesses).
    Op(DsmOp),
    /// A barrier completed among all ranks.
    Barrier,
    /// `rank` acquired program lock `lock` (after someone's release).
    Acquire {
        /// Acquiring process.
        rank: Rank,
        /// The program lock.
        lock: LockId,
    },
    /// `rank` released program lock `lock`.
    Release {
        /// Releasing process.
        rank: Rank,
        /// The program lock.
        lock: LockId,
    },
}

/// Items per chunk streamed to a shard while routing (keeps workers busy
/// before the batch is fully routed).
const SHARD_CHUNK: usize = 512;

/// Effective streaming threshold: mid-batch streaming overlaps router and
/// workers, which is pure overhead (one context-switch pair per chunk) when
/// the host cannot run a worker beside the router. On single-core hosts
/// everything ships at the fence instead; buffers grow past [`SHARD_CHUNK`]
/// but are recycled with their capacity, so steady state stays
/// allocation-free either way.
fn stream_threshold() -> usize {
    match std::thread::available_parallelism() {
        Ok(cores) if cores.get() > 1 => SHARD_CHUNK,
        _ => usize::MAX,
    }
}

/// Totally orders reports as the sequential detector emits them:
/// `(op sequence, access slot within op, block within access, report index
/// within (op, access, block))`.
type ReportKey = (u64, u8, usize, u32);

/// One access routed to a shard: the flat access fields plus the
/// epoch-delta-encoded clock — no shared state with the router except the
/// rare [`ClockWire::Rebase`] base snapshot.
struct ShardItem {
    seq: u64,
    slot: u8,
    kind: AccessKind,
    atomic: bool,
    /// `W-join ≤ access clock`, computed once by the router against its
    /// join replica — which represents exactly the value of the shard's
    /// authoritative write clock, so the shard reuses it instead of
    /// re-running the compare (an O(n) sweep on demoted areas).
    w_le: bool,
    id: u64,
    process: Rank,
    range: MemRange,
    area: AreaKey,
    clock: ClockWire,
}

enum ToShard {
    Items(Vec<ShardItem>),
    Flush,
    /// On-demand accounting: reply with the O(touched)-to-compute epoch
    /// census, which is deliberately *not* piggybacked on every `Flush`
    /// (the per-op `Detector` path fences per access and must stay O(1)
    /// in the number of touched areas).
    CountEpochs,
    /// Chaos instrumentation: panic on receipt, exactly as a bug in the
    /// check-and-update would. Used by the fault-injection tests to
    /// exercise the supervisor (see [`ShardedDetector::inject_worker_panic`]).
    Poison,
}

struct ShardReply {
    reports: Vec<(ReportKey, RaceReport)>,
    clock_bytes: usize,
    touched: usize,
    /// Present only in replies to [`ToShard::CountEpochs`].
    epoch_areas: Option<usize>,
}

/// The router's replica of one area clock join — [`vclock::AreaClock`]'s
/// adaptive representation, but self-contained: the `Epoch` state keeps the
/// dominating event as `(rank, count)` plus the actor's **generation base**
/// (the once-per-sync-generation row snapshot, shared by every area the
/// actor writes in that generation). Since non-own components are frozen
/// within a generation, the event's full clock is exactly "base with the
/// own component raised to `count`" — so promotion costs two words and a
/// refcount, never a row clone.
///
/// The represented value always equals the authoritative area clock held by
/// the owning shard: both are the join of the same access clocks, updated
/// by the same promote/demote rules.
#[derive(Debug, Clone, Default)]
enum JoinClock {
    /// Nothing recorded: the zero clock.
    #[default]
    Bottom,
    /// The join equals this one event's clock (totally ordered so far):
    /// non-own components from `base`, own component `count`.
    Epoch {
        rank: Rank,
        count: u64,
        base: Arc<VectorClock>,
    },
    /// Concurrent events recorded: the dense component-wise join.
    Vector(VectorClock),
}

impl JoinClock {
    /// `join ≤ c` — O(1) in `Bottom`/`Epoch`, O(n) in `Vector`.
    #[inline]
    fn leq(&self, c: &VectorClock) -> bool {
        match self {
            JoinClock::Bottom => true,
            JoinClock::Epoch { rank, count, .. } => *count <= c.get(*rank),
            JoinClock::Vector(v) => v.leq(c),
        }
    }

    /// Merge the join into `dst` (the read-absorb of Algorithm 4).
    fn merge_into(&self, dst: &mut VectorClock) {
        match self {
            JoinClock::Bottom => {}
            JoinClock::Epoch { rank, count, base } => {
                dst.merge(base);
                if *count > dst.get(*rank) {
                    dst.set(*rank, *count);
                }
            }
            JoinClock::Vector(v) => dst.merge(v),
        }
    }

    /// Record the write event `(rank, count, base)` into the join —
    /// `base` being `rank`'s current generation base, so the event's clock
    /// is base-with-own-raised-to-`count`. The caller has already computed
    /// `join ≤ event clock` as `le` (the same guard it shares with the
    /// absorb decision): promotion is O(1), demotion materialises the dense
    /// join once.
    fn record(&mut self, rank: Rank, count: u64, base: &Arc<VectorClock>, le: bool) {
        if le {
            *self = JoinClock::Epoch {
                rank,
                count,
                base: Arc::clone(base),
            };
            return;
        }
        match self {
            JoinClock::Bottom => unreachable!("bottom precedes every clock"),
            JoinClock::Epoch {
                rank: r0,
                count: c0,
                base: b0,
            } => {
                // Demote: materialise the old event's clock, merge the new.
                let mut v = (**b0).clone();
                if *c0 > v.get(*r0) {
                    v.set(*r0, *c0);
                }
                v.merge(base);
                if count > v.get(rank) {
                    v.set(rank, count);
                }
                *self = JoinClock::Vector(v);
            }
            JoinClock::Vector(v) => {
                v.merge(base);
                if count > v.get(rank) {
                    v.set(rank, count);
                }
            }
        }
    }
}

/// The `(V, W)` join replicas for one area.
#[derive(Debug, Default)]
struct AreaJoins {
    v: JoinClock,
    w: JoinClock,
}

/// Per-rank join storage, same flat-slab layout as [`ClockStore`] (dense
/// direct-indexed prefix, spillover map for pathological high blocks),
/// sharing the detector's [`StoreConfig`] dense bound.
#[derive(Debug, Default)]
struct JoinSlab {
    dense: Vec<Option<AreaJoins>>,
    sparse: HashMap<usize, AreaJoins>,
}

#[derive(Debug)]
struct JoinStore {
    slabs: Vec<JoinSlab>,
    /// Dense-prefix bound, fixed at construction (same hazard-avoidance as
    /// [`ClockStore`]: a per-call bound could place one area on both sides
    /// of the dense/spillover split).
    dense_blocks: usize,
}

impl JoinStore {
    fn new(config: StoreConfig) -> Self {
        JoinStore {
            slabs: Vec::new(),
            dense_blocks: config.dense_blocks,
        }
    }

    fn get_mut(&mut self, key: AreaKey) -> &mut AreaJoins {
        if key.rank >= self.slabs.len() {
            self.slabs.resize_with(key.rank + 1, JoinSlab::default);
        }
        let slab = &mut self.slabs[key.rank];
        if key.block < self.dense_blocks {
            if key.block >= slab.dense.len() {
                slab.dense.resize_with(key.block + 1, || None);
            }
            slab.dense[key.block].get_or_insert_with(AreaJoins::default)
        } else {
            slab.sparse.entry(key.block).or_default()
        }
    }
}

/// `area → shard` routing: a multiplicative hash of `(rank, block)` so
/// neighbouring blocks spread across shards, reduced to the shard range by
/// the multiply-shift trick (`(h × shards) >> 64`) — no hardware divide on
/// the per-access path. Deterministic — the partition is part of the
/// detector's observable state (per-shard memory accounting).
#[inline]
fn shard_of(area: AreaKey, shards: usize) -> usize {
    let h = (area.rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (area.block as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
    let h = h.wrapping_mul(0x2545_F491_4F6C_DD1D);
    ((h as u128 * shards as u128) >> 64) as usize
}

struct Worker {
    tx: Option<Sender<ToShard>>,
    rx: Receiver<ShardReply>,
    /// Joining yields the worker's panic message, if it panicked: the
    /// spawn wrapper runs the loop under `catch_unwind` and returns the
    /// stringified payload instead of propagating the unwind.
    handle: Option<JoinHandle<Option<String>>>,
}

/// Stringify a panic payload recovered from a supervised worker.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// The per-shard worker loop: owns this shard's [`ClockStore`] and runs the
/// authoritative check-and-update for every area that hashes here. Consumed
/// batch buffers go back to the router through `recycle` instead of being
/// dropped, closing the allocation-free loop.
fn shard_worker(
    mode: HbMode,
    n: usize,
    granularity: Granularity,
    config: StoreConfig,
    rx: Receiver<ToShard>,
    tx: Sender<ShardReply>,
    recycle: Sender<Vec<ShardItem>>,
) {
    let mut store = ClockStore::with_config(n, granularity, mode != HbMode::Single, config);
    let mut cache = ClockCache::new(n);
    let mut pending: Vec<(ReportKey, RaceReport)> = Vec::new();
    let mut scratch: Vec<RaceReport> = Vec::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            ToShard::Items(mut items) => {
                for item in items.drain(..) {
                    // Rebuild the access clock from the delta stream; the
                    // resulting Arc lives and dies on this thread.
                    let clock = cache.apply(item.process, item.clock);
                    let access = AccessSummary {
                        id: item.id,
                        process: item.process,
                        kind: item.kind,
                        range: item.range,
                        clock,
                        atomic: item.atomic,
                    };
                    let hist = store.history_mut(item.area);
                    // Same guard-once discipline as HbDetector::observe; the
                    // W guard rides the item (the router computed it against
                    // the join replica, which represents the same value).
                    let w_le = item.w_le;
                    debug_assert_eq!(w_le, hist.w.leq(&access.clock));
                    let v_le = hist.v.leq(&access.clock);
                    check_access(mode, hist, &access, item.area, w_le, v_le, &mut scratch);
                    for (sub, report) in scratch.drain(..).enumerate() {
                        let key = (item.seq, item.slot, item.area.block, sub as u32);
                        pending.push((key, report));
                    }
                    match item.kind {
                        AccessKind::Write => hist.record_write_hinted(access, v_le, w_le),
                        AccessKind::Read => hist.record_read_hinted(access, v_le),
                    }
                }
                // Hand the emptied buffer back for reuse (the router may
                // already be gone during teardown — then it just drops).
                let _ = recycle.send(items);
            }
            ToShard::Flush => {
                let reply = ShardReply {
                    reports: std::mem::take(&mut pending),
                    clock_bytes: store.clock_memory_bytes(),
                    touched: store.touched_areas(),
                    epoch_areas: None,
                };
                if tx.send(reply).is_err() {
                    break; // detector dropped mid-flush
                }
            }
            ToShard::CountEpochs => {
                let reply = ShardReply {
                    reports: Vec::new(),
                    clock_bytes: store.clock_memory_bytes(),
                    touched: store.touched_areas(),
                    epoch_areas: Some(store.epoch_areas()),
                };
                if tx.send(reply).is_err() {
                    break;
                }
            }
            // `resume_unwind` rather than `panic!`: the unwind is caught by
            // the spawn wrapper either way, but resuming skips the global
            // panic hook, so injected deaths do not spray backtraces over
            // test output.
            ToShard::Poison => {
                std::panic::resume_unwind(Box::new("injected shard poison".to_string()))
            }
        }
    }
}

/// K-way merge of per-shard report logs — each already sorted by
/// [`ReportKey`] — into `out`, preserving the sequential emission order.
/// Keys are globally unique (one per `(op, slot, block, index)`), so the
/// merge is deterministic; reports reach the sink by value, in emission
/// order, exactly as the sequential detector hands them over. Returns the
/// number of reports merged. O(total · k) head compares with tiny `k`, no
/// intermediate buffer, and the common single-source case is a plain loop.
fn merge_sorted_reports(
    replies: Vec<Vec<(ReportKey, RaceReport)>>,
    out: &mut dyn ReportSink,
) -> usize {
    debug_assert!(replies
        .iter()
        .all(|r| r.windows(2).all(|w| w[0].0 < w[1].0)));
    match replies.len() {
        0 => 0,
        1 => {
            let only = replies.into_iter().next().expect("one reply");
            let total = only.len();
            for (_, report) in only {
                out.accept(report);
            }
            total
        }
        _ => {
            let total = replies.iter().map(Vec::len).sum();
            let mut tails: Vec<_> = replies.into_iter().map(Vec::into_iter).collect();
            let mut heads: Vec<Option<(ReportKey, RaceReport)>> =
                tails.iter_mut().map(Iterator::next).collect();
            loop {
                let mut best: Option<(usize, ReportKey)> = None;
                for (i, head) in heads.iter().enumerate() {
                    if let Some((key, _)) = head {
                        if best.is_none_or(|(_, b)| *key < b) {
                            best = Some((i, *key));
                        }
                    }
                }
                let Some((i, _)) = best else { break };
                let (_, report) = heads[i].take().expect("best head present");
                out.accept(report);
                heads[i] = tails[i].next();
            }
            total
        }
    }
}

/// The clock-based detector with its per-area work partitioned across `k`
/// worker threads (see the module docs for the pipeline).
///
/// **Degenerate single-shard case.** One shard has no parallelism to buy,
/// so [`ShardedDetector::new`] with `shards == 1` runs the whole
/// check-and-update inline on the caller thread — the sequential detector
/// behind the batch API, with zero transport cost (the same convention as
/// every work-distribution runtime: never pay fan-out for a fleet of one).
/// The report stream is identical either way; benchmarks that want to
/// measure the threaded transport at one shard use
/// [`ShardedDetector::threaded`].
///
/// Construction spawns the workers (none for the inline case); they live
/// until the detector is dropped. [`ShardedDetector::observe_batch`] is the
/// intended entry point; the [`Detector`] impl routes single ops by
/// reference — no buffering, no clone — but still pays a full
/// fan-out/fan-in round trip per call on the threaded pipeline; batch when
/// you can.
///
/// ```
/// use dsm::GlobalAddr;
/// use race_core::sharded::{MemOp, ShardedDetector};
/// use race_core::{DsmOp, Granularity, HbMode, OpKind};
///
/// let mut det = ShardedDetector::new(3, Granularity::WORD, HbMode::Dual, 2);
/// // Fig 5a: P0 and P2 put to the same word of P1's memory, unsynchronised.
/// let dst = GlobalAddr::public(1, 0).range(8);
/// let batch: Vec<MemOp> = [0usize, 2]
///     .iter()
///     .enumerate()
///     .map(|(i, &actor)| {
///         MemOp::Op(DsmOp {
///             op_id: i as u64,
///             actor,
///             kind: OpKind::Put {
///                 src: GlobalAddr::private(actor, 0).range(8),
///                 dst,
///             },
///         })
///     })
///     .collect();
/// assert_eq!(det.observe_batch(&batch), 1); // exactly one write-write race
/// ```
pub struct ShardedDetector {
    pipeline: Pipeline,
    /// The legacy keep-everything log, fed only by the sink-less entry
    /// points ([`Detector::observe`] / [`ShardedDetector::observe_batch`]).
    log: VecSink,
    /// The failure that degraded this detector, if any. Set exactly once:
    /// after the threaded pipeline falls back inline there is nothing left
    /// to die.
    last_error: Option<DetectError>,
}

enum Pipeline {
    /// `shards == 1`: the sequential detector run inline — no worker
    /// thread, no transport, no join replicas (the authoritative store is
    /// right here, so the read-absorb needs no replica).
    Inline(Box<crate::hb::HbDetector>),
    /// `shards >= 2`: router + worker threads over the zero-copy transport.
    Threaded(Box<Threaded>),
}

/// The threaded pipeline: router state plus worker handles.
struct Threaded {
    mode: HbMode,
    granularity: Granularity,
    n: usize,
    /// One matrix clock per process (§IV-B) — router-owned.
    clocks: Vec<MatrixClock>,
    /// Per-actor sync generation: bumped whenever the actor's clock may
    /// have changed in a non-own component (read-absorb, barrier, lock
    /// acquire). The delta encoding is valid exactly while it is stable.
    sync_gen: Vec<u64>,
    /// Per-actor generation base: a row snapshot taken once per sync
    /// generation (lazily, at the first op that needs it). Within a
    /// generation only the own component moves, so `base` + an own-count
    /// reconstructs any event clock — the join replicas and the wire's
    /// [`ClockWire::Rebase`] both lean on this instead of per-op clones.
    bases: Vec<Arc<VectorClock>>,
    /// Generation each [`ShardedDetector::bases`] entry was taken in.
    base_gens: Vec<u64>,
    /// Router-side `(V, W)` join replicas (see [`JoinClock`]).
    joins: JoinStore,
    /// Clock snapshots taken at program-lock releases (grant carries them).
    lock_clocks: HashMap<LockId, VectorClock>,
    /// Scratch clock for the read-absorb merge, reused across ops.
    absorb: VectorClock,
    /// Global operation sequence across all batches (orders the merge).
    seq: u64,
    /// Per-shard outgoing chunks being filled.
    buffers: Vec<Vec<ShardItem>>,
    /// Chunk size that triggers a mid-batch ship (see [`stream_threshold`]).
    chunk: usize,
    /// Per-shard epoch-delta encoder state (see [`crate::wire`]).
    encoders: Vec<ClockEncoder>,
    /// Emptied batch buffers recovered from the workers, ready for reuse.
    pool: Vec<Vec<ShardItem>>,
    /// Workers return consumed buffers here (all share one sender side).
    recycle_rx: Receiver<Vec<ShardItem>>,
    workers: Vec<Worker>,
    /// Per-shard accounting, refreshed at every batch fence.
    shard_clock_bytes: Vec<usize>,
    shard_touched: Vec<usize>,
    /// The store layout every shard was built with, kept so the supervisor
    /// can rebuild an equivalent inline detector after a worker death.
    store: StoreConfig,
    /// Every event ever routed, in order — the supervisor's recovery
    /// journal. On a worker death the whole history replays through a
    /// fresh inline detector, which regenerates the already-delivered
    /// prefix of the report stream ([`Threaded::emitted`] reports, skipped)
    /// and everything the dead pipeline still owed. The journal grows with
    /// the stream: that unbounded memory is the price of byte-exact
    /// recovery, documented in `docs/ROBUSTNESS.md`.
    journal: Vec<MemOp>,
    /// Reports already merged into caller-visible sinks at past fences —
    /// the skip prefix for a recovery replay.
    emitted: usize,
    /// Backoff schedule for distinguishing slow workers from dead ones at
    /// the fence (see [`RetryPolicy`]).
    retry: RetryPolicy,
}

impl ShardedDetector {
    /// A detector for `n` processes at `granularity`, partitioned over
    /// `shards` worker threads, with the default clock-store layout. One
    /// shard runs inline (see the type docs).
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(n: usize, granularity: Granularity, mode: HbMode, shards: usize) -> Self {
        ShardedDetector::with_config(n, granularity, mode, shards, StoreConfig::default())
    }

    /// [`ShardedDetector::new`] with an explicit [`StoreConfig`], applied
    /// to every shard's [`ClockStore`] and to the router's join replicas.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn with_config(
        n: usize,
        granularity: Granularity,
        mode: HbMode,
        shards: usize,
        store: StoreConfig,
    ) -> Self {
        assert!(shards > 0, "at least one shard");
        let pipeline = if shards == 1 {
            Pipeline::Inline(Box::new(crate::hb::HbDetector::with_config(
                n,
                granularity,
                mode,
                store,
            )))
        } else {
            Pipeline::Threaded(Box::new(Threaded::new(n, granularity, mode, shards, store)))
        };
        ShardedDetector {
            pipeline,
            log: VecSink::new(),
            last_error: None,
        }
    }

    /// Always-threaded construction, even at one shard — the degenerate
    /// configuration benchmarks use to measure the transport itself
    /// (`ShardedDetector::new` runs a single shard inline instead, which is
    /// what production callers want).
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn threaded(
        n: usize,
        granularity: Granularity,
        mode: HbMode,
        shards: usize,
        store: StoreConfig,
    ) -> Self {
        assert!(shards > 0, "at least one shard");
        ShardedDetector {
            pipeline: Pipeline::Threaded(Box::new(Threaded::new(
                n,
                granularity,
                mode,
                shards,
                store,
            ))),
            log: VecSink::new(),
            last_error: None,
        }
    }

    /// Rebuild from a restored inline detector (the snapshot codec's
    /// restore path, see [`crate::snapshot`]). Restored sessions always run
    /// the inline pipeline regardless of the config's shard count: the two
    /// pipelines are report-stream byte-identical by construction, so this
    /// is a performance trade, never a correctness one.
    pub(crate) fn from_restored(hb: Box<crate::hb::HbDetector>) -> Self {
        ShardedDetector {
            pipeline: Pipeline::Inline(hb),
            log: VecSink::new(),
            last_error: None,
        }
    }

    /// Number of worker shards (1 for the inline pipeline).
    pub fn shards(&self) -> usize {
        match &self.pipeline {
            Pipeline::Inline(_) => 1,
            Pipeline::Threaded(t) => t.workers.len(),
        }
    }

    /// True when the degenerate single shard runs inline on the caller
    /// thread (no worker, no transport).
    pub fn is_inline(&self) -> bool {
        matches!(self.pipeline, Pipeline::Inline(_))
    }

    /// The actor's current vector clock (parity tests and traces).
    pub fn process_clock(&self, rank: Rank) -> &VectorClock {
        match &self.pipeline {
            Pipeline::Inline(hb) => hb.process_clock(rank),
            Pipeline::Threaded(t) => t.clocks[rank].own_row(),
        }
    }

    /// Touched areas summed over all shards (accounting parity with
    /// [`ClockStore::touched_areas`]).
    pub fn touched_areas(&self) -> usize {
        match &self.pipeline {
            Pipeline::Inline(hb) => hb.store().touched_areas(),
            Pipeline::Threaded(t) => t.shard_touched.iter().sum(),
        }
    }

    /// Areas currently in the O(1) epoch representation, summed over
    /// shards. On the threaded pipeline this costs one accounting round
    /// trip per shard plus an O(touched-areas) census on each —
    /// instrumentation for tests and benches, kept off the fence path on
    /// purpose.
    pub fn epoch_areas(&mut self) -> usize {
        let res = match &mut self.pipeline {
            Pipeline::Inline(hb) => return hb.store().epoch_areas(),
            Pipeline::Threaded(t) => t.epoch_areas(),
        };
        match res {
            Ok(total) => total,
            Err(err) => {
                // This instrumentation path has no caller sink, so any
                // reports the dead pipeline still owed land in the legacy
                // log (the sink-less entry points' destination).
                let mut log = std::mem::take(&mut self.log);
                self.recover(err, &mut log);
                self.log = log;
                match &mut self.pipeline {
                    Pipeline::Inline(hb) => hb.store().epoch_areas(),
                    Pipeline::Threaded(_) => unreachable!("recover degrades to inline"),
                }
            }
        }
    }

    /// Pipeline failure that degraded this detector, if any — `Some`
    /// exactly when [`Detector::health`] reports
    /// [`PipelineHealth::Degraded`].
    pub fn last_error(&self) -> Option<&DetectError> {
        self.last_error.as_ref()
    }

    /// Chaos instrumentation: make shard `shard`'s worker panic at its
    /// next message, as an implementation bug in the check-and-update
    /// would. The death is asynchronous — the *next* fence discovers it
    /// and degrades the detector (journal replay, inline fallback, health
    /// [`PipelineHealth::Degraded`]) without losing or duplicating a
    /// single report. Returns `false` when there is no worker to poison
    /// (inline pipeline, out-of-range shard, or already-dead worker).
    pub fn inject_worker_panic(&mut self, shard: usize) -> bool {
        match &mut self.pipeline {
            Pipeline::Inline(_) => false,
            Pipeline::Threaded(t) => match t.workers.get(shard).and_then(|w| w.tx.as_ref()) {
                Some(tx) => tx.send(ToShard::Poison).is_ok(),
                None => false,
            },
        }
    }

    /// Supervision fallback: worker `err.shard()` died, taking its slice
    /// of the detection state with it. Rebuild from the journal — replay
    /// every event ever observed through a fresh inline [`HbDetector`]
    /// with the same configuration, suppressing the first
    /// [`Threaded::emitted`] reports (already delivered at past fences)
    /// and forwarding the remainder to `sink`. The replayed detector then
    /// *becomes* the pipeline, so the stream stays byte-identical to a
    /// healthy run at the cost of parallelism. Returns the number of
    /// reports forwarded, which is exactly what the failed call owed.
    fn recover(&mut self, err: DetectError, sink: &mut dyn ReportSink) -> usize {
        let Pipeline::Threaded(t) = &mut self.pipeline else {
            unreachable!("recover only runs on the threaded pipeline");
        };
        let journal = std::mem::take(&mut t.journal);
        let emitted = t.emitted;
        let (n, granularity, mode, store) = (t.n, t.granularity, t.mode, t.store);
        let mut hb = Box::new(HbDetector::with_config(n, granularity, mode, store));
        let mut skip = SkipSink {
            skip: emitted,
            forwarded: 0,
            inner: sink,
        };
        for event in &journal {
            match event {
                MemOp::Op(op) => {
                    hb.observe_sink(op, &[], &mut skip);
                }
                MemOp::Barrier => hb.on_barrier(),
                MemOp::Acquire { rank, lock } => hb.on_acquire(*rank, *lock),
                MemOp::Release { rank, lock } => hb.on_release(*rank, *lock),
            }
        }
        debug_assert_eq!(skip.skip, 0, "replay must regenerate every emitted report");
        let forwarded = skip.forwarded;
        // Swapping the pipeline drops `Threaded`, whose Drop joins the
        // surviving workers.
        self.pipeline = Pipeline::Inline(hb);
        self.last_error = Some(err);
        forwarded
    }

    /// Observe a batch of operations and synchronisation events, running
    /// the per-area checks on the worker shards (inline for a single
    /// shard), appending the merged reports to the legacy log
    /// ([`Detector::reports`]) in the sequential detector's emission
    /// order. Returns the number of new race reports.
    ///
    /// Synchronous: when this returns, every report triggered by the batch
    /// is in the log and the per-shard accounting is up to date.
    pub fn observe_batch(&mut self, batch: &[MemOp]) -> usize {
        let mut log = std::mem::take(&mut self.log);
        let n = self.observe_batch_sink(batch, &mut log);
        self.log = log;
        n
    }

    /// Sink-streaming variant of [`ShardedDetector::observe_batch`]: the
    /// merged, deterministically ordered report stream goes to `sink`
    /// instead of the internal log. Returns the number of new reports.
    ///
    /// This call cannot fail: a worker death inside the threaded pipeline
    /// is absorbed by the supervisor, which replays the event journal
    /// through a rebuilt inline pipeline and delivers this batch's reports
    /// from there (see [`Detector::health`] and
    /// [`ShardedDetector::inject_worker_panic`]).
    pub fn observe_batch_sink(&mut self, batch: &[MemOp], sink: &mut dyn ReportSink) -> usize {
        let res = match &mut self.pipeline {
            Pipeline::Inline(hb) => {
                let mut new = 0;
                for event in batch {
                    match event {
                        MemOp::Op(op) => new += hb.observe_sink(op, &[], sink),
                        MemOp::Barrier => hb.on_barrier(),
                        MemOp::Acquire { rank, lock } => hb.on_acquire(*rank, *lock),
                        MemOp::Release { rank, lock } => hb.on_release(*rank, *lock),
                    }
                }
                return new;
            }
            Pipeline::Threaded(t) => t.observe_batch_sink(batch, sink),
        };
        match res {
            Ok(new) => new,
            Err(err) => self.recover(err, sink),
        }
    }
}

/// Forwards reports past an initial skip window: the recovery replay
/// regenerates the *entire* report stream, and the first
/// [`Threaded::emitted`] reports were already delivered by the pipeline
/// before it died.
struct SkipSink<'a> {
    skip: usize,
    forwarded: usize,
    inner: &'a mut dyn ReportSink,
}

impl ReportSink for SkipSink<'_> {
    fn on_report(&mut self, report: &RaceReport) {
        if self.skip > 0 {
            self.skip -= 1;
        } else {
            self.forwarded += 1;
            self.inner.on_report(report);
        }
    }

    fn accept(&mut self, report: RaceReport) {
        if self.skip > 0 {
            self.skip -= 1;
        } else {
            self.forwarded += 1;
            self.inner.accept(report);
        }
    }
}

impl Threaded {
    fn new(
        n: usize,
        granularity: Granularity,
        mode: HbMode,
        shards: usize,
        store: StoreConfig,
    ) -> Self {
        let (recycle_tx, recycle_rx) = channel();
        let workers = (0..shards)
            .map(|_| {
                let (tx, worker_rx) = channel();
                let (reply_tx, rx) = channel();
                let recycle = recycle_tx.clone();
                // Supervised spawn: the worker loop runs under
                // `catch_unwind`, so a panicking shard dies quietly and the
                // router learns the payload at join time instead of the
                // process aborting or the unwind crossing threads.
                let handle = std::thread::spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| {
                        shard_worker(mode, n, granularity, store, worker_rx, reply_tx, recycle)
                    }))
                    .err()
                    .map(panic_message)
                });
                Worker {
                    tx: Some(tx),
                    rx,
                    handle: Some(handle),
                }
            })
            .collect();
        Threaded {
            mode,
            granularity,
            n,
            clocks: (0..n).map(|i| MatrixClock::zero(i, n)).collect(),
            sync_gen: vec![0; n],
            bases: (0..n).map(|_| Arc::new(VectorClock::zero(n))).collect(),
            base_gens: vec![0; n],
            joins: JoinStore::new(store),
            lock_clocks: HashMap::new(),
            absorb: VectorClock::zero(n),
            seq: 0,
            buffers: (0..shards)
                .map(|_| Vec::with_capacity(SHARD_CHUNK))
                .collect(),
            chunk: stream_threshold(),
            encoders: (0..shards).map(|_| ClockEncoder::new(n)).collect(),
            pool: Vec::new(),
            recycle_rx,
            workers,
            shard_clock_bytes: vec![0; shards],
            shard_touched: vec![0; shards],
            store,
            journal: Vec::new(),
            emitted: 0,
            retry: RetryPolicy::default(),
        }
    }

    /// Diagnose a worker that stopped responding: close our side of its
    /// channel and join the thread, recovering the panic payload. Only
    /// called once the worker is known dead (send failed, reply channel
    /// disconnected, or the thread observed finished), so the join cannot
    /// block on live work.
    fn worker_error(&mut self, shard: usize) -> DetectError {
        let worker = &mut self.workers[shard];
        worker.tx = None;
        match worker.handle.take().map(JoinHandle::join) {
            Some(Ok(Some(message))) => DetectError::WorkerPanicked { shard, message },
            _ => DetectError::WorkerDisconnected { shard },
        }
    }

    /// Send `msg` to `shard`, diagnosing the worker on a closed channel.
    fn send_to(&mut self, shard: usize, msg: ToShard) -> Result<(), DetectError> {
        let sent = match &self.workers[shard].tx {
            Some(tx) => tx.send(msg).is_ok(),
            None => false,
        };
        if sent {
            Ok(())
        } else {
            Err(self.worker_error(shard))
        }
    }

    /// Wait for `shard`'s reply, probing liveness with the bounded
    /// exponential backoff of [`RetryPolicy`]: a timeout re-checks whether
    /// the thread is still running (transient stall → next, longer probe),
    /// and only an actually-finished thread or a closed channel becomes an
    /// error. A worker that outlives every probe is waited out with a
    /// plain blocking receive — the policy bounds death-*detection*
    /// latency, it never abandons a live worker.
    fn recv_reply(&mut self, shard: usize) -> Result<ShardReply, DetectError> {
        use std::sync::mpsc::RecvTimeoutError;
        let policy = self.retry;
        for delay in policy.delays() {
            match self.workers[shard].rx.recv_timeout(delay) {
                Ok(reply) => return Ok(reply),
                Err(RecvTimeoutError::Timeout) => {
                    let finished = self.workers[shard]
                        .handle
                        .as_ref()
                        .is_none_or(|h| h.is_finished());
                    if finished {
                        // Drain a reply the worker managed to send in its
                        // final moments before diagnosing.
                        if let Ok(reply) = self.workers[shard].rx.try_recv() {
                            return Ok(reply);
                        }
                        return Err(self.worker_error(shard));
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return Err(self.worker_error(shard)),
            }
        }
        match self.workers[shard].rx.recv() {
            Ok(reply) => Ok(reply),
            Err(_) => Err(self.worker_error(shard)),
        }
    }

    /// Per-shard epoch census (see [`ShardedDetector::epoch_areas`]).
    fn epoch_areas(&mut self) -> Result<usize, DetectError> {
        for shard in 0..self.workers.len() {
            self.send_to(shard, ToShard::CountEpochs)?;
        }
        let mut total = 0;
        for shard in 0..self.workers.len() {
            let reply = self.recv_reply(shard)?;
            self.shard_clock_bytes[shard] = reply.clock_bytes;
            self.shard_touched[shard] = reply.touched;
            // Requests are strictly request/reply per worker, so a census
            // request always gets a census reply.
            total += reply.epoch_areas.unwrap_or(0);
        }
        Ok(total)
    }

    /// The threaded half of [`ShardedDetector::observe_batch_sink`]. The
    /// whole batch is journaled up front, so a mid-batch worker death can
    /// hand the supervisor a journal that already covers every event of
    /// this call — the replay then owes nothing to the caller.
    fn observe_batch_sink(
        &mut self,
        batch: &[MemOp],
        sink: &mut dyn ReportSink,
    ) -> Result<usize, DetectError> {
        self.journal.extend_from_slice(batch);
        for event in batch {
            match event {
                MemOp::Op(op) => self.route_op(op)?,
                MemOp::Barrier => self.barrier_event(),
                MemOp::Acquire { rank, lock } => self.acquire_event(*rank, *lock),
                MemOp::Release { rank, lock } => self.release_event(*rank, *lock),
            }
        }
        self.fence(sink)
    }

    /// Route one op: tick the actor, replay the read-absorb against the
    /// join replicas, and stream every public access to its area's shard.
    ///
    /// Allocation-free in steady state: the join replicas and the wire
    /// format both work from the actor's per-generation base snapshot, so
    /// the router never clones a row per op — only once per sync event.
    fn route_op(&mut self, op: &DsmOp) -> Result<(), DetectError> {
        let seq = self.seq;
        self.seq += 1;
        let actor = op.actor;
        let count = self.clocks[actor].tick_count();
        let gen = self.sync_gen[actor];
        // Refresh the generation base lazily: one row clone per sync event,
        // amortised over every op / area / shard of the generation.
        if self.base_gens[actor] != gen {
            self.bases[actor] = Arc::new(self.clocks[actor].own_row().clone());
            self.base_gens[actor] = gen;
        }
        let shards = self.workers.len();
        // Take the scratch clock out so area-join borrows don't conflict.
        let mut absorb = std::mem::replace(&mut self.absorb, VectorClock::zero(0));
        let mut absorbed = false;
        // Single/Literal reads also absorb the general clock V; Dual needs
        // only W, so the router skips V bookkeeping entirely in Dual mode.
        let track_v = self.mode != HbMode::Dual;

        for (slot, (kind, range, access_id)) in op.accesses().into_iter().enumerate() {
            if range.addr.segment != Segment::Public {
                continue; // private memory cannot race (§IV-A)
            }
            let atomic = op.is_atomic();
            for block in self.granularity.blocks_of(&range) {
                let area = AreaKey::new(range.addr.rank, block);
                let w_le = {
                    let clocks = &self.clocks;
                    let bases = &self.bases;
                    let joins = self.joins.get_mut(area);
                    // The access's clock is the freshly ticked row.
                    let row = clocks[actor].own_row();
                    match kind {
                        AccessKind::Write => {
                            let w_le = joins.w.leq(row);
                            joins.w.record(actor, count, &bases[actor], w_le);
                            if track_v {
                                let v_le = joins.v.leq(row);
                                joins.v.record(actor, count, &bases[actor], v_le);
                            }
                            w_le
                        }
                        AccessKind::Read => {
                            // Absorb *before* recording, from the pre-access
                            // joins, exactly as HbDetector::observe does.
                            let w_le = joins.w.leq(row);
                            if !w_le {
                                if !absorbed {
                                    absorb.clear();
                                    absorbed = true;
                                }
                                joins.w.merge_into(&mut absorb);
                            }
                            if track_v {
                                let v_le = joins.v.leq(row);
                                if !v_le {
                                    if !absorbed {
                                        absorb.clear();
                                        absorbed = true;
                                    }
                                    joins.v.merge_into(&mut absorb);
                                }
                                joins.v.record(actor, count, &bases[actor], v_le);
                            }
                            w_le
                        }
                    }
                };
                let shard = shard_of(area, shards);
                let bases = &self.bases;
                let wire = self.encoders[shard]
                    .encode(actor, seq, gen, count, || Arc::clone(&bases[actor]));
                self.buffers[shard].push(ShardItem {
                    seq,
                    slot: slot as u8,
                    kind,
                    atomic,
                    w_le,
                    id: access_id,
                    process: actor,
                    range,
                    area,
                    clock: wire,
                });
                if self.buffers[shard].len() >= self.chunk {
                    if let Err(err) = self.ship(shard) {
                        // Restore the scratch clock before bailing: recovery
                        // replays the journal, but `self` must stay sane.
                        self.absorb = absorb;
                        return Err(err);
                    }
                }
            }
        }

        if absorbed {
            self.clocks[actor].absorb(&absorb);
            // Foreign knowledge entered the actor's clock: delta encodings
            // minted from the old row are no longer derivable shard-side.
            self.sync_gen[actor] += 1;
        }
        self.absorb = absorb;
        Ok(())
    }

    /// An empty batch buffer: recycled from the pool / the workers' return
    /// channel when available, freshly allocated only during warm-up.
    fn take_buffer(&mut self) -> Vec<ShardItem> {
        if let Some(buf) = self.pool.pop() {
            return buf;
        }
        while let Ok(buf) = self.recycle_rx.try_recv() {
            self.pool.push(buf);
        }
        self.pool
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(SHARD_CHUNK))
    }

    /// Send a shard's filled chunk, replacing it with a recycled buffer.
    /// A closed channel (dead worker) surfaces as a [`DetectError`]; the
    /// in-flight items are abandoned, which is safe because the journal
    /// replay regenerates their effects.
    fn ship(&mut self, shard: usize) -> Result<(), DetectError> {
        let empty = self.take_buffer();
        let items = std::mem::replace(&mut self.buffers[shard], empty);
        self.send_to(shard, ToShard::Items(items))
    }

    /// Batch fence: flush every shard, collect replies, and k-way merge the
    /// already-sorted per-shard report logs into the caller's sink. Returns
    /// the number of reports merged.
    ///
    /// The merge runs only after *every* reply is in, so a worker death
    /// mid-fence emits nothing: either the whole fence reaches the sink
    /// (and bumps [`Threaded::emitted`]) or none of it does and the
    /// supervisor's replay regenerates it.
    fn fence(&mut self, sink: &mut dyn ReportSink) -> Result<usize, DetectError> {
        for shard in 0..self.workers.len() {
            if !self.buffers[shard].is_empty() {
                self.ship(shard)?;
            }
            self.send_to(shard, ToShard::Flush)?;
        }
        let mut replies: Vec<Vec<(ReportKey, RaceReport)>> = Vec::new();
        for shard in 0..self.workers.len() {
            let reply = self.recv_reply(shard)?;
            self.shard_clock_bytes[shard] = reply.clock_bytes;
            self.shard_touched[shard] = reply.touched;
            if !reply.reports.is_empty() {
                replies.push(reply.reports);
            }
        }
        let merged = merge_sorted_reports(replies, sink);
        self.emitted += merged;
        Ok(merged)
    }

    // The sync-event clock semantics are the exact shared bodies the
    // sequential detector uses (hb::barrier_join / release_clock /
    // acquire_clock) — one implementation, no parity drift. Each one that
    // can merge foreign knowledge into an actor's clock bumps that actor's
    // sync generation, forcing the next send per shard to carry a full
    // snapshot.

    fn barrier_event(&mut self) {
        barrier_join(&mut self.clocks);
        for gen in &mut self.sync_gen {
            *gen += 1;
        }
    }

    fn release_event(&mut self, rank: Rank, lock: LockId) {
        release_clock(&self.clocks, &mut self.lock_clocks, rank, lock);
    }

    fn acquire_event(&mut self, rank: Rank, lock: LockId) {
        acquire_clock(&mut self.clocks, &self.lock_clocks, rank, lock);
        self.sync_gen[rank] += 1;
    }
}

impl Detector for ShardedDetector {
    fn name(&self) -> &'static str {
        match &self.pipeline {
            Pipeline::Inline(hb) => hb.name(),
            Pipeline::Threaded(t) => t.mode.detector_name(),
        }
    }

    fn observe_sink(
        &mut self,
        op: &DsmOp,
        _held_locks: &[LockId],
        sink: &mut dyn ReportSink,
    ) -> usize {
        // By-reference single-op path: route straight from the borrow — no
        // `MemOp` wrapper, no clone, no allocation (the journal copy is a
        // few plain words).
        let res = match &mut self.pipeline {
            Pipeline::Inline(hb) => return hb.observe_sink(op, &[], sink),
            Pipeline::Threaded(t) => {
                t.journal.push(MemOp::Op(*op));
                t.route_op(op).and_then(|()| t.fence(sink))
            }
        };
        match res {
            Ok(new) => new,
            Err(err) => self.recover(err, sink),
        }
    }

    fn observe(&mut self, op: &DsmOp, held_locks: &[LockId]) -> usize {
        crate::detector::observe_via_log!(self.log, op, held_locks)
    }

    fn reports(&self) -> &[RaceReport] {
        self.log.as_slice()
    }

    fn clock_components_per_area(&self) -> usize {
        match &self.pipeline {
            Pipeline::Inline(hb) => hb.clock_components_per_area(),
            Pipeline::Threaded(t) => match t.mode {
                HbMode::Dual | HbMode::Literal => 2 * t.n,
                HbMode::Single => t.n,
            },
        }
    }

    fn clock_memory_bytes(&self) -> usize {
        match &self.pipeline {
            Pipeline::Inline(hb) => hb.clock_memory_bytes(),
            Pipeline::Threaded(t) => t.shard_clock_bytes.iter().sum(),
        }
    }

    fn requires_locking(&self) -> bool {
        true
    }

    fn on_release(&mut self, rank: usize, lock: LockId) {
        match &mut self.pipeline {
            Pipeline::Inline(hb) => hb.on_release(rank, lock),
            Pipeline::Threaded(t) => {
                t.journal.push(MemOp::Release { rank, lock });
                t.release_event(rank, lock);
            }
        }
    }

    fn on_acquire(&mut self, rank: usize, lock: LockId) {
        match &mut self.pipeline {
            Pipeline::Inline(hb) => hb.on_acquire(rank, lock),
            Pipeline::Threaded(t) => {
                t.journal.push(MemOp::Acquire { rank, lock });
                t.acquire_event(rank, lock);
            }
        }
    }

    fn on_barrier(&mut self) {
        match &mut self.pipeline {
            Pipeline::Inline(hb) => hb.on_barrier(),
            Pipeline::Threaded(t) => {
                t.journal.push(MemOp::Barrier);
                t.barrier_event();
            }
        }
    }

    fn health(&self) -> PipelineHealth {
        if self.last_error.is_some() {
            PipelineHealth::Degraded
        } else {
            PipelineHealth::Healthy
        }
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        match &self.pipeline {
            Pipeline::Inline(hb) => Some(crate::snapshot::encode_hb(hb)),
            // The threaded pipeline's state lives across worker threads;
            // its recovery journal (every event ever routed, the same
            // record a worker-death replay uses) rebuilds an equivalent
            // inline detector whose state *is* the pipeline's state.
            // Reports regenerated by the replay are discarded — they were
            // already delivered at past fences.
            Pipeline::Threaded(t) => {
                let mut hb =
                    crate::hb::HbDetector::with_config(t.n, t.granularity, t.mode, t.store);
                let mut discard = crate::api::CountingSink::default();
                for event in &t.journal {
                    match event {
                        MemOp::Op(op) => {
                            hb.observe_sink(op, &[], &mut discard);
                        }
                        MemOp::Barrier => hb.on_barrier(),
                        MemOp::Release { rank, lock } => hb.on_release(*rank, *lock),
                        MemOp::Acquire { rank, lock } => hb.on_acquire(*rank, *lock),
                    }
                }
                Some(crate::snapshot::encode_hb(&hb))
            }
        }
    }
}

impl Drop for Threaded {
    fn drop(&mut self) {
        // Close the channels (workers exit their recv loop), then join.
        for worker in &mut self.workers {
            worker.tx = None;
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// A buffering front-end that turns the per-op [`Detector`] interface into
/// batched [`ShardedDetector::observe_batch`] calls.
///
/// Operations and sync events accumulate (in order, by value — [`MemOp`] is
/// `Copy`, so buffering is a word-copy into preallocated capacity) until
/// the buffer holds `capacity` events or [`Detector::flush`] is called,
/// then drain as one batch. The engine's batched drain mode wraps the
/// sharded detector in this to amortise the fan-out over many ops; the
/// drained batches ride the detector's recycled transport buffers, so the
/// steady-state drain allocates nothing end to end.
///
/// Contract difference from the inline detectors: [`Detector::observe`]
/// returns 0 while buffering and the whole batch's report count at the
/// observe that triggers a drain, so per-op report attribution is only
/// available at batch fences. Backends must call `flush()` before reading
/// the final log.
pub struct BatchingDetector {
    inner: ShardedDetector,
    buf: Vec<MemOp>,
    capacity: usize,
    /// Reports produced by capacity drains that a *sync event* triggered
    /// (the sync hooks carry no report destination), staged until the next
    /// observe / flush forwards them to its destination.
    staged: VecSink,
}

impl BatchingDetector {
    /// Wrap `inner`, draining every `capacity` buffered events.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(inner: ShardedDetector, capacity: usize) -> Self {
        assert!(capacity > 0, "batch capacity must be positive");
        BatchingDetector {
            inner,
            buf: Vec::with_capacity(capacity),
            capacity,
            staged: VecSink::new(),
        }
    }

    /// The wrapped sharded detector.
    pub fn inner(&self) -> &ShardedDetector {
        &self.inner
    }

    /// Hand any sync-drain staged reports to `sink`, oldest first; returns
    /// how many were forwarded. Staged reports always precede the reports
    /// of newer events, so emission order is preserved.
    fn forward_staged(&mut self, sink: &mut dyn ReportSink) -> usize {
        if self.staged.is_empty() {
            return 0;
        }
        let staged = std::mem::take(&mut self.staged);
        let n = staged.len();
        for report in staged.into_reports() {
            sink.accept(report);
        }
        n
    }

    /// Legacy-path variant of [`BatchingDetector::forward_staged`]: staged
    /// reports go into the wrapped detector's internal log, where
    /// [`Detector::reports`] reads them.
    fn forward_staged_to_log(&mut self) -> usize {
        if self.staged.is_empty() {
            return 0;
        }
        let mut log = std::mem::take(&mut self.inner.log);
        let n = self.forward_staged(&mut log);
        self.inner.log = log;
        n
    }

    fn drain(&mut self) -> usize {
        if self.buf.is_empty() {
            return 0;
        }
        let batch = std::mem::take(&mut self.buf);
        let new = self.inner.observe_batch(&batch);
        self.buf = batch; // reuse the allocation
        self.buf.clear();
        new
    }

    fn drain_sink(&mut self, sink: &mut dyn ReportSink) -> usize {
        if self.buf.is_empty() {
            return 0;
        }
        let batch = std::mem::take(&mut self.buf);
        let new = self.inner.observe_batch_sink(&batch, sink);
        self.buf = batch; // reuse the allocation
        self.buf.clear();
        new
    }

    fn push(&mut self, event: MemOp) -> usize {
        self.buf.push(event);
        if self.buf.len() >= self.capacity {
            self.drain()
        } else {
            0
        }
    }

    /// Buffer a synchronisation event. The sync hooks carry no destination
    /// for reports, so a capacity-triggered drain here goes into the
    /// internal staging sink, which the next entry point *with* a
    /// destination (observe / flush, either flavour) forwards before its
    /// own reports. This keeps the buffer bounded by `capacity` on any
    /// event mix while still never splitting a sink-driven session's
    /// stream across the legacy log.
    fn push_sync(&mut self, event: MemOp) {
        self.buf.push(event);
        if self.buf.len() >= self.capacity {
            let mut staged = std::mem::take(&mut self.staged);
            self.drain_sink(&mut staged);
            self.staged = staged;
        }
    }
}

impl Detector for BatchingDetector {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn observe_sink(
        &mut self,
        op: &DsmOp,
        _held_locks: &[LockId],
        sink: &mut dyn ReportSink,
    ) -> usize {
        let forwarded = self.forward_staged(sink);
        self.buf.push(MemOp::Op(*op));
        forwarded
            + if self.buf.len() >= self.capacity {
                self.drain_sink(sink)
            } else {
                0
            }
    }

    fn observe(&mut self, op: &DsmOp, _held_locks: &[LockId]) -> usize {
        self.forward_staged_to_log() + self.push(MemOp::Op(*op))
    }

    fn reports(&self) -> &[RaceReport] {
        self.inner.reports()
    }

    fn clock_components_per_area(&self) -> usize {
        self.inner.clock_components_per_area()
    }

    fn clock_memory_bytes(&self) -> usize {
        self.inner.clock_memory_bytes()
    }

    fn requires_locking(&self) -> bool {
        true
    }

    fn on_release(&mut self, rank: usize, lock: LockId) {
        self.push_sync(MemOp::Release { rank, lock });
    }

    fn on_acquire(&mut self, rank: usize, lock: LockId) {
        self.push_sync(MemOp::Acquire { rank, lock });
    }

    fn on_barrier(&mut self) {
        self.push_sync(MemOp::Barrier);
    }

    fn flush(&mut self) {
        self.forward_staged_to_log();
        self.drain();
    }

    fn flush_sink(&mut self, sink: &mut dyn ReportSink) -> usize {
        self.forward_staged(sink) + self.drain_sink(sink)
    }

    fn health(&self) -> PipelineHealth {
        self.inner.health()
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        if self.buf.is_empty() {
            // Drained: the wrapper is stateless, the inner detector is the
            // durable state (the restore path re-wraps per the config).
            self.inner.snapshot_state()
        } else {
            // A buffered prefix has not been observed yet; callers must
            // flush first (Session::checkpoint does).
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OpKind;
    use crate::hb::HbDetector;
    use dsm::addr::GlobalAddr;

    fn put(op_id: u64, actor: Rank, dst_rank: Rank, dst_off: usize) -> DsmOp {
        DsmOp {
            op_id,
            actor,
            kind: OpKind::Put {
                src: GlobalAddr::private(actor, 0).range(8),
                dst: GlobalAddr::public(dst_rank, dst_off).range(8),
            },
        }
    }

    fn get(op_id: u64, actor: Rank, src_rank: Rank, src_off: usize) -> DsmOp {
        DsmOp {
            op_id,
            actor,
            kind: OpKind::Get {
                src: GlobalAddr::public(src_rank, src_off).range(8),
                dst: GlobalAddr::private(actor, 0).range(8),
            },
        }
    }

    /// A small mixed stream touching several areas, with a barrier, lock
    /// hand-off and an atomic, that races on some ops.
    fn mixed_stream(n: usize) -> Vec<MemOp> {
        let mut ops = Vec::new();
        let mut id = 0u64;
        let mut op = |kind: OpKind, actor: Rank, ops: &mut Vec<MemOp>| {
            ops.push(MemOp::Op(DsmOp {
                op_id: id,
                actor,
                kind,
            }));
            id += 1;
        };
        for rank in 0..n {
            op(
                OpKind::LocalWrite {
                    range: GlobalAddr::public(rank, 0).range(24),
                },
                rank,
                &mut ops,
            );
        }
        // Concurrent cross-writes: races.
        op(
            OpKind::Put {
                src: GlobalAddr::private(0, 0).range(8),
                dst: GlobalAddr::public(1, 0).range(8),
            },
            0,
            &mut ops,
        );
        ops.push(MemOp::Barrier);
        for rank in 0..n {
            let next = (rank + 1) % n;
            op(
                OpKind::Get {
                    src: GlobalAddr::public(next, 8).range(8),
                    dst: GlobalAddr::private(rank, 0).range(8),
                },
                rank,
                &mut ops,
            );
        }
        ops.push(MemOp::Release {
            rank: 0,
            lock: (1, 0),
        });
        ops.push(MemOp::Acquire {
            rank: 2 % n,
            lock: (1, 0),
        });
        op(
            OpKind::AtomicRmw {
                range: GlobalAddr::public(0, 32).range(8),
            },
            1,
            &mut ops,
        );
        op(
            OpKind::Put {
                src: GlobalAddr::private(2 % n, 0).range(8),
                dst: GlobalAddr::public(0, 32).range(8),
            },
            2 % n,
            &mut ops,
        );
        ops
    }

    /// Drive the same stream through the sequential detector (per op) and
    /// a sharded one (batched), asserting identical logs and clocks.
    /// `force_threaded` pins the threaded pipeline even at one shard (the
    /// configuration `new` would run inline).
    fn assert_parity(mode: HbMode, shards: usize, batch: usize, force_threaded: bool) {
        let n = 4;
        let stream = mixed_stream(n);
        let mut seq = HbDetector::new(n, Granularity::WORD, mode);
        let mut par = if force_threaded {
            ShardedDetector::threaded(n, Granularity::WORD, mode, shards, StoreConfig::default())
        } else {
            ShardedDetector::new(n, Granularity::WORD, mode, shards)
        };
        assert_eq!(par.is_inline(), !force_threaded && shards == 1);
        for event in &stream {
            match event {
                MemOp::Op(op) => {
                    seq.observe(op, &[]);
                }
                MemOp::Barrier => seq.on_barrier(),
                MemOp::Acquire { rank, lock } => seq.on_acquire(*rank, *lock),
                MemOp::Release { rank, lock } => seq.on_release(*rank, *lock),
            }
        }
        for chunk in stream.chunks(batch) {
            par.observe_batch(chunk);
        }
        assert_eq!(
            seq.reports(),
            par.reports(),
            "report stream must be byte-identical"
        );
        assert_eq!(seq.clock_memory_bytes(), par.clock_memory_bytes());
        for rank in 0..n {
            assert_eq!(seq.process_clock(rank), par.process_clock(rank));
        }
    }

    #[test]
    fn parity_across_modes_shards_and_batch_sizes() {
        for mode in [HbMode::Dual, HbMode::Single, HbMode::Literal] {
            for shards in [1, 2, 3, 4] {
                for batch in [1, 3, 64] {
                    assert_parity(mode, shards, batch, false);
                }
            }
            // The degenerate threaded single shard (inline-bypassed by
            // `new`) must stay byte-identical too — it is what the
            // transport benches measure.
            for batch in [1, 64] {
                assert_parity(mode, 1, batch, true);
            }
        }
    }

    #[test]
    fn fig5a_race_found_once() {
        let mut det = ShardedDetector::new(3, Granularity::WORD, HbMode::Dual, 2);
        let batch = vec![MemOp::Op(put(0, 0, 1, 0)), MemOp::Op(put(1, 2, 1, 0))];
        assert_eq!(det.observe_batch(&batch), 1);
        assert_eq!(det.reports().len(), 1);
        let r = &det.reports()[0];
        assert!(r
            .current
            .clock
            .concurrent_with(&r.previous.as_ref().unwrap().clock));
    }

    #[test]
    fn read_absorb_crosses_shards() {
        // P2 gets P1's word (absorbing P1's write clock) then puts to it:
        // causally ordered, silent — even when the areas and the absorb
        // bookkeeping live on different sides of the router/shard split.
        let mut det = ShardedDetector::new(3, Granularity::WORD, HbMode::Dual, 4);
        let init = DsmOp {
            op_id: 0,
            actor: 1,
            kind: OpKind::LocalWrite {
                range: GlobalAddr::public(1, 0).range(8),
            },
        };
        det.observe_batch(&[MemOp::Op(init)]);
        det.observe_batch(&[MemOp::Op(get(1, 2, 1, 0))]);
        let before = det.reports().len();
        det.observe_batch(&[MemOp::Op(put(2, 2, 1, 0))]);
        assert_eq!(det.reports().len(), before, "causal chain must be silent");
    }

    #[test]
    fn batch_split_does_not_change_the_log() {
        let stream = mixed_stream(4);
        let mut whole = ShardedDetector::new(4, Granularity::WORD, HbMode::Dual, 3);
        whole.observe_batch(&stream);
        let mut split = ShardedDetector::new(4, Granularity::WORD, HbMode::Dual, 3);
        for event in &stream {
            split.observe_batch(std::slice::from_ref(event));
        }
        assert_eq!(whole.reports(), split.reports());
    }

    #[test]
    fn deterministic_across_runs() {
        let stream = mixed_stream(4);
        let run = || {
            let mut d = ShardedDetector::new(4, Granularity::WORD, HbMode::Dual, 4);
            d.observe_batch(&stream);
            d.reports().to_vec()
        };
        let a = run();
        assert!(!a.is_empty(), "stream must race for the test to bite");
        for _ in 0..5 {
            assert_eq!(a, run(), "merge order must not depend on scheduling");
        }
    }

    #[test]
    fn accounting_sums_across_shards() {
        let mut seq = HbDetector::new(4, Granularity::WORD, HbMode::Dual);
        let mut par = ShardedDetector::new(4, Granularity::WORD, HbMode::Dual, 4);
        let stream = mixed_stream(4);
        par.observe_batch(&stream);
        for event in &stream {
            if let MemOp::Op(op) = event {
                seq.observe(op, &[]);
            } else if let MemOp::Barrier = event {
                seq.on_barrier();
            }
        }
        assert_eq!(par.touched_areas(), seq.store().touched_areas());
        assert!(par.epoch_areas() <= par.touched_areas());
    }

    #[test]
    fn batching_front_end_flushes_on_capacity_and_flush() {
        let inner = ShardedDetector::new(3, Granularity::WORD, HbMode::Dual, 2);
        let mut det = BatchingDetector::new(inner, 2);
        assert_eq!(det.observe(&put(0, 0, 1, 0), &[]), 0, "buffered");
        // Second op fills the buffer: the drain reports the race.
        assert_eq!(det.observe(&put(1, 2, 1, 0), &[]), 1);
        // P2's second put races with P0's (its own earlier write is program
        // ordered) — but it stays buffered until the explicit flush.
        det.observe(&put(2, 2, 1, 0), &[]);
        assert_eq!(det.reports().len(), 1, "third op still buffered");
        det.flush();
        assert_eq!(det.reports().len(), 2, "flush drains the remainder");
    }

    #[test]
    fn sync_event_runs_stay_bounded_and_lose_no_reports() {
        // A long run of consecutive sync events must keep the buffer
        // bounded by the capacity (each capacity hit drains into the
        // staging sink), and the staged reports must all surface at the
        // next entry point with a destination.
        let inner = ShardedDetector::new(3, Granularity::WORD, HbMode::Dual, 2);
        let mut det = BatchingDetector::new(inner, 3);
        det.observe(&put(0, 0, 1, 0), &[]);
        det.observe(&put(1, 2, 1, 0), &[]); // 2 buffered, capacity 3
        det.on_barrier(); // hits capacity → sync-triggered drain → staged
        assert!(det.buf.is_empty(), "sync event at capacity drained");
        assert!(
            det.reports().is_empty(),
            "staged until a destination exists"
        );
        for _ in 0..32 {
            det.on_barrier();
        }
        assert!(det.buf.len() <= 3, "sync runs never outgrow the capacity");
        det.flush();
        assert_eq!(det.reports().len(), 1, "the staged race surfaced");

        // Same shape on the sink path: the staged report reaches the sink
        // (and is counted) at the next observe_sink.
        let inner = ShardedDetector::new(3, Granularity::WORD, HbMode::Dual, 2);
        let mut det = BatchingDetector::new(inner, 3);
        let mut sink = VecSink::new();
        det.observe_sink(&put(0, 0, 1, 0), &[], &mut sink);
        det.observe_sink(&put(1, 2, 1, 0), &[], &mut sink);
        det.on_barrier(); // capacity hit → staged
        assert!(sink.is_empty());
        let n = det.observe_sink(&put(2, 2, 1, 8), &[], &mut sink);
        assert_eq!(n, 1, "forwarded staged report is counted");
        assert_eq!(sink.len(), 1);
        assert!(det.reports().is_empty(), "sink mode never feeds the log");
    }

    #[test]
    fn shard_routing_is_deterministic_and_total() {
        for shards in [1usize, 2, 3, 8] {
            for rank in 0..4 {
                for block in 0..64 {
                    let area = AreaKey::new(rank, block);
                    let s = shard_of(area, shards);
                    assert!(s < shards);
                    assert_eq!(s, shard_of(area, shards));
                }
            }
        }
        // The hash actually spreads: 64 consecutive blocks over 4 shards
        // must not all collapse onto one.
        let mut seen = std::collections::HashSet::new();
        for block in 0..64 {
            seen.insert(shard_of(AreaKey::new(0, block), 4));
        }
        assert!(seen.len() > 1);
    }

    #[test]
    fn merge_sorted_reports_orders_across_sources() {
        let report = |seq: u64| RaceReport {
            detector: "dual-clock",
            class: crate::report::RaceClass::WriteWrite,
            current: AccessSummary {
                id: seq,
                process: 0,
                kind: AccessKind::Write,
                range: GlobalAddr::public(0, 0).range(8),
                clock: Arc::new(VectorClock::zero(2)),
                atomic: false,
            },
            previous: None,
            area: AreaKey::new(0, 0),
        };
        let key = |seq: u64| -> ReportKey { (seq, 0, 0, 0) };
        // Three sorted shard logs with interleaved keys.
        let replies = vec![
            vec![(key(0), report(0)), (key(5), report(5))],
            vec![(key(2), report(2))],
            vec![
                (key(1), report(1)),
                (key(3), report(3)),
                (key(4), report(4)),
            ],
        ];
        let mut out = VecSink::new();
        let merged = merge_sorted_reports(replies, &mut out);
        assert_eq!(merged, 6);
        let ids: Vec<u64> = out.as_slice().iter().map(|r| r.current.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn steady_state_recycles_transport_buffers() {
        // Repeated sub-chunk batches ship only at the fence, where the
        // previous fence's buffers are guaranteed back on the recycle
        // channel (the worker returns a chunk before replying to the flush
        // that follows it). The buffer population must therefore stop
        // growing after the first batch: the steady state allocates no new
        // transport buffers.
        let n = 4;
        let stream: Vec<MemOp> = (0..100u64)
            .map(|i| MemOp::Op(put(i, (i % 4) as usize, ((i + 1) % 4) as usize, 0)))
            .collect();
        let mut det = ShardedDetector::new(n, Granularity::WORD, HbMode::Dual, 2);
        // Census: every buffer is pooled, being filled, or in flight on the
        // recycle channel (the fence already drained the shards).
        fn population(det: &mut ShardedDetector) -> usize {
            let Pipeline::Threaded(t) = &mut det.pipeline else {
                panic!("recycling test needs the threaded pipeline");
            };
            while let Ok(buf) = t.recycle_rx.try_recv() {
                t.pool.push(buf);
            }
            t.pool.len() + t.buffers.len()
        }
        det.observe_batch(&stream);
        let after_warmup = population(&mut det);
        for _ in 0..10 {
            det.observe_batch(&stream);
        }
        let after_steady = population(&mut det);
        assert_eq!(
            after_steady, after_warmup,
            "steady state must allocate no new transport buffers"
        );
    }

    #[test]
    fn with_config_boundary_matches_default_layout() {
        // A dense prefix of 2 blocks forces the mixed stream across the
        // dense→spillover boundary on both the shard stores and the join
        // replicas; reports and accounting must be layout-invariant.
        let n = 4;
        let stream = mixed_stream(n);
        let tiny = StoreConfig { dense_blocks: 2 };
        let mut small = ShardedDetector::with_config(n, Granularity::WORD, HbMode::Dual, 3, tiny);
        let mut dflt = ShardedDetector::new(n, Granularity::WORD, HbMode::Dual, 3);
        small.observe_batch(&stream);
        dflt.observe_batch(&stream);
        assert_eq!(small.reports(), dflt.reports());
        assert_eq!(small.touched_areas(), dflt.touched_areas());
        assert_eq!(small.clock_memory_bytes(), dflt.clock_memory_bytes());
    }

    #[test]
    fn killed_worker_mid_stream_is_byte_identical_and_degraded() {
        // The tentpole property: poisoning any worker before any chunk of
        // the stream must leave the report stream byte-identical to the
        // healthy run, with the detector degraded to the inline pipeline.
        let n = 4;
        let stream = mixed_stream(n);
        let chunk = 3;
        let chunks = stream.len().div_ceil(chunk);
        let healthy = {
            let mut det = ShardedDetector::new(n, Granularity::WORD, HbMode::Dual, 3);
            let mut sink = VecSink::new();
            for c in stream.chunks(chunk) {
                det.observe_batch_sink(c, &mut sink);
            }
            assert_eq!(det.health(), PipelineHealth::Healthy);
            assert!(det.last_error().is_none());
            sink.into_reports()
        };
        assert!(!healthy.is_empty(), "stream must race for the test to bite");
        for shard in 0..3 {
            for kill_at in 0..chunks {
                let mut det = ShardedDetector::new(n, Granularity::WORD, HbMode::Dual, 3);
                let mut sink = VecSink::new();
                for (i, c) in stream.chunks(chunk).enumerate() {
                    if i == kill_at {
                        assert!(det.inject_worker_panic(shard));
                    }
                    det.observe_batch_sink(c, &mut sink);
                }
                assert!(det.is_inline(), "worker death must degrade to inline");
                assert_eq!(det.health(), PipelineHealth::Degraded);
                assert!(matches!(
                    det.last_error(),
                    Some(DetectError::WorkerPanicked { message, .. })
                        if message.contains("injected shard poison")
                ));
                assert_eq!(
                    healthy,
                    sink.into_reports(),
                    "shard {shard} killed before chunk {kill_at}: stream must not change"
                );
            }
        }
    }

    #[test]
    fn per_op_path_survives_worker_death() {
        let n = 3;
        let ops = [
            put(0, 0, 1, 0),
            put(1, 2, 1, 0),
            put(2, 2, 1, 8),
            put(3, 0, 1, 8),
        ];
        let mut healthy = ShardedDetector::new(n, Granularity::WORD, HbMode::Dual, 2);
        let mut healthy_sink = VecSink::new();
        for op in &ops {
            healthy.observe_sink(op, &[], &mut healthy_sink);
        }
        let mut det = ShardedDetector::new(n, Granularity::WORD, HbMode::Dual, 2);
        let mut sink = VecSink::new();
        for (i, op) in ops.iter().enumerate() {
            if i == 2 {
                // Kill both workers so the fence trips no matter where the
                // op's areas hash.
                assert!(det.inject_worker_panic(0));
                assert!(det.inject_worker_panic(1));
            }
            det.observe_sink(op, &[], &mut sink);
        }
        assert!(det.is_inline());
        assert_eq!(det.health(), PipelineHealth::Degraded);
        assert_eq!(healthy_sink.as_slice(), sink.as_slice());
    }

    #[test]
    fn accounting_query_survives_worker_death() {
        let mut det = ShardedDetector::new(3, Granularity::WORD, HbMode::Dual, 2);
        det.observe_batch(&[MemOp::Op(put(0, 0, 1, 0)), MemOp::Op(put(1, 2, 1, 0))]);
        let before = det.reports().len();
        assert_eq!(before, 1);
        det.inject_worker_panic(0);
        det.inject_worker_panic(1);
        let epochs = det.epoch_areas();
        assert!(det.is_inline(), "sink-less path degrades too");
        assert!(epochs <= det.touched_areas());
        assert_eq!(
            det.reports().len(),
            before,
            "recovery must neither lose nor duplicate reports"
        );
    }

    #[test]
    fn inline_pipeline_has_no_worker_to_poison() {
        let mut det = ShardedDetector::new(3, Granularity::WORD, HbMode::Dual, 1);
        assert!(!det.inject_worker_panic(0));
        let mut threaded = ShardedDetector::new(3, Granularity::WORD, HbMode::Dual, 2);
        assert!(!threaded.inject_worker_panic(7), "out of range");
    }

    #[test]
    fn batching_flush_after_worker_failure_keeps_staged_reports() {
        // S3: reports staged by a sync-triggered drain must survive a
        // worker death discovered at the final flush.
        let run = |poison: bool| -> Vec<RaceReport> {
            let inner = ShardedDetector::new(3, Granularity::WORD, HbMode::Dual, 2);
            let mut det = BatchingDetector::new(inner, 3);
            det.observe(&put(0, 0, 1, 0), &[]);
            det.observe(&put(1, 2, 1, 0), &[]);
            det.on_barrier(); // capacity hit → drain → the race is staged
            if poison {
                det.inner.inject_worker_panic(0);
                det.inner.inject_worker_panic(1);
            }
            det.observe(&put(2, 2, 1, 8), &[]);
            det.observe(&put(3, 0, 1, 8), &[]);
            det.flush();
            if poison {
                assert_eq!(det.health(), PipelineHealth::Degraded);
            } else {
                assert_eq!(det.health(), PipelineHealth::Healthy);
            }
            det.reports().to_vec()
        };
        let healthy = run(false);
        assert!(healthy.len() >= 2, "staged + post-barrier races expected");
        assert_eq!(healthy, run(true), "flush must return the staged reports");
    }

    #[test]
    fn single_op_observe_matches_batched_observe() {
        let n = 3;
        let mut by_ref = ShardedDetector::new(n, Granularity::WORD, HbMode::Dual, 2);
        let mut batched = ShardedDetector::new(n, Granularity::WORD, HbMode::Dual, 2);
        let ops = [put(0, 0, 1, 0), put(1, 2, 1, 0), put(2, 2, 1, 8)];
        for op in &ops {
            by_ref.observe(op, &[]);
            batched.observe_batch(&[MemOp::Op(*op)]);
        }
        assert_eq!(by_ref.reports(), batched.reports());
    }
}

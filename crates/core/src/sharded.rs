//! Sharded parallel detection: the per-area check-and-update fanned out
//! over worker threads, with a byte-identical report stream.
//!
//! The paper keeps two clocks *per memory area* (§IV-A), which makes areas
//! natural shard keys: the expensive part of detection — the Algorithm-3
//! antichain scans and the Algorithm-5 clock updates — touches exactly one
//! area, and areas are disjoint. [`ShardedDetector`] exploits this:
//!
//! ```text
//!            ┌───────────── router (sequential) ─────────────┐
//!  MemOp ──▶ │ tick actor clock · read-absorb · sync events   │
//!            │ hash(area) → shard, stream items in chunks     │
//!            └──────┬──────────────┬──────────────┬───────────┘
//!                   ▼              ▼              ▼
//!             shard 0        shard 1        shard k-1     (OS threads)
//!             own ClockStore own ClockStore own ClockStore
//!             check+update   check+update   check+update
//!                   └──────────────┴──────────────┘
//!                                  ▼
//!                  deterministic key-sorted report merge
//! ```
//!
//! **Router (sequential).** Per-process state couples areas: every op ticks
//! its actor's matrix clock, and a *read* absorbs the area's write clock
//! into the reader (§IV-B — the get reply carries the clock). The router
//! therefore owns the actor clocks and replays exactly the sequential
//! detector's clock evolution, using lightweight per-area *join replicas*
//! (`JoinClock`: the epoch trick of [`vclock::AreaClock`], holding the
//! dominating snapshot behind an `Arc` instead of resolving through
//! antichains). Barriers and lock hand-offs only touch actor clocks, so
//! they are router-local too.
//!
//! **Shards (parallel).** Everything per-area — slab lookup, happens-before
//! guards, antichain race scan, history recording — runs on worker threads,
//! each owning the [`ClockStore`] slab set for the areas that hash to it.
//! Work is streamed in chunks while the router is still routing, so router
//! and shards overlap.
//!
//! **Determinism.** Each routed access carries a key `(op sequence, access
//! slot, block, report index)` that totally orders reports exactly as the
//! sequential [`crate::HbDetector`] emits them (ops in order; within an op the
//! read side before the write side; within an access, blocks ascending;
//! within a block, antichain order). Per-shard logs are already sorted by
//! that key; the merge sorts the concatenation, so the final stream is
//! **byte-identical** to the single-shard detector's — the differential
//! property tests in `tests/differential.rs` enforce this against both
//! [`crate::HbDetector`] and [`crate::ReferenceHbDetector`].

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use dsm::addr::Segment;
use vclock::{MatrixClock, VectorClock};

use crate::clockstore::{AreaKey, ClockStore, Granularity, DENSE_BLOCKS};
use crate::detector::Detector;
use crate::event::{AccessKind, AccessSummary, DsmOp, LockId};
use crate::hb::{acquire_clock, barrier_join, check_access, release_clock, HbMode};
use crate::report::RaceReport;
use crate::Rank;

/// One element of a batched detection stream: an operation or a
/// synchronisation event, in program order.
///
/// The batched pipeline must see sync events *in sequence* with the
/// operations (a barrier orders everything before it against everything
/// after), so backends that buffer ops buffer these alongside.
#[derive(Debug, Clone)]
pub enum MemOp {
    /// A DSM operation (put/get/local/atomic accesses).
    Op(DsmOp),
    /// A barrier completed among all ranks.
    Barrier,
    /// `rank` acquired program lock `lock` (after someone's release).
    Acquire {
        /// Acquiring process.
        rank: Rank,
        /// The program lock.
        lock: LockId,
    },
    /// `rank` released program lock `lock`.
    Release {
        /// Releasing process.
        rank: Rank,
        /// The program lock.
        lock: LockId,
    },
}

/// Items per chunk streamed to a shard while routing (keeps workers busy
/// before the batch is fully routed).
const SHARD_CHUNK: usize = 512;

/// Totally orders reports as the sequential detector emits them:
/// `(op sequence, access slot within op, block within access, report index
/// within (op, access, block))`.
type ReportKey = (u64, u8, usize, u32);

/// One access routed to a shard.
struct ShardItem {
    seq: u64,
    slot: u8,
    area: AreaKey,
    access: AccessSummary,
}

enum ToShard {
    Items(Vec<ShardItem>),
    Flush,
    /// On-demand accounting: reply with the O(touched)-to-compute epoch
    /// census, which is deliberately *not* piggybacked on every `Flush`
    /// (the per-op `Detector` path fences per access and must stay O(1)
    /// in the number of touched areas).
    CountEpochs,
}

struct ShardReply {
    reports: Vec<(ReportKey, RaceReport)>,
    clock_bytes: usize,
    touched: usize,
    /// Present only in replies to [`ToShard::CountEpochs`].
    epoch_areas: Option<usize>,
}

/// The router's replica of one area clock join — [`vclock::AreaClock`]'s
/// adaptive representation, but self-contained: the `Epoch` state keeps the
/// dominating event's full snapshot behind its `Arc` (the snapshot already
/// exists, shared with the access), so no antichain resolver is needed.
///
/// The represented value always equals the authoritative area clock held by
/// the owning shard: both are the join of the same access clocks, updated
/// by the same promote/demote rules.
#[derive(Debug, Clone, Default)]
enum JoinClock {
    /// Nothing recorded: the zero clock.
    #[default]
    Bottom,
    /// The join equals this one event's clock (totally ordered so far).
    Epoch {
        rank: Rank,
        count: u64,
        clock: Arc<VectorClock>,
    },
    /// Concurrent events recorded: the dense component-wise join.
    Vector(VectorClock),
}

impl JoinClock {
    /// `join ≤ c` — O(1) in `Bottom`/`Epoch`, O(n) in `Vector`.
    #[inline]
    fn leq(&self, c: &VectorClock) -> bool {
        match self {
            JoinClock::Bottom => true,
            JoinClock::Epoch { rank, count, .. } => *count <= c.get(*rank),
            JoinClock::Vector(v) => v.leq(c),
        }
    }

    /// Merge the join into `dst` (the read-absorb of Algorithm 4).
    fn merge_into(&self, dst: &mut VectorClock) {
        match self {
            JoinClock::Bottom => {}
            JoinClock::Epoch { clock, .. } => dst.merge(clock),
            JoinClock::Vector(v) => dst.merge(v),
        }
    }

    /// Record the event `(rank, clock)` into the join: promote to `Epoch`
    /// when the new clock dominates (O(1) plus one refcount), demote to the
    /// dense join when concurrent.
    fn record(&mut self, rank: Rank, clock: &Arc<VectorClock>) {
        if self.leq(clock) {
            *self = JoinClock::Epoch {
                rank,
                count: clock.get(rank),
                clock: Arc::clone(clock),
            };
            return;
        }
        match self {
            JoinClock::Bottom => unreachable!("bottom precedes every clock"),
            JoinClock::Epoch { clock: old, .. } => {
                let mut v = (**old).clone();
                v.merge(clock);
                *self = JoinClock::Vector(v);
            }
            JoinClock::Vector(v) => v.merge(clock),
        }
    }
}

/// The `(V, W)` join replicas for one area.
#[derive(Debug, Default)]
struct AreaJoins {
    v: JoinClock,
    w: JoinClock,
}

/// Per-rank join storage, same flat-slab layout as [`ClockStore`] (dense
/// direct-indexed prefix, spillover map for pathological high blocks).
#[derive(Debug, Default)]
struct JoinSlab {
    dense: Vec<Option<AreaJoins>>,
    sparse: HashMap<usize, AreaJoins>,
}

#[derive(Debug, Default)]
struct JoinStore {
    slabs: Vec<JoinSlab>,
}

impl JoinStore {
    fn get_mut(&mut self, key: AreaKey) -> &mut AreaJoins {
        if key.rank >= self.slabs.len() {
            self.slabs.resize_with(key.rank + 1, JoinSlab::default);
        }
        let slab = &mut self.slabs[key.rank];
        if key.block < DENSE_BLOCKS {
            if key.block >= slab.dense.len() {
                slab.dense.resize_with(key.block + 1, || None);
            }
            slab.dense[key.block].get_or_insert_with(AreaJoins::default)
        } else {
            slab.sparse.entry(key.block).or_default()
        }
    }
}

/// `area → shard` routing: a multiplicative hash of `(rank, block)` so
/// neighbouring blocks spread across shards. Deterministic — the partition
/// is part of the detector's observable state (per-shard memory accounting).
#[inline]
fn shard_of(area: AreaKey, shards: usize) -> usize {
    let h = (area.rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (area.block as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
    (h.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as usize % shards
}

struct Worker {
    tx: Option<Sender<ToShard>>,
    rx: Receiver<ShardReply>,
    handle: Option<JoinHandle<()>>,
}

/// The per-shard worker loop: owns this shard's [`ClockStore`] and runs the
/// authoritative check-and-update for every area that hashes here.
fn shard_worker(
    mode: HbMode,
    n: usize,
    granularity: Granularity,
    rx: Receiver<ToShard>,
    tx: Sender<ShardReply>,
) {
    let mut store = ClockStore::new(n, granularity, mode != HbMode::Single);
    let mut pending: Vec<(ReportKey, RaceReport)> = Vec::new();
    let mut scratch: Vec<RaceReport> = Vec::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            ToShard::Items(items) => {
                for item in items {
                    let hist = store.history_mut(item.area);
                    // Same guard-once discipline as HbDetector::observe.
                    let w_le = hist.w.leq(&item.access.clock);
                    let v_le = hist.v.leq(&item.access.clock);
                    check_access(
                        mode,
                        hist,
                        &item.access,
                        item.area,
                        w_le,
                        v_le,
                        &mut scratch,
                    );
                    for (sub, report) in scratch.drain(..).enumerate() {
                        let key = (item.seq, item.slot, item.area.block, sub as u32);
                        pending.push((key, report));
                    }
                    match item.access.kind {
                        AccessKind::Write => hist.record_write_hinted(item.access, v_le, w_le),
                        AccessKind::Read => hist.record_read_hinted(item.access, v_le),
                    }
                }
            }
            ToShard::Flush => {
                let reply = ShardReply {
                    reports: std::mem::take(&mut pending),
                    clock_bytes: store.clock_memory_bytes(),
                    touched: store.touched_areas(),
                    epoch_areas: None,
                };
                if tx.send(reply).is_err() {
                    break; // detector dropped mid-flush
                }
            }
            ToShard::CountEpochs => {
                let reply = ShardReply {
                    reports: Vec::new(),
                    clock_bytes: store.clock_memory_bytes(),
                    touched: store.touched_areas(),
                    epoch_areas: Some(store.epoch_areas()),
                };
                if tx.send(reply).is_err() {
                    break;
                }
            }
        }
    }
}

/// The clock-based detector with its per-area work partitioned across `k`
/// worker threads (see the module docs for the pipeline).
///
/// Construction spawns the workers; they live until the detector is
/// dropped. [`ShardedDetector::observe_batch`] is the intended entry point;
/// the [`Detector`] impl routes single ops through one-element batches so
/// the sharded pipeline is a drop-in (slower per call — each `observe` is a
/// full fan-out/fan-in round trip; batch when you can).
///
/// ```
/// use dsm::GlobalAddr;
/// use race_core::sharded::{MemOp, ShardedDetector};
/// use race_core::{DsmOp, Granularity, HbMode, OpKind};
///
/// let mut det = ShardedDetector::new(3, Granularity::WORD, HbMode::Dual, 2);
/// // Fig 5a: P0 and P2 put to the same word of P1's memory, unsynchronised.
/// let dst = GlobalAddr::public(1, 0).range(8);
/// let batch: Vec<MemOp> = [0usize, 2]
///     .iter()
///     .enumerate()
///     .map(|(i, &actor)| {
///         MemOp::Op(DsmOp {
///             op_id: i as u64,
///             actor,
///             kind: OpKind::Put {
///                 src: GlobalAddr::private(actor, 0).range(8),
///                 dst,
///             },
///         })
///     })
///     .collect();
/// assert_eq!(det.observe_batch(&batch), 1); // exactly one write-write race
/// ```
pub struct ShardedDetector {
    mode: HbMode,
    granularity: Granularity,
    n: usize,
    /// One matrix clock per process (§IV-B) — router-owned.
    clocks: Vec<MatrixClock>,
    /// Router-side `(V, W)` join replicas (see [`JoinClock`]).
    joins: JoinStore,
    /// Clock snapshots taken at program-lock releases (grant carries them).
    lock_clocks: HashMap<LockId, VectorClock>,
    /// Scratch clock for the read-absorb merge, reused across ops.
    absorb: VectorClock,
    /// Global operation sequence across all batches (orders the merge).
    seq: u64,
    /// Per-shard outgoing chunks being filled.
    buffers: Vec<Vec<ShardItem>>,
    workers: Vec<Worker>,
    /// Merged, deterministically ordered report log.
    reports: Vec<RaceReport>,
    /// Per-shard accounting, refreshed at every batch fence.
    shard_clock_bytes: Vec<usize>,
    shard_touched: Vec<usize>,
}

impl ShardedDetector {
    /// A detector for `n` processes at `granularity`, partitioned over
    /// `shards` worker threads.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(n: usize, granularity: Granularity, mode: HbMode, shards: usize) -> Self {
        assert!(shards > 0, "at least one shard");
        let workers = (0..shards)
            .map(|_| {
                let (tx, worker_rx) = channel();
                let (reply_tx, rx) = channel();
                let handle = std::thread::spawn(move || {
                    shard_worker(mode, n, granularity, worker_rx, reply_tx)
                });
                Worker {
                    tx: Some(tx),
                    rx,
                    handle: Some(handle),
                }
            })
            .collect();
        ShardedDetector {
            mode,
            granularity,
            n,
            clocks: (0..n).map(|i| MatrixClock::zero(i, n)).collect(),
            joins: JoinStore::default(),
            lock_clocks: HashMap::new(),
            absorb: VectorClock::zero(n),
            seq: 0,
            buffers: (0..shards)
                .map(|_| Vec::with_capacity(SHARD_CHUNK))
                .collect(),
            workers,
            reports: Vec::new(),
            shard_clock_bytes: vec![0; shards],
            shard_touched: vec![0; shards],
        }
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// The actor's current vector clock (parity tests and traces).
    pub fn process_clock(&self, rank: Rank) -> &VectorClock {
        self.clocks[rank].own_row()
    }

    /// Touched areas summed over all shards (accounting parity with
    /// [`ClockStore::touched_areas`]).
    pub fn touched_areas(&self) -> usize {
        self.shard_touched.iter().sum()
    }

    /// Areas currently in the O(1) epoch representation, summed over
    /// shards. Costs one accounting round trip per shard plus an
    /// O(touched-areas) census on each — instrumentation for tests and
    /// benches, kept off the fence path on purpose.
    pub fn epoch_areas(&mut self) -> usize {
        for worker in &self.workers {
            worker
                .tx
                .as_ref()
                .expect("worker alive")
                .send(ToShard::CountEpochs)
                .expect("shard worker alive");
        }
        let mut total = 0;
        for (shard, worker) in self.workers.iter().enumerate() {
            let reply = worker.rx.recv().expect("shard worker alive");
            self.shard_clock_bytes[shard] = reply.clock_bytes;
            self.shard_touched[shard] = reply.touched;
            total += reply.epoch_areas.expect("accounting reply");
        }
        total
    }

    /// Observe a batch of operations and synchronisation events, running
    /// the per-area checks on the worker shards. Returns the number of new
    /// race reports; the merged log ([`Detector::reports`]) grows by
    /// exactly that many, in the sequential detector's emission order.
    ///
    /// Synchronous: when this returns, every report triggered by the batch
    /// is in the log and the per-shard accounting is up to date.
    pub fn observe_batch(&mut self, batch: &[MemOp]) -> usize {
        let before = self.reports.len();
        for event in batch {
            match event {
                MemOp::Op(op) => self.route_op(op),
                MemOp::Barrier => self.barrier_event(),
                MemOp::Acquire { rank, lock } => self.acquire_event(*rank, *lock),
                MemOp::Release { rank, lock } => self.release_event(*rank, *lock),
            }
        }
        self.fence();
        self.reports.len() - before
    }

    /// Route one op: tick the actor, replay the read-absorb against the
    /// join replicas, and stream every public access to its area's shard.
    fn route_op(&mut self, op: &DsmOp) {
        let seq = self.seq;
        self.seq += 1;
        let actor_clock = self.clocks[op.actor].tick_shared();
        // Take the scratch clock out so area-join borrows don't conflict.
        let mut absorb = std::mem::replace(&mut self.absorb, VectorClock::zero(0));
        let mut absorbed = false;
        // Single/Literal reads also absorb the general clock V; Dual needs
        // only W, so the router skips V bookkeeping entirely in Dual mode.
        let track_v = self.mode != HbMode::Dual;

        for (slot, (kind, range, access_id)) in op.accesses().into_iter().enumerate() {
            if range.addr.segment != Segment::Public {
                continue; // private memory cannot race (§IV-A)
            }
            let access = AccessSummary {
                id: access_id,
                process: op.actor,
                kind,
                range,
                clock: Arc::clone(&actor_clock),
                atomic: op.is_atomic(),
            };
            for block in self.granularity.blocks_of(&range) {
                let area = AreaKey::new(range.addr.rank, block);
                {
                    let joins = self.joins.get_mut(area);
                    match kind {
                        AccessKind::Write => {
                            joins.w.record(op.actor, &access.clock);
                            if track_v {
                                joins.v.record(op.actor, &access.clock);
                            }
                        }
                        AccessKind::Read => {
                            // Absorb *before* recording, from the pre-access
                            // joins, exactly as HbDetector::observe does.
                            if !joins.w.leq(&access.clock) {
                                if !absorbed {
                                    absorb.clear();
                                    absorbed = true;
                                }
                                joins.w.merge_into(&mut absorb);
                            }
                            if track_v {
                                if !joins.v.leq(&access.clock) {
                                    if !absorbed {
                                        absorb.clear();
                                        absorbed = true;
                                    }
                                    joins.v.merge_into(&mut absorb);
                                }
                                joins.v.record(op.actor, &access.clock);
                            }
                        }
                    }
                }
                let shard = shard_of(area, self.workers.len());
                self.buffers[shard].push(ShardItem {
                    seq,
                    slot: slot as u8,
                    area,
                    access: access.clone(),
                });
                if self.buffers[shard].len() >= SHARD_CHUNK {
                    self.ship(shard);
                }
            }
        }

        if absorbed {
            self.clocks[op.actor].absorb(&absorb);
        }
        self.absorb = absorb;
    }

    /// Send a shard's filled chunk.
    fn ship(&mut self, shard: usize) {
        let items = std::mem::replace(&mut self.buffers[shard], Vec::with_capacity(SHARD_CHUNK));
        self.workers[shard]
            .tx
            .as_ref()
            .expect("worker alive")
            .send(ToShard::Items(items))
            .expect("shard worker alive");
    }

    /// Batch fence: flush every shard, collect replies, merge reports into
    /// the log in deterministic key order.
    fn fence(&mut self) {
        for shard in 0..self.workers.len() {
            if !self.buffers[shard].is_empty() {
                self.ship(shard);
            }
            self.workers[shard]
                .tx
                .as_ref()
                .expect("worker alive")
                .send(ToShard::Flush)
                .expect("shard worker alive");
        }
        let mut merged: Vec<(ReportKey, RaceReport)> = Vec::new();
        for (shard, worker) in self.workers.iter().enumerate() {
            let reply = worker.rx.recv().expect("shard worker alive");
            self.shard_clock_bytes[shard] = reply.clock_bytes;
            self.shard_touched[shard] = reply.touched;
            merged.extend(reply.reports);
        }
        // Keys are unique (one per (op, slot, block, index)), so unstable
        // sorting is deterministic.
        merged.sort_unstable_by_key(|(key, _)| *key);
        self.reports.extend(merged.into_iter().map(|(_, r)| r));
    }

    // The sync-event clock semantics are the exact shared bodies the
    // sequential detector uses (hb::barrier_join / release_clock /
    // acquire_clock) — one implementation, no parity drift.

    fn barrier_event(&mut self) {
        barrier_join(&mut self.clocks);
    }

    fn release_event(&mut self, rank: Rank, lock: LockId) {
        release_clock(&self.clocks, &mut self.lock_clocks, rank, lock);
    }

    fn acquire_event(&mut self, rank: Rank, lock: LockId) {
        acquire_clock(&mut self.clocks, &self.lock_clocks, rank, lock);
    }
}

impl Detector for ShardedDetector {
    fn name(&self) -> &'static str {
        self.mode.detector_name()
    }

    fn observe(&mut self, op: &DsmOp, _held_locks: &[LockId]) -> usize {
        self.observe_batch(&[MemOp::Op(op.clone())])
    }

    fn reports(&self) -> &[RaceReport] {
        &self.reports
    }

    fn clock_components_per_area(&self) -> usize {
        match self.mode {
            HbMode::Dual | HbMode::Literal => 2 * self.n,
            HbMode::Single => self.n,
        }
    }

    fn clock_memory_bytes(&self) -> usize {
        self.shard_clock_bytes.iter().sum()
    }

    fn requires_locking(&self) -> bool {
        true
    }

    fn on_release(&mut self, rank: usize, lock: LockId) {
        self.release_event(rank, lock);
    }

    fn on_acquire(&mut self, rank: usize, lock: LockId) {
        self.acquire_event(rank, lock);
    }

    fn on_barrier(&mut self) {
        self.barrier_event();
    }
}

impl Drop for ShardedDetector {
    fn drop(&mut self) {
        // Close the channels (workers exit their recv loop), then join.
        for worker in &mut self.workers {
            worker.tx = None;
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// A buffering front-end that turns the per-op [`Detector`] interface into
/// batched [`ShardedDetector::observe_batch`] calls.
///
/// Operations and sync events accumulate (in order) until the buffer holds
/// `capacity` events or [`Detector::flush`] is called, then drain as one
/// batch. The engine's batched drain mode wraps the sharded detector in
/// this to amortise the fan-out over many ops.
///
/// Contract difference from the inline detectors: [`Detector::observe`]
/// returns 0 while buffering and the whole batch's report count at the
/// observe that triggers a drain, so per-op report attribution is only
/// available at batch fences. Backends must call `flush()` before reading
/// the final log.
pub struct BatchingDetector {
    inner: ShardedDetector,
    buf: Vec<MemOp>,
    capacity: usize,
}

impl BatchingDetector {
    /// Wrap `inner`, draining every `capacity` buffered events.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(inner: ShardedDetector, capacity: usize) -> Self {
        assert!(capacity > 0, "batch capacity must be positive");
        BatchingDetector {
            inner,
            buf: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// The wrapped sharded detector.
    pub fn inner(&self) -> &ShardedDetector {
        &self.inner
    }

    fn drain(&mut self) -> usize {
        if self.buf.is_empty() {
            return 0;
        }
        let batch = std::mem::take(&mut self.buf);
        let new = self.inner.observe_batch(&batch);
        self.buf = batch; // reuse the allocation
        self.buf.clear();
        new
    }

    fn push(&mut self, event: MemOp) -> usize {
        self.buf.push(event);
        if self.buf.len() >= self.capacity {
            self.drain()
        } else {
            0
        }
    }
}

impl Detector for BatchingDetector {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn observe(&mut self, op: &DsmOp, _held_locks: &[LockId]) -> usize {
        self.push(MemOp::Op(op.clone()))
    }

    fn reports(&self) -> &[RaceReport] {
        self.inner.reports()
    }

    fn clock_components_per_area(&self) -> usize {
        self.inner.clock_components_per_area()
    }

    fn clock_memory_bytes(&self) -> usize {
        self.inner.clock_memory_bytes()
    }

    fn requires_locking(&self) -> bool {
        true
    }

    fn on_release(&mut self, rank: usize, lock: LockId) {
        self.push(MemOp::Release { rank, lock });
    }

    fn on_acquire(&mut self, rank: usize, lock: LockId) {
        self.push(MemOp::Acquire { rank, lock });
    }

    fn on_barrier(&mut self) {
        self.push(MemOp::Barrier);
    }

    fn flush(&mut self) {
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OpKind;
    use crate::hb::HbDetector;
    use dsm::addr::GlobalAddr;

    fn put(op_id: u64, actor: Rank, dst_rank: Rank, dst_off: usize) -> DsmOp {
        DsmOp {
            op_id,
            actor,
            kind: OpKind::Put {
                src: GlobalAddr::private(actor, 0).range(8),
                dst: GlobalAddr::public(dst_rank, dst_off).range(8),
            },
        }
    }

    fn get(op_id: u64, actor: Rank, src_rank: Rank, src_off: usize) -> DsmOp {
        DsmOp {
            op_id,
            actor,
            kind: OpKind::Get {
                src: GlobalAddr::public(src_rank, src_off).range(8),
                dst: GlobalAddr::private(actor, 0).range(8),
            },
        }
    }

    /// A small mixed stream touching several areas, with a barrier, lock
    /// hand-off and an atomic, that races on some ops.
    fn mixed_stream(n: usize) -> Vec<MemOp> {
        let mut ops = Vec::new();
        let mut id = 0u64;
        let mut op = |kind: OpKind, actor: Rank, ops: &mut Vec<MemOp>| {
            ops.push(MemOp::Op(DsmOp {
                op_id: id,
                actor,
                kind,
            }));
            id += 1;
        };
        for rank in 0..n {
            op(
                OpKind::LocalWrite {
                    range: GlobalAddr::public(rank, 0).range(24),
                },
                rank,
                &mut ops,
            );
        }
        // Concurrent cross-writes: races.
        op(
            OpKind::Put {
                src: GlobalAddr::private(0, 0).range(8),
                dst: GlobalAddr::public(1, 0).range(8),
            },
            0,
            &mut ops,
        );
        ops.push(MemOp::Barrier);
        for rank in 0..n {
            let next = (rank + 1) % n;
            op(
                OpKind::Get {
                    src: GlobalAddr::public(next, 8).range(8),
                    dst: GlobalAddr::private(rank, 0).range(8),
                },
                rank,
                &mut ops,
            );
        }
        ops.push(MemOp::Release {
            rank: 0,
            lock: (1, 0),
        });
        ops.push(MemOp::Acquire {
            rank: 2 % n,
            lock: (1, 0),
        });
        op(
            OpKind::AtomicRmw {
                range: GlobalAddr::public(0, 32).range(8),
            },
            1,
            &mut ops,
        );
        op(
            OpKind::Put {
                src: GlobalAddr::private(2 % n, 0).range(8),
                dst: GlobalAddr::public(0, 32).range(8),
            },
            2 % n,
            &mut ops,
        );
        ops
    }

    /// Drive the same stream through the sequential detector (per op) and
    /// a sharded one (batched), asserting identical logs and clocks.
    fn assert_parity(mode: HbMode, shards: usize, batch: usize) {
        let n = 4;
        let stream = mixed_stream(n);
        let mut seq = HbDetector::new(n, Granularity::WORD, mode);
        let mut par = ShardedDetector::new(n, Granularity::WORD, mode, shards);
        for event in &stream {
            match event {
                MemOp::Op(op) => {
                    seq.observe(op, &[]);
                }
                MemOp::Barrier => seq.on_barrier(),
                MemOp::Acquire { rank, lock } => seq.on_acquire(*rank, *lock),
                MemOp::Release { rank, lock } => seq.on_release(*rank, *lock),
            }
        }
        for chunk in stream.chunks(batch) {
            par.observe_batch(chunk);
        }
        assert_eq!(
            seq.reports(),
            par.reports(),
            "report stream must be byte-identical"
        );
        assert_eq!(seq.clock_memory_bytes(), par.clock_memory_bytes());
        for rank in 0..n {
            assert_eq!(seq.process_clock(rank), par.process_clock(rank));
        }
    }

    #[test]
    fn parity_across_modes_shards_and_batch_sizes() {
        for mode in [HbMode::Dual, HbMode::Single, HbMode::Literal] {
            for shards in [1, 2, 3, 4] {
                for batch in [1, 3, 64] {
                    assert_parity(mode, shards, batch);
                }
            }
        }
    }

    #[test]
    fn fig5a_race_found_once() {
        let mut det = ShardedDetector::new(3, Granularity::WORD, HbMode::Dual, 2);
        let batch = vec![MemOp::Op(put(0, 0, 1, 0)), MemOp::Op(put(1, 2, 1, 0))];
        assert_eq!(det.observe_batch(&batch), 1);
        assert_eq!(det.reports().len(), 1);
        let r = &det.reports()[0];
        assert!(r
            .current
            .clock
            .concurrent_with(&r.previous.as_ref().unwrap().clock));
    }

    #[test]
    fn read_absorb_crosses_shards() {
        // P2 gets P1's word (absorbing P1's write clock) then puts to it:
        // causally ordered, silent — even when the areas and the absorb
        // bookkeeping live on different sides of the router/shard split.
        let mut det = ShardedDetector::new(3, Granularity::WORD, HbMode::Dual, 4);
        let init = DsmOp {
            op_id: 0,
            actor: 1,
            kind: OpKind::LocalWrite {
                range: GlobalAddr::public(1, 0).range(8),
            },
        };
        det.observe_batch(&[MemOp::Op(init)]);
        det.observe_batch(&[MemOp::Op(get(1, 2, 1, 0))]);
        let before = det.reports().len();
        det.observe_batch(&[MemOp::Op(put(2, 2, 1, 0))]);
        assert_eq!(det.reports().len(), before, "causal chain must be silent");
    }

    #[test]
    fn batch_split_does_not_change_the_log() {
        let stream = mixed_stream(4);
        let mut whole = ShardedDetector::new(4, Granularity::WORD, HbMode::Dual, 3);
        whole.observe_batch(&stream);
        let mut split = ShardedDetector::new(4, Granularity::WORD, HbMode::Dual, 3);
        for event in &stream {
            split.observe_batch(std::slice::from_ref(event));
        }
        assert_eq!(whole.reports(), split.reports());
    }

    #[test]
    fn deterministic_across_runs() {
        let stream = mixed_stream(4);
        let run = || {
            let mut d = ShardedDetector::new(4, Granularity::WORD, HbMode::Dual, 4);
            d.observe_batch(&stream);
            d.reports().to_vec()
        };
        let a = run();
        assert!(!a.is_empty(), "stream must race for the test to bite");
        for _ in 0..5 {
            assert_eq!(a, run(), "merge order must not depend on scheduling");
        }
    }

    #[test]
    fn accounting_sums_across_shards() {
        let mut seq = HbDetector::new(4, Granularity::WORD, HbMode::Dual);
        let mut par = ShardedDetector::new(4, Granularity::WORD, HbMode::Dual, 4);
        let stream = mixed_stream(4);
        par.observe_batch(&stream);
        for event in &stream {
            if let MemOp::Op(op) = event {
                seq.observe(op, &[]);
            } else if let MemOp::Barrier = event {
                seq.on_barrier();
            }
        }
        assert_eq!(par.touched_areas(), seq.store().touched_areas());
        assert!(par.epoch_areas() <= par.touched_areas());
    }

    #[test]
    fn batching_front_end_flushes_on_capacity_and_flush() {
        let inner = ShardedDetector::new(3, Granularity::WORD, HbMode::Dual, 2);
        let mut det = BatchingDetector::new(inner, 2);
        assert_eq!(det.observe(&put(0, 0, 1, 0), &[]), 0, "buffered");
        // Second op fills the buffer: the drain reports the race.
        assert_eq!(det.observe(&put(1, 2, 1, 0), &[]), 1);
        // P2's second put races with P0's (its own earlier write is program
        // ordered) — but it stays buffered until the explicit flush.
        det.observe(&put(2, 2, 1, 0), &[]);
        assert_eq!(det.reports().len(), 1, "third op still buffered");
        det.flush();
        assert_eq!(det.reports().len(), 2, "flush drains the remainder");
    }

    #[test]
    fn shard_routing_is_deterministic_and_total() {
        for shards in [1usize, 2, 3, 8] {
            for rank in 0..4 {
                for block in 0..64 {
                    let area = AreaKey::new(rank, block);
                    let s = shard_of(area, shards);
                    assert!(s < shards);
                    assert_eq!(s, shard_of(area, shards));
                }
            }
        }
        // The hash actually spreads: 64 consecutive blocks over 4 shards
        // must not all collapse onto one.
        let mut seen = std::collections::HashSet::new();
        for block in 0..64 {
            seen.insert(shard_of(AreaKey::new(0, block), 4));
        }
        assert!(seen.len() > 1);
    }
}

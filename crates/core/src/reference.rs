//! The full-vector-clock reference detector — the paper's algorithms with
//! **no** performance machinery.
//!
//! This is the pre-optimisation implementation of [`crate::hb::HbDetector`]
//! kept verbatim in the tree for two jobs:
//!
//! * **parity oracle** — the differential property tests
//!   (`tests/differential.rs`) drive random operation streams through this
//!   detector and the epoch-fast-path detector and assert byte-identical
//!   report sequences in every [`HbMode`] and at several granularities;
//! * **perf baseline** — the `epoch` bench and `repro --bench` measure the
//!   fast path's speedup against exactly this code (the numbers in
//!   `BENCH_0001.json`).
//!
//! Cost profile it deliberately preserves: a `HashMap` lookup per touched
//! block, a full `O(n)` vector compare per recorded access, an `O(n)` merge
//! per area update, one clock snapshot allocation per *access*, and a
//! per-op `Vec` of reports that is cloned again into the log — every cost
//! the optimised detector removes.

use std::collections::HashMap;
use std::sync::Arc;

use dsm::addr::Segment;
use vclock::{MatrixClock, VectorClock};

use crate::clockstore::{AreaKey, Granularity};
use crate::detector::Detector;
use crate::event::{AccessKind, AccessSummary, DsmOp, LockId};
use crate::hb::HbMode;
use crate::report::{RaceClass, RaceReport};
use crate::Rank;

/// Clock state and recent-access history for one area, dense clocks only.
#[derive(Debug, Clone)]
struct RefAreaHistory {
    /// General-purpose clock: join of every access's clock.
    v: VectorClock,
    /// Write clock: join of every write's clock.
    w: VectorClock,
    /// Antichain of recent writes (pairwise concurrent).
    writes: Vec<AccessSummary>,
    /// Antichain of recent reads not yet superseded.
    reads: Vec<AccessSummary>,
}

impl RefAreaHistory {
    fn new(n: usize) -> Self {
        RefAreaHistory {
            v: VectorClock::zero(n),
            w: VectorClock::zero(n),
            writes: Vec::new(),
            reads: Vec::new(),
        }
    }

    /// The pre-optimisation layout stored an *owned* clock per antichain
    /// entry; materialise that *copy* so the baseline keeps the original
    /// allocation profile (the shared `AccessSummary` type now carries an
    /// `Arc`, which would otherwise hide it).
    fn owned_clock_copy(access: &AccessSummary) -> AccessSummary {
        AccessSummary {
            clock: Arc::new((*access.clock).clone()),
            ..access.clone()
        }
    }

    fn record_write(&mut self, access: &AccessSummary) {
        let access = Self::owned_clock_copy(access);
        self.writes
            .retain(|p| p.clock.concurrent_with(&access.clock));
        self.reads
            .retain(|p| p.clock.concurrent_with(&access.clock));
        self.v.merge(&access.clock);
        self.w.merge(&access.clock);
        self.writes.push(access);
    }

    fn record_read(&mut self, access: &AccessSummary) {
        let access = Self::owned_clock_copy(access);
        self.reads
            .retain(|p| p.clock.concurrent_with(&access.clock));
        self.v.merge(&access.clock);
        self.reads.push(access);
    }
}

/// The unoptimised happens-before detector (see the module docs).
pub struct ReferenceHbDetector {
    mode: HbMode,
    granularity: Granularity,
    areas: HashMap<AreaKey, RefAreaHistory>,
    clocks: Vec<MatrixClock>,
    lock_clocks: HashMap<LockId, VectorClock>,
    log: crate::api::VecSink,
    n: usize,
}

impl ReferenceHbDetector {
    /// A reference detector for `n` processes at `granularity`.
    pub fn new(n: usize, granularity: Granularity, mode: HbMode) -> Self {
        ReferenceHbDetector {
            mode,
            granularity,
            areas: HashMap::new(),
            clocks: (0..n).map(|i| MatrixClock::zero(i, n)).collect(),
            lock_clocks: HashMap::new(),
            log: crate::api::VecSink::new(),
            n,
        }
    }

    /// The actor's current vector clock (differential-test introspection).
    pub fn process_clock(&self, rank: Rank) -> &VectorClock {
        self.clocks[rank].own_row()
    }

    /// Area keys covered by `range` (allocates a `Vec`, as the original
    /// store did).
    fn areas_for(&self, range: &dsm::addr::MemRange) -> Vec<AreaKey> {
        self.granularity
            .blocks_of(range)
            .map(|block| AreaKey::new(range.addr.rank, block))
            .collect()
    }

    /// Check one access against one area's history (full O(n) compares
    /// against every antichain entry, no guards). Returns fresh reports.
    fn check_access(&self, access: &AccessSummary, area: AreaKey) -> Vec<RaceReport> {
        let Some(hist) = self.areas.get(&area) else {
            return Vec::new(); // untouched area: initial zero clocks precede everything
        };
        let mut out = Vec::new();
        let (check_writes, check_reads) = self.mode.checks(access.kind);
        if check_writes {
            for prev in &hist.writes {
                if access.atomic && prev.atomic {
                    continue;
                }
                if prev.process != access.process && prev.clock.concurrent_with(&access.clock) {
                    let class = if access.kind.is_write() {
                        RaceClass::WriteWrite
                    } else {
                        RaceClass::ReadWrite
                    };
                    out.push(RaceReport {
                        detector: self.mode.detector_name(),
                        class,
                        current: access.clone(),
                        previous: Some(prev.clone()),
                        area,
                    });
                }
            }
        }
        if check_reads {
            for prev in &hist.reads {
                if access.atomic && prev.atomic {
                    continue;
                }
                if prev.process != access.process && prev.clock.concurrent_with(&access.clock) {
                    let class = if access.kind.is_write() {
                        RaceClass::ReadWrite
                    } else {
                        RaceClass::ReadRead
                    };
                    out.push(RaceReport {
                        detector: self.mode.detector_name(),
                        class,
                        current: access.clone(),
                        previous: Some(prev.clone()),
                        area,
                    });
                }
            }
        }
        out
    }
}

impl Detector for ReferenceHbDetector {
    fn name(&self) -> &'static str {
        // Distinct from the optimised detector so mixed tables attribute
        // correctly; the differential tests compare reports field-by-field
        // with the name normalised.
        "reference"
    }

    fn observe_sink(
        &mut self,
        op: &DsmOp,
        _held_locks: &[LockId],
        sink: &mut dyn crate::api::ReportSink,
    ) -> usize {
        let actor_clock = self.clocks[op.actor].tick();
        let mut new_reports = Vec::new();
        let mut absorb = VectorClock::zero(self.n);

        for (kind, range, access_id) in op.accesses() {
            if range.addr.segment != Segment::Public {
                continue;
            }
            let access = AccessSummary {
                id: access_id,
                process: op.actor,
                kind,
                range,
                // One snapshot allocation per access — the original cost.
                clock: Arc::new(actor_clock.clone()),
                atomic: op.is_atomic(),
            };
            for area in self.areas_for(&range) {
                new_reports.extend(self.check_access(&access, area));
                let n = self.n;
                let hist = self
                    .areas
                    .entry(area)
                    .or_insert_with(|| RefAreaHistory::new(n));
                match kind {
                    AccessKind::Write => hist.record_write(&access),
                    AccessKind::Read => {
                        absorb.merge(&hist.w);
                        if self.mode == HbMode::Single || self.mode == HbMode::Literal {
                            absorb.merge(&hist.v);
                        }
                        hist.record_read(&access);
                    }
                }
            }
        }

        self.clocks[op.actor].observe(op.actor, &absorb);
        let count = new_reports.len();
        // The original per-op report Vec is built (and paid for) either
        // way; the sink receives the values when it is done.
        for report in new_reports {
            sink.accept(report);
        }
        count
    }

    fn observe(&mut self, op: &DsmOp, held_locks: &[LockId]) -> usize {
        crate::detector::observe_via_log!(self.log, op, held_locks)
    }

    fn reports(&self) -> &[RaceReport] {
        self.log.as_slice()
    }

    fn clock_components_per_area(&self) -> usize {
        match self.mode {
            HbMode::Dual | HbMode::Literal => 2 * self.n,
            HbMode::Single => self.n,
        }
    }

    fn clock_memory_bytes(&self) -> usize {
        let per_clock = self.n * std::mem::size_of::<u64>();
        let dual = self.mode != HbMode::Single;
        self.areas.len() * per_clock * if dual { 2 } else { 1 }
    }

    fn requires_locking(&self) -> bool {
        true
    }

    fn on_release(&mut self, rank: usize, lock: LockId) {
        let snapshot = self.clocks[rank].own_row().clone();
        self.lock_clocks
            .entry(lock)
            .and_modify(|c| c.merge(&snapshot))
            .or_insert(snapshot);
    }

    fn on_acquire(&mut self, rank: usize, lock: LockId) {
        if let Some(c) = self.lock_clocks.get(&lock) {
            let c = c.clone();
            self.clocks[rank].observe(rank, &c);
        }
    }

    fn on_barrier(&mut self) {
        let mut join = VectorClock::zero(self.n);
        for c in &self.clocks {
            join.merge(c.own_row());
        }
        for (rank, c) in self.clocks.iter_mut().enumerate() {
            c.observe(rank, &join);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OpKind;
    use dsm::addr::GlobalAddr;

    fn put(op_id: u64, actor: Rank, dst_rank: Rank, dst_off: usize) -> DsmOp {
        DsmOp {
            op_id,
            actor,
            kind: OpKind::Put {
                src: GlobalAddr::private(actor, 0).range(8),
                dst: GlobalAddr::public(dst_rank, dst_off).range(8),
            },
        }
    }

    #[test]
    fn reference_detects_fig5a() {
        let mut d = ReferenceHbDetector::new(3, Granularity::WORD, HbMode::Dual);
        assert_eq!(d.observe(&put(0, 0, 1, 0), &[]), 0);
        let reports = d.observe_collect(&put(1, 2, 1, 0), &[]);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].class, RaceClass::WriteWrite);
    }

    #[test]
    fn memory_accounting_matches_optimised_detector() {
        use crate::hb::HbDetector;
        let mut r = ReferenceHbDetector::new(4, Granularity::WORD, HbMode::Dual);
        let mut h = HbDetector::new(4, Granularity::WORD, HbMode::Dual);
        for d in [&mut r as &mut dyn Detector, &mut h as &mut dyn Detector] {
            d.observe(&put(0, 0, 1, 0), &[]);
            d.observe(&put(1, 0, 1, 64), &[]);
        }
        assert_eq!(r.clock_memory_bytes(), h.clock_memory_bytes());
    }
}

//! Operations and accesses as the detectors see them.
//!
//! One DSM *operation* (a put, a get, or a local access) induces one or two
//! memory *accesses*: a put reads its local source and writes its remote
//! destination; a get reads its remote source and writes its local
//! destination. The paper's algorithms attach the race checks to these
//! accesses.

use std::sync::Arc;

use dsm::addr::{MemRange, Segment};
use serde::{Deserialize, Serialize};
use vclock::VectorClock;

use crate::Rank;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// The access observes data.
    Read,
    /// The access modifies data.
    Write,
}

impl AccessKind {
    /// True for writes.
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// Identity of a lock as the lockset baseline tracks it: the canonical
/// start of the locked range.
pub type LockId = (Rank, usize);

/// The operation shapes of §III-B plus local accesses (which the model
/// routes through the same rules — "no distinction is made between accesses
/// to public memory from a remote process and from the process that
/// actually maps this address space").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// One-sided write: copy `src` (local to the actor) into `dst`.
    Put {
        /// Actor-local source range (private or public).
        src: MemRange,
        /// Remote (or local) public destination.
        dst: MemRange,
    },
    /// One-sided read: copy `src` (anywhere public) into `dst` (local).
    Get {
        /// Source range in some process's public memory.
        src: MemRange,
        /// Actor-local destination (private or public).
        dst: MemRange,
    },
    /// The actor reads a range it maps itself.
    LocalRead {
        /// The range read.
        range: MemRange,
    },
    /// The actor writes a range it maps itself.
    LocalWrite {
        /// The range written.
        range: MemRange,
    },
    /// NIC-executed atomic read-modify-write on a public word (the §V-B
    /// "new operations" extension). Counts as a read *and* a write of the
    /// range, but two atomics on the same word never race with each other:
    /// the NIC serialises them (they are the model's synchronisation
    /// primitive, like `lock`).
    AtomicRmw {
        /// The word operated on.
        range: MemRange,
    },
}

/// One DSM operation presented to a detector.
///
/// `Copy`: an op is three plain words plus a [`OpKind`] of inline ranges,
/// so buffering front-ends (the sharded pipeline's batching layer) store
/// ops by value without heap traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsmOp {
    /// Engine-assigned operation id; access ids derive from it (see
    /// [`DsmOp::read_access_id`] / [`DsmOp::write_access_id`]) so that
    /// online reports and the offline oracle name the same events.
    pub op_id: u64,
    /// The process performing the operation.
    pub actor: Rank,
    /// What the operation does.
    pub kind: OpKind,
}

impl DsmOp {
    /// The id of the read access this op induces (puts read `src`, gets
    /// read `src`, local reads read `range`).
    pub fn read_access_id(&self) -> u64 {
        2 * self.op_id
    }

    /// The id of the write access this op induces.
    pub fn write_access_id(&self) -> u64 {
        2 * self.op_id + 1
    }

    /// `(kind, range, access_id)` for each access the op performs, in the
    /// order the algorithms check them (read side first, then write side).
    ///
    /// Returns a fixed-capacity, stack-allocated list — the detector calls
    /// this once per observed operation and must not pay a heap allocation
    /// for it.
    pub fn accesses(&self) -> AccessList {
        match self.kind {
            OpKind::Put { src, dst } | OpKind::Get { src, dst } => AccessList::two(
                (AccessKind::Read, src, self.read_access_id()),
                (AccessKind::Write, dst, self.write_access_id()),
            ),
            OpKind::LocalRead { range } => {
                AccessList::one((AccessKind::Read, range, self.read_access_id()))
            }
            OpKind::LocalWrite { range } => {
                AccessList::one((AccessKind::Write, range, self.write_access_id()))
            }
            OpKind::AtomicRmw { range } => AccessList::two(
                (AccessKind::Read, range, self.read_access_id()),
                (AccessKind::Write, range, self.write_access_id()),
            ),
        }
    }

    /// True when this op's accesses are NIC-atomic (atomic-atomic pairs are
    /// serialised by the NIC and therefore never race).
    pub fn is_atomic(&self) -> bool {
        matches!(self.kind, OpKind::AtomicRmw { .. })
    }

    /// Public ranges this op touches on ranks other than the actor —
    /// the areas whose clocks live remotely (each costs clock messages
    /// when detection is enabled).
    pub fn remote_public_ranges(&self) -> Vec<MemRange> {
        self.accesses()
            .into_iter()
            .map(|(_, r, _)| r)
            .filter(|r| r.addr.segment == Segment::Public && r.addr.rank != self.actor)
            .collect()
    }
}

/// One `(kind, range, access_id)` entry of [`DsmOp::accesses`].
pub type Access = (AccessKind, MemRange, u64);

/// The accesses of one operation — at most two, held inline so iterating an
/// op's accesses never allocates.
#[derive(Debug, Clone, Copy)]
pub struct AccessList {
    items: [Access; 2],
    len: u8,
}

impl AccessList {
    fn one(a: Access) -> Self {
        AccessList {
            items: [a, a],
            len: 1,
        }
    }

    fn two(a: Access, b: Access) -> Self {
        AccessList {
            items: [a, b],
            len: 2,
        }
    }

    /// The accesses as a slice (read side first).
    pub fn as_slice(&self) -> &[Access] {
        &self.items[..self.len as usize]
    }
}

impl std::ops::Deref for AccessList {
    type Target = [Access];
    fn deref(&self) -> &[Access] {
        self.as_slice()
    }
}

impl IntoIterator for AccessList {
    type Item = Access;
    type IntoIter = std::iter::Take<std::array::IntoIter<Access, 2>>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter().take(self.len as usize)
    }
}

/// A recorded access, as embedded in race reports and area histories.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessSummary {
    /// Globally unique access id (derived from the op id).
    pub id: u64,
    /// Performing process.
    pub process: Rank,
    /// Read or write.
    pub kind: AccessKind,
    /// Bytes touched.
    pub range: MemRange,
    /// The actor's vector clock when the access was performed. Shared: the
    /// detector snapshots one clock per *operation* and every access /
    /// history entry / report of that op references it, instead of cloning
    /// the `Vec<u64>` per access.
    pub clock: Arc<VectorClock>,
    /// True for accesses performed by a NIC-atomic operation.
    #[serde(default)]
    pub atomic: bool,
}

impl std::fmt::Display for AccessSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let k = match self.kind {
            AccessKind::Read => "R",
            AccessKind::Write => "W",
        };
        write!(
            f,
            "{k}#{} by P{} on {} @{}",
            self.id, self.process, self.range, self.clock
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm::addr::GlobalAddr;

    fn op(actor: Rank, kind: OpKind) -> DsmOp {
        DsmOp {
            op_id: 7,
            actor,
            kind,
        }
    }

    #[test]
    fn put_induces_read_then_write() {
        let src = GlobalAddr::private(0, 0).range(8);
        let dst = GlobalAddr::public(1, 0).range(8);
        let o = op(0, OpKind::Put { src, dst });
        let acc = o.accesses();
        assert_eq!(acc.len(), 2);
        assert_eq!(acc[0], (AccessKind::Read, src, 14));
        assert_eq!(acc[1], (AccessKind::Write, dst, 15));
    }

    #[test]
    fn local_ops_single_access() {
        let r = GlobalAddr::public(0, 0).range(8);
        assert_eq!(op(0, OpKind::LocalRead { range: r }).accesses().len(), 1);
        assert_eq!(op(0, OpKind::LocalWrite { range: r }).accesses().len(), 1);
    }

    #[test]
    fn remote_public_ranges_filters() {
        let src = GlobalAddr::private(0, 0).range(8);
        let dst = GlobalAddr::public(1, 0).range(8);
        let o = op(0, OpKind::Put { src, dst });
        assert_eq!(o.remote_public_ranges(), vec![dst]);

        // Local public destination: no remote clock traffic.
        let dst_local = GlobalAddr::public(0, 0).range(8);
        let o = op(
            0,
            OpKind::Put {
                src,
                dst: dst_local,
            },
        );
        assert!(o.remote_public_ranges().is_empty());
    }

    #[test]
    fn access_ids_unique_per_op() {
        let r = GlobalAddr::public(0, 0).range(8);
        let a = DsmOp {
            op_id: 1,
            actor: 0,
            kind: OpKind::LocalRead { range: r },
        };
        let b = DsmOp {
            op_id: 2,
            actor: 0,
            kind: OpKind::LocalRead { range: r },
        };
        assert_ne!(a.read_access_id(), b.read_access_id());
    }

    #[test]
    fn summary_display() {
        let s = AccessSummary {
            id: 3,
            process: 1,
            kind: AccessKind::Write,
            range: GlobalAddr::public(2, 0).range(8),
            clock: Arc::new(VectorClock::from_components(vec![1, 1, 0])),
            atomic: false,
        };
        let text = s.to_string();
        assert!(text.contains("W#3"));
        assert!(text.contains("110"));
    }
}

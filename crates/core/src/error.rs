//! Typed detection-pipeline errors, health states, and retry policy.
//!
//! The paper's stance is that races are *signalled, never fatal* (§IV-D);
//! this module extends that stance to the detection machinery itself. A
//! component failure inside the threaded pipeline — a shard worker
//! panicking, a channel closing — becomes a [`DetectError`] that the
//! supervisor in [`crate::sharded`] consumes by **degrading**: the router
//! replays its event journal through a fresh inline detector, the report
//! stream continues byte-identical, and the session surfaces
//! [`PipelineHealth::Degraded`] (mirrored as `RaceSummary::degraded`)
//! instead of unwinding through the caller.
//!
//! [`RetryPolicy`] bounds how long the supervisor distinguishes "worker is
//! slow" from "worker is gone" at a batch fence: transient stalls are
//! re-probed with exponential backoff before the blocking wait resumes.

use std::fmt;
use std::time::Duration;

/// A failure inside the detection pipeline.
///
/// These never escape the public observe/flush paths as panics: the
/// sharded pipeline's supervisor catches the condition, degrades to the
/// inline detector, and records the error (see
/// [`crate::ShardedDetector::last_error`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DetectError {
    /// A shard worker thread panicked; `message` is the panic payload.
    WorkerPanicked {
        /// Index of the dead shard.
        shard: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// A shard worker's channels closed without a recoverable panic
    /// payload (the thread exited or was never joinable).
    WorkerDisconnected {
        /// Index of the dead shard.
        shard: usize,
    },
}

impl DetectError {
    /// The shard the error originated from.
    pub fn shard(&self) -> usize {
        match self {
            DetectError::WorkerPanicked { shard, .. } => *shard,
            DetectError::WorkerDisconnected { shard } => *shard,
        }
    }
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::WorkerPanicked { shard, message } => {
                write!(f, "shard worker {shard} panicked: {message}")
            }
            DetectError::WorkerDisconnected { shard } => {
                write!(f, "shard worker {shard} disconnected")
            }
        }
    }
}

impl std::error::Error for DetectError {}

/// Health of a detection pipeline, surfaced through
/// [`crate::Detector::health`] and `RaceSummary::degraded`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineHealth {
    /// Everything running as configured.
    #[default]
    Healthy,
    /// A component died and the pipeline fell back to a slower but
    /// complete path (threaded → inline). Results remain byte-identical;
    /// only parallelism is lost.
    Degraded,
}

impl PipelineHealth {
    /// True for [`PipelineHealth::Degraded`].
    pub fn is_degraded(&self) -> bool {
        matches!(self, PipelineHealth::Degraded)
    }
}

/// Bounded retry with exponential backoff for transient pipeline stalls.
///
/// Used at the batch fence: each attempt waits `base_delay << attempt` for
/// a worker reply before re-probing whether the worker thread is still
/// alive. A dead worker is reported as a [`DetectError`] immediately; a
/// merely slow worker survives every probe and the fence falls back to a
/// plain blocking wait once the attempts are exhausted — the policy bounds
/// *death detection latency*, never correctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Number of timed probes before blocking indefinitely.
    pub attempts: u32,
    /// Wait of the first probe; doubles each attempt.
    pub base_delay: Duration,
}

impl Default for RetryPolicy {
    /// Four probes starting at 1 ms (1 + 2 + 4 + 8 = 15 ms of bounded
    /// probing) — long enough that healthy fences never hit the probe
    /// path, short enough that a dead worker is noticed promptly.
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(1),
        }
    }
}

impl RetryPolicy {
    /// The backoff schedule: `attempts` delays, doubling from
    /// [`RetryPolicy::base_delay`].
    pub fn delays(&self) -> impl Iterator<Item = Duration> + '_ {
        let base = self.base_delay;
        (0..self.attempts).map(move |i| base.saturating_mul(1u32 << i.min(16)))
    }

    /// The backoff schedule with deterministic pseudo-random jitter: each
    /// delay is scaled by a factor in `[0.5, 1.0]` derived from `seed` and
    /// the attempt index, so a fleet of clients reconnecting after the same
    /// outage does not thunder back in lockstep. Same seed ⇒ same schedule
    /// (reconnect tests stay reproducible).
    pub fn jittered_delays(&self, seed: u64) -> impl Iterator<Item = Duration> + '_ {
        self.delays().enumerate().map(move |(i, delay)| {
            // SplitMix64 on (seed, attempt): cheap, dependency-free, and
            // well-distributed even for adjacent seeds.
            let mut z = seed.wrapping_add(i as u64).wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            // Map to [512, 1024] / 1024 — never below half the nominal
            // delay, so backoff keeps its exponential floor.
            let scale = 512 + (z % 513) as u32;
            delay.saturating_mul(scale) / 1024
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_shard() {
        let p = DetectError::WorkerPanicked {
            shard: 2,
            message: "boom".into(),
        };
        assert_eq!(p.to_string(), "shard worker 2 panicked: boom");
        assert_eq!(p.shard(), 2);
        let d = DetectError::WorkerDisconnected { shard: 1 };
        assert_eq!(d.to_string(), "shard worker 1 disconnected");
        assert_eq!(d.shard(), 1);
    }

    #[test]
    fn health_default_and_predicate() {
        assert_eq!(PipelineHealth::default(), PipelineHealth::Healthy);
        assert!(!PipelineHealth::Healthy.is_degraded());
        assert!(PipelineHealth::Degraded.is_degraded());
    }

    #[test]
    fn backoff_doubles_and_is_bounded() {
        let policy = RetryPolicy::default();
        let delays: Vec<_> = policy.delays().collect();
        assert_eq!(delays.len(), 4);
        assert_eq!(delays[0], Duration::from_millis(1));
        assert_eq!(delays[1], Duration::from_millis(2));
        assert_eq!(delays[3], Duration::from_millis(8));
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_seed_sensitive() {
        let policy = RetryPolicy {
            attempts: 8,
            base_delay: Duration::from_millis(64),
        };
        let a: Vec<_> = policy.jittered_delays(7).collect();
        let b: Vec<_> = policy.jittered_delays(7).collect();
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.len(), 8);
        for (jittered, nominal) in a.iter().zip(policy.delays()) {
            assert!(*jittered >= nominal / 2, "never below half the nominal");
            assert!(*jittered <= nominal, "never above the nominal");
        }
        let c: Vec<_> = policy.jittered_delays(8).collect();
        assert_ne!(a, c, "different seeds decorrelate");
    }
}
